"""Durability benchmark — recovery cost after killing 1..k of n stores.

Swaps a workload out at ``replication_factor=3`` across five stores,
kills an increasing number of them with data loss, and measures the
scrubber's recovery: simulated seconds and payload bytes re-replicated
until full replication returns.  Writes ``BENCH_durability.json`` and
asserts the issue's acceptance bar: zero clusters lost for every kill
count below the replication factor.

Run:  pytest benchmarks/test_durability.py --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.durability import DurabilityConfig, format_table, run_durability

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_durability.json"


def test_durability(benchmark):
    report = benchmark.pedantic(
        lambda: run_durability(DurabilityConfig.quick()), rounds=1, iterations=1
    )
    print()
    print(format_table(report))
    OUTPUT.write_text(report.to_json() + "\n", encoding="utf-8")

    factor = report.config.replication_factor
    # the durability claim: any minority of store deaths loses nothing
    assert report.survives_minority_loss
    for kills, result in report.results.items():
        if kills < factor:
            # everything recovered AND re-replicated back to the target
            assert result.clusters_lost == 0
            assert result.fully_replicated == result.clusters
            assert result.replicas_repaired == kills * result.clusters
            assert result.bytes_re_replicated > 0
            assert result.recovery_s > 0.0  # repair traffic is not free

    # recovery work scales with what was lost: two deaths re-ship more
    # than one (the bench's headline numbers stay meaningful)
    if 1 in report.results and 2 in report.results:
        assert (
            report.results[2].bytes_re_replicated
            > report.results[1].bytes_re_replicated
        )
