"""Ablation G — persistence cost (hibernate / restore a whole space).

How long suspending and resurrecting a space takes, and how big the
on-disk XML footprint is, as the working set grows.  The restore path is
the expensive one (object construction + re-mediation of every
cross-cluster edge); both scale linearly, which is what makes
hibernation usable as a shutdown/startup path on a device.

Run:  pytest benchmarks/test_hibernation.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import build_list
from repro.core.hibernate import hibernate, restore
from repro.core.space import Space
from repro.devices.store import InMemoryStore

SIZES = (500, 2_000, 8_000)
CLUSTER_SIZE = 50


def _space(objects):
    space = Space(f"hib-{objects}", heap_capacity=16 << 20)
    space.manager.add_store(InMemoryStore("store"))
    space.ingest(build_list(objects), cluster_size=CLUSTER_SIZE, root_name="h")
    return space


@pytest.mark.parametrize("objects", SIZES)
def test_hibernate_cost(benchmark, objects, tmp_path):
    space = _space(objects)
    counter = [0]

    def snapshot():
        counter[0] += 1
        return hibernate(space, tmp_path / f"snap-{counter[0]}")

    manifest = benchmark.pedantic(snapshot, rounds=3, iterations=1, warmup_rounds=1)
    footprint = sum(
        path.stat().st_size for path in manifest.parent.iterdir()
    )
    benchmark.extra_info["objects"] = objects
    benchmark.extra_info["disk_bytes"] = footprint


@pytest.mark.parametrize("objects", SIZES)
def test_restore_cost(benchmark, objects, tmp_path):
    space = _space(objects)
    hibernate(space, tmp_path / "snap")

    def revive():
        return restore(tmp_path / "snap")

    revived = benchmark.pedantic(revive, rounds=3, iterations=1, warmup_rounds=1)
    assert revived.object_count() == objects
    benchmark.extra_info["objects"] = objects


def test_roundtrip_scales_linearly(benchmark, tmp_path):
    import time

    def measure():
        series = {}
        for objects in SIZES:
            space = _space(objects)
            started = time.perf_counter()
            hibernate(space, tmp_path / f"lin-{objects}")
            suspend = time.perf_counter() - started
            started = time.perf_counter()
            revived = restore(tmp_path / f"lin-{objects}")
            resume = time.perf_counter() - started
            assert revived.object_count() == objects
            revived.verify_integrity()
            series[objects] = (suspend, resume)
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nobjects  hibernate_ms  restore_ms")
    for objects, (suspend, resume) in series.items():
        print(f"{objects:>7}  {suspend*1000:>12.1f}  {resume*1000:>10.1f}")
    # linear-ish: 16x the objects must cost far less than 64x the time
    assert series[8_000][0] < series[500][0] * 64
    assert series[8_000][1] < series[500][1] * 64
