"""Observability overhead guard.

The tentpole promise: attaching ``repro.obs`` must not distort the
system under observation.  Spans take their timestamps from the
simulated clock and never advance it, so the *simulated* cost of every
operation has to be bit-identical with observability on — and the guard
below holds the looser issue bar (<10%) with plenty of margin.  Wall
time is reported but not asserted (CI machines are too noisy for a
stable wall-clock bound).

Run:  pytest benchmarks/test_obs_overhead.py --benchmark-only
"""

from __future__ import annotations

from repro.bench.hotpath import HotPathConfig, run_scenario

CONFIG = HotPathConfig.quick()


def _mean_swap_out(observe: bool) -> float:
    result = run_scenario(
        "overhead-probe",
        CONFIG,
        fastpath=False,
        mutate=False,
        observe=observe,
    )
    return result.swap_out_mean_s


def test_observability_adds_no_simulated_cost(benchmark):
    plain = _mean_swap_out(observe=False)
    observed = benchmark.pedantic(
        lambda: _mean_swap_out(observe=True), rounds=1, iterations=1
    )
    assert plain > 0
    # issue bar: <10% added simulated swap-out cost; actual: zero
    assert observed <= plain * 1.10
    assert observed == plain  # spans read the clock, never charge it


def test_observability_reports_phases_without_perturbing_counters():
    base = run_scenario(
        "counters-plain", CONFIG, fastpath=False, mutate=False
    )
    seen = run_scenario(
        "counters-observed", CONFIG, fastpath=False, mutate=False, observe=True
    )
    assert seen.phases and not base.phases
    assert seen.encode_calls == base.encode_calls
    assert seen.bytes_on_link == base.bytes_on_link
    assert seen.link_seconds == base.link_seconds
