"""Ablation D — adaptive swap-cluster tuning (extension).

The paper fixes the swap-cluster grouping at replication time; the
:class:`~repro.policy.AdaptiveTuner` adapts it at runtime from the
crossing statistics the proxies already record.  This bench measures the
payoff on an A1-style recursive traversal (mediated only at boundaries,
like application code running inside clusters): before tuning the walk
crosses ~objects/cluster_size proxies; after the tuner merges the hot
boundaries away, it crosses almost none.

(A root-cursor iteration would show no payoff by construction — every
step is mediated by the swap-cluster-0 variable's proxy no matter how
clusters are grouped; that case is what ``assign()`` is for.)

Run:  pytest benchmarks/test_adaptive_tuning.py --benchmark-only
"""

from __future__ import annotations

import time

from repro.bench.deepcall import run_deep
from repro.bench.workloads import build_list
from repro.core.space import Space
from repro.devices.store import InMemoryStore
from repro.policy.tuning import AdaptiveTuner

OBJECTS = 5_000
CLUSTER_SIZE = 20


def _fixture():
    space = Space("bench", heap_capacity=8 << 20)
    space.manager.add_store(InMemoryStore("store"))
    space.manager.auto_swap = False
    handle = space.ingest(
        build_list(OBJECTS), cluster_size=CLUSTER_SIZE, root_name="h"
    )
    return space, handle


def _walk(handle):
    depth = run_deep(lambda: handle.depth(1))
    assert depth == OBJECTS


def _converge(space, handle, tuner, max_rounds=600):
    """Walk to heat the statistics, stepping the tuner until it settles
    (two consecutive idle decisions)."""
    idle = 0
    for _ in range(max_rounds):
        for _ in range(6):
            _walk(handle)
        decision = tuner.step()
        idle = idle + 1 if decision.action == "none" else 0
        if idle >= 2:
            break


def test_traversal_before_tuning(benchmark):
    space, handle = _fixture()
    benchmark.extra_info["clusters"] = len(space.clusters()) - 1
    benchmark.pedantic(lambda: _walk(handle), rounds=3, iterations=1, warmup_rounds=1)


def test_traversal_after_tuning(benchmark):
    space, handle = _fixture()
    tuner = AdaptiveTuner(
        space, hot_crossings=5, max_cluster_objects=OBJECTS, cooldown_ticks=0
    )
    _converge(space, handle, tuner)
    benchmark.extra_info["clusters"] = len(space.clusters()) - 1
    benchmark.pedantic(lambda: _walk(handle), rounds=3, iterations=1, warmup_rounds=1)
    space.verify_integrity()


def test_tuning_payoff(benchmark):
    def timed_walk(handle, rounds=5):
        # best-of-n, timed INSIDE the big-stack thread so the thread
        # spawn cost (comparable to the ~1 ms walk itself) stays out of
        # the measurement
        def body():
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                depth = handle.depth(1)
                best = min(best, time.perf_counter() - started)
                assert depth == OBJECTS
            return best

        return run_deep(body)

    def measure():
        space, handle = _fixture()
        before = timed_walk(handle)
        clusters_before = len(space.clusters()) - 1

        tuner = AdaptiveTuner(
            space, hot_crossings=5, max_cluster_objects=OBJECTS, cooldown_ticks=0
        )
        _converge(space, handle, tuner)
        after = timed_walk(handle)
        clusters_after = len(space.clusters()) - 1

        # deterministic mediation count: crossings recorded by one walk
        crossings_before_walk = sum(
            cluster.crossings for cluster in space.clusters().values()
        )
        _walk(handle)
        mediations_per_walk = sum(
            cluster.crossings for cluster in space.clusters().values()
        ) - crossings_before_walk
        space.verify_integrity()
        return before, after, clusters_before, clusters_after, mediations_per_walk

    (
        before,
        after,
        clusters_before,
        clusters_after,
        mediations_per_walk,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nhot traversal: {before*1000:.2f} ms over {clusters_before} "
          f"clusters -> {after*1000:.2f} ms over {clusters_after} clusters")
    # deterministic claim: the boundaries (and their mediation) are gone
    assert clusters_after < clusters_before
    print(f"mediated calls per walk after tuning: {mediations_per_walk} "
          f"(was ~{clusters_before})")
    assert mediations_per_walk <= clusters_after + 1
    # timing claim, loose: at sc=20 the A1-style boundary component is
    # ~15-20% of the walk (250 crossings x the fitted ~0.7 us), so the
    # tuned walk must be measurably cheaper — but a strict ratio would
    # just re-test scheduler noise at the ~0.1 ms scale
    assert after < before * 0.95
    saving_per_boundary_us = (before - after) * 1e6 / max(
        1, clusters_before - clusters_after
    )
    print(f"saving per removed boundary: {saving_per_boundary_us:.2f} us")
    assert 0.05 < saving_per_boundary_us < 20.0
