"""Ablation E — clusters-per-swap grouping (the paper's second knob).

A swap-cluster is "a number (also adaptable) of chained object clusters"
(Section 1).  Grouping more replication clusters per swap-cluster
removes boundaries (faster traversal, because proxy replacement yields
raw references inside the group) but enlarges the swap unit (more bytes
per swap cycle).  This bench measures both sides of that trade after
full replication.

Run:  pytest benchmarks/test_group_size.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import build_list
from repro.devices.store import InMemoryStore
from repro.replication import DirectServerClient, ObjectServer, Replicator
from tests.helpers import make_space

OBJECTS = 4_000
CLUSTER_SIZE = 20

GROUPS = (1, 2, 5, 10)


def _replicated_fixture(clusters_per_swap):
    server = ObjectServer(f"server-g{clusters_per_swap}")
    server.publish("list", build_list(OBJECTS), cluster_size=CLUSTER_SIZE)
    space = make_space(f"bench-g{clusters_per_swap}", heap_capacity=8 << 20)
    replicator = Replicator(
        space, DirectServerClient(server), clusters_per_swap=clusters_per_swap
    )
    handle = replicator.replicate("list")
    replicator.prefetch("list", server.cluster_ids("list"))
    return space, handle


def _walk(handle):
    count = 0
    cursor = handle
    while cursor is not None:
        cursor = cursor.get_next()
        count += 1
    assert count == OBJECTS


@pytest.mark.parametrize("group", GROUPS)
def test_traversal_vs_group_size(benchmark, group):
    space, handle = _replicated_fixture(group)
    benchmark.extra_info["clusters_per_swap"] = group
    benchmark.extra_info["swap_clusters"] = len(space.clusters()) - 1
    benchmark.pedantic(
        lambda: _walk(handle), rounds=3, iterations=1, warmup_rounds=1
    )


def test_group_size_tradeoff(benchmark):
    def measure():
        series = {}
        for group in GROUPS:
            space, handle = _replicated_fixture(group)
            # traversal cost: boundary proxies per walk
            boundaries = len(space.clusters()) - 2  # chained clusters
            # swap unit: bytes of one swap-cluster's XML
            victim = space.sid_of(handle)
            location = space.manager.swap_out(victim)
            series[group] = (boundaries, location.xml_bytes)
            space.manager.swap_in(victim)
            space.verify_integrity()
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nclusters_per_swap  boundaries  swap_unit_bytes")
    for group, (boundaries, xml_bytes) in series.items():
        print(f"{group:>17}  {boundaries:>10}  {xml_bytes:>15}")

    # more grouping -> fewer boundaries but bigger swap units
    assert series[10][0] < series[1][0]
    assert series[10][1] > series[1][1] * 5
