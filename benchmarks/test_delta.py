"""Delta swap-out benchmark — object-granular deltas + pipelined fan-out.

Runs the two delta scenarios (fastpath-full, delta) on identical
skewed-write workloads (~10% of each cluster's members rewritten per
cycle, replication factor 3 over simulated 700 Kbps Bluetooth links),
writes ``BENCH_delta.json``, and asserts the issue's acceptance bar: at
least a 3x reduction in bytes carried on the links *and* a 2x reduction
in simulated swap-out phase cost.

Run:  pytest benchmarks/test_delta.py --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.delta import DeltaBenchConfig, format_table, run_delta_bench

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_delta.json"


def test_delta_swap(benchmark):
    report = benchmark.pedantic(
        lambda: run_delta_bench(DeltaBenchConfig.quick()), rounds=1, iterations=1
    )
    print()
    print(format_table(report))
    OUTPUT.write_text(report.to_json() + "\n", encoding="utf-8")

    full = report.scenarios["fastpath_full"]
    delta = report.scenarios["delta"]

    # same amount of swapping everywhere: the comparison is apples-to-apples
    assert full.swap_outs == delta.swap_outs

    # acceptance bar: >=3x fewer bytes on the links and >=2x cheaper
    # simulated swap-out for the skewed-write workload
    assert report.link_bytes_reduction >= 3.0
    assert report.swap_out_cost_reduction >= 2.0

    # after the first full ship, every dirty swap-out moves a delta:
    # cycles-1 delta cycles per cluster, no fallbacks, no compactions
    # (quick sizing keeps every chain within delta_max_chain)
    clusters = delta.swap_outs // delta.cycles
    assert delta.delta_ships == clusters * (delta.cycles - 1)
    assert delta.delta_fallbacks == 0
    assert delta.delta_compactions == 0
    # only the first cycle's full ships invoke the encoder
    assert delta.encode_calls == clusters
    # the fan-out actually pipelined: overlap saved simulated seconds
    assert delta.pipeline_transfers > 0
    assert delta.pipeline_saved_s > 0.0

    # the honesty check: with delta off nothing rides the delta path
    assert full.delta_ships == 0
    assert full.pipeline_transfers == 0
    assert full.encode_calls == full.swap_outs
