"""Async swap scheduler benchmark — overlap faults, prefetch, write-back.

Runs the fetch-bound pointer-chase workload (replication factor 3 over
five simulated 700 Kbps Bluetooth stores) three ways — legacy
synchronous, event-driven async, and the async scheduler forced serial
(``channels=1, prefetch=off``) — writes ``BENCH_async.json``, and
asserts the issue's acceptance bar: at least a 2x reduction in p95
fault-stall seconds, and the serial configuration byte-identical to the
legacy path.

Run:  pytest benchmarks/test_async_sched.py --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.async_sched import (
    AsyncBenchConfig,
    format_table,
    run_async_bench,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_async.json"


def test_async_sched(benchmark):
    report = benchmark.pedantic(
        lambda: run_async_bench(AsyncBenchConfig.quick()), rounds=1, iterations=1
    )
    print()
    print(format_table(report))
    OUTPUT.write_text(report.to_json() + "\n", encoding="utf-8")

    sync = report.scenarios["sync"]
    async_ = report.scenarios["async"]
    serial = report.scenarios["serial"]

    # same walk everywhere: the comparison is apples-to-apples
    assert sync.steps == async_.steps == serial.steps
    assert sync.faults == serial.faults

    # acceptance bar: >=2x lower p95 fault stall on the async schedule
    assert report.p95_stall_reduction >= 2.0
    assert report.mean_stall_reduction >= 2.0

    # channels=1 + prefetch=off must be bit-identical to the legacy
    # synchronous path: same clock, stats, heap and event stream digest
    assert report.sync_equivalent
    assert serial.digest == sync.digest

    # the speculation story must be real and honestly accounted: hits
    # landed, and the waste ratio is present in the report
    assert async_.sched_prefetch_issued > 0
    assert async_.sched_prefetch_hits > 0
    assert 0.0 <= async_.prefetch_waste_ratio <= 1.0

    # write-back and stale-drop traffic actually rode the channels
    assert async_.sched_writebacks > 0
    assert async_.sched_stale_drops > 0
