"""Topology benchmark — sharded placement at fleet scale, under churn.

Registers tens of thousands of cluster keys over a 60-store / 12-cell
fleet through the real observer hooks, kills whole cells, and measures
shard lookup cost, reparent latency, rebalance cost, and the headline
claim: losing any one full cell loses zero clusters.  Writes
``BENCH_topology.json``.

Run:  pytest benchmarks/test_topology.py --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.topology import (
    TopologyBenchConfig,
    format_table,
    run_topology_bench,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_topology.json"


def test_topology(benchmark):
    report = benchmark.pedantic(
        lambda: run_topology_bench(TopologyBenchConfig.quick()),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(report))
    OUTPUT.write_text(report.to_json() + "\n", encoding="utf-8")

    scale = report.scale
    # routing stays O(1) as the key population grows 100x
    assert scale.lookup_o1
    # every shard's holders span cells: no single cell owns any cluster
    assert scale.worst_cell_lost_clusters == 0
    # the churn sweep actually reparented, and cheaply
    assert scale.reparents > 0
    assert scale.reparent_wall_ms_mean < 100.0
    assert scale.rebalance_moves > 0

    # real-data layer: every cell death recovered with nothing lost
    assert len(report.integration) == report.config.it_cells
    for result in report.integration:
        assert result.clusters_lost == 0
        assert result.swap_in_ok == result.clusters
        assert result.reparents > 0
        assert result.replicas_repaired > 0
        assert result.fully_replicated == result.clusters  # back at full rf
        assert result.recovery_s > 0.0  # repair traffic is not free
    assert report.zero_loss
