"""§5 qualitative evaluation — the portability/requirements matrix.

The paper's qualitative claim: object-swapping "does not require
modification of the underlying virtual machine ... obviates the need to
manage inter-process references among individual resident and swapped-out
objects ... devices receiving swapped objects do not need to have VM or
middleware installed".  This bench renders the requirements matrix
against the implemented baselines and *demonstrates* the receiver claim:
a conforming store is a dict-of-strings.

Run:  pytest benchmarks/test_portability_matrix.py --benchmark-only
"""

from __future__ import annotations

from repro.baselines.offload import REQUIREMENTS_MATRIX
from repro.bench.workloads import build_list
from repro.core.interfaces import SwapStore
from repro.core.space import Space


class TrivialReceiver:
    """The entire receiver-side implementation a swapping device needs.

    No VM, no middleware, no object model: store/return/drop text.
    """

    device_id = "trivial"

    def __init__(self):
        self.texts = {}

    def store(self, key, xml_text):
        self.texts[key] = xml_text

    def fetch(self, key):
        return self.texts[key]

    def drop(self, key):
        self.texts.pop(key, None)

    def has_room(self, nbytes):
        return True


def test_requirements_matrix(benchmark):
    def render():
        requirement_names = list(next(iter(REQUIREMENTS_MATRIX.values())))
        width = max(len(name) for name in REQUIREMENTS_MATRIX) + 2
        lines = [
            " " * width + "  ".join(f"{name[:14]:>14}" for name in requirement_names)
        ]
        for approach, requirements in REQUIREMENTS_MATRIX.items():
            row = "".join(
                f"{'YES' if requirements[name] else 'no':>16}"
                for name in requirement_names
            )
            lines.append(f"{approach:<{width}}{row}")
        return "\n".join(lines)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + table)
    swap = REQUIREMENTS_MATRIX["object-swapping (this paper)"]
    assert not any(swap.values()), "object-swapping must demand nothing"
    for name, requirements in REQUIREMENTS_MATRIX.items():
        if not name.startswith("object-swapping"):
            assert any(requirements.values()), f"{name} should demand something"


def test_trivial_receiver_suffices(benchmark):
    """A dict of strings is a complete swapping device."""
    receiver = TrivialReceiver()
    assert isinstance(receiver, SwapStore)  # structural conformance

    space = Space("pda", heap_capacity=4 << 20)
    space.manager.add_store(receiver)
    handle = space.ingest(build_list(1000), cluster_size=100, root_name="h")

    def swap_cycle():
        space.manager.swap_out(2)
        count = 0
        cursor = handle
        while cursor is not None:
            cursor = cursor.get_next()
            count += 1
        assert count == 1000

    benchmark.pedantic(swap_cycle, rounds=3, iterations=1, warmup_rounds=1)
    # the receiver only ever saw text
    assert all(isinstance(text, str) for text in receiver.texts.values())
