"""Figure 5 — performance impact of swapping on graph traversal.

Regenerates the paper's only quantitative figure: tests A1/A2/B1/B2 over
a 10000-element list of 64-byte objects, at swap-cluster sizes 20/50/100
and without swapping.  Each cell is one pytest-benchmark case; the shape
claims (the figure's story) are asserted in ``test_figure5_shape``.

Run:  pytest benchmarks/test_figure5.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.figure5 import (
    Figure5Config,
    _TEST_FNS,
    make_fixture,
    run_figure5,
)
from repro.bench.report import PAPER_FIGURE5, check_shape, format_figure5_table

OBJECTS = 10_000

_CASES = [
    (test, size)
    for test in ("A1", "A2", "B1", "B2")
    for size in (20, 50, 100, None)
]


def _case_id(case):
    test, size = case
    return f"{test}-{'noswap' if size is None else size}"


@pytest.mark.parametrize("case", _CASES, ids=_case_id)
def test_figure5_cell(benchmark, case):
    test, cluster_size = case
    handle, space = make_fixture(OBJECTS, cluster_size)
    body = _TEST_FNS[test]
    benchmark.extra_info["paper_ms"] = PAPER_FIGURE5[test][cluster_size]
    benchmark.extra_info["test"] = test
    benchmark.extra_info["cluster_size"] = cluster_size or "NO-SWAP"
    benchmark.pedantic(
        lambda: body(handle, OBJECTS, space),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_figure5_shape(benchmark):
    """The figure's qualitative claims must hold on this machine."""
    config = Figure5Config(objects=OBJECTS, repeats=4)
    result = benchmark.pedantic(
        lambda: run_figure5(config), rounds=1, iterations=1
    )
    print()
    print(format_figure5_table(result))
    ok, notes = check_shape(result)
    for passed, note in notes:
        print(("PASS " if passed else "FAIL ") + note)
    failures = [note for passed, note in notes if not passed]
    assert ok, f"Figure 5 shape violated: {failures}"
