"""Binary wire-codec benchmark — framing vs canonical XML on the wire.

Runs the two codec scenarios (xml, binary) on identical mutating
hot-path workloads (every cycle dirties one member per cluster, so
every swap ships real payload), writes ``BENCH_codec.json``, and
asserts the issue's acceptance bar: at least a 2x reduction in
combined encode+decode *wall* time, with the binary path negotiated
on every ship and never falling back.

Run:  pytest benchmarks/test_codec.py --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.codec import CodecBenchConfig, format_table, run_codec_bench

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_codec.json"


def test_codec_wall_floor(benchmark):
    report = benchmark.pedantic(
        lambda: run_codec_bench(CodecBenchConfig.quick()),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(report))
    OUTPUT.write_text(report.to_json() + "\n", encoding="utf-8")

    xml = report.scenarios["xml"]
    binary = report.scenarios["binary"]

    # same amount of swapping everywhere: apples-to-apples
    assert xml.swap_outs == binary.swap_outs
    assert xml.encode_calls == binary.encode_calls

    # acceptance bar: >=2x cheaper combined encode+decode wall time
    assert report.encode_decode_wall_reduction >= 2.0
    # the smaller frames also shrink the simulated link bill
    assert report.link_bytes_reduction > 1.0
    assert report.link_seconds_reduction > 1.0

    # every binary swap-out negotiated and shipped frames; nothing fell
    # back to XML mid-run, and every swap-in verified a binary payload
    assert binary.codec_binary_ships == binary.swap_outs
    assert binary.codec_binary_fetches == binary.swap_outs
    assert binary.codec_fallbacks == 0

    # the honesty check: with the codec off nothing rides the binary path
    assert xml.codec_binary_ships == 0
    assert xml.codec_binary_fetches == 0
