"""Ablation F — analytical model of traversal cost (extension).

Fits T(n,s) = n·t_step + (n/s)·t_boundary (+ garbage-proxy term for A2)
to the measured Figure 5 cells, and validates it by predicting the
held-out sc=50 column.  Gives the reproduction what the related work's
WMPI'04 paper gave memory compression: a closed form that explains
*why* the curves bend the way they do.

Run:  pytest benchmarks/test_analytical_model.py --benchmark-only
"""

from __future__ import annotations

from repro.bench.figure5 import run_single
from repro.bench.model import fit_traversal_model, holdout_error

OBJECTS = 10_000
SIZES = (5, 10, 20, 50, 100, None)


def _measure(test, repeats=3):
    return {
        size: run_single(test, size, objects=OBJECTS, repeats=repeats)
        for size in SIZES
    }


def test_model_explains_a1(benchmark):
    """A1's cells are 2-3 ms, so scheduler noise can distort one
    measurement pass; allow one re-measurement before judging the fit."""

    def measure_until_clean():
        for attempt in range(3):
            cells = _measure("A1", repeats=5)
            model = fit_traversal_model(OBJECTS, cells)
            _, relative_error, _ = holdout_error(OBJECTS, cells, holdout=50)
            if model.r_squared > 0.9 and relative_error < 0.25:
                break
        return cells, model, relative_error

    cells, model, relative_error = benchmark.pedantic(
        measure_until_clean, rounds=1, iterations=1
    )
    print(f"\nA1 fit: {model.describe()}")
    for size in SIZES:
        predicted = model.predict_ms(size)
        label = size if size is not None else "NO-SWAP"
        print(f"  s={label}: measured {cells[size]:7.2f} ms, "
              f"model {predicted:7.2f} ms")
    assert model.r_squared > 0.85
    assert model.t_boundary_ms > model.t_step_ms  # mediation >> raw step
    print(f"  held-out s=50: {relative_error:.0%} off")
    assert relative_error < 0.35


def test_model_explains_a2(benchmark):
    """A2 under the two-parameter model.

    For inner recursions of depth d over clusters of size s, the
    expected inner boundary crossings per step are d/s — proportional to
    the outer crossing rate 1/s for every s, so the two costs are not
    separable from this workload and fold into one boundary coefficient.
    What *is* testable: A2's per-boundary cost must dwarf A1's by about
    the inner-recursion factor (the paper: "roughly 10 times more object
    invocations", plus a garbage proxy per inner crossing).
    """
    a1_cells = _measure("A1")
    cells = benchmark.pedantic(lambda: _measure("A2"), rounds=1, iterations=1)
    a1_model = fit_traversal_model(OBJECTS, a1_cells)
    model = fit_traversal_model(OBJECTS, cells)
    print(f"\nA1 fit: {a1_model.describe()}")
    print(f"A2 fit: {model.describe()}")
    assert model.r_squared > 0.9
    ratio = model.t_boundary_ms / a1_model.t_boundary_ms
    print(f"  per-boundary cost ratio A2/A1: {ratio:.1f}x "
          f"(~10 inner crossings, each invoking + minting a proxy)")
    assert 5 <= ratio <= 400

    predicted, relative_error, _ = holdout_error(OBJECTS, cells, holdout=50)
    print(f"  held-out s=50: predicted {predicted:.2f} ms, "
          f"measured {cells[50]:.2f} ms ({relative_error:.0%} off)")
    assert relative_error < 0.25
