"""§5 naive comparison — one proxy per object vs swap-clusters.

The paper argues the naive design (a permanent proxy on EVERY object,
every reference mediated) "could potentially double memory occupation
when fully-loaded", imposes "a higher performance penalty, due to
indirections", and keeps its proxies "even when all objects were
swapped".  This bench measures all three claims against the same
10000-object list used by Figure 5.

Run:  pytest benchmarks/test_naive_baseline.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.baselines.naive_proxy import NaiveRuntime
from repro.bench.workloads import build_list
from repro.core.space import Space
from repro.devices.store import InMemoryStore

OBJECTS = 10_000
CLUSTER_SIZE = 50


def _naive_runtime():
    runtime = NaiveRuntime(heap_capacity=16 << 20)
    runtime.attach_store(InMemoryStore("server"))
    handle = runtime.ingest(build_list(OBJECTS))
    return runtime, handle


def _swap_space():
    space = Space("bench", heap_capacity=16 << 20)
    space.manager.add_store(InMemoryStore("store"))
    space.manager.auto_swap = False
    handle = space.ingest(
        build_list(OBJECTS), cluster_size=CLUSTER_SIZE, root_name="h"
    )
    return space, handle


def _walk(handle):
    count = 0
    cursor = handle
    while cursor is not None:
        cursor = cursor.get_next()
        count += 1
    assert count == OBJECTS


def test_traversal_naive(benchmark):
    runtime, handle = _naive_runtime()
    benchmark.extra_info["mediation"] = "every edge"
    benchmark.pedantic(lambda: _walk(handle), rounds=3, iterations=1, warmup_rounds=1)


def test_traversal_swap_clusters(benchmark):
    space, handle = _swap_space()
    benchmark.extra_info["mediation"] = f"boundaries only (1/{CLUSTER_SIZE})"
    benchmark.pedantic(lambda: _walk(handle), rounds=3, iterations=1, warmup_rounds=1)


def test_traversal_raw(benchmark):
    head = build_list(OBJECTS)
    benchmark.pedantic(lambda: _walk(head), rounds=3, iterations=1, warmup_rounds=1)


def test_memory_comparison(benchmark):
    """Memory at full load and after a full swap-out, both designs."""

    def measure():
        runtime, _ = _naive_runtime()
        naive_loaded = runtime.heap.used
        runtime.swap_out_all()
        naive_after_swap = runtime.heap.used

        space, _ = _swap_space()
        swap_loaded = space.heap.used
        for sid, cluster in space.clusters().items():
            if cluster.swappable() and cluster.oids:
                space.manager.swap_out(sid)
        swap_after = space.heap.used
        return naive_loaded, naive_after_swap, swap_loaded, swap_after

    naive_loaded, naive_after, swap_loaded, swap_after = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    object_bytes = OBJECTS * 64
    print(f"\nmemory at full load:   naive={naive_loaded}  "
          f"swap-clusters={swap_loaded}  raw-objects={object_bytes}")
    print(f"memory after full swap: naive={naive_after}  "
          f"swap-clusters={swap_after}")

    # paper: naive roughly doubles memory when loaded (64-byte objects,
    # 48-byte proxies here)
    assert naive_loaded >= object_bytes * 1.5
    # swap-cluster proxies exist only at boundaries: tiny overhead
    assert swap_loaded <= object_bytes * 1.1
    # paper: naive proxies remain after swapping everything
    assert naive_after >= OBJECTS * 40
    # swap-clusters leave only replacement-objects
    assert swap_after < naive_after / 10
