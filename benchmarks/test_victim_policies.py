"""Ablation B — victim-selection policy under a skewed access trace.

The paper's proxies record "basic data w.r.t. recency and frequency";
this ablation shows why: under a Zipf-skewed working set with a heap that
holds ~60% of the data, recency/frequency-aware victim selection causes
far fewer reloads than footprint-only selection.

Run:  pytest benchmarks/test_victim_policies.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import build_record_clusters, zipf_indexes
from repro.core.space import Space
from repro.devices.store import InMemoryStore
from repro.policy.victims import make_selector

CLUSTERS = 30
RECORDS = 10
ACCESSES = 1_500

STRATEGIES = ("lru", "lfu", "largest", "smallest", "hybrid")


def _run_trace(strategy: str) -> int:
    space = Space("bench", heap_capacity=1 << 20)
    space.manager.add_store(InMemoryStore("store"))
    handles = build_record_clusters(
        space, cluster_count=CLUSTERS, records_per_cluster=RECORDS
    )
    # shrink effective capacity: keep ~60% of the working set resident by
    # swapping down to a fixed resident budget after every access burst
    space.manager.victim_selector = make_selector(strategy)
    resident_budget = int(space.heap.used * 0.6)

    trace = zipf_indexes(CLUSTERS, ACCESSES)
    for cluster_index in trace:
        handles[cluster_index].get_key()  # touch (reloads if swapped)
        while space.heap.used > resident_budget:
            victim = space.manager.victim_selector(space)
            if victim is None:
                break
            space.manager.swap_out(victim)
    space.verify_integrity()
    return space.manager.stats.swap_ins


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_trace_under_strategy(benchmark, strategy):
    reloads = benchmark.pedantic(
        lambda: _run_trace(strategy), rounds=1, iterations=1
    )
    benchmark.extra_info["reloads"] = reloads
    benchmark.extra_info["strategy"] = strategy


def test_recency_beats_size_only(benchmark):
    def measure():
        return {strategy: _run_trace(strategy) for strategy in STRATEGIES}

    reloads = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nreloads per strategy over a Zipf trace "
          f"({ACCESSES} accesses, {CLUSTERS} clusters, 60% resident):")
    for strategy, count in sorted(reloads.items(), key=lambda kv: kv[1]):
        print(f"  {strategy:<9} {count}")
    # the recency/frequency-aware policies must beat size-only selection
    assert reloads["lru"] < reloads["smallest"]
    assert reloads["hybrid"] < reloads["smallest"]
    assert min(reloads.values()) < reloads["smallest"] * 0.8
