"""Swap hot-path benchmark — clean-cluster fast path vs always-re-encode.

Runs the three hot-path scenarios (baseline, fastpath-clean,
fastpath-mutating) on identical workloads over the simulated 700 Kbps
Bluetooth link, writes ``BENCH_swap_hotpath.json``, and asserts the
issue's acceptance bar: at least a 2x reduction in simulated swap-out
cost *and* encoder invocations for unmodified clusters.

Run:  pytest benchmarks/test_swap_hotpath.py --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.hotpath import HotPathConfig, format_table, run_hotpath

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_swap_hotpath.json"


def test_swap_hotpath(benchmark):
    report = benchmark.pedantic(
        lambda: run_hotpath(HotPathConfig.quick()), rounds=1, iterations=1
    )
    print()
    print(format_table(report))
    OUTPUT.write_text(report.to_json() + "\n", encoding="utf-8")

    baseline = report.scenarios["baseline"]
    clean = report.scenarios["fastpath_clean"]
    mutating = report.scenarios["fastpath_mutating"]

    # same amount of swapping everywhere: the comparison is apples-to-apples
    assert baseline.swap_outs == clean.swap_outs == mutating.swap_outs

    # acceptance bar: >=2x cheaper simulated swap-out and >=2x fewer
    # encoder invocations for unmodified clusters
    assert report.swap_out_cost_reduction >= 2.0
    assert report.encode_call_reduction >= 2.0
    # the payload should leave the device rarely once clusters are clean
    assert report.link_bytes_reduction >= 2.0

    # after the first cycle every clean swap-out is a metadata-only no-op
    assert clean.fastpath_noops == clean.swap_outs - clean.encode_calls
    # every clean swap-in is served from the local payload cache
    assert clean.swapin_cache_hits == clean.swap_outs

    # the honesty check: mutation invalidates the fast path every cycle
    assert mutating.fastpath_noops == 0
    assert mutating.encode_calls == mutating.swap_outs
