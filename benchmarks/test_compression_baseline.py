"""Ablation C — heap compression vs swapping to a nearby device.

The related work (§6) frees memory by compressing victims in place: no
radio, but "additional CPU load and energy cost", and the compressed pool
"actually reduces the memory available to applications".  This bench
swaps the same victim set both ways and compares: net heap bytes freed,
CPU seconds (the energy proxy), and simulated radio seconds.

Run:  pytest benchmarks/test_compression_baseline.py --benchmark-only
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.compression import CompressedPoolStore
from repro.bench.workloads import build_list
from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice

OBJECTS = 3_000
CLUSTER_SIZE = 250


def _space(clock=None):
    space = Space("bench", heap_capacity=8 << 20, clock=clock or SimulatedClock())
    space.ingest(build_list(OBJECTS), cluster_size=CLUSTER_SIZE, root_name="h")
    return space


def _victims(space):
    return [
        sid for sid, cluster in space.clusters().items()
        if cluster.swappable() and cluster.oids
    ][: OBJECTS // CLUSTER_SIZE // 2]


def test_swap_to_device(benchmark):
    clock = SimulatedClock()
    space = _space(clock)
    store = XmlStoreDevice("pc", capacity=16 << 20, link=bluetooth_link(clock))
    space.manager.add_store(store)
    victims = _victims(space)
    used_before = space.heap.used

    def run():
        for sid in victims:
            if space.clusters()[sid].is_resident:
                space.manager.swap_out(sid, store=store)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["heap_freed"] = used_before - space.heap.used
    benchmark.extra_info["radio_seconds"] = round(clock.now(), 3)


def test_compress_in_place(benchmark):
    space = _space()
    pool = CompressedPoolStore(space)
    victims = _victims(space)
    used_before = space.heap.used

    def run():
        for sid in victims:
            if space.clusters()[sid].is_resident:
                space.manager.swap_out(sid, store=pool)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["heap_freed"] = used_before - space.heap.used
    benchmark.extra_info["cpu_seconds"] = round(pool.stats.cpu_seconds, 4)


def test_tradeoff_comparison(benchmark):
    def measure():
        # device path
        clock = SimulatedClock()
        device_space = _space(clock)
        store = XmlStoreDevice("pc", capacity=16 << 20, link=bluetooth_link(clock))
        device_space.manager.add_store(store)
        before = device_space.heap.used
        cpu_start = time.perf_counter()
        for sid in _victims(device_space):
            device_space.manager.swap_out(sid, store=store)
        device = {
            "freed": before - device_space.heap.used,
            "cpu": time.perf_counter() - cpu_start,
            "radio": clock.now(),
        }

        # compression path
        pool_space = _space()
        pool = CompressedPoolStore(pool_space)
        before = pool_space.heap.used
        cpu_start = time.perf_counter()
        for sid in _victims(pool_space):
            pool_space.manager.swap_out(sid, store=pool)
        compression = {
            "freed": before - pool_space.heap.used,
            "cpu": time.perf_counter() - cpu_start,
            "radio": 0.0,
            "pool_bytes": pool.pool_used,
        }
        return device, compression

    device, compression = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nswap-to-device:  freed={device['freed']}B "
          f"cpu={device['cpu']*1000:.1f}ms radio={device['radio']:.2f}s")
    print(f"compress-local:  freed={compression['freed']}B "
          f"cpu={compression['cpu']*1000:.1f}ms radio=0s "
          f"(pool holds {compression['pool_bytes']}B of heap)")

    # energy view (PDA-class power model, repro.sim.energy)
    from repro.sim.energy import EnergyLedger, PDA_ENERGY

    device_energy = EnergyLedger(model=PDA_ENERGY)
    device_energy.charge_cpu(device["cpu"])
    device_energy.charge_radio_tx(device["radio"])
    compression_energy = EnergyLedger(model=PDA_ENERGY)
    compression_energy.charge_cpu(compression["cpu"])
    print(f"energy, swap:     {device_energy.describe()} "
          f"-> {device_energy.millijoules_per_kb(device['freed']):.1f} mJ/KB freed")
    print(f"energy, compress: {compression_energy.describe()} "
          f"-> {compression_energy.millijoules_per_kb(compression['freed']):.1f} mJ/KB freed")

    # swapping frees the full cluster footprint; compression keeps the
    # compressed copy in the SAME heap, so it frees strictly less
    assert device["freed"] > compression["freed"]
    # compression needs no radio at all; swapping pays Bluetooth time
    assert device["radio"] > 0 and compression["radio"] == 0
    # the full trade made explicit: every joule compression spends is CPU
    # (the paper's energy complaint), while most of swapping's energy is
    # the radio, which also buys the full memory release
    assert compression_energy.radio_joules == 0
    assert device_energy.radio_joules > device_energy.cpu_joules
