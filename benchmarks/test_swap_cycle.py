"""Ablation A — swap-out/swap-in cost vs swap-cluster size.

Not in the paper (its evaluation fixes the transfer path and measures
traversal overhead); this ablation completes the picture: what one swap
cycle costs, in CPU (serialize + detach + patch) and on the simulated
700 Kbps Bluetooth link, as the swap unit grows.  The trade the paper
describes — bigger clusters amortize proxies but move more data per
fault — becomes measurable.

Run:  pytest benchmarks/test_swap_cycle.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import build_list
from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice

OBJECTS = 2_000

CLUSTER_SIZES = (20, 50, 100, 500)


def _fixture(cluster_size):
    clock = SimulatedClock()
    space = Space("bench", heap_capacity=8 << 20, clock=clock)
    store = XmlStoreDevice(
        "nearby", capacity=8 << 20, link=bluetooth_link(clock)
    )
    space.manager.add_store(store)
    handle = space.ingest(
        build_list(OBJECTS), cluster_size=cluster_size, root_name="h"
    )
    return space, clock


@pytest.mark.parametrize("cluster_size", CLUSTER_SIZES)
def test_swap_cycle_cpu(benchmark, cluster_size):
    """Wall-clock CPU cost of one full swap-out + swap-in of sc-2."""
    space, clock = _fixture(cluster_size)

    def cycle():
        space.manager.swap_out(2)
        space.manager.swap_in(2)

    benchmark.extra_info["cluster_size"] = cluster_size
    benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1)


def test_swap_cycle_radio_time(benchmark):
    """Simulated Bluetooth seconds per swap cycle, per cluster size."""

    def measure():
        series = {}
        for cluster_size in CLUSTER_SIZES:
            space, clock = _fixture(cluster_size)
            before = clock.now()
            location = space.manager.swap_out(2)
            out_time = clock.now() - before
            before = clock.now()
            space.manager.swap_in(2)
            in_time = clock.now() - before
            series[cluster_size] = (location.xml_bytes, out_time, in_time)
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\ncluster_size  xml_bytes  swap_out_s  swap_in_s  (700 Kbps link)")
    for cluster_size, (xml_bytes, out_time, in_time) in series.items():
        print(f"{cluster_size:>12}  {xml_bytes:>9}  {out_time:>10.3f}  {in_time:>9.3f}")

    # radio time grows ~linearly with the swap unit
    assert series[500][1] > series[20][1] * 5
    # per-object radio cost is roughly flat (the payload dominates latency)
    per_object_small = series[20][1] / 20
    per_object_large = series[500][1] / 500
    assert per_object_large < per_object_small  # latency amortized
