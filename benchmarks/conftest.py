"""Benchmark-suite helpers."""

from __future__ import annotations

import pytest


def pedantic(benchmark, fn, rounds: int = 3):
    """Run ``fn`` under pytest-benchmark with a small, fixed round count
    (the workloads are tens of milliseconds; calibration is wasteful)."""
    return benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=1)
