"""Store churn: detach/rejoin protocol and placement recovery."""

from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.events import (
    ClusterUnderReplicatedEvent,
    StoreDetachedEvent,
    StoreRejoinedEvent,
)
from repro.faults import ChurnEvent, ChurnInjector, ChurnPlan, FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig
from tests.helpers import build_chain, chain_values


def _space(n_stores=4, factor=3):
    space = Space("churn", heap_capacity=1 << 20)
    stores = [InMemoryStore(f"s{i}") for i in range(n_stores)]
    for store in stores:
        space.manager.add_store(store)
    space.manager.enable_resilience(ResilienceConfig(replication_factor=factor))
    return space, stores


def _swap_out_all(space):
    sids = [sid for sid in sorted(space.clusters()) if sid != 0]
    for sid in sids:
        if space.clusters()[sid].swappable():
            space.swap_out(sid)
    return sids


def test_detach_dead_store_loses_its_replicas():
    space, stores = _space()
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    record = space.manager.resilience.placement.get(sid)
    dead_id = sorted(record.active())[0]
    dead = next(s for s in stores if s.device_id == dead_id)

    affected = space.manager.detach_store(dead, dead=True)
    assert affected == [sid]
    record = space.manager.resilience.placement.get(sid)
    assert dead_id not in record.replicas
    assert all(h.device_id != dead_id for h in space.manager.bindings_for(sid))
    event = space.bus.last(StoreDetachedEvent)
    assert event.device_id == dead_id and event.dead is True
    under = space.bus.last(ClusterUnderReplicatedEvent)
    assert under is not None and under.sid == sid and under.live_replicas == 2


def test_detach_departed_store_marks_replicas_suspect():
    space, stores = _space()
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    record = space.manager.resilience.placement.get(sid)
    away_id = sorted(record.active())[0]
    away = next(s for s in stores if s.device_id == away_id)

    space.manager.detach_store(away, dead=False)
    record = space.manager.resilience.placement.get(sid)
    assert record.suspects() == [away_id]  # the copy may still exist
    event = space.bus.last(StoreDetachedEvent)
    assert event.dead is False


def test_attach_store_rejoins_and_closes_its_circuit():
    space, stores = _space()
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    _swap_out_all(space)
    away = stores[0]
    space.manager.detach_store(away, dead=False)
    space.manager.attach_store(away)
    assert away in space.manager.available_stores()
    assert space.manager.resilience.admits(away.device_id)
    assert space.bus.last(StoreRejoinedEvent).device_id == away.device_id


def test_full_cycle_detach_scrub_rejoin_traverse():
    space, stores = _space(n_stores=5, factor=3)
    handle = space.ingest(build_chain(30), cluster_size=10, root_name="h")
    sids = _swap_out_all(space)

    for store in stores[:2]:
        space.manager.detach_store(store, dead=True)
    space.manager.resilience.scrubber.run_until_stable()
    placement = space.manager.resilience.placement
    for sid in sids:
        record = placement.get(sid)
        assert record.live_count >= 3
        assert all(d not in record.replicas for d in ("s0", "s1"))

    assert chain_values(handle) == list(range(30))
    space.verify_integrity()


def test_recover_placement_rebuilds_from_journal_and_inventory():
    space, stores = _space(n_stores=3, factor=2)
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    sids = _swap_out_all(space)

    # a crash forgets the in-memory map and bindings
    space.manager.resilience.placement._records.clear()
    space.manager._bindings.clear()

    rebuilt = space.manager.recover_placement()
    assert rebuilt == len(sids)
    assert space.manager.stats.placement_recoveries == len(sids)
    for sid in sids:
        record = space.manager.resilience.placement.get(sid)
        assert record is not None and record.live_count == 2
        assert record.digest  # integrity metadata survived via the journal
        assert len(space.manager.bindings_for(sid)) == 2
    assert chain_values(handle) == list(range(20))
    space.verify_integrity()


def test_recover_placement_marks_departed_journal_writes_suspect():
    space, stores = _space(n_stores=3, factor=2)
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    record = space.manager.resilience.placement.get(sid)
    gone_id = sorted(record.active())[0]
    gone = next(s for s in stores if s.device_id == gone_id)

    space.manager.remove_store(gone)  # silently unreachable at recovery
    space.manager.resilience.placement._records.clear()
    space.manager._bindings.clear()

    assert space.manager.recover_placement() == 1
    record = space.manager.resilience.placement.get(sid)
    # the journal names the departed store, the inventory cannot confirm
    assert record.replicas[gone_id].value == "suspect"
    assert record.live_count == 1


def test_churn_injector_replays_its_schedule_in_order():
    space = Space("churn-plan", heap_capacity=1 << 20)
    injector = FaultInjector(FaultPlan.empty(), clock=space.clock)
    stores = {
        f"s{i}": FlakyStore(InMemoryStore(f"s{i}"), injector) for i in range(2)
    }
    plan = ChurnPlan(
        events=(
            ChurnEvent(at_s=20.0, device_id="s0", action="revive"),
            ChurnEvent(at_s=5.0, device_id="s0", action="kill"),
            ChurnEvent(at_s=5.0, device_id="ghost", action="kill"),  # unknown
        )
    )
    churn = ChurnInjector(plan, space.clock)
    assert churn.apply(stores) == []  # t=0: nothing due

    space.clock.advance(6.0)
    fired = churn.apply(stores)
    assert [e.device_id for e in fired] == ["ghost", "s0"] or [
        e.device_id for e in fired
    ] == ["s0", "ghost"]
    assert stores["s0"].is_dead

    space.clock.advance(20.0)
    churn.apply(stores)
    assert not stores["s0"].is_dead
    assert churn.exhausted
    assert len(churn.fired) == 3
