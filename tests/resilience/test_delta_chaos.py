"""Chaos: delta chains under replica death, loss, and repair.

The issue's acceptance scenario: killing a delta-lagged replica
mid-chain must lose no data — the swap pipeline falls back to full
ships for the broken replica and the scrubber re-replicates until the
replication factor is restored.
"""

from repro.core.fastpath import FastPathConfig
from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig
from tests.helpers import build_chain, chain_values


def _chaos_space(n_stores=4, factor=3):
    space = Space("chaos", heap_capacity=1 << 20)
    injector = FaultInjector(FaultPlan.empty(), clock=space.clock)
    stores = [
        FlakyStore(InMemoryStore(f"s{i}"), injector) for i in range(n_stores)
    ]
    for store in stores:
        space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(replication_factor=factor)
    )
    space.manager.enable_fastpath(
        FastPathConfig(delta=True, delta_max_ratio=8.0)
    )
    return space, stores


def _mutate(space, sid, bump=100):
    cluster = space.clusters()[sid]
    oid = sorted(cluster.oids)[0]
    node = space._objects[oid]
    node.value = node.value + bump


def _holder_of(space, stores, sid):
    record = space.manager.resilience.placement.get(sid)
    victim_id = sorted(record.active())[0]
    return next(s for s in stores if s.device_id == victim_id)


def test_killing_a_replica_mid_chain_loses_no_data_and_scrub_restores_rf():
    space, stores = _chaos_space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.swap_in(2)
    _mutate(space, 2)
    space.swap_out(2)
    assert space.manager.stats.fastpath_delta_ships == 1
    victim = _holder_of(space, stores, 2)  # records exist while swapped
    space.swap_in(2)

    victim.kill(lose_data=True)  # the device is gone, chain and all

    _mutate(space, 2)
    space.swap_out(2)  # delta ships to the survivors; the dead one skips
    record = space.manager.resilience.placement.get(2)
    assert victim.device_id not in record.active()
    assert len(record.active()) == 2  # under-replicated, not lost

    space.swap_in(2)  # no data loss: both mutations are there
    assert sorted(v % 100 for v in chain_values(handle)) == list(range(10))
    assert max(chain_values(handle)) >= 200

    _mutate(space, 2)
    space.swap_out(2)
    space.manager.resilience.scrubber.run_until_stable()
    record = space.manager.resilience.placement.get(2)
    assert record.live_count >= 3  # the spare store took the third copy
    assert victim.device_id not in record.active()

    space.swap_in(2)
    assert max(chain_values(handle)) >= 300
    space.verify_integrity()


def test_revived_empty_replica_gets_a_full_ship_fallback():
    space, stores = _chaos_space(n_stores=3)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.swap_in(2)
    _mutate(space, 2)
    space.swap_out(2)
    victim = _holder_of(space, stores, 2)
    space.swap_in(2)

    victim.kill(lose_data=True)
    victim.revive()  # back online, but with an empty store: no chain base

    _mutate(space, 2)
    space.swap_out(2)

    stats = space.manager.stats
    # the survivors took the delta; the amnesiac replica got the full
    # payload instead of an unappliable delta
    assert stats.fastpath_delta_fallbacks == 1
    record = space.manager.resilience.placement.get(2)
    assert len(record.active()) == 3  # replication factor restored inline
    tip_key = record.key
    assert victim.contains(tip_key)
    assert victim.digest(tip_key) == record.digest  # and the copy is whole

    space.swap_in(2)
    assert max(chain_values(handle)) >= 200
    space.verify_integrity()


def test_delta_journal_entries_commit_with_their_base_epoch():
    space, _stores = _chaos_space(n_stores=3)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.swap_in(2)
    _mutate(space, 2)
    space.swap_out(2)

    entries = [
        entry
        for entry in space.manager.resilience.journal.history()
        if entry.delta
    ]
    assert len(entries) == 1
    (entry,) = entries
    assert entry.base_epoch is not None
    assert entry.base_epoch < entry.epoch
    # the entry describes the APPLIED document, so journal recovery can
    # verify replicas without delta-awareness
    assert entry.digest and entry.xml_bytes > 0
