"""Circuit breaker: failing stores are evicted, then re-admitted."""

import pytest

from repro.devices import InMemoryStore, XmlStoreDevice
from repro.comm.transport import SimulatedLink
from repro.errors import NoSwapDeviceError, TransportError
from repro.events import CircuitClosedEvent, CircuitOpenEvent
from repro.resilience import (
    CircuitState,
    ResilienceConfig,
    RetryPolicy,
    StoreHealth,
)
from tests.helpers import build_chain, chain_values, make_space


def test_store_health_state_machine():
    health = StoreHealth("pc", failure_threshold=3, cooldown_s=10.0)
    assert health.admits(now=0.0)
    assert not health.record_failure(now=0.0)
    assert not health.record_failure(now=1.0)
    assert health.record_failure(now=2.0)  # third strike opens
    assert health.state is CircuitState.OPEN
    assert not health.admits(now=2.0)
    assert not health.admits(now=11.9)
    # cool-down elapsed: half-open, one probe allowed
    assert health.admits(now=12.0)
    assert health.state is CircuitState.HALF_OPEN
    # a half-open failure re-opens immediately (no fresh streak needed)
    assert health.record_failure(now=12.5)
    assert health.state is CircuitState.OPEN
    assert not health.admits(now=13.0)
    assert health.admits(now=22.5)
    assert health.record_success()  # the probe worked: closed again
    assert health.state is CircuitState.CLOSED
    assert health.admits(now=22.5)
    assert health.opens == 2


def _flaky_world():
    space = make_space(with_store=False)
    link = SimulatedLink(700_000, latency_s=0.01, clock=space.clock, name="l")
    store = XmlStoreDevice("nearby", capacity=1 << 20, link=link)
    space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, base_delay_s=0.1, jitter=0.0),
            failure_threshold=3,
            cooldown_s=30.0,
            degrade_to_local=False,
        )
    )
    return space, store, link


def test_circuit_opens_after_repeated_probe_failures_and_readmits():
    space, store, link = _flaky_world()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    link.fail()
    # three failed selection probes open the circuit
    for _ in range(3):
        with pytest.raises(NoSwapDeviceError):
            space.swap_out(2)
    assert space.manager.stats.circuit_opens == 1
    assert space.bus.count(CircuitOpenEvent) == 1
    # the store is evicted from selection entirely (no probe at all)
    assert space.manager.available_stores() == []
    # the peer comes back, but the circuit stays open until cool-down
    link.restore()
    assert space.manager.available_stores() == []
    # cool-down elapses: half-open probe is allowed and the swap works
    space.clock.advance(30.0)
    assert space.manager.available_stores() == [store]
    space.swap_out(2)
    assert space.clusters()[2].is_swapped
    assert space.manager.stats.circuit_closes == 1
    assert space.bus.count(CircuitClosedEvent) == 1


def test_half_open_failure_reopens_for_another_cooldown():
    space, store, link = _flaky_world()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    link.fail()
    for _ in range(3):
        with pytest.raises(NoSwapDeviceError):
            space.swap_out(2)
    space.clock.advance(30.0)
    # still down at the half-open probe: re-opened on the spot
    with pytest.raises(NoSwapDeviceError):
        space.swap_out(2)
    assert space.manager.stats.circuit_opens == 2
    assert space.manager.available_stores() == []
    link.restore()
    space.clock.advance(30.0)
    space.swap_out(2)
    assert space.clusters()[2].is_swapped


def test_failover_to_healthy_mirror_on_swap_in():
    space = make_space(with_store=False)
    first = InMemoryStore("first")
    second = InMemoryStore("second")
    space.manager.add_store(first)
    space.manager.add_store(second)
    space.manager.replication_factor = 2
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.05, jitter=0.0)
        )
    )
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert len(space.manager.bindings_for(2)) == 2
    # the primary holder loses the payload entirely
    first._data.clear()
    assert chain_values(handle) == list(range(10))
    assert space.manager.stats.mirror_failovers == 1
