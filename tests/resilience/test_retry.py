"""Retry/backoff timing: simulated seconds, never wall seconds."""

import random
import time

import pytest

from repro.clock import SimulatedClock
from repro.devices import InMemoryStore
from repro.errors import (
    RetryExhaustedError,
    StoreFullError,
    TransportError,
)
from repro.events import SwapRetryEvent
from repro.resilience import ResilienceConfig, RetryPolicy, run_with_retry
from tests.helpers import build_chain, chain_values, make_space


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, exc: Exception = None) -> None:
        self.remaining = failures
        self.calls = 0
        self.exc = exc if exc is not None else TransportError("injected")

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc
        return "ok"


def test_backoff_charged_to_simulated_clock_not_wall_time():
    clock = SimulatedClock()
    policy = RetryPolicy(
        max_attempts=4, base_delay_s=10.0, multiplier=2.0, max_delay_s=100.0,
        jitter=0.0, deadline_s=None,
    )
    flaky = Flaky(3)
    started_wall = time.perf_counter()
    result = run_with_retry(flaky, policy=policy, clock=clock)
    elapsed_wall = time.perf_counter() - started_wall
    assert result == "ok"
    assert flaky.calls == 4
    # 10 + 20 + 40 simulated seconds of backoff...
    assert clock.now() == pytest.approx(70.0)
    # ...in (much) less than one wall second
    assert elapsed_wall < 1.0


def test_exhaustion_chains_the_last_failure():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
    flaky = Flaky(99)
    with pytest.raises(RetryExhaustedError) as excinfo:
        run_with_retry(flaky, policy=policy, clock=clock)
    assert flaky.calls == 3
    assert isinstance(excinfo.value.__cause__, TransportError)
    # two backoffs happened before giving up
    assert clock.now() == pytest.approx(0.1 + 0.2)


def test_deadline_is_honored():
    clock = SimulatedClock()
    policy = RetryPolicy(
        max_attempts=10, base_delay_s=4.0, multiplier=2.0, jitter=0.0,
        deadline_s=5.0,
    )
    flaky = Flaky(99)
    with pytest.raises(RetryExhaustedError) as excinfo:
        run_with_retry(flaky, policy=policy, clock=clock)
    assert "deadline" in str(excinfo.value)
    # first backoff (4s) fit the 5s deadline; the second (8s) would not
    assert flaky.calls == 2
    assert clock.now() == pytest.approx(4.0)


def test_non_retryable_errors_propagate_immediately():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=5, base_delay_s=1.0, jitter=0.0)
    flaky = Flaky(99, exc=StoreFullError("permanently full"))
    with pytest.raises(StoreFullError):
        run_with_retry(flaky, policy=policy, clock=clock)
    assert flaky.calls == 1
    assert clock.now() == 0.0  # no backoff for a permanent refusal


def test_jitter_is_deterministic_under_a_seed():
    policy = RetryPolicy(jitter=0.5)
    delays_a = [policy.delay_for(n, random.Random(7)) for n in range(1, 5)]
    delays_b = [policy.delay_for(n, random.Random(7)) for n in range(1, 5)]
    assert delays_a == delays_b
    nominal = [policy.delay_for(n, None) for n in range(1, 5)]
    assert delays_a != nominal  # jitter actually moved the delays


class CountingStore(InMemoryStore):
    """A store whose ``store()`` fails the first N times."""

    def __init__(self, device_id: str, failures: int) -> None:
        super().__init__(device_id)
        self.failures = failures
        self.store_calls = 0

    def store(self, key: str, xml_text: str) -> None:
        self.store_calls += 1
        if self.store_calls <= self.failures:
            raise TransportError(f"{self.device_id}: transient blip")
        super().store(key, xml_text)


def test_manager_retries_transient_store_failures():
    space = make_space(with_store=False)
    store = CountingStore("blippy", failures=2)
    space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.1, jitter=0.0)
        )
    )
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert space.clusters()[2].is_swapped
    assert store.store_calls == 3
    assert space.manager.stats.retries == 2
    assert space.bus.count(SwapRetryEvent) == 2
    # both backoffs (0.1 + 0.2) were charged to the space's clock
    assert space.clock.now() == pytest.approx(0.1 + 0.2)
    assert chain_values(handle) == list(range(10))
