"""Store churn while delta chains are in flight.

``detach_store`` / ``attach_store`` arrive between a chain's base ship
and its next delta: the manager must not delta-ship against a base the
neighborhood no longer holds.  Losing the base mid-chain falls back to
a full payload on a surviving store, and the placement ledger stays
consistent with what the devices actually hold throughout.
"""

from repro.core.fastpath import FastPathConfig
from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig
from tests.helpers import build_chain, chain_values


def _space(n_stores=3, factor=1):
    space = Space("chain-churn", heap_capacity=1 << 20)
    injector = FaultInjector(FaultPlan.empty(), clock=space.clock)
    stores = [
        FlakyStore(InMemoryStore(f"s{i}"), injector) for i in range(n_stores)
    ]
    for store in stores:
        space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(replication_factor=factor)
    )
    space.manager.enable_fastpath(
        FastPathConfig(delta=True, delta_max_ratio=8.0)
    )
    return space, stores


def _mutate(space, sid, bump=100):
    cluster = space.clusters()[sid]
    oid = sorted(cluster.oids)[0]
    space._objects[oid].value += bump


def _start_chain(space, sid):
    """Base ship + one delta: the chain is now genuinely in flight."""
    space.swap_out(sid)
    space.swap_in(sid)
    _mutate(space, sid)
    space.swap_out(sid)
    assert space.manager.stats.fastpath_delta_ships == 1
    space.swap_in(sid)


def _base_holder(space, stores, sid):
    # the cluster is resident (chain in flight): the store expected to
    # hold the chain tip is the fast path's retained holder
    _key, retained = space.manager.fastpath.retained[sid]
    return retained[0]


def test_detaching_the_base_holder_mid_chain_forces_a_full_ship():
    space, stores = _space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    holder = _base_holder(space, stores, 2)

    space.manager.detach_store(holder, dead=True)

    _mutate(space, 2)
    space.swap_out(2)
    # no surviving store holds the chain tip: the delta path must not
    # apply — the payload went out whole, to a different device
    assert space.manager.stats.fastpath_delta_ships == 1
    record = space.manager.resilience.placement.get(2)
    assert holder.device_id not in record.active()
    assert record.live_count == 1

    space.swap_in(2)  # both mutations survived the churn
    assert sorted(v % 100 for v in chain_values(handle)) == list(range(10))
    assert max(chain_values(handle)) >= 200
    space.verify_integrity()


def test_planned_departure_mid_chain_marks_suspect_and_reships_full():
    space, stores = _space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    holder = _base_holder(space, stores, 2)

    space.manager.detach_store(holder, dead=False)

    placement = space.manager.resilience.placement
    _mutate(space, 2)
    space.swap_out(2)
    assert space.manager.stats.fastpath_delta_ships == 1  # full, not delta
    record = placement.get(2)
    assert record.live_count >= 1
    assert all(device != holder.device_id for device in record.active())
    space.swap_in(2)
    space.verify_integrity()


def test_rejoin_after_departure_does_not_resurrect_the_stale_base():
    space, stores = _space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    holder = _base_holder(space, stores, 2)

    space.manager.detach_store(holder, dead=False)
    _mutate(space, 2)
    space.swap_out(2)  # full ship to a survivor while the holder is away
    space.swap_in(2)

    space.manager.attach_store(holder)  # the device walks back in

    # the rejoined store's copy is one epoch behind; the ledger must not
    # route the next swap-in (or a delta) through it blindly
    _mutate(space, 2)
    space.swap_out(2)
    space.swap_in(2)
    assert max(chain_values(handle)) >= 300
    assert sorted(v % 100 for v in chain_values(handle)) == list(range(10))
    space.verify_integrity()


def test_chain_survives_losing_every_holder_but_one_with_mirrors():
    space, stores = _space(n_stores=4, factor=3)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)

    _key, retained = space.manager.fastpath.retained[2]
    for gone in retained[1:]:
        space.manager.detach_store(gone, dead=True)

    _mutate(space, 2)
    space.swap_out(2)
    record = space.manager.resilience.placement.get(2)
    assert record.live_count >= 1
    space.swap_in(2)
    assert max(chain_values(handle)) >= 200
    space.verify_integrity()


def test_ledger_applied_epochs_track_full_fallback_after_churn():
    space, stores = _space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    holder = _base_holder(space, stores, 2)
    space.manager.detach_store(holder, dead=True)

    _mutate(space, 2)
    space.swap_out(2)
    record = space.manager.resilience.placement.get(2)
    cluster = space.clusters()[2]
    for device_id in record.active():
        # every live copy the ledger claims must sit at the new epoch —
        # a stale applied_epoch would invite a delta against a base the
        # fleet no longer agrees on
        assert record.applied_epochs[device_id] == cluster.epoch
    space.swap_in(2)
    space.verify_integrity()
