"""The background scrubber: verification, repair, orphan collection."""

from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.events import ReplicaCorruptEvent, ScrubCompletedEvent
from repro.faults import FaultInjector, FaultPlan, FlakyStore, mangle_payload
from repro.resilience import ResilienceConfig
from tests.helpers import build_chain, chain_values


class CountingStore(InMemoryStore):
    """An InMemoryStore that counts payload fetches and probes."""

    def __init__(self, device_id):
        super().__init__(device_id)
        self.fetches = 0
        self.digest_probes = 0
        self.contains_probes = 0

    def fetch(self, key):
        self.fetches += 1
        return super().fetch(key)

    def digest(self, key):
        self.digest_probes += 1
        return super().digest(key)

    def contains(self, key):
        self.contains_probes += 1
        return super().contains(key)


class LegacyStore(InMemoryStore):
    """No ``digest`` (and no ``contains``): the paper's truly dumb store."""

    digest = property()  # type: ignore[assignment]
    contains = property()  # type: ignore[assignment]

    def __init__(self, device_id):
        super().__init__(device_id)
        self.fetches = 0

    def fetch(self, key):
        self.fetches += 1
        return super().fetch(key)


def _space(n_stores=3, factor=3, store_cls=InMemoryStore, **config):
    space = Space("scrub", heap_capacity=1 << 20)
    stores = [store_cls(f"s{i}") for i in range(n_stores)]
    for store in stores:
        space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(replication_factor=factor, **config)
    )
    return space, stores


def _swap_out_all(space):
    sids = [sid for sid in sorted(space.clusters()) if sid != 0]
    for sid in sids:
        if space.clusters()[sid].swappable():
            space.swap_out(sid)
    return sids


def test_tick_honors_the_scrub_interval():
    space, _ = _space(scrub_interval_s=30.0)
    scrubber = space.manager.resilience.scrubber
    assert scrubber.tick() is not None  # first pass always due
    assert scrubber.tick() is None  # no simulated time has passed
    space.clock.advance(31.0)
    assert scrubber.tick() is not None
    assert space.manager.stats.scrub_ticks == 2


def test_scrub_emits_a_completion_event():
    space, _ = _space()
    space.manager.resilience.scrubber.tick(force=True)
    event = space.bus.last(ScrubCompletedEvent)
    assert event is not None and event.space == "scrub"


def test_digest_sampling_quarantines_and_repairs_at_rest_rot():
    space, stores = _space(n_stores=4, factor=3)
    handle = space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    record = space.manager.resilience.placement.get(sid)
    victim_id = sorted(record.active())[0]
    victim = next(s for s in stores if s.device_id == victim_id)
    victim._data[record.key] = mangle_payload(victim._data[record.key])

    space.manager.resilience.scrubber.run_until_stable()
    record = space.manager.resilience.placement.get(sid)
    # the rotted copy was quarantined, dropped, and replaced
    assert space.manager.stats.replicas_quarantined == 1
    assert space.manager.stats.replicas_repaired >= 1
    assert record.live_count >= 3
    assert not record.quarantined()
    # whatever the victim holds now (possibly a repaired copy), it is intact
    if record.key in victim._data:
        assert victim.digest(record.key) == record.digest
    event = space.bus.last(ReplicaCorruptEvent)
    assert event.source == "scrub" and event.device_id == victim_id
    assert chain_values(handle) == list(range(10))
    space.verify_integrity()


def test_scrub_prefers_the_digest_probe_over_fetching():
    space, stores = _space(n_stores=3, factor=3, store_cls=CountingStore)
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    _swap_out_all(space)
    for store in stores:
        store.fetches = 0
    space.manager.resilience.scrubber.tick(force=True)
    assert sum(s.digest_probes for s in stores) > 0
    assert sum(s.fetches for s in stores) == 0  # integrity checked by probe


def test_legacy_stores_fall_back_to_fetch_and_verify():
    space, stores = _space(n_stores=3, factor=3, store_cls=LegacyStore)
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    _swap_out_all(space)
    for store in stores:
        store.fetches = 0
    report = space.manager.resilience.scrubber.tick(force=True)
    assert report.verified == 1
    assert sum(s.fetches for s in stores) > 0


def test_orphan_collection_drops_unreferenced_keys_only():
    space, stores = _space(n_stores=3, factor=2)
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    live_key = space.manager.resilience.placement.get(sid).key
    stores[0].store("scrub/sc-99/e1", "<orphan/>")  # a failed drop left this
    stores[0].store("other-space/sc-1/e1", "<foreign/>")  # not ours

    report = space.manager.resilience.scrubber.tick(force=True)
    assert report.orphans_dropped == 1
    assert space.manager.stats.orphans_collected == 1
    assert "scrub/sc-99/e1" not in stores[0]._data
    assert "other-space/sc-1/e1" in stores[0]._data  # never touch other spaces
    assert live_key in stores[0]._data or live_key in stores[1]._data


def test_orphan_collection_respects_keep_swapped_copies():
    space, stores = _space(n_stores=2, factor=1)
    space.manager.keep_swapped_copies = True
    stores[0].store("scrub/sc-99/e1", "<setaside/>")
    report = space.manager.resilience.scrubber.tick(force=True)
    assert report.orphans_dropped == 0
    assert "scrub/sc-99/e1" in stores[0]._data


def test_under_replication_from_store_death_is_repaired():
    space, stores = _space(n_stores=4, factor=3)
    handle = space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    record = space.manager.resilience.placement.get(sid)
    dead_id = sorted(record.active())[0]
    dead = next(s for s in stores if s.device_id == dead_id)
    space.manager.detach_store(dead, dead=True)
    assert space.manager.resilience.placement.get(sid).live_count == 2

    space.manager.resilience.scrubber.run_until_stable()
    record = space.manager.resilience.placement.get(sid)
    assert record.live_count == 3
    assert dead_id not in record.replicas
    assert chain_values(handle) == list(range(10))


def test_clean_noop_swap_out_refreshes_verification():
    """Satellite regression: after a metadata-only clean swap-out the
    scrubber must not re-fetch (or even re-probe) the unmodified
    cluster — the ``contains`` probes of the fast path already
    re-verified it and bumped the verified epoch."""
    space, stores = _space(
        n_stores=3, factor=2, store_cls=CountingStore,
        reverify_interval_s=600.0,
    )
    space.manager.enable_fastpath()
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    space.swap_in(sid)  # no mutation: the cluster stays clean

    space.swap_out(sid)  # clean: metadata-only no-op
    assert space.manager.stats.fastpath_noops == 1
    record = space.manager.resilience.placement.get(sid)
    assert record.verified_epoch == record.epoch

    for store in stores:
        store.fetches = store.digest_probes = 0
    report = space.manager.resilience.scrubber.tick(force=True)
    assert report.verified == 0  # nothing was stale enough to sample
    assert sum(s.fetches for s in stores) == 0
    assert sum(s.digest_probes for s in stores) == 0

    # once the re-verify interval passes, sampling resumes
    space.clock.advance(601.0)
    space.manager.resilience.scrubber.tick(force=True)
    assert sum(s.digest_probes for s in stores) > 0


def test_suspect_replicas_reverify_without_reshipping():
    """A store that departs and rejoins gets its copies re-verified via
    probes — re-activation must not cost a payload re-ship."""
    space, stores = _space(n_stores=3, factor=3, store_cls=CountingStore)
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = _swap_out_all(space)
    suspect = stores[0]
    space.manager.detach_store(suspect, dead=False)
    assert space.manager.resilience.placement.get(sid).suspects() == [
        suspect.device_id
    ]

    shipped_before = space.manager.stats.bytes_shipped
    space.manager.attach_store(suspect)
    report = space.manager.resilience.scrubber.run_until_stable()
    record = space.manager.resilience.placement.get(sid)
    assert suspect.device_id in record.active()
    assert report.repaired_bytes == 0
    assert space.manager.stats.bytes_shipped == shipped_before
    assert space.manager.resilience.placement.stats.reactivations >= 1


def test_fault_plan_at_rest_corruption_is_caught_by_scrub():
    space = Space("rot", heap_capacity=1 << 20)
    injector = FaultInjector(
        FaultPlan(seed=11, at_rest_corruption_rate=1.0), clock=space.clock
    )
    space.manager.add_store(FlakyStore(InMemoryStore("rotting"), injector))
    clean = InMemoryStore("clean")
    space.manager.add_store(clean)
    space.manager.enable_resilience(ResilienceConfig(replication_factor=2))
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    _swap_out_all(space)
    assert injector.stats.at_rest_corruptions >= 1

    space.manager.resilience.scrubber.tick(force=True)
    assert space.manager.stats.replicas_quarantined >= 1
    event = space.bus.last(ReplicaCorruptEvent)
    assert event is not None and event.device_id == "rotting"
