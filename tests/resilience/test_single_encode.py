"""A swap-out serializes exactly once, however rough the delivery gets.

Regression tests for the old behavior where every retry attempt and every
failover target re-ran the encoder on an unchanged cluster.
"""

import pytest

from repro.core.fastpath import FastPathConfig
from repro.devices import InMemoryStore
from repro.errors import TransportError
from repro.events import SwapDegradedEvent
from repro.resilience import ResilienceConfig, RetryPolicy
from tests.helpers import build_chain, chain_values, make_space


class BlippyStore(InMemoryStore):
    """Fails the first ``failures`` uploads, then accepts."""

    def __init__(self, device_id: str, failures: int) -> None:
        super().__init__(device_id)
        self.failures = failures
        self.uploads = 0

    def store(self, key: str, xml_text: str) -> None:
        self.uploads += 1
        if self.uploads <= self.failures:
            raise TransportError(f"{self.device_id}: transient blip")
        super().store(key, xml_text)


def _resilient_space(*stores, degrade=False, fastpath=False):
    space = make_space(with_store=False)
    for store in stores:
        space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.05, jitter=0.0),
            degrade_to_local=degrade,
        )
    )
    if fastpath:
        space.manager.enable_fastpath(FastPathConfig())
    return space


def test_retries_reuse_the_serialized_payload():
    store = BlippyStore("blippy", failures=2)
    space = _resilient_space(store)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert store.uploads == 3
    assert space.manager.stats.retries == 2
    assert space.manager.stats.encode_calls == 1  # one serialization only
    assert chain_values(handle) == list(range(10))


def test_failover_reuses_the_serialized_payload():
    dead = BlippyStore("dead", failures=99)
    alive = InMemoryStore("alive")
    space = _resilient_space(dead, alive)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    location = space.swap_out(2)
    assert location.device_id == "alive"
    assert space.manager.stats.encode_calls == 1
    assert alive.keys() == [location.key]


def test_degrade_to_local_reuses_the_serialized_payload():
    dead = BlippyStore("dead", failures=99)
    space = _resilient_space(dead, degrade=True)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert space.manager.stats.degraded_swaps == 1
    assert space.bus.last(SwapDegradedEvent) is not None
    assert space.manager.stats.encode_calls == 1
    assert chain_values(handle) == list(range(10))


def test_fastpath_retries_still_encode_once():
    store = BlippyStore("blippy", failures=2)
    space = _resilient_space(store, fastpath=True)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.swap_in(2)
    space.swap_out(2)  # clean: a no-op probe, no upload at all
    assert store.uploads == 3  # the retried first swap-out, nothing since
    assert space.manager.stats.encode_calls == 1
    assert space.manager.stats.fastpath_noops == 1
    space.swap_in(2)
    assert chain_values(handle) == list(range(10))
