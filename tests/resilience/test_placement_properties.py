"""Property: the three health orderings never disagree.

``plan_placement`` (swap-out store choice), ``rank_replicas`` (swap-in
holder order) and shard-primary election all sort by the shared
:func:`~repro.resilience.placement.health_rank` key.  If any of them
drifted to a different metric — e.g. net success count instead of
failure *rate* — the store written first would be read last, and the
busiest stores would win every election forever (the rich-get-richer
regression fixed in the retry/ranking PR, generalized here).

These tests drive seeded random mixed success/failure histories through
the real coordinator and pin that all orderings stay identical.
"""

import random

from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.resilience import ResilienceConfig, plan_placement
from repro.resilience.placement import health_rank


def _space(n_stores=6):
    space = Space("prop", heap_capacity=1 << 20)
    stores = [InMemoryStore(f"s{i}") for i in range(n_stores)]
    for store in stores:
        space.manager.add_store(store)
    # a huge threshold keeps every circuit closed: the property under
    # test is the *health ordering*, not the admission tier
    space.manager.enable_resilience(
        ResilienceConfig(replication_factor=3, failure_threshold=10_000)
    )
    return space, stores


def _mixed_history(resilience, stores, seed, events=200):
    rng = random.Random(seed)
    for _ in range(events):
        store = rng.choice(stores)
        if rng.random() < 0.35:
            resilience.record_failure(store.device_id)
        else:
            resilience.record_success(store.device_id)


def _by_health(resilience, stores):
    """The reference ordering: stable sort by the shared key."""
    return [
        s.device_id
        for s in sorted(
            stores,
            key=lambda s: health_rank(resilience.health.of(s.device_id)),
        )
    ]


class TestOrderingConsistency:
    def test_plan_and_rank_agree_under_mixed_histories(self):
        for seed in range(12):
            space, stores = _space()
            resilience = space.manager.resilience
            _mixed_history(resilience, stores, seed)

            planned = [
                s.device_id
                for s in plan_placement(
                    stores, 10, len(stores), health=resilience.health
                )
            ]
            ranked = [
                s.device_id for s in resilience.rank_replicas(list(stores))
            ]
            reference = _by_health(resilience, stores)
            # all three walks over the same fleet must agree, or the
            # holder order chosen at swap-out scrambles by swap-in
            assert planned == ranked == reference, (
                f"seed={seed}: plan={planned} rank={ranked} ref={reference}"
            )

    def test_orderings_are_stable_across_repeated_calls(self):
        space, stores = _space()
        resilience = space.manager.resilience
        _mixed_history(resilience, stores, seed=3)
        first = resilience.rank_replicas(list(stores))
        for _ in range(5):
            assert resilience.rank_replicas(list(stores)) == first
            assert (
                plan_placement(stores, 10, 9, health=resilience.health)
                == plan_placement(stores, 10, 9, health=resilience.health)
            )


class TestRichGetRicherRegression:
    def test_idle_store_outranks_busy_store_with_failures(self):
        # net-success scoring would give the veteran (+140) an
        # insurmountable lead over the idle newcomer (0); failure-rate
        # scoring correctly prefers the store with no bad history
        space, stores = _space(n_stores=2)
        resilience = space.manager.resilience
        veteran, newcomer = stores
        for _ in range(150):
            resilience.record_success(veteran.device_id)
        for _ in range(10):
            resilience.record_failure(veteran.device_id)
            resilience.record_success(veteran.device_id)

        planned = plan_placement(stores, 10, 2, health=resilience.health)
        ranked = resilience.rank_replicas(list(stores))
        assert planned[0].device_id == newcomer.device_id
        assert ranked[0].device_id == newcomer.device_id

    def test_lower_failure_rate_beats_higher_volume(self):
        # 2 failures / 100 ops (2%) must outrank 1 failure / 10 ops
        # (10%) even though the busy store has far more net successes
        space, stores = _space(n_stores=2)
        resilience = space.manager.resilience
        busy, quiet = stores
        for _ in range(98):
            resilience.record_success(busy.device_id)
        for _ in range(2):
            resilience.record_failure(busy.device_id)
            resilience.record_success(busy.device_id)
        for _ in range(9):
            resilience.record_success(quiet.device_id)
        resilience.record_failure(quiet.device_id)
        resilience.record_success(quiet.device_id)

        assert health_rank(resilience.health.of(busy.device_id)) < health_rank(
            resilience.health.of(quiet.device_id)
        )
        planned = plan_placement(stores, 10, 2, health=resilience.health)
        ranked = resilience.rank_replicas(list(stores))
        assert planned[0].device_id == busy.device_id
        assert ranked[0].device_id == busy.device_id

    def test_consecutive_failures_dominate_rate(self):
        # a store failing *right now* ranks below any store that is not,
        # whatever their lifetime rates say
        space, stores = _space(n_stores=2)
        resilience = space.manager.resilience
        failing, mediocre = stores
        for _ in range(500):
            resilience.record_success(failing.device_id)
        for _ in range(3):
            resilience.record_failure(failing.device_id)
        for _ in range(2):
            resilience.record_failure(mediocre.device_id)
            resilience.record_success(mediocre.device_id)

        planned = plan_placement(stores, 10, 2, health=resilience.health)
        assert planned[0].device_id == mediocre.device_id
        assert (
            resilience.rank_replicas(list(stores))[0].device_id
            == mediocre.device_id
        )
