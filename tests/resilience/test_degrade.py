"""Graceful degradation: no reachable store → local compressed pool."""

import pytest

from repro.devices import InMemoryStore
from repro.errors import AllStoresUnreachableError, TransportError
from repro.events import SwapDegradedEvent
from repro.resilience import ResilienceConfig, RetryPolicy
from tests.helpers import build_chain, chain_values, make_space


class DeadStore(InMemoryStore):
    def store(self, key: str, xml_text: str) -> None:
        raise TransportError(f"{self.device_id}: out of range")


def _space(degrade: bool, with_dead_store: bool = True):
    space = make_space(with_store=False)
    if with_dead_store:
        space.manager.add_store(DeadStore("gone"))
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.05, jitter=0.0),
            degrade_to_local=degrade,
        )
    )
    return space


def test_degrades_to_local_compressed_pool_and_reloads():
    space = _space(degrade=True)
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    heap_before = space.heap.used
    space.swap_out(2)
    assert space.clusters()[2].is_swapped
    assert space.manager.stats.degraded_swaps == 1
    event = space.bus.last(SwapDegradedEvent)
    assert event is not None
    assert event.fallback_device_id == "compressed-pool"
    # the compressed copy lives in the same heap, but costs less than
    # the resident cluster did
    assert space.heap.used < heap_before
    # transparent reload from the pool
    assert chain_values(handle) == list(range(20))
    assert space.clusters()[2].is_resident
    space.verify_integrity()


def test_degrade_works_with_an_empty_neighborhood():
    space = _space(degrade=True, with_dead_store=False)
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    space.swap_out(2)  # no stores at all: straight to the pool
    assert space.manager.stats.degraded_swaps == 1
    assert chain_values(handle) == list(range(20))


def test_without_degradation_the_failure_is_loud():
    space = _space(degrade=False)
    space.ingest(build_chain(20), cluster_size=10, root_name="h")
    with pytest.raises(AllStoresUnreachableError):
        space.swap_out(2)
    assert space.manager.stats.degraded_swaps == 0
    assert space.clusters()[2].is_resident  # nothing half-done
