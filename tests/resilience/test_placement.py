"""Unit tests for the replica placement ledger and the placement planner."""

import pytest

from repro.devices import InMemoryStore
from repro.errors import TransportError
from repro.resilience import (
    PlacementMap,
    ReplicaState,
    placement_group_of,
    plan_placement,
)
from repro.resilience.health import HealthRegistry


def _map_with_record(sid=1, devices=("a", "b", "c")):
    placement = PlacementMap()
    placement.record_swap_out(
        sid,
        key=f"sp/sc-{sid}/e1",
        digest="d" * 64,
        epoch=1,
        xml_bytes=100,
        device_ids=devices,
    )
    return placement


class TestPlacementMap:
    def test_record_swap_out_creates_active_replicas(self):
        placement = _map_with_record()
        record = placement.get(1)
        assert record.live_count == 3
        assert sorted(record.active()) == ["a", "b", "c"]
        assert record.suspects() == [] and record.quarantined() == []
        assert placement.stats.records == 1

    def test_re_recording_a_sid_replaces_not_duplicates(self):
        placement = _map_with_record()
        placement.record_swap_out(
            1, key="sp/sc-1/e2", digest="e" * 64, epoch=2, xml_bytes=50,
            device_ids=["x"],
        )
        assert placement.stats.records == 1
        record = placement.get(1)
        assert record.epoch == 2 and record.active() == ["x"]
        # the old epoch's verification does not carry over
        assert record.verified_epoch == -1

    def test_quarantine_demotes_and_is_idempotent(self):
        placement = _map_with_record()
        assert placement.quarantine(1, "a") is True
        assert placement.quarantine(1, "a") is False  # already quarantined
        assert placement.quarantine(1, "nope") is False  # not a replica
        record = placement.get(1)
        assert record.live_count == 2
        assert record.quarantined() == ["a"]

    def test_suspect_and_reactivate_round_trip(self):
        placement = _map_with_record()
        affected = placement.mark_device_suspect("b")
        assert affected == [1]
        assert placement.get(1).replicas["b"] is ReplicaState.SUSPECT
        assert placement.get(1).live_count == 2
        placement.reactivate(1, "b")
        assert placement.get(1).live_count == 3
        assert placement.stats.reactivations == 1

    def test_suspect_does_not_touch_quarantined_copies(self):
        placement = _map_with_record()
        placement.quarantine(1, "a")
        placement.mark_device_suspect("a")
        assert placement.get(1).replicas["a"] is ReplicaState.QUARANTINED

    def test_mark_device_lost_strikes_the_copy_entirely(self):
        placement = _map_with_record()
        assert placement.mark_device_lost("c") == [1]
        assert "c" not in placement.get(1).replicas

    def test_record_verified_requires_the_current_epoch(self):
        placement = _map_with_record()
        placement.record_verified(1, epoch=99, now=5.0)  # stale epoch: ignored
        assert placement.get(1).verified_epoch == -1
        placement.record_verified(1, epoch=1, now=5.0)
        record = placement.get(1)
        assert record.verified_epoch == 1 and record.verified_at == 5.0

    def test_under_replicated_sorts_worst_first(self):
        placement = _map_with_record(sid=1, devices=("a", "b", "c"))
        placement.record_swap_out(
            2, key="k2", digest="d", epoch=1, xml_bytes=10, device_ids=["a"]
        )
        placement.record_swap_out(
            3, key="k3", digest="d", epoch=1, xml_bytes=10, device_ids=["a", "b"]
        )
        short = placement.under_replicated(3)
        assert [record.sid for record in short] == [2, 3]

    def test_forget_and_current_keys(self):
        placement = _map_with_record()
        assert placement.current_keys() == {
            "a": {"sp/sc-1/e1"}, "b": {"sp/sc-1/e1"}, "c": {"sp/sc-1/e1"},
        }
        assert placement.forget(1) is not None
        assert placement.forget(1) is None
        assert len(placement) == 0


class Grouped(InMemoryStore):
    def __init__(self, device_id, group=None, room=True):
        super().__init__(device_id)
        self.placement_group = group
        self._room = room

    def has_room(self, nbytes):
        return self._room


class TestPlanPlacement:
    def test_defaults_each_device_to_its_own_group(self):
        store = InMemoryStore("solo")
        # the implicit default is namespaced so an explicit group named
        # "solo" can never silently merge with an ungrouped store whose
        # device_id happens to be "solo" (PROTOCOL.md convention)
        assert placement_group_of(store) == "cell:solo"
        assert placement_group_of(Grouped("g1", group="desk-a")) == "desk-a"
        assert placement_group_of(Grouped("solo", group="solo")) == "solo"
        assert placement_group_of(store) != placement_group_of(
            Grouped("solo", group="solo")
        )

    def test_spreads_across_placement_groups_first(self):
        stores = [
            Grouped("a1", group="desk-a"),
            Grouped("a2", group="desk-a"),
            Grouped("b1", group="desk-b"),
        ]
        chosen = plan_placement(stores, 10, 2)
        assert {placement_group_of(s) for s in chosen} == {"desk-a", "desk-b"}

    def test_co_locates_only_as_a_last_resort(self):
        stores = [Grouped("a1", group="desk-a"), Grouped("a2", group="desk-a")]
        chosen = plan_placement(stores, 10, 2)
        assert len(chosen) == 2  # both copies land, same group or not

    def test_skips_full_and_excluded_stores(self):
        stores = [
            Grouped("full", room=False),
            Grouped("banned"),
            Grouped("ok"),
        ]
        chosen = plan_placement(stores, 10, 3, exclude={"banned"})
        assert [s.device_id for s in chosen] == ["ok"]

    def test_probe_failures_are_reported_not_fatal(self):
        class Unreachable(InMemoryStore):
            def has_room(self, nbytes):
                raise TransportError("gone")

        failed = []
        chosen = plan_placement(
            [Unreachable("dead"), Grouped("ok")],
            10,
            2,
            on_probe_failure=lambda store: failed.append(store.device_id),
        )
        assert [s.device_id for s in chosen] == ["ok"]
        assert failed == ["dead"]

    def test_health_ranking_prefers_cleaner_history(self):
        health = HealthRegistry(failure_threshold=10, cooldown_s=1.0)
        health.of("shaky").record_failure(0.0)
        health.of("shaky").record_failure(0.0)
        chosen = plan_placement(
            [Grouped("shaky"), Grouped("clean")], 10, 1, health=health
        )
        assert chosen[0].device_id == "clean"

    def test_capacity_breaks_ties(self):
        class Sized(InMemoryStore):
            def __init__(self, device_id, free):
                super().__init__(device_id)
                self.free = free

        chosen = plan_placement([Sized("small", 10), Sized("big", 1000)], 5, 1)
        assert chosen[0].device_id == "big"

    def test_returns_fewer_when_not_enough_stores(self):
        assert plan_placement([Grouped("only")], 10, 3) != []
        assert len(plan_placement([Grouped("only")], 10, 3)) == 1
        assert plan_placement([], 10, 2) == []
