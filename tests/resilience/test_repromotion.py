"""Degrade-to-local followed by healing: the scrubber re-promotes.

When every nearby store is unreachable the pipeline hibernates victims
into the local compressed pool — but the pool is heap, not durability.
Once stores heal, a scrub pass must re-replicate the hibernated payload
onto real stores and release the pool copy (re-promotion).
"""

from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.events import SwapDegradedEvent
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig, RetryPolicy
from tests.helpers import build_chain, chain_values


def _degraded_space(factor=2, n_stores=3):
    space = Space("promo", heap_capacity=1 << 20)
    injector = FaultInjector(FaultPlan.empty(), clock=space.clock)
    stores = {}
    for i in range(n_stores):
        flaky = FlakyStore(InMemoryStore(f"s{i}"), injector)
        stores[f"s{i}"] = flaky
        space.manager.add_store(flaky)
        flaky.kill()  # the whole neighborhood is out of range
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, jitter=0.0),
            failure_threshold=2,
            cooldown_s=1.0,
            replication_factor=factor,
            degrade_to_local=True,
        )
    )
    return space, stores


def test_scrubber_repromotes_once_stores_heal():
    space, stores = _degraded_space()
    handle = space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = [s for s in space.clusters() if s != 0]
    space.swap_out(sid)

    assert space.manager.stats.degraded_swaps == 1
    assert space.bus.last(SwapDegradedEvent) is not None
    record = space.manager.resilience.placement.get(sid)
    assert set(record.active()) == {"compressed-pool"}
    fallback = space.manager.resilience.fallback_store()
    assert record.key in fallback.keys()
    pool_heap = space.heap.used

    # the neighborhood comes back
    for flaky in stores.values():
        flaky.revive()
    space.clock.advance(2.0)  # past the circuit cool-down

    space.manager.resilience.scrubber.run_until_stable()
    record = space.manager.resilience.placement.get(sid)
    assert "compressed-pool" not in record.replicas
    assert record.live_count >= 2  # real stores now hold the copies
    assert record.key not in fallback.keys()  # hibernation released
    assert space.heap.used < pool_heap  # its heap bytes came back
    assert space.manager.stats.repromotions == 1
    assert space.manager.stats.replicas_repaired >= 2

    assert chain_values(handle) == list(range(10))
    space.verify_integrity()


def test_no_repromotion_while_stores_stay_dark():
    space, stores = _degraded_space()
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = [s for s in space.clusters() if s != 0]
    space.swap_out(sid)

    space.clock.advance(2.0)
    report = space.manager.resilience.scrubber.tick(force=True)
    # nothing to promote onto: the pool copy must survive untouched
    record = space.manager.resilience.placement.get(sid)
    assert "compressed-pool" in record.replicas
    assert report.repromotions == 0
    fallback = space.manager.resilience.fallback_store()
    assert record.key in fallback.keys()


def test_repromoted_cluster_swaps_in_from_a_real_store():
    space, stores = _degraded_space()
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    (sid,) = [s for s in space.clusters() if s != 0]
    space.swap_out(sid)
    for flaky in stores.values():
        flaky.revive()
    space.clock.advance(2.0)
    space.manager.resilience.scrubber.run_until_stable()

    assert space.swap_in(sid) > 0
    holders = {h.device_id for h in space.manager.bindings_for(sid)}
    assert holders and "compressed-pool" not in holders
