"""The write-ahead journal: detach strictly after acknowledge."""

import pytest

from repro.devices import InMemoryStore
from repro.errors import AllStoresUnreachableError, TransportError
from repro.resilience import (
    JournalEntryState,
    ResilienceConfig,
    RetryPolicy,
    SwapJournal,
)
from tests.helpers import build_chain, chain_values, make_space


def _resilient_space(**config_kwargs):
    space = make_space(with_store=False)
    config_kwargs.setdefault(
        "retry", RetryPolicy(max_attempts=2, base_delay_s=0.05, jitter=0.0)
    )
    config_kwargs.setdefault("degrade_to_local", False)
    space.manager.enable_resilience(ResilienceConfig(**config_kwargs))
    return space


class OrderAssertingStore(InMemoryStore):
    """Asserts the cluster is still resident when its payload arrives."""

    def __init__(self, device_id: str, space, sid: int) -> None:
        super().__init__(device_id)
        self._space = space
        self._sid = sid
        self.saw_resident = False

    def store(self, key: str, xml_text: str) -> None:
        # write-ahead invariant: the heap copy must still exist while
        # the store copy is in flight
        assert self._space.clusters()[self._sid].is_resident
        self.saw_resident = True
        super().store(key, xml_text)


def test_detach_happens_only_after_store_acknowledges():
    space = _resilient_space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    store = OrderAssertingStore("witness", space, sid=2)
    space.manager.add_store(store)
    space.swap_out(2)
    assert store.saw_resident
    assert space.clusters()[2].is_swapped
    entry = space.manager.resilience.journal.last()
    assert entry.state is JournalEntryState.COMMITTED
    assert entry.writes == ["witness"]
    assert entry.sid == 2
    assert not space.manager.resilience.journal.pending()


class DeadStore(InMemoryStore):
    def store(self, key: str, xml_text: str) -> None:
        raise TransportError(f"{self.device_id}: out of range")


def test_failed_swap_out_aborts_the_entry_and_keeps_data_local():
    space = _resilient_space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.manager.add_store(DeadStore("gone"))
    with pytest.raises(AllStoresUnreachableError):
        space.swap_out(2)
    journal = space.manager.resilience.journal
    entry = journal.last()
    assert entry.state is JournalEntryState.ABORTED
    assert entry.writes == []
    assert journal.stats.aborts == 1
    # nothing detached, nothing lost
    assert space.clusters()[2].is_resident
    assert chain_values(handle) == list(range(10))
    space.verify_integrity()


def test_commit_requires_an_acknowledged_write():
    journal = SwapJournal()
    entry = journal.begin(sid=7, key="k", epoch=1, xml_bytes=100)
    with pytest.raises(ValueError):
        journal.commit(entry)
    journal.record_write(entry, "pc")
    journal.commit(entry)
    assert entry.state is JournalEntryState.COMMITTED


def test_recover_journal_drops_orphaned_copies():
    space = _resilient_space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    store = InMemoryStore("pc")
    space.manager.add_store(store)
    resilience = space.manager.resilience
    # simulate a hand-off that died between acknowledge and detach:
    # the payload landed, the journal knows, the cluster never swapped
    store.store("space:test/sid:2/epoch:1", "<swap-cluster/>")
    entry = resilience.journal.begin(
        sid=2, key="space:test/sid:2/epoch:1", epoch=1, xml_bytes=16
    )
    resilience.journal.record_write(entry, "pc")
    assert store.keys() == ["space:test/sid:2/epoch:1"]
    recovered = space.manager.recover_journal()
    assert recovered == 1
    assert store.keys() == []  # the orphan is gone
    assert entry.state is JournalEntryState.ABORTED
    assert space.manager.stats.journal_recoveries == 1
    assert resilience.journal.stats.recoveries == 1


def test_recover_journal_commits_entries_whose_handoff_completed():
    space = _resilient_space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    store = InMemoryStore("pc")
    space.manager.add_store(store)
    location = space.swap_out(2)
    resilience = space.manager.resilience
    # forge a pending entry describing the swap that really happened
    entry = resilience.journal.begin(
        sid=2, key=location.key, epoch=location.epoch, xml_bytes=location.xml_bytes
    )
    resilience.journal.record_write(entry, "pc")
    recovered = space.manager.recover_journal()
    assert recovered == 0
    assert entry.state is JournalEntryState.COMMITTED
    # the live copy was NOT dropped
    assert location.key in store.keys()


def test_journal_truncation_is_counted_not_silent():
    journal = SwapJournal(history=2)
    for sid in range(4):
        entry = journal.begin(sid, f"k{sid}", 1, 10, digest="d")
        journal.record_write(entry, "s0")
        journal.commit(entry)
    # the two oldest completed entries fell off the bounded history
    assert journal.stats.truncated == 2
    assert len(journal.history()) == 2


def test_journal_truncation_emits_event_and_bumps_manager_stats():
    from repro.events import JournalTruncatedEvent

    space = make_space()
    space.manager.enable_resilience(ResilienceConfig(journal_history=2))
    space.ingest(build_chain(40), cluster_size=10, root_name="h")
    for _ in range(2):
        for sid in sorted(space.clusters()):
            cluster = space.clusters()[sid]
            if cluster.swappable() and cluster.oids:
                space.swap_out(sid)
        assert chain_values(space.get_root("h")) == list(range(40))
    # 8 completed hand-offs through a 2-entry history
    assert space.manager.stats.journal_truncated > 0
    event = space.bus.last(JournalTruncatedEvent)
    assert event is not None
    assert event.history == 2 and event.dropped == 1
    assert (
        space.manager.stats.journal_truncated
        == space.manager.resilience.journal.stats.truncated
    )


def test_journal_entries_carry_the_payload_digest():
    space = _resilient_space()
    space.manager.add_store(InMemoryStore("dev"))
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    sid = [s for s in space.clusters() if s != 0][0]
    location = space.swap_out(sid)
    (entry,) = space.manager.resilience.journal.history()
    assert entry.digest == location.digest
