"""XML policy documents."""

import pytest

from repro.errors import PolicyError
from repro.policy.xmlpolicy import parse_policies, render_policies

GOOD = """
<policies>
  <policy name="swap-on-pressure" category="machine">
    <rule on="memory.high">
      <when>heap.ratio &gt;= 0.85</when>
      <do action="swap_out" victims="lru" until_ratio="0.6"/>
    </rule>
    <rule on="context.device_joined">
      <do action="log" message="store appeared"/>
    </rule>
  </policy>
  <policy name="audit" category="user" enabled="false">
    <rule on="swap.*">
      <do action="log" message="swap activity"/>
    </rule>
  </policy>
</policies>
"""


def test_parse_structure():
    policies = parse_policies(GOOD)
    assert [policy.name for policy in policies] == ["swap-on-pressure", "audit"]
    first = policies[0]
    assert first.category == "machine" and first.enabled
    assert len(first.rules) == 2
    rule = first.rules[0]
    assert rule.on == "memory.high"
    assert rule.when_source == "heap.ratio >= 0.85"
    assert rule.actions[0].name == "swap_out"
    assert rule.actions[0].args == {"victims": "lru", "until_ratio": "0.6"}


def test_disabled_policy_flag():
    policies = parse_policies(GOOD)
    assert policies[1].enabled is False


def test_single_policy_document():
    policies = parse_policies(
        '<policy name="p"><rule on="x"><do action="log"/></rule></policy>'
    )
    assert len(policies) == 1


def test_topic_wildcard_rule():
    policies = parse_policies(GOOD)
    rule = policies[1].rules[0]
    assert rule.matches_topic("swap.out")
    assert rule.matches_topic("swap.in")
    assert not rule.matches_topic("memory.high")


@pytest.mark.parametrize(
    "document,match",
    [
        ("<policies><policy><rule on='x'><do action='a'/></rule></policy></policies>", "name"),
        ("<policy name='p'></policy>", "no rules"),
        ("<policy name='p'><rule><do action='a'/></rule></policy>", "on="),
        ("<policy name='p'><rule on='x'></rule></policy>", "no <do>"),
        ("<policy name='p'><rule on='x'><do/></rule></policy>", "action="),
        ("<policy name='p' category='bogus'><rule on='x'><do action='a'/></rule></policy>", "category"),
        ("<policy name='p'><rule on='x'><when></when><do action='a'/></rule></policy>", "empty"),
        ("<policy name='p'><rule on='x'><oops/><do action='a'/></rule></policy>", "unexpected"),
        ("<wrong/>", "expected"),
        ("<policies", "malformed"),
    ],
)
def test_malformed_documents(document, match):
    with pytest.raises(PolicyError, match=match):
        parse_policies(document)


def test_condition_validated_at_parse_time():
    with pytest.raises(PolicyError):
        parse_policies(
            "<policy name='p'><rule on='x'>"
            "<when>__import__('os')</when><do action='a'/></rule></policy>"
        )


def test_render_roundtrip():
    policies = parse_policies(GOOD)
    rendered = render_policies(policies)
    reparsed = parse_policies(rendered)
    assert [policy.name for policy in reparsed] == [
        policy.name for policy in policies
    ]
    assert reparsed[0].rules[0].when_source == policies[0].rules[0].when_source
    assert reparsed[1].enabled is False


def test_describe():
    policies = parse_policies(GOOD)
    text = policies[0].describe()
    assert "swap-on-pressure" in text and "memory.high" in text
