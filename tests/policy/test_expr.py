"""The safe condition-expression subset."""

import pytest

from repro.errors import ExpressionError
from repro.policy.expr import compile_expression, evaluate_expression


class _Obj:
    ratio = 0.9
    used = 90
    _secret = "hidden"


NAMESPACE = {
    "heap": _Obj(),
    "count": 5,
    "flag": True,
    "name": "pda",
    "items": [1, 2, 3],
    "table": {"k": 7},
}


@pytest.mark.parametrize(
    "source,expected",
    [
        ("1 + 1", 2),
        ("count * 2", 10),
        ("7 // 2", 3),
        ("7 % 2", 1),
        ("-count", -5),
        ("count > 3", True),
        ("count >= 5 and flag", True),
        ("count < 3 or flag", True),
        ("not flag", False),
        ("1 < count < 10", True),
        ("name == 'pda'", True),
        ("name != 'other'", True),
        ("heap.ratio >= 0.85", True),
        ("heap.used + 10", 100),
        ("items[0]", 1),
        ("table['k']", 7),
        ("2 in items", True),
        ("9 not in items", True),
        ("'yes' if flag else 'no'", "yes"),
        ("(1, 2)", (1, 2)),
        ("[count, flag]", [5, True]),
        ("None is None", True),
    ],
)
def test_expressions(source, expected):
    assert evaluate_expression(source, NAMESPACE) == expected


@pytest.mark.parametrize(
    "source",
    [
        "__import__('os')",
        "open('/etc/passwd')",
        "heap.ratio.__class__",
        "heap._secret",
        "(lambda: 1)()",
        "[x for x in items]",
        "items.append(4)",
        "count := 9",
    ],
)
def test_forbidden_constructs(source):
    with pytest.raises(ExpressionError):
        evaluate_expression(source, NAMESPACE)


def test_unknown_name():
    with pytest.raises(ExpressionError, match="unknown name"):
        evaluate_expression("missing > 1", NAMESPACE)


def test_missing_attribute():
    with pytest.raises(ExpressionError, match="no attribute"):
        evaluate_expression("heap.nope", NAMESPACE)


def test_bad_subscript():
    with pytest.raises(ExpressionError):
        evaluate_expression("items[99]", NAMESPACE)


def test_syntax_error():
    with pytest.raises(ExpressionError):
        compile_expression("1 +")


def test_compiled_reusable():
    compiled = compile_expression("count > threshold")
    assert compiled({"count": 5, "threshold": 3}) is True
    assert compiled({"count": 5, "threshold": 9}) is False


def test_short_circuit_and():
    # the right side would fail; and must short-circuit on falsy left
    assert evaluate_expression("flag and count", NAMESPACE) == 5
    assert evaluate_expression("not flag and missing", NAMESPACE) is False
