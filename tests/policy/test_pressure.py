"""Pressure signals: classification, thresholds, store-health math."""

import pytest

from repro.devices import InMemoryStore
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.policy.pressure import (
    PressureLevel,
    PressureThresholds,
    classify,
    store_health_of,
)
from repro.clock import SimulatedClock


def test_levels_mirror_ladder_rungs():
    assert [int(level) for level in PressureLevel] == [0, 1, 2, 3]


def test_thresholds_validate_ordering():
    with pytest.raises(ValueError):
        PressureThresholds(
            elevated_headroom=0.1, high_headroom=0.2, critical_headroom=0.3
        )


def test_headroom_sets_the_base_level():
    assert classify(0.9, 1.0, 0.0).level is PressureLevel.NOMINAL
    assert classify(0.25, 1.0, 0.0).level is PressureLevel.ELEVATED
    assert classify(0.10, 1.0, 0.0).level is PressureLevel.HIGH
    assert classify(0.01, 1.0, 0.0).level is PressureLevel.CRITICAL


def test_sick_fleet_bumps_one_level():
    healthy = classify(0.9, 1.0, 0.0)
    sick = classify(0.9, 0.5, 0.0)
    assert sick.level == healthy.level + 1


def test_saturated_link_bumps_one_level():
    assert classify(0.9, 1.0, 0.9).level is PressureLevel.ELEVATED


def test_bumps_stack_and_cap_at_critical():
    assert classify(0.10, 0.4, 0.9).level is PressureLevel.CRITICAL
    assert classify(0.01, 0.4, 0.9).level is PressureLevel.CRITICAL


def test_all_brownout_fleet_counts_as_degraded():
    """Brownout weights 0.5 per store; the default threshold (0.7) must
    treat a fully browned-out fleet as degraded."""
    thresholds = PressureThresholds()
    assert 0.5 < thresholds.degraded_store_health


def test_one_dead_store_of_four_is_not_degraded():
    thresholds = PressureThresholds()
    assert 0.75 >= thresholds.degraded_store_health


def _stores(count):
    clock = SimulatedClock()
    injector = FaultInjector(FaultPlan.empty(), clock)
    return {
        f"s{i}": FlakyStore(InMemoryStore(f"s{i}"), injector)
        for i in range(count)
    }


def test_store_health_all_healthy():
    assert store_health_of(_stores(4), None) == 1.0


def test_store_health_counts_dead_as_zero():
    stores = _stores(4)
    stores["s0"].kill()
    assert store_health_of(stores, None) == pytest.approx(0.75)


def test_store_health_counts_brownout_as_half():
    stores = _stores(2)
    stores["s0"].set_brownout(latency_factor=10.0)
    assert store_health_of(stores, None) == pytest.approx(0.75)


def test_store_health_empty_fleet_reads_healthy():
    # health measures degradation of what exists; an empty neighborhood
    # is NoSwapDeviceError's problem, not a pressure signal
    assert store_health_of([], None) == 1.0


def test_signal_describe_is_readable():
    signal = classify(0.12, 0.5, 0.9)
    text = signal.describe()
    assert "headroom" in text
    assert signal.level.name.lower() in text.lower()
