"""Property test: the safe expression evaluator agrees with Python.

Hypothesis generates expressions from the allowed grammar and checks
the evaluator against Python's own ``eval`` over the same namespace —
any divergence in arithmetic, comparison chains, or boolean
short-circuiting is a bug in the interpreter.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.expr import evaluate_expression

NAMESPACE = {"a": 3, "b": -7, "c": 0.5, "flag": True, "empty": 0}

_atoms = st.sampled_from(["a", "b", "c", "flag", "empty", "1", "2", "0.25"])
_binary_ops = st.sampled_from(["+", "-", "*"])
_compare_ops = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])
_bool_ops = st.sampled_from(["and", "or"])


@st.composite
def expressions(draw, depth=0):
    if depth >= 3:
        return draw(_atoms)
    kind = draw(st.sampled_from(["atom", "binary", "compare", "bool", "not", "paren"]))
    if kind == "atom":
        return draw(_atoms)
    if kind == "binary":
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {draw(_binary_ops)} {right})"
    if kind == "compare":
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {draw(_compare_ops)} {right})"
    if kind == "bool":
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {draw(_bool_ops)} {right})"
    if kind == "not":
        return f"(not {draw(expressions(depth=depth + 1))})"
    return f"({draw(expressions(depth=depth + 1))})"


@settings(max_examples=300, deadline=None)
@given(expressions())
def test_agrees_with_python_eval(source):
    expected = eval(source, {"__builtins__": {}}, dict(NAMESPACE))  # noqa: S307
    actual = evaluate_expression(source, NAMESPACE)
    assert actual == expected
    assert type(actual) is type(expected)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(-5, 5), min_size=2, max_size=4),
    st.lists(_compare_ops, min_size=1, max_size=3),
)
def test_chained_comparisons(values, operators):
    operators = operators[: len(values) - 1]
    source = str(values[0])
    for value, operator in zip(values[1:], operators):
        source += f" {operator} {value}"
    expected = eval(source, {"__builtins__": {}}, {})  # noqa: S307
    assert evaluate_expression(source, {}) == expected
