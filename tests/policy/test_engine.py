"""The policy engine end to end."""

import pytest

from repro.context.monitor import MemoryMonitor
from repro.errors import PolicyError
from repro.policy.actions import ActionContext, default_action_registry
from repro.policy.engine import PolicyEngine
from repro.policy.xmlpolicy import parse_policies
from tests.helpers import build_chain, chain_values, make_space


PRESSURE_POLICY = """
<policy name="swap-on-pressure" category="machine">
  <rule on="memory.high">
    <do action="swap_out" victims="lru" until_ratio="0.50"/>
  </rule>
</policy>
"""


def test_engine_reacts_to_memory_pressure():
    space = make_space(heap_capacity=4000, high_watermark=0.8, low_watermark=0.5)
    MemoryMonitor(space)
    engine = PolicyEngine(space)
    engine.load_xml(PRESSURE_POLICY)
    space.manager.auto_swap = False  # the policy, not the fallback, acts

    for index in range(8):
        space.ingest(build_chain(10), cluster_size=10, root_name=f"c{index}")

    assert space.manager.stats.swap_outs > 0
    assert space.heap.ratio <= 0.8
    assert engine.fired, "expected the rule to fire"
    for index in range(8):
        assert chain_values(space.get_root(f"c{index}")) == list(range(10))


def test_condition_gates_actions():
    space = make_space()
    engine = PolicyEngine(space)
    engine.load_xml(
        '<policy name="picky"><rule on="memory.high">'
        "<when>ratio &gt; 0.95</when>"
        '<do action="log" message="extreme"/></rule></policy>'
    )
    from repro.events import MemoryHighEvent

    space.bus.emit(
        MemoryHighEvent(space=space.name, used=86, capacity=100, ratio=0.86)
    )
    assert engine.fired == []
    space.bus.emit(
        MemoryHighEvent(space=space.name, used=97, capacity=100, ratio=0.97)
    )
    assert len(engine.fired) == 1


def test_event_fields_in_namespace():
    space = make_space()
    engine = PolicyEngine(space)
    engine.load_xml(
        '<policy name="p"><rule on="context.device_joined">'
        "<when>event.device_id == 'pc'</when>"
        '<do action="log" message="pc joined"/></rule></policy>'
    )
    from repro.events import DeviceJoinedEvent

    space.bus.emit(DeviceJoinedEvent(device_id="other"))
    space.bus.emit(DeviceJoinedEvent(device_id="pc"))
    assert len(engine.fired) == 1


def test_disabled_policy_ignored():
    space = make_space()
    engine = PolicyEngine(space)
    policies = parse_policies(PRESSURE_POLICY)
    policies[0].enabled = False
    engine.load_all(policies)
    from repro.events import MemoryHighEvent

    space.bus.emit(
        MemoryHighEvent(space=space.name, used=99, capacity=100, ratio=0.99)
    )
    assert engine.fired == []


def test_no_reentrant_evaluation():
    # actions emit swap events; the engine must not evaluate policies
    # against events raised while running actions
    space = make_space(heap_capacity=1 << 20)
    engine = PolicyEngine(space)
    engine.load_xml(
        '<policy name="p"><rule on="memory.high">'
        '<do action="swap_out" victims="lru" count="1"/></rule>'
        '<rule on="swap.out"><do action="log" message="saw swap"/></rule>'
        "</policy>"
    )
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    from repro.events import MemoryHighEvent

    space.bus.emit(
        MemoryHighEvent(space=space.name, used=99, capacity=100, ratio=0.99)
    )
    topics = [fired.topic for fired in engine.fired]
    assert topics == ["memory.high"]  # the nested swap.out did not re-fire


def test_unknown_action_raises():
    space = make_space()
    engine = PolicyEngine(space)
    engine.load_xml(
        '<policy name="p"><rule on="memory.high">'
        '<do action="no_such_action"/></rule></policy>'
    )
    from repro.events import MemoryHighEvent

    with pytest.raises(RuntimeError):  # wrapped by the bus
        space.bus.emit(
            MemoryHighEvent(space=space.name, used=99, capacity=100, ratio=0.99)
        )


def test_custom_action_registration():
    space = make_space()
    registry = default_action_registry()
    calls = []
    registry.register("probe", lambda context, args: calls.append(args))
    engine = PolicyEngine(space, actions=registry)
    engine.load_xml(
        '<policy name="p"><rule on="memory.high">'
        '<do action="probe" level="9"/></rule></policy>'
    )
    from repro.events import MemoryHighEvent

    space.bus.emit(
        MemoryHighEvent(space=space.name, used=99, capacity=100, ratio=0.99)
    )
    assert calls == [{"level": "9"}]


def test_unload_policy():
    space = make_space()
    engine = PolicyEngine(space)
    engine.load_xml(PRESSURE_POLICY)
    engine.unload("swap-on-pressure")
    assert engine.policies() == []


def test_engine_close_unsubscribes():
    space = make_space()
    engine = PolicyEngine(space)
    engine.load_xml(PRESSURE_POLICY)
    engine.close()
    from repro.events import MemoryHighEvent

    space.bus.emit(
        MemoryHighEvent(space=space.name, used=99, capacity=100, ratio=0.99)
    )
    assert engine.fired == []


def test_fired_journal_records_notes():
    space = make_space()
    engine = PolicyEngine(space)
    engine.load_xml(
        '<policy name="p"><rule on="memory.high">'
        '<do action="log" message="note this"/></rule></policy>'
    )
    from repro.events import MemoryHighEvent

    space.bus.emit(
        MemoryHighEvent(space=space.name, used=99, capacity=100, ratio=0.99)
    )
    assert engine.fired[0].notes == ["log: note this"]
