"""Built-in policy actions."""

import pytest

from repro.errors import PolicyError
from repro.policy.actions import ActionContext, default_action_registry
from tests.helpers import build_chain, make_space


@pytest.fixture
def context():
    space = make_space()
    for index in range(4):
        space.ingest(build_chain(10), cluster_size=10, root_name=f"c{index}")
    return ActionContext(space=space)


@pytest.fixture
def registry():
    return default_action_registry()


def test_swap_out_default_one_victim(context, registry):
    registry.run("swap_out", context, {})
    assert context.space.manager.stats.swap_outs == 1
    assert any("swap_out" in note for note in context.journal)


def test_swap_out_count(context, registry):
    registry.run("swap_out", context, {"count": "3"})
    assert context.space.manager.stats.swap_outs == 3


def test_swap_out_until_ratio(context, registry):
    target = context.space.heap.ratio / 2
    registry.run("swap_out", context, {"until_ratio": str(target)})
    assert context.space.heap.ratio <= target


def test_swap_out_strategy_argument(context, registry):
    registry.run("swap_out", context, {"victims": "largest", "count": "1"})
    assert context.space.manager.stats.swap_outs == 1


def test_swap_out_no_device_notes_failure(registry):
    space = make_space(with_store=False)
    space.ingest(build_chain(5), cluster_size=5, root_name="h")
    context = ActionContext(space=space)
    registry.run("swap_out", context, {})
    assert any("no nearby device" in note for note in context.journal)
    assert space.manager.stats.swap_outs == 0


def test_swap_in_action(context, registry):
    registry.run("swap_out", context, {"count": "1"})
    swapped = [
        sid for sid, cluster in context.space.clusters().items()
        if cluster.is_swapped
    ][0]
    registry.run("swap_in", context, {"sid": str(swapped)})
    assert context.space.clusters()[swapped].is_resident


def test_swap_in_requires_sid(context, registry):
    with pytest.raises(PolicyError):
        registry.run("swap_in", context, {})


def test_gc_action(context, registry):
    context.space.del_root("c0")
    registry.run("gc", context, {})
    assert any("gc:" in note for note in context.journal)
    assert context.space.object_count() == 30


def test_set_victim_strategy(context, registry):
    registry.run("set_victim_strategy", context, {"strategy": "largest"})
    assert any("largest" in note for note in context.journal)


def test_bad_int_argument(context, registry):
    with pytest.raises(PolicyError):
        registry.run("swap_out", context, {"count": "many"})


def test_unknown_action(context, registry):
    with pytest.raises(PolicyError, match="unknown action"):
        registry.run("warp", context, {})
