"""Adaptive swap-cluster tuning."""

import pytest

from repro.policy.engine import PolicyEngine
from repro.policy.tuning import AdaptiveTuner, install_tuning_action, reference_affinity
from tests.helpers import build_chain, chain_values, make_space


def _tuner(space, **kwargs):
    defaults = dict(hot_crossings=10, cold_crossings=2,
                    max_cluster_objects=50, min_cluster_objects=2,
                    cooldown_ticks=0)
    defaults.update(kwargs)
    return AdaptiveTuner(space, **defaults)


def test_reference_affinity_counts_boundary_edges(space):
    space.ingest(build_chain(20), cluster_size=5, root_name="h")
    affinity = reference_affinity(space, 1)
    assert affinity == {2: 1}  # one chained edge into the next cluster


def test_hot_boundary_gets_merged(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    tuner = _tuner(space)
    # hammer the 1->2 boundary: walking repeatedly crosses it
    for _ in range(30):
        chain_values(handle)
    decision = tuner.step()
    assert decision.action == "merge"
    space.verify_integrity()
    assert chain_values(handle) == list(range(20))


def test_quiet_space_does_nothing(space):
    space.ingest(build_chain(20), cluster_size=5, root_name="h")
    tuner = _tuner(space)
    decision = tuner.step()
    assert decision.action == "none"
    assert sorted(space.clusters()) == [0, 1, 2, 3, 4]


def test_cold_oversized_cluster_split(space):
    space.ingest(build_chain(60), cluster_size=60, root_name="h")
    tuner = _tuner(space, max_cluster_objects=40)
    decision = tuner.step()
    assert decision.action == "split"
    sizes = sorted(len(c) for s, c in space.clusters().items() if s != 0)
    assert sizes == [30, 30]
    space.verify_integrity()
    assert chain_values(space.get_root("h")) == list(range(60))


def test_merge_respects_max_size(space):
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    tuner = _tuner(space, max_cluster_objects=15)  # 10+10 would exceed
    for _ in range(30):
        chain_values(handle)
    decision = tuner.step()
    assert decision.action != "merge"


def test_cooldown(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    tuner = _tuner(space, cooldown_ticks=10_000)
    for _ in range(30):
        chain_values(handle)
    tuner._last_step_tick = space._tick  # as if a step just ran
    decision = tuner.step()
    assert decision.action == "none" and decision.detail == "cooldown"


def test_crossings_reset_between_steps(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    tuner = _tuner(space)
    for _ in range(30):
        chain_values(handle)
    tuner.step()  # merges something, resets baselines
    decision = tuner.step()  # no NEW crossings since
    assert decision.action == "none"


def test_policy_action_integration(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    engine = PolicyEngine(space)
    tuner = _tuner(space)
    install_tuning_action(engine, tuner)
    engine.load_xml(
        '<policy name="adaptive"><rule on="memory.high">'
        '<do action="adapt_clusters"/></rule></policy>'
    )
    for _ in range(30):
        chain_values(handle)
    from repro.events import MemoryHighEvent

    space.bus.emit(
        MemoryHighEvent(space=space.name, used=9, capacity=10, ratio=0.9)
    )
    assert engine.fired and "adapt_clusters" in engine.fired[0].notes[0]
    assert tuner.decisions[-1].action == "merge"
    space.verify_integrity()


def test_repeated_steps_converge(space):
    handle = space.ingest(build_chain(40), cluster_size=5, root_name="h")
    tuner = _tuner(space, max_cluster_objects=40)
    for round_index in range(10):
        for _ in range(30):
            chain_values(handle)
        tuner.step()
        space.verify_integrity()
    # heavy uniform traversal drives toward fewer, bigger clusters
    non_root = [s for s in space.clusters() if s != 0]
    assert len(non_root) < 8
    assert chain_values(handle) == list(range(40))
