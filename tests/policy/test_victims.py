"""Victim-selection strategies."""

import pytest

from repro.errors import PolicyError
from repro.policy.victims import make_selector, select_victims
from tests.helpers import build_chain, make_space


@pytest.fixture
def populated():
    """Three clusters with distinct recency/frequency/size profiles."""
    space = make_space()
    space.ingest(build_chain(30), cluster_size=30, root_name="big")     # sc-1
    space.ingest(build_chain(5), cluster_size=5, root_name="small")    # sc-2
    space.ingest(build_chain(10), cluster_size=10, root_name="mid")    # sc-3
    # access pattern: sc-3 most recent + most frequent, sc-1 untouched
    for _ in range(5):
        space.get_root("mid").get_value()
    space.get_root("small").get_value()
    for _ in range(3):
        space.get_root("mid").get_value()
    return space


def test_lru_prefers_untouched(populated):
    assert select_victims(populated, "lru")[0] == 1


def test_lfu_prefers_rarely_crossed(populated):
    ranked = select_victims(populated, "lfu")
    assert ranked[0] == 1  # zero crossings
    assert ranked[1] == 2  # one crossing


def test_largest_prefers_big_footprint(populated):
    assert select_victims(populated, "largest")[0] == 1
    assert select_victims(populated, "smallest")[0] == 2


def test_hybrid_prefers_big_idle(populated):
    assert select_victims(populated, "hybrid")[0] == 1


def test_count_cut(populated):
    assert len(select_victims(populated, "lru", count=2)) == 2


def test_need_bytes_cut(populated):
    heap = populated.heap
    big_bytes = sum(
        heap.size_of(oid) for oid in populated.clusters()[1].oids
    )
    victims = select_victims(populated, "largest", need_bytes=big_bytes)
    assert victims == [1]


def test_swapped_clusters_not_candidates(populated):
    populated.swap_out(1)
    assert 1 not in select_victims(populated, "lru")


def test_pinned_clusters_not_candidates(populated):
    with populated.pin(1):
        assert 1 not in select_victims(populated, "lru")


def test_root_cluster_never_a_victim(populated):
    from tests.helpers import Node

    populated.set_root("global", Node(1))
    assert 0 not in select_victims(populated, "lru")


def test_unknown_strategy(populated):
    with pytest.raises(PolicyError):
        select_victims(populated, "nope")
    with pytest.raises(PolicyError):
        make_selector("nope")


def test_make_selector_single_victim(populated):
    selector = make_selector("largest")
    assert selector(populated) == 1
    empty = make_space()
    assert make_selector("lru")(empty) is None
