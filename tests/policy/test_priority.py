"""Responsiveness policy: priorities, working sets, victim ranking."""

from repro.policy.priority import (
    Priority,
    hot_fraction,
    rank_responsiveness,
    working_set_bytes,
)
from repro.policy.victims import select_victims
from tests.helpers import build_chain, make_space


def _cool(space, window=None):
    """Age every cluster well past the working-set recency window."""
    from repro.policy.priority import WORKING_SET_WINDOW_TICKS

    space._tick += (window or WORKING_SET_WINDOW_TICKS) + 1


def test_priority_values_are_plain_ints():
    assert int(Priority.IDLE) == 0
    assert int(Priority.BACKGROUND) == 1
    assert int(Priority.FOREGROUND) == 2


def test_set_priority_reaches_the_cluster():
    space = make_space()
    handle = space.ingest(build_chain(4), cluster_size=4, root_name="t")
    space.set_priority(handle, Priority.FOREGROUND)
    assert space.clusters()[1].priority == 2


def test_working_set_counts_recent_crossings_whole():
    space = make_space()
    handle = space.ingest(build_chain(4), cluster_size=4, root_name="t")
    handle.get_value()  # a crossing within the window
    cluster = space.clusters()[1]
    footprint = sum(space.heap.size_of(oid) for oid in cluster.oids)
    assert working_set_bytes(space, cluster) == footprint
    assert hot_fraction(space, cluster) == 1.0


def test_working_set_of_cold_clean_cluster_is_zero():
    from repro.core.fastpath import FastPathConfig

    space = make_space()
    # clean attribution needs the fast path's dirty tracking
    space.manager.enable_fastpath(FastPathConfig())
    space.ingest(build_chain(4), cluster_size=4, root_name="t")
    space.swap_out(1)
    space.swap_in(1)
    _cool(space)
    cluster = space.clusters()[1]
    assert working_set_bytes(space, cluster) == 0
    assert hot_fraction(space, cluster) == 0.0


def test_dirty_objects_stay_hot_after_the_window():
    from repro.core.fastpath import FastPathConfig

    space = make_space()
    space.manager.enable_fastpath(FastPathConfig())
    handle = space.ingest(build_chain(4), cluster_size=4, root_name="t")
    space.swap_out(1)
    handle.set_value(99)  # dirties through the barrier
    _cool(space)
    cluster = space.clusters()[1]
    assert working_set_bytes(space, cluster) > 0


def test_rank_evicts_idle_before_background_before_foreground():
    space = make_space()
    fg = space.ingest(build_chain(4), cluster_size=4, root_name="fg")
    bg = space.ingest(build_chain(4), cluster_size=4, root_name="bg")
    idle = space.ingest(build_chain(4), cluster_size=4, root_name="idle")
    space.set_priority(fg, Priority.FOREGROUND)
    space.set_priority(bg, Priority.BACKGROUND)
    space.set_priority(idle, Priority.IDLE)
    _cool(space)
    ranked = rank_responsiveness(space)
    assert ranked == [3, 2, 1]  # idle first, foreground last


def test_rank_prefers_cold_over_hot_within_a_band():
    from repro.core.fastpath import FastPathConfig

    space = make_space()
    space.manager.enable_fastpath(FastPathConfig())
    space.ingest(build_chain(4), cluster_size=4, root_name="cold")
    hot = space.ingest(build_chain(4), cluster_size=4, root_name="hot")
    for sid in (1, 2):
        space.swap_out(sid)
        space.swap_in(sid)
    _cool(space)
    hot.get_value()  # only the hot cluster crossed recently
    ranked = rank_responsiveness(space)
    assert ranked[0] == 1


def test_responsiveness_registered_as_victim_strategy():
    space = make_space()
    space.ingest(build_chain(4), cluster_size=4, root_name="a")
    space.ingest(build_chain(4), cluster_size=4, root_name="b")
    assert select_victims(space, "responsiveness")  # resolves and ranks
