"""Figure 5 harness correctness (small sizes; timing shape is the
benchmark suite's job)."""

import pytest

from repro.bench.figure5 import (
    CLUSTER_SIZES,
    Figure5Config,
    make_fixture,
    run_figure5,
    run_single,
    test_a1 as body_a1,
    test_a2 as body_a2,
    test_b1 as body_b1,
    test_b2 as body_b2,
)
from repro.bench.report import PAPER_FIGURE5, check_shape, format_figure5_table


N = 400  # small but multi-cluster


@pytest.mark.parametrize("cluster_size", [20, 50, 100, None])
@pytest.mark.parametrize("body", [body_a1, body_a2, body_b1, body_b2])
def test_bodies_traverse_fully(body, cluster_size):
    handle, space = make_fixture(N, cluster_size)
    body(handle, N, space)  # the assertions inside verify full traversal
    if space is not None:
        space.verify_integrity()


def test_run_single_returns_positive_ms():
    assert run_single("A1", 20, objects=N, repeats=1) > 0


def test_fixture_no_swap_is_raw():
    handle, space = make_fixture(50, None)
    assert space is None
    assert type(handle).__name__ == "BenchNode"


def test_fixture_sized_clusters():
    handle, space = make_fixture(100, 20)
    non_root = [sid for sid in space.clusters() if sid != 0]
    assert len(non_root) == 5


def test_paper_reference_table_complete():
    for test in ("A1", "A2", "B1", "B2"):
        for size in CLUSTER_SIZES:
            assert size in PAPER_FIGURE5[test]


def test_report_formatting():
    config = Figure5Config(objects=200, repeats=1)
    result = run_figure5(config)
    table = format_figure5_table(result)
    assert "NO-SWAP" in table and "A2" in table and "(paper)" in table
    ok, notes = check_shape(result)
    assert len(notes) >= 8  # all checks evaluated (pass or fail at this size)
