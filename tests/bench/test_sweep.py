"""The parameter-sweep driver."""

import csv

import pytest

from repro.bench.sweep import Sweep


def _double(x, factor):
    return {"result": x * factor}


def test_points_cartesian_deterministic():
    sweep = Sweep("s", {"x": [1, 2], "factor": [10]}, _double)
    assert sweep.points() == [
        {"factor": 10, "x": 1},
        {"factor": 10, "x": 2},
    ]


def test_execute_records_measurements():
    sweep = Sweep("s", {"x": [1, 2, 3], "factor": [10]}, _double)
    records = sweep.execute()
    assert [record["result"] for record in records] == [10, 20, 30]
    assert all(record["error"] == "" for record in records)


def test_repeats_recorded():
    sweep = Sweep("s", {"x": [5], "factor": [1]}, _double, repeats=3)
    records = sweep.execute()
    assert [record["rep"] for record in records] == [0, 1, 2]


def test_rep_passed_when_accepted():
    def run(x, rep):
        return {"value": x + rep}

    sweep = Sweep("s", {"x": [100]}, run, repeats=2)
    records = sweep.execute()
    assert [record["value"] for record in records] == [100, 101]


def test_failures_recorded_not_raised():
    def flaky(x):
        if x == 2:
            raise RuntimeError("corner case")
        return {"ok": True}

    sweep = Sweep("s", {"x": [1, 2, 3]}, flaky)
    records = sweep.execute()
    assert records[1]["error"] == "RuntimeError: corner case"
    assert records[0]["error"] == "" and records[2]["error"] == ""


def test_write_csv(tmp_path):
    sweep = Sweep("s", {"x": [1, 2], "factor": [3]}, _double)
    sweep.execute()
    destination = sweep.write_csv(tmp_path / "out" / "results.csv")
    with destination.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert rows[0]["result"] == "3"
    assert rows[1]["x"] == "2"


def test_write_csv_requires_execution(tmp_path):
    sweep = Sweep("s", {"x": [1]}, _double)
    with pytest.raises(ValueError):
        sweep.write_csv(tmp_path / "no.csv")


def test_format_table():
    sweep = Sweep("s", {"x": [1], "factor": [2.0]}, _double)
    sweep.execute()
    table = sweep.format_table()
    assert "result" in table.splitlines()[0]
    assert "2" in table


def test_aggregate_means():
    def noisy(x, rep):
        return {"t": x * 10 + rep}

    sweep = Sweep("s", {"x": [1, 2]}, noisy, repeats=2)
    sweep.execute()
    aggregated = sweep.aggregate("t", by=["x"])
    assert aggregated == [
        {"x": 1, "t": 10.5, "n": 2},
        {"x": 2, "t": 20.5, "n": 2},
    ]


def test_sweep_drives_a_real_experiment(tmp_path):
    """End to end: sweep swap-cycle radio time over cluster sizes."""
    from repro.bench.workloads import build_list
    from repro.clock import SimulatedClock
    from repro.comm.transport import bluetooth_link
    from repro.core.space import Space
    from repro.devices.store import XmlStoreDevice

    def swap_cycle(cluster_size):
        clock = SimulatedClock()
        space = Space(f"sweep-{cluster_size}", heap_capacity=4 << 20, clock=clock)
        store = XmlStoreDevice("pc", capacity=4 << 20, link=bluetooth_link(clock))
        space.manager.add_store(store)
        space.ingest(build_list(400), cluster_size=cluster_size, root_name="h")
        location = space.manager.swap_out(2)
        return {"radio_s": clock.now(), "xml_bytes": location.xml_bytes}

    sweep = Sweep("swap-cycle", {"cluster_size": [10, 50, 100]}, swap_cycle)
    records = sweep.execute()
    assert all(not record["error"] for record in records)
    radio = {record["cluster_size"]: record["radio_s"] for record in records}
    assert radio[100] > radio[10]
    sweep.write_csv(tmp_path / "cycle.csv")
    assert (tmp_path / "cycle.csv").exists()
