"""The big-stack recursion runner."""

import pytest

from repro.bench.deepcall import run_deep


def test_returns_value():
    assert run_deep(lambda: 42) == 42


def test_deep_recursion_succeeds():
    def recurse(n):
        return 0 if n == 0 else 1 + recurse(n - 1)

    assert run_deep(lambda: recurse(50_000)) == 50_000


def test_exception_propagates():
    def boom():
        raise ValueError("inner failure")

    with pytest.raises(ValueError, match="inner failure"):
        run_deep(boom)


def test_recursion_limit_restored():
    import sys

    before = sys.getrecursionlimit()
    run_deep(lambda: 1)
    assert sys.getrecursionlimit() == before
