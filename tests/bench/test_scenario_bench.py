"""Scenario bench harness: script determinism, scoring math, one real run."""

from repro.bench.scenarios import (
    ScenarioBenchConfig,
    _p95,
    _worst,
    build_script,
    format_table,
    run_once,
    run_scenarios,
    script_seed,
)
from repro.faults.scenarios import SCENARIOS, ScenarioPhase, ScenarioSpec


def test_p95_math():
    assert _p95([]) == 0.0
    assert _p95([3.0]) == 3.0
    assert _p95([float(v) for v in range(1, 101)]) == 95.0


def test_script_seed_distinguishes_scenarios_and_seeds():
    spike = SCENARIOS["memory_spike"]()
    storm = SCENARIOS["app_switch_storm"]()
    assert script_seed(spike, 1) != script_seed(storm, 1)
    assert script_seed(spike, 1) != script_seed(spike, 2)


def test_build_script_is_deterministic():
    # the ladder and baseline runs must replay byte-identical workloads;
    # any nondeterminism here silently invalidates the comparison
    spec = SCENARIOS["store_fleet_brownout"]()
    assert build_script(spec, 3) == build_script(spec, 3)
    assert build_script(spec, 3) != build_script(spec, 4)


def test_script_covers_every_phase_step():
    spec = SCENARIOS["memory_spike"]()
    script = build_script(spec, 1)
    assert len(script) == sum(phase.steps for phase in spec.phases)
    spiking = [step for step in script if step.spike_objects > 0]
    assert len(spiking) == 1  # the spike lands on the phase's first step
    assert any(step.release_spike for step in script)


def test_script_arrivals_use_fresh_task_indexes():
    spec = SCENARIOS["flash_crowd"]()
    script = build_script(spec, 1)
    arrived = [task for step in script for task in step.arrivals]
    assert arrived == sorted(arrived)
    assert len(set(arrived)) == len(arrived)
    assert min(arrived) == spec.tasks  # fresh, beyond the initial tasks


def test_worst_of_seeds_takes_the_bad_side():
    good = {"p95_stall_s": 0.1, "foreground_p95_stall_s": 0.1,
            "max_stall_s": 0.2, "foreground_oom": 0, "oom_kills": 0,
            "slo_met": True}
    bad = {"p95_stall_s": 5.0, "foreground_p95_stall_s": 4.0,
           "max_stall_s": 9.0, "foreground_oom": 2, "oom_kills": 3,
           "slo_met": False}
    worst = _worst([good, bad])
    assert worst["p95_stall_s"] == 5.0
    assert worst["foreground_oom"] == 2
    assert not worst["slo_met"]


def _tiny_spec():
    """A seconds-scale spec so the harness itself can be tested."""
    return ScenarioSpec(
        name="memory_spike",  # reuse a registered name for seeding
        description="tiny",
        phases=(
            ScenarioPhase(name="warm", steps=4, touches_per_step=4),
            ScenarioPhase(name="spike", steps=4, touches_per_step=4,
                          spike_objects=8, pattern="foreground"),
        ),
        tasks=4,
        objects_per_task=8,
        heap_capacity=12 << 10,
        store_capacity=64 << 10,
        store_count=2,
    )


def test_run_once_scores_both_modes():
    spec = _tiny_spec()
    script = build_script(spec, 1)
    for ladder in (True, False):
        result = run_once(spec, 1, script, ladder=ladder)
        assert result["mode"] == ("ladder" if ladder else "baseline")
        assert result["stall_samples"] > 0
        assert result["p95_stall_s"] >= 0.0
        assert isinstance(result["slo_met"], bool)
        assert result["sim_duration_s"] > 0.0
    ladder_result = run_once(spec, 1, script, ladder=True)
    assert "rung_transitions" in ladder_result
    assert "final_rung" in ladder_result


def test_run_once_is_deterministic_per_seed():
    spec = _tiny_spec()
    script = build_script(spec, 2)
    first = run_once(spec, 2, script, ladder=True)
    second = run_once(spec, 2, script, ladder=True)
    for key in ("p95_stall_s", "stall_samples", "oom_kills",
                "foreground_oom", "sim_duration_s"):
        assert first[key] == second[key]


def test_quick_config_runs_one_seed_everywhere():
    config = ScenarioBenchConfig.quick_config(7)
    assert config.seeds == (7,)
    assert set(config.scenarios) == set(SCENARIOS)


def test_report_shape_and_table(monkeypatch):
    # shrink the world so the full pipeline stays test-sized
    monkeypatch.setitem(SCENARIOS, "memory_spike", _tiny_spec)
    config = ScenarioBenchConfig(seeds=(1,), scenarios=("memory_spike",))
    report = run_scenarios(config)
    assert report["benchmark"] == "scenarios"
    entry = report["scenarios"]["memory_spike"]
    assert set(entry["seeds"]) == {"1"}
    assert {"ladder", "baseline"} <= set(entry["seeds"]["1"])
    assert set(entry["slo"]) == {"ladder_met", "baseline_violates"}
    table = format_table(report)
    assert "memory_spike" in table
    assert "scenario" in table
