"""With the codec off, the hot path is bit-identical to the committed
pre-codec results.

The binary codec is strictly opt-in: ``FastPathConfig.codec`` defaults
to ``None`` and every codec hook sits behind a successful negotiation.
The strongest regression guard is replaying the swap hot-path bench —
same workload, same simulated clock — and comparing the *entire*
scenario result (simulated percentiles, link bytes, every counter)
against the entry committed in ``BENCH_swap_hotpath.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.bench.hotpath import HotPathConfig, run_scenario
from repro.core.fastpath import FastPathConfig

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_swap_hotpath.json"

PLANS = {
    "baseline": (False, False),
    "fastpath_clean": (True, False),
    "fastpath_mutating": (True, True),
}


@pytest.fixture(scope="module")
def committed():
    if not BENCH_PATH.exists():
        pytest.skip(
            "BENCH_swap_hotpath.json not present (bench artifacts are "
            "generated, not tracked) — run "
            "`python -m repro.bench.hotpath --quick` first"
        )
    return json.loads(BENCH_PATH.read_text())


def _config(committed) -> HotPathConfig:
    return HotPathConfig(
        **{
            key: value
            for key, value in committed["config"].items()
            if key in HotPathConfig.__dataclass_fields__
        }
    )


@pytest.mark.parametrize("scenario", sorted(PLANS))
def test_codec_off_run_matches_committed_bench(committed, scenario):
    fastpath, mutate = PLANS[scenario]
    result = run_scenario(
        scenario, _config(committed), fastpath=fastpath, mutate=mutate
    )
    assert asdict(result) == committed["scenarios"][scenario]


def test_explicit_codec_none_is_the_default_pipeline(committed):
    """``FastPathConfig(codec=None)`` spelled out is the same machine."""
    result = run_scenario(
        "fastpath_clean",
        _config(committed),
        fastpath=True,
        mutate=False,
        fastpath_config=FastPathConfig(codec=None),
    )
    assert asdict(result) == committed["scenarios"]["fastpath_clean"]
