"""Tenancy bench harness: workload determinism, scoring, both modes."""

from __future__ import annotations

from repro.bench.tenancy import (
    TENANT_LIMITS,
    TENANT_ORDER,
    VICTIM_SLO_S,
    format_table,
    run_bench,
    run_once,
    tenant_specs,
)


def test_tenant_specs_share_one_phase_skeleton():
    specs = tenant_specs(quick=True)
    assert set(specs) == set(TENANT_ORDER)
    skeletons = {
        name: [(p.name, p.steps, p.step_s) for p in spec.phases]
        for name, spec in specs.items()
    }
    # identical timings let the driver interleave rounds on one clock
    assert len({tuple(s) for s in skeletons.values()}) == 1
    # the aggressor actually bursts: arrivals plus an allocation spike
    burst = specs["aggressor"].phase_named("burst")
    assert burst.arrivals_per_step > 0 and burst.spike_objects > 0
    # the victim holds a foreground working set, not a sweep
    assert specs["victim"].phase_named("burst").pattern == "foreground"


def test_quick_specs_are_smaller_than_full():
    quick = tenant_specs(quick=True)
    full = tenant_specs(quick=False)
    for name in TENANT_ORDER:
        quick_steps = sum(p.steps for p in quick[name].phases)
        full_steps = sum(p.steps for p in full[name].phases)
        assert quick_steps < full_steps


def test_limits_give_victim_the_defended_guarantee():
    assert TENANT_LIMITS["victim"]["guaranteed_share"] > (
        TENANT_LIMITS["aggressor"]["guaranteed_share"]
    )
    shares = sum(t["guaranteed_share"] for t in TENANT_LIMITS.values())
    assert shares <= 1.0
    # the aggressor's own quota is NOT what restrains it
    assert TENANT_LIMITS["aggressor"]["quota_fraction"] >= 0.9


def test_run_once_scores_every_tenant_and_mode():
    for fleet in (True, False):
        result = run_once(5, fleet=fleet, quick=True)
        assert result["mode"] == ("fleet" if fleet else "off")
        assert set(result["tenants"]) == set(TENANT_ORDER)
        for entry in result["tenants"].values():
            assert entry["stall_samples"] > 0
            assert entry["p95_stall_s"] >= 0.0
            assert entry["degraded_swaps"] >= 0
        iso = result["isolation"]
        assert iso["victim_slo_s"] == VICTIM_SLO_S
        if fleet:
            assert "held" in iso
            assert "fleet" in result and "control_plane" in result
            assert result["control_plane"]["undelivered"] == 0
        else:
            assert "violated" in iso
            assert "fleet" not in result


def test_run_once_is_deterministic_per_seed():
    first = run_once(4, fleet=True, quick=True)
    second = run_once(4, fleet=True, quick=True)
    for name in TENANT_ORDER:
        assert first["tenants"][name] == second["tenants"][name]
    assert first["isolation"] == second["isolation"]


def test_off_mode_never_arbitrates():
    result = run_once(6, fleet=False, quick=True)
    for entry in result["tenants"].values():
        assert entry["counters"]["fleet.admission.denials"] == 0
        assert entry["counters"]["fleet.reclaim.evictions"] == 0
        assert entry["evicted_copies"] == 0


def test_report_shape_and_table():
    report = run_bench((3,), quick=True)
    assert report["benchmark"] == "tenancy"
    assert set(report["seeds"]) == {"3"}
    entry = report["seeds"]["3"]
    assert {"fleet", "off"} == set(entry)
    assert set(report["summary"]) == {
        "isolation_held",
        "tenancy_off_violates",
    }
    table = format_table(report)
    assert "victim p95" in table
    assert "fleet" in table and "off" in table
