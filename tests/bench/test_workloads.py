"""Benchmark workload builders."""

from repro.bench.workloads import (
    BenchNode,
    build_list,
    build_managed_list,
    build_record_clusters,
    zipf_indexes,
)
from repro.memory.sizemodel import DEFAULT_SIZE_MODEL
from tests.helpers import make_space


def test_bench_node_is_64_bytes():
    assert DEFAULT_SIZE_MODEL.size_of(BenchNode(0)) == 64


def test_build_list_shape():
    head = build_list(100)
    count = 0
    cursor = head
    while cursor is not None:
        assert cursor.index == count
        cursor = cursor.next
        count += 1
    assert count == 100


def test_depth_method():
    assert build_list(50).depth(1) == 50


def test_peek_method():
    head = build_list(30)
    assert head.peek(10).index == 10
    assert head.peek(0) is head
    tail_probe = build_list(5).peek(10)  # clamps at the end
    assert tail_probe.index == 4


def test_probe_method():
    assert build_list(25).probe(1) == 25


def test_build_managed_list():
    space = make_space()
    handle = build_managed_list(space, 60, cluster_size=20)
    assert space.object_count() == 60
    assert len([s for s in space.clusters() if s != 0]) == 3
    assert handle.get_index() == 0
    space.verify_integrity()


def test_record_clusters():
    space = make_space(heap_capacity=4 << 20)
    handles = build_record_clusters(space, cluster_count=5, records_per_cluster=8)
    assert len(handles) == 5
    assert handles[0].get_key() == 0
    assert handles[3].get_key() == 24


def test_zipf_trace_skewed():
    trace = zipf_indexes(10, 5000)
    assert len(trace) == 5000
    counts = [trace.count(index) for index in range(10)]
    assert counts[0] > counts[-1] * 2  # head much hotter than tail
    assert zipf_indexes(10, 100) == zipf_indexes(10, 100)  # deterministic
