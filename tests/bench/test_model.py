"""The analytical traversal-cost model."""

import pytest

from repro.bench.model import (
    TraversalModel,
    _extra_proxy_probability,
    fit_traversal_model,
    holdout_error,
)


def _synthesize(objects, t_step, t_boundary, t_proxy=0.0, inner_depth=0, sizes=(20, 50, 100)):
    cells = {None: objects * t_step}
    for size in sizes:
        cells[size] = (
            objects * t_step
            + (objects / size) * t_boundary
            + objects * _extra_proxy_probability(size, inner_depth) * t_proxy
        )
    return cells


def test_fit_recovers_exact_parameters():
    cells = _synthesize(10_000, t_step=0.0002, t_boundary=0.003)
    model = fit_traversal_model(10_000, cells)
    assert model.t_step_ms == pytest.approx(0.0002, rel=1e-6)
    assert model.t_boundary_ms == pytest.approx(0.003, rel=1e-6)
    assert model.r_squared == pytest.approx(1.0)


def test_fit_with_proxy_term():
    # a size below the inner depth is required to separate the boundary
    # and proxy terms (above it, min(1, d/s) is proportional to 1/s)
    cells = _synthesize(
        10_000, t_step=0.001, t_boundary=0.002, t_proxy=0.004,
        inner_depth=10, sizes=(5, 20, 50, 100),
    )
    model = fit_traversal_model(10_000, cells, inner_depth=10)
    assert model.t_proxy_ms == pytest.approx(0.004, rel=1e-6)
    assert model.predict_ms(20) == pytest.approx(cells[20], rel=1e-6)
    assert model.predict_ms(5) == pytest.approx(cells[5], rel=1e-6)


def test_predictions_monotone_in_cluster_size():
    model = TraversalModel(
        objects=10_000, t_step_ms=0.0002, t_boundary_ms=0.003,
        t_proxy_ms=0.0, inner_depth=0, r_squared=1.0,
    )
    assert model.predict_ms(None) < model.predict_ms(100) < model.predict_ms(20)


def test_extra_proxy_probability_matches_paper_claim():
    # "roughly half of the object references returned by the inner
    # recursions" cross a boundary at depth 10, cluster size 20
    assert _extra_proxy_probability(20, 10) == 0.5
    assert _extra_proxy_probability(5, 10) == 1.0
    assert _extra_proxy_probability(100, 0) == 0.0


def test_holdout_prediction():
    cells = _synthesize(10_000, t_step=0.0005, t_boundary=0.005)
    predicted, relative_error, model = holdout_error(10_000, cells, holdout=50)
    assert relative_error < 1e-9
    assert predicted == pytest.approx(cells[50])


def test_fit_requires_noswap_cell():
    with pytest.raises(ValueError):
        fit_traversal_model(100, {20: 5.0})


def test_fit_requires_enough_sized_cells():
    with pytest.raises(ValueError):
        fit_traversal_model(100, {None: 1.0, 20: 5.0}, inner_depth=10)


def test_fit_on_real_measurement():
    """Fit the model to a real (small) Figure 5 run: it must explain the
    measured A1 curve well and predict the held-out column decently."""
    from repro.bench.figure5 import run_single

    objects = 5_000
    # timing under a loaded machine is noisy at these small cells: allow
    # one full re-measurement before judging the fit
    for attempt in range(2):
        cells = {
            size: run_single("A1", size, objects=objects, repeats=5)
            for size in (5, 10, 25, 50, None)
        }
        model = fit_traversal_model(objects, cells)
        predicted, relative_error, _ = holdout_error(objects, cells, holdout=25)
        if model.r_squared > 0.8 and relative_error < 0.35:
            break
    assert model.t_step_ms > 0
    assert model.t_boundary_ms > 0
    assert model.r_squared > 0.7
    assert relative_error < 0.5  # noisy small cells; shape must hold


def test_describe():
    model = fit_traversal_model(
        1_000, _synthesize(1_000, t_step=0.001, t_boundary=0.01)
    )
    text = model.describe()
    assert "R^2" in text and "T(s)" in text
