"""The Figure 5 reporting module (tables + shape checks) in isolation."""

import pytest

from repro.bench.figure5 import Figure5Config, Figure5Result
from repro.bench.report import PAPER_FIGURE5, check_shape, format_figure5_table


def _result(millis):
    config = Figure5Config(objects=10_000, repeats=1)
    result = Figure5Result(config=config)
    result.millis = millis
    return result


def _good_shape():
    return _result(
        {
            "A1": {20: 3.0, 50: 2.4, 100: 2.1, None: 1.6},
            "A2": {20: 60.0, 50: 32.0, 100: 24.0, None: 13.0},
            "B1": {20: 55.0, 50: 53.0, 100: 52.0, None: 0.4},
            "B2": {20: 10.0, 50: 9.0, 100: 8.5, None: 0.4},
        }
    )


def test_good_shape_passes_every_check():
    ok, notes = check_shape(_good_shape())
    assert ok, [note for flag, note in notes if not flag]
    assert len(notes) == 10


def test_overhead_and_speedup_helpers():
    result = _good_shape()
    assert result.overhead_pct("A1", 20) == pytest.approx(87.5)
    assert result.speedup_b2_over_b1(20) == pytest.approx(5.5)


def test_noswap_lower_bound_violation_detected():
    result = _good_shape()
    result.millis["A1"][None] = 10.0  # slower than every swapped config
    ok, notes = check_shape(result)
    assert not ok
    assert any("lower bound" in note and not flag for flag, note in notes)


def test_non_monotone_overhead_detected():
    result = _good_shape()
    result.millis["A2"][100] = 90.0  # bigger clusters suddenly slower
    ok, notes = check_shape(result)
    assert not ok


def test_weak_assign_speedup_detected():
    result = _good_shape()
    result.millis["B2"] = {20: 30.0, 50: 28.0, 100: 27.0, None: 0.4}
    ok, notes = check_shape(result)
    assert not ok
    assert any("five-fold" in note and not flag for flag, note in notes)


def test_table_renders_paper_and_measured():
    table = format_figure5_table(_good_shape())
    lines = table.splitlines()
    assert any("(paper)" in line for line in lines)
    assert any("NO-SWAP" in line for line in lines)
    assert "overhead vs NO-SWAP" in table
    # the paper's values appear verbatim
    assert "467.0" in table


def test_paper_reference_matches_figure5_text():
    # spot-check the transcription against the paper's quoted ranges
    assert PAPER_FIGURE5["A1"][20] == 43.0 and PAPER_FIGURE5["A1"][None] == 35.0
    assert PAPER_FIGURE5["A2"][20] == 467.0 and PAPER_FIGURE5["A2"][None] == 305.0
    assert PAPER_FIGURE5["B2"][None] == 36.0
    # "more than five-fold in all cases"
    for size in (20, 50, 100):
        assert PAPER_FIGURE5["B1"][size] / PAPER_FIGURE5["B2"][size] > 5.0
