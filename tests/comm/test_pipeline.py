"""The pipelined transfer scheduler and the link-protocol regressions."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.pipeline import PipelineStats, TransferScheduler
from repro.comm.transport import (
    FRAME_OVERHEAD_BYTES,
    LoopbackLink,
    SimulatedLink,
    bluetooth_link,
)
from repro.faults import FaultInjector, FaultPlan, FlakyLink


def _link(clock, name="l"):
    # 1000 bytes/s, no latency: transfer costs are easy to predict
    return SimulatedLink(8000, latency_s=0.0, clock=clock, name=name)


# -- concurrency model -----------------------------------------------------


def test_independent_links_overlap_on_separate_channels():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    a, b = _link(clock, "a"), _link(clock, "b")

    with scheduler.channel(a):
        a.transfer(1000)  # 1s of radio time
    with scheduler.channel(b):
        b.transfer(1000)  # overlaps the first on channel 2

    assert clock.now() == 0.0  # global time has not moved yet
    assert scheduler.in_flight()
    waited = scheduler.drain()
    assert waited == pytest.approx(1.0)  # concurrent, not 2.0 serial
    assert clock.now() == pytest.approx(1.0)
    assert scheduler.stats.transfers == 2
    assert scheduler.stats.serial_s == pytest.approx(2.0)
    assert scheduler.stats.pipelined_s == pytest.approx(1.0)
    assert scheduler.stats.saved_s == pytest.approx(1.0)
    assert scheduler.stats.barriers == 1


def test_same_physical_link_never_overlaps_itself():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=4)
    link = _link(clock)

    for _ in range(3):
        with scheduler.channel(link):
            link.transfer(1000)

    # one radio: three transfers serialize even across four channels
    assert scheduler.drain() == pytest.approx(3.0)


def test_fanout_wider_than_channels_queues():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    links = [_link(clock, f"l{i}") for i in range(4)]

    for link in links:
        with scheduler.channel(link):
            link.transfer(1000)

    # 4 one-second transfers on 2 channels: 2 serialized rounds
    assert scheduler.drain() == pytest.approx(2.0)


def test_transfers_restore_the_global_clock_and_keep_stats():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    link = _link(clock)
    with scheduler.channel(link):
        link.transfer(500)
    assert link.clock is clock  # shadow clock swapped back
    assert link.stats.transfers == 1  # link accounting untouched
    assert link.stats.bytes_carried == 500


def test_unmodelable_links_run_inline():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    loopback = LoopbackLink()
    with scheduler.channel(loopback):
        loopback.transfer(100)
    with scheduler.channel(None):
        pass
    assert scheduler.stats.transfers == 0  # nothing was scheduled
    assert not scheduler.in_flight()
    assert scheduler.drain() == 0.0
    assert scheduler.stats.barriers == 0


def test_flaky_wrappers_are_unwrapped_to_the_simulated_link():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    injector = FaultInjector(FaultPlan.empty(), clock=clock)
    flaky = FlakyLink(_link(clock), injector)
    with scheduler.channel(flaky):
        flaky.transfer(1000)
    assert clock.now() == 0.0
    assert scheduler.drain() == pytest.approx(1.0)


def test_nested_channels_run_the_inner_inline():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    link = _link(clock)
    with scheduler.channel(link):
        with scheduler.channel(link):  # link already on a shadow clock
            link.transfer(1000)
    assert scheduler.stats.transfers == 1  # scheduled once, not twice
    assert scheduler.drain() == pytest.approx(1.0)


def test_work_started_after_a_drain_schedules_from_the_new_now():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=1)
    link = _link(clock)
    with scheduler.channel(link):
        link.transfer(1000)
    scheduler.drain()
    with scheduler.channel(link):
        link.transfer(1000)
    assert scheduler.drain() == pytest.approx(1.0)
    assert clock.now() == pytest.approx(2.0)


def test_scheduler_rejects_zero_channels():
    with pytest.raises(ValueError):
        TransferScheduler(SimulatedClock(), channels=0)


def test_pipeline_stats_saved_never_negative():
    stats = PipelineStats(serial_s=1.0, pipelined_s=3.0)
    assert stats.saved_s == 0.0


# -- link protocol regressions --------------------------------------------


def test_empty_batch_is_free_on_the_simulated_link():
    clock = SimulatedClock()
    link = bluetooth_link(clock)
    assert link.batch_transfer_time([]) == 0.0
    assert link.transfer_batch([]) == 0.0
    # no connection was opened: no latency charged, no stats recorded
    assert clock.now() == 0.0
    assert link.stats.transfers == 0
    assert link.stats.bytes_carried == 0


def test_nonempty_batch_still_pays_latency_once():
    clock = SimulatedClock()
    link = bluetooth_link(clock)
    elapsed = link.transfer_batch([100, 100])
    assert elapsed == pytest.approx(link.latency_s + (200 + 2 * FRAME_OVERHEAD_BYTES) * 8 / link.bandwidth_bps)


def test_empty_batch_is_a_noop_on_loopback():
    link = LoopbackLink()
    assert link.transfer_batch([]) == 0.0
    assert link.stats.transfers == 0


def test_loopback_link_matches_the_simulated_link_protocol():
    link = LoopbackLink()
    seen = []
    link.on_transfer = lambda l, nbytes, elapsed: seen.append((nbytes, elapsed))
    link.transfer(100)
    link.transfer_batch([50, 50])
    assert link.stats.transfers == 2
    assert link.stats.frames == 3
    assert link.stats.bytes_carried == 200
    assert link.bytes_carried == 200  # historical alias still works
    assert seen == [(100, 0.0), (100, 0.0)]


# -- mid-flight failure accounting -----------------------------------------


def test_failed_transfer_blocks_the_radio_but_counts_as_waste():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    link = _link(clock)

    with pytest.raises(RuntimeError):
        with scheduler.channel(link) as slot:
            link.transfer(1000)  # 1s of radio time spent before the crash
            raise RuntimeError("mid-flight failure")

    assert slot.failed
    assert slot.duration_s == pytest.approx(1.0)
    assert scheduler.stats.failed_transfers == 1
    assert scheduler.stats.failed_s == pytest.approx(1.0)
    assert scheduler.stats.serial_s == 0.0  # waste is not useful work
    # the radio really was busy: the next transfer on the same link
    # queues behind the doomed window
    with scheduler.channel(link):
        link.transfer(1000)
    assert scheduler.drain() == pytest.approx(2.0)


def test_failed_seconds_are_mirrored_and_excluded_from_saturation():
    from repro.policy.pressure import links_busy_seconds

    class _Store:
        def __init__(self, link):
            self.link = link

    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    link = _link(clock)
    store = _Store(link)

    with scheduler.channel(link):
        link.transfer(1000)  # 1s useful
    with pytest.raises(RuntimeError):
        with scheduler.channel(link):
            link.transfer(2000)  # 2s doomed
            raise RuntimeError("interrupted ship")

    assert link.stats.seconds_charged == pytest.approx(3.0)
    assert link.stats.seconds_failed == pytest.approx(2.0)
    # the saturation input sees only the useful second: counting the
    # doomed window and its retry would double-charge the link
    assert links_busy_seconds([store]) == pytest.approx(1.0)


# -- mid-flight cancellation (demand preempting speculation) ---------------


def test_cancel_remainder_refunds_the_unelapsed_tail():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    link = _link(clock)

    with scheduler.channel(link) as slot:
        link.transfer(4000)  # books [0, 4] on the radio
    refund = scheduler.cancel_remainder(link, slot, at=1.0)

    assert refund == pytest.approx(3.0)
    # the head of the window stays burnt (bytes cannot be unsent), the
    # tail goes back: the radio frees at the cut
    assert scheduler.link_free_at(link) == pytest.approx(1.0)
    assert scheduler.stats.cancelled_transfers == 1
    assert scheduler.stats.cancelled_s == pytest.approx(3.0)
    assert scheduler.stats.serial_s == pytest.approx(0.0)
    assert scheduler.stats.failed_s == pytest.approx(1.0)
    # burnt seconds read as failed on the link, so saturation inputs
    # exclude them like any interrupted ship
    assert link.stats.seconds_failed == pytest.approx(4.0)


def test_cancel_remainder_refuses_completed_windows():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    link = _link(clock)
    with scheduler.channel(link) as slot:
        link.transfer(1000)
    scheduler.drain()  # the transfer has fully elapsed
    assert scheduler.cancel_remainder(link, slot, at=clock.now()) == 0.0
    assert scheduler.stats.cancelled_transfers == 0


def test_cancel_remainder_refuses_windows_with_traffic_stacked_behind():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=1)
    link = _link(clock)
    with scheduler.channel(link) as first:
        link.transfer(2000)
    with scheduler.channel(link):
        link.transfer(2000)  # stacks behind the first on radio + channel
    # the first window can no longer be reclaimed: a later booking
    # already extends past its end
    assert scheduler.cancel_remainder(link, first, at=0.5) == 0.0
    assert scheduler.drain() == pytest.approx(4.0)


def test_cancel_remainder_ignores_unschedulable_links():
    clock = SimulatedClock()
    scheduler = TransferScheduler(clock, channels=2)
    loopback = LoopbackLink()
    with scheduler.channel(loopback) as slot:
        loopback.transfer(100)
    assert scheduler.cancel_remainder(loopback, slot, at=0.0) == 0.0
