"""Nearby-device discovery."""

import pytest

from repro.comm.discovery import Neighborhood
from repro.devices import InMemoryStore
from repro.errors import DeviceNotFoundError
from repro.events import DeviceJoinedEvent, DeviceLeftEvent, EventBus


def test_join_and_discover():
    neighborhood = Neighborhood()
    store = InMemoryStore("pc")
    neighborhood.join(store)
    assert neighborhood.discover() == [store]


def test_join_emits_event():
    bus = EventBus()
    neighborhood = Neighborhood(bus=bus)
    neighborhood.join(InMemoryStore("pc"))
    assert bus.count(DeviceJoinedEvent) == 1


def test_leave():
    bus = EventBus()
    neighborhood = Neighborhood(bus=bus)
    neighborhood.join(InMemoryStore("pc"))
    neighborhood.leave("pc")
    assert neighborhood.discover() == []
    assert bus.count(DeviceLeftEvent) == 1


def test_leave_unknown_raises():
    with pytest.raises(DeviceNotFoundError):
        Neighborhood().leave("ghost")


def test_set_in_range_toggle():
    bus = EventBus()
    neighborhood = Neighborhood(bus=bus)
    neighborhood.join(InMemoryStore("pc"))
    neighborhood.set_in_range("pc", False)
    assert neighborhood.discover() == []
    neighborhood.set_in_range("pc", True)
    assert len(neighborhood.discover()) == 1
    assert bus.count(DeviceLeftEvent) == 1
    assert bus.count(DeviceJoinedEvent) == 2


def test_set_in_range_idempotent():
    bus = EventBus()
    neighborhood = Neighborhood(bus=bus)
    neighborhood.join(InMemoryStore("pc"))
    neighborhood.set_in_range("pc", True)  # already in range: no event
    assert bus.count(DeviceJoinedEvent) == 1


def test_positional_join_out_of_range():
    neighborhood = Neighborhood(radio_range=5.0)
    neighborhood.join(InMemoryStore("far"), position=(10.0, 0.0))
    assert neighborhood.discover() == []


def test_device_movement():
    bus = EventBus()
    neighborhood = Neighborhood(bus=bus, radio_range=5.0)
    neighborhood.join(InMemoryStore("pc"), position=(1.0, 0.0))
    neighborhood.move_device("pc", 20.0, 0.0)
    assert neighborhood.discover() == []
    neighborhood.move_device("pc", 2.0, 2.0)
    assert len(neighborhood.discover()) == 1


def test_own_movement_reevaluates():
    neighborhood = Neighborhood(radio_range=5.0)
    neighborhood.join(InMemoryStore("pc"), position=(10.0, 0.0))
    assert neighborhood.discover() == []
    neighborhood.move_self(8.0, 0.0)
    assert len(neighborhood.discover()) == 1


def test_in_range_ids_and_len():
    neighborhood = Neighborhood()
    neighborhood.join(InMemoryStore("a"))
    neighborhood.join(InMemoryStore("b"))
    neighborhood.set_in_range("b", False)
    assert neighborhood.in_range_ids() == ["a"]
    assert len(neighborhood) == 2
