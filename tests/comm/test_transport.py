"""Simulated links."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import (
    BLUETOOTH_BPS,
    LoopbackLink,
    SimulatedLink,
    bluetooth_link,
    wifi_link,
)
from repro.errors import TransportError


def test_loopback_free():
    link = LoopbackLink()
    assert link.transfer(1000) == 0.0
    assert link.bytes_carried == 1000
    assert link.is_up


def test_transfer_time_model():
    link = SimulatedLink(1000, latency_s=0.1)  # 1000 bps
    # 125 bytes = 1000 bits = 1 second + latency
    assert link.transfer_time(125) == pytest.approx(1.1)


def test_transfer_charges_clock():
    clock = SimulatedClock()
    link = SimulatedLink(8000, latency_s=0.0, clock=clock)
    link.transfer(1000)  # 8000 bits at 8000 bps = 1 s
    assert clock.now() == pytest.approx(1.0)


def test_stats_accumulate():
    link = SimulatedLink(1_000_000, latency_s=0.01)
    link.transfer(100)
    link.transfer(200)
    assert link.stats.transfers == 2
    assert link.stats.bytes_carried == 300
    assert link.stats.seconds_charged > 0


def test_down_link_raises():
    link = SimulatedLink(1000)
    link.fail()
    assert not link.is_up
    with pytest.raises(TransportError):
        link.transfer(10)
    link.restore()
    link.transfer(10)


def test_bluetooth_factory_uses_paper_rate():
    clock = SimulatedClock()
    link = bluetooth_link(clock, latency_s=0.0)
    assert link.bandwidth_bps == BLUETOOTH_BPS == 700_000
    link.transfer(700_000 // 8)  # one second of payload
    assert clock.now() == pytest.approx(1.0)


def test_wifi_faster_than_bluetooth():
    assert wifi_link().transfer_time(10_000) < bluetooth_link().transfer_time(10_000)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        SimulatedLink(0)
    with pytest.raises(ValueError):
        SimulatedLink(100, latency_s=-1)
