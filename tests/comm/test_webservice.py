"""The web-service bridge."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import LoopbackLink, SimulatedLink
from repro.comm.webservice import WebServiceClient, WebServiceEndpoint
from repro.errors import CodecError, TransportError, UnknownKeyError


def _endpoint():
    endpoint = WebServiceEndpoint("svc")
    endpoint.register("add", lambda a, b: a + b)
    endpoint.register("fail", lambda: (_ for _ in ()).throw(UnknownKeyError("nope")))
    return endpoint


def test_call_roundtrip():
    client = WebServiceClient(_endpoint(), LoopbackLink())
    assert client.call("add", a=2, b=3) == 5


def test_error_travels_in_band():
    client = WebServiceClient(_endpoint(), LoopbackLink())
    with pytest.raises(UnknownKeyError):
        client.call("fail")


def test_unknown_operation():
    client = WebServiceClient(_endpoint(), LoopbackLink())
    with pytest.raises(CodecError):
        client.call("nope")


def test_link_charged_both_ways():
    clock = SimulatedClock()
    link = SimulatedLink(8_000, latency_s=0.5, clock=clock)
    client = WebServiceClient(_endpoint(), link)
    client.call("add", a=1, b=1)
    assert link.stats.transfers == 2  # request + response
    assert clock.now() > 1.0  # two latencies at least


def test_down_link_blocks_call():
    link = SimulatedLink(1000)
    link.fail()
    client = WebServiceClient(_endpoint(), link)
    with pytest.raises(TransportError):
        client.call("add", a=1, b=2)


def test_requests_served_counter():
    endpoint = _endpoint()
    client = WebServiceClient(endpoint, LoopbackLink())
    client.call("add", a=1, b=1)
    client.call("add", a=2, b=2)
    assert endpoint.requests_served == 2


def test_operations_listing():
    assert _endpoint().operations() == ["add", "fail"]
