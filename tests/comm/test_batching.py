"""Link batching and compression negotiation."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import (
    FRAME_OVERHEAD_BYTES,
    SUPPORTED_COMPRESSIONS,
    LoopbackLink,
    bluetooth_link,
    chunk_text,
    compress_payload,
    decompress_payload,
    negotiate_compression,
)
from repro.errors import TransportError


# -- chunking -------------------------------------------------------------


def test_chunk_text_joins_back():
    text = "payload-" * 700
    frames = chunk_text(text, 256)
    assert all(len(frame) <= 256 for frame in frames)
    assert b"".join(frames).decode("utf-8") == text


def test_chunk_text_empty_and_exact():
    assert chunk_text("", 64) == []
    frames = chunk_text("x" * 128, 64)
    assert [len(frame) for frame in frames] == [64, 64]


def test_chunk_text_requires_positive_frame_size():
    with pytest.raises(ValueError):
        chunk_text("x", 0)


# -- negotiation ----------------------------------------------------------


def test_negotiation_picks_first_mutual_codec():
    assert negotiate_compression(("a", "b"), ("b", "c")) == "b"
    assert negotiate_compression(("b", "a"), ("a", "b")) == "b"  # our order


def test_negotiation_falls_back_to_plain():
    assert negotiate_compression(("zlib",), ()) is None
    assert negotiate_compression(("zlib",), None) is None  # legacy store
    assert negotiate_compression(("zlib",), ("lzma",)) is None
    assert negotiate_compression((), ("zlib",)) is None


def test_zlib_is_supported():
    assert "zlib" in SUPPORTED_COMPRESSIONS


# -- compression ----------------------------------------------------------


def test_compress_roundtrip():
    text = "<swap-cluster>" + "abc" * 500 + "</swap-cluster>"
    data = compress_payload(text, "zlib")
    assert len(data) < len(text.encode("utf-8"))
    assert decompress_payload(data, "zlib") == text


def test_plain_codec_is_passthrough():
    assert compress_payload("héllo", None) == "héllo".encode("utf-8")
    assert decompress_payload("héllo".encode("utf-8"), None) == "héllo"


def test_corrupt_zlib_payload_raises_transport_error():
    with pytest.raises(TransportError):
        decompress_payload(b"not zlib at all", "zlib")


def test_unknown_codec_raises_transport_error():
    with pytest.raises(TransportError):
        compress_payload("x", "lzma")
    with pytest.raises(TransportError):
        decompress_payload(b"x", "lzma")


# -- batched transfers ----------------------------------------------------


def test_batch_pays_latency_once():
    clock = SimulatedClock()
    link = bluetooth_link(clock)
    sizes = [1000, 1000, 500]
    expected = link.latency_s + (
        (sum(sizes) + FRAME_OVERHEAD_BYTES * len(sizes)) * 8
    ) / link.bandwidth_bps
    assert link.batch_transfer_time(sizes) == pytest.approx(expected)
    # versus three separate connections: two extra latencies
    individual = sum(link.transfer_time(nbytes) for nbytes in sizes)
    saved = individual - link.batch_transfer_time(sizes)
    assert saved == pytest.approx(
        2 * link.latency_s - (3 * FRAME_OVERHEAD_BYTES * 8) / link.bandwidth_bps
    )


def test_transfer_batch_charges_clock_and_stats():
    clock = SimulatedClock()
    link = bluetooth_link(clock)
    sizes = [100, 200, 300]
    elapsed = link.transfer_batch(sizes)
    assert clock.now() == pytest.approx(elapsed)
    assert elapsed == pytest.approx(link.batch_transfer_time(sizes))
    assert link.stats.transfers == 1  # one connection...
    assert link.stats.frames == 3  # ...carrying three frames
    assert link.stats.bytes_carried == 600 + 3 * FRAME_OVERHEAD_BYTES


def test_single_transfer_counts_one_frame():
    clock = SimulatedClock()
    link = bluetooth_link(clock)
    link.transfer(100)
    assert link.stats.transfers == 1
    assert link.stats.frames == 1


def test_transfer_batch_refuses_down_link():
    clock = SimulatedClock()
    link = bluetooth_link(clock)
    link.fail()
    with pytest.raises(TransportError):
        link.transfer_batch([10, 10])


def test_loopback_batch_is_free():
    link = LoopbackLink()
    assert link.transfer_batch([100, 200]) == 0.0
    assert link.is_up
