"""XML envelopes."""

import pytest

from repro.comm.messages import (
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.errors import CodecError, UnknownKeyError


def test_request_roundtrip():
    text = build_request("store", {"key": "k1", "text": "<xml/>", "n": 3})
    op, params = parse_request(text)
    assert op == "store"
    assert params == {"key": "k1", "text": "<xml/>", "n": 3}


def test_request_with_containers():
    text = build_request("op", {"items": [1, 2, {"k": "v"}]})
    _, params = parse_request(text)
    assert params["items"] == [1, 2, {"k": "v"}]


def test_response_ok_roundtrip():
    assert parse_response(build_response({"used": 12})) == {"used": 12}
    assert parse_response(build_response(None)) is None


def test_response_error_reraises_typed():
    text = build_response(error=UnknownKeyError("no key 'x'"))
    with pytest.raises(UnknownKeyError, match="no key"):
        parse_response(text)


def test_response_unknown_error_kind_falls_back():
    from repro.errors import ObiError

    text = build_response(error=ValueError("odd"))
    with pytest.raises(ObiError):  # ValueError isn't an ObiError: mapped
        parse_response(text.replace("ValueError", "NotARealError"))


def test_malformed_request():
    with pytest.raises(CodecError):
        parse_request("<envelope op='x'")
    with pytest.raises(CodecError):
        parse_request("<wrong/>")
    with pytest.raises(CodecError):
        parse_request("<envelope></envelope>")


def test_malformed_response():
    with pytest.raises(CodecError):
        parse_response("<response status='ok'></response>")
    with pytest.raises(CodecError):
        parse_response("<nope/>")


def test_payload_cannot_carry_references():
    text = build_request("op", {"v": 1})
    hacked = text.replace("<int>1</int>", '<ref oid="5"/>')
    with pytest.raises(CodecError):
        parse_request(hacked)
