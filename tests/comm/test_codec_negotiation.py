"""Wire-codec negotiation: advertisement, gating, demotion, error texts."""

import pytest

from repro.comm.transport import (
    SUPPORTED_CODECS,
    SUPPORTED_COMPRESSIONS,
    compress_body,
    decode_body,
    negotiate_codec,
)
from repro.core.fastpath import FastPathConfig, FastPathState
from repro.devices import InMemoryStore
from repro.devices.store import XmlStoreDevice
from repro.errors import CodecNegotiationError, TransportError


# -- negotiate_codec -----------------------------------------------------------


def test_negotiates_binary_when_both_ends_speak_it():
    assert negotiate_codec(("binary",), SUPPORTED_CODECS) == "binary"


def test_prefers_our_order_not_theirs():
    assert negotiate_codec(("binary", "xml"), ("xml", "binary")) == "binary"


def test_absent_advertisement_means_canonical_xml():
    assert negotiate_codec(("binary",), None) is None
    assert negotiate_codec(("binary",), ()) is None


def test_no_overlap_means_canonical_xml():
    assert negotiate_codec(("binary",), ("xml",)) is None


def test_xml_only_store_negotiates_xml():
    assert negotiate_codec(SUPPORTED_CODECS, ("xml",)) == "xml"


# -- FastPathState gating ------------------------------------------------------


def test_codec_off_never_negotiates_binary():
    state = FastPathState(config=FastPathConfig())
    assert state.negotiate_codec_for(InMemoryStore("s")) is None


def test_codec_on_negotiates_binary_with_advertising_store():
    state = FastPathState(config=FastPathConfig(codec="binary"))
    assert state.negotiate_codec_for(InMemoryStore("s")) == "binary"


def test_non_advertising_store_keeps_xml():
    state = FastPathState(config=FastPathConfig(codec="binary"))
    store = InMemoryStore("legacy")
    store.supported_codecs = ()  # a store predating the codec handshake
    assert state.negotiate_codec_for(store) is None


def test_negotiation_result_is_cached_per_device():
    state = FastPathState(config=FastPathConfig(codec="binary"))
    store = InMemoryStore("s")
    assert state.negotiate_codec_for(store) == "binary"
    # a later change to the advertisement does not re-negotiate
    store.supported_codecs = ()
    assert state.negotiate_codec_for(store) == "binary"


def test_demote_pins_store_to_xml():
    state = FastPathState(config=FastPathConfig(codec="binary"))
    store = InMemoryStore("s")
    assert state.negotiate_codec_for(store) == "binary"
    state.demote_codec(store)
    assert state.negotiate_codec_for(store) is None


def test_store_without_stream_support_keeps_xml():
    class TextOnly:
        device_id = "text-only"
        supported_codecs = SUPPORTED_CODECS
        store_stream = None

    state = FastPathState(config=FastPathConfig(codec="binary"))
    assert state.negotiate_codec_for(TextOnly()) is None


# -- error texts (debuggable negotiation failures) -----------------------------


def test_unknown_compression_names_the_supported_set():
    for convert in (compress_body, decode_body):
        with pytest.raises(TransportError) as exc_info:
            convert(b"data", "lz4")
        message = str(exc_info.value)
        assert "'lz4'" in message
        assert str(sorted(SUPPORTED_COMPRESSIONS)) in message


def test_store_rejects_unadvertised_codec_naming_itself():
    store = InMemoryStore("kiosk-7")
    store.supported_codecs = ("xml",)
    with pytest.raises(CodecNegotiationError) as exc_info:
        store.store_stream("k", [b"x"], codec="binary")
    message = str(exc_info.value)
    assert "kiosk-7" in message
    assert "'binary'" in message
    assert "['xml']" in message


def test_store_rejects_unknown_compression_naming_itself():
    device = XmlStoreDevice("desk-pc", capacity=1 << 20)
    with pytest.raises(TransportError) as exc_info:
        device.store_stream("k", [b"x"], compression="lz4")
    message = str(exc_info.value)
    assert "desk-pc" in message
    assert "'lz4'" in message
    assert str(sorted(SUPPORTED_COMPRESSIONS)) in message


def test_xml_and_none_codecs_always_pass():
    store = InMemoryStore("s")
    store.supported_codecs = ()
    store.store_stream("a", ["<swap-cluster/>".encode("utf-8")], codec=None)
    store.store_stream("b", ["<swap-cluster/>".encode("utf-8")], codec="xml")
    assert store.fetch("a") == "<swap-cluster/>"
    assert store.fetch("b") == "<swap-cluster/>"


def test_codec_negotiation_error_is_a_transport_error():
    assert issubclass(CodecNegotiationError, TransportError)
