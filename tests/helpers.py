"""Shared managed classes and graph builders for the test suite."""

from __future__ import annotations

from typing import Any, List, Optional

from repro import Space, managed
from repro.devices import InMemoryStore


@managed
class Node:
    """Linked-list node: the workhorse of swap tests."""

    def __init__(self, value: int) -> None:
        self.value = value
        self.next: Optional["Node"] = None

    def get_value(self) -> int:
        return self.value

    def get_next(self) -> Optional["Node"]:
        return self.next

    def set_value(self, value: int) -> int:
        self.value = value
        return value

    def identity_of(self, other: Any) -> Any:
        return other


@managed
class Pair:
    """Two references: exercises fan-out across clusters."""

    def __init__(self, left: Any = None, right: Any = None) -> None:
        self.left = left
        self.right = right

    def get_left(self) -> Any:
        return self.left

    def get_right(self) -> Any:
        return self.right

    def swap_sides(self) -> None:
        self.left, self.right = self.right, self.left


@managed
class Holder:
    """Container-heavy fields: lists, dicts, tuples of references."""

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.index: dict = {}
        self.fixed: tuple = ()

    def add(self, item: Any) -> None:
        self.items.append(item)

    def item_at(self, position: int) -> Any:
        return self.items[position]

    def put(self, key: Any, value: Any) -> None:
        self.index[key] = value

    def get(self, key: Any) -> Any:
        return self.index.get(key)

    def count(self) -> int:
        return len(self.items)


@managed(size=64)
class Small:
    """Fixed accounted size, like the Figure 5 bench objects."""

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.peer: Any = None

    def get_tag(self) -> int:
        return self.tag

    def get_peer(self) -> Any:
        return self.peer


@managed
class Factory:
    """Creates new managed objects inside its methods (absorption tests)."""

    def __init__(self) -> None:
        self.made = 0

    def make_node(self, value: int) -> Node:
        self.made += 1
        return Node(value)

    def make_chain(self, length: int) -> Node:
        head = Node(0)
        node = head
        for value in range(1, length):
            node.next = Node(value)
            node = node.next
        self.made += length
        return head


def build_chain(n: int, cls: type = Node) -> Any:
    head = cls(0)
    node = head
    for value in range(1, n):
        node.next = cls(value)
        node = node.next
    return head


def chain_values(handle: Any) -> List[int]:
    values = []
    cursor = handle
    while cursor is not None:
        values.append(cursor.get_value())
        cursor = cursor.get_next()
    return values


def make_space(
    name: str = "test",
    heap_capacity: int = 1 << 20,
    with_store: bool = True,
    **kwargs: Any,
) -> Space:
    space = Space(name, heap_capacity=heap_capacity, **kwargs)
    if with_store:
        space.manager.add_store(InMemoryStore(f"{name}-store"))
    return space
