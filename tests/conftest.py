"""Shared fixtures."""

from __future__ import annotations

import pytest

from tests.helpers import make_space


@pytest.fixture
def space():
    """A fresh space with one in-memory store attached."""
    return make_space()


@pytest.fixture
def bare_space():
    """A fresh space with no store (device-less scenarios)."""
    return make_space(with_store=False)
