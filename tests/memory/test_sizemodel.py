"""The deterministic size model."""

from repro.memory.sizemodel import (
    DEFAULT_SIZE_MODEL,
    OBJECT_HEADER_BYTES,
    SLOT_BYTES,
    CONTAINER_HEADER_BYTES,
    SizeModel,
    graph_footprint,
)
from tests.helpers import Holder, Node, Small


def test_size_hint_wins():
    assert DEFAULT_SIZE_MODEL.size_of(Small(1)) == 64


def test_header_plus_fields():
    node = Node(5)
    # header + (value slot + int payload) + (next slot + None)
    expected = OBJECT_HEADER_BYTES + (SLOT_BYTES + 8) + (SLOT_BYTES + 0)
    assert DEFAULT_SIZE_MODEL.size_of(node) == expected


def test_reference_fields_cost_one_slot():
    first, second = Node(1), Node(2)
    first.next = second
    # a reference costs the same as None: the pointee is accounted separately
    alone = Node(1)
    assert DEFAULT_SIZE_MODEL.size_of(first) == DEFAULT_SIZE_MODEL.size_of(alone)


def test_string_costs_utf8_bytes():
    node = Node(0)
    node.value = "héllo"
    with_str = DEFAULT_SIZE_MODEL.size_of(node)
    node.value = ""
    empty = DEFAULT_SIZE_MODEL.size_of(node)
    assert with_str - empty == len("héllo".encode("utf-8"))


def test_bytes_cost_length():
    node = Node(0)
    node.value = b"12345"
    base = Node(0)
    base.value = b""
    assert (
        DEFAULT_SIZE_MODEL.size_of(node) - DEFAULT_SIZE_MODEL.size_of(base) == 5
    )


def test_list_costs_header_plus_slots():
    holder = Holder()
    empty = DEFAULT_SIZE_MODEL.size_of(holder)
    holder.items.extend([1, 2, 3])
    grown = DEFAULT_SIZE_MODEL.size_of(holder)
    assert grown - empty == 3 * (SLOT_BYTES + 8)


def test_dict_costs_both_sides():
    holder = Holder()
    empty = DEFAULT_SIZE_MODEL.size_of(holder)
    holder.index["k"] = 1
    grown = DEFAULT_SIZE_MODEL.size_of(holder)
    assert grown - empty == 2 * SLOT_BYTES + 1 + 8  # key "k" + int payload


def test_internals_excluded():
    node = Node(1)
    before = DEFAULT_SIZE_MODEL.size_of(node)
    object.__setattr__(node, "_obi_oid", 12345)
    assert DEFAULT_SIZE_MODEL.size_of(node) == before


def test_proxy_and_replacement_sizes():
    model = SizeModel()
    assert model.proxy_size() == OBJECT_HEADER_BYTES + 4 * SLOT_BYTES
    assert (
        model.replacement_size(3)
        == CONTAINER_HEADER_BYTES + 3 * SLOT_BYTES
    )


def test_graph_footprint():
    objects = {1: Small(1), 2: Small(2)}
    count, total = graph_footprint(objects)
    assert count == 2
    assert total == 128


def test_custom_model_parameters():
    model = SizeModel(header_bytes=100, slot_bytes=1)
    node = Node(0)
    assert model.size_of(node) == 100 + (1 + 8) + (1 + 0)
