"""The local collector and its swap cooperation."""

import pytest

from repro.errors import IntegrityError
from repro.events import SwapDroppedEvent
from tests.helpers import Node, build_chain, chain_values, make_space


def test_reachable_graph_survives(space):
    space.ingest(build_chain(20), cluster_size=5, root_name="h")
    result = space.gc()
    assert result.objects_collected == 0
    assert space.object_count() == 20


def test_unreachable_resident_cluster_collected(space):
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    space.del_root("h")
    result = space.gc()
    assert result.objects_collected == 10
    assert result.clusters_collected == 1
    assert space.object_count() == 0
    assert space.heap.used == 0


def test_conservative_whole_cluster_rule(space):
    # two chains into one cluster-sized ingest; break one chain's root:
    # the cluster stays whole because the other chain still reaches it
    handle = space.ingest(build_chain(10), cluster_size=10, root_name="h")
    # drop an internal reference: tail objects are logical garbage now
    raw_head = space.resolve(handle)
    raw_head.next = None
    space.gc()
    # conservative: the whole cluster is preserved while its head lives
    assert space.object_count() == 10


def test_root_cluster_collected_per_object(space):
    first, second = Node(1), Node(2)
    space.set_root("a", first)
    space.set_root("b", second)
    space.del_root("a")
    result = space.gc()
    assert result.objects_collected == 1
    assert space.object_count() == 1


def test_unreachable_swapped_cluster_dropped_from_store(space):
    store = space.manager.available_stores()[0]
    dropped = []
    space.bus.subscribe(SwapDroppedEvent, lambda e: dropped.append(e.sid))
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert len(store.keys()) == 1
    space.del_root("h")
    result = space.gc()
    assert result.swapped_dropped == 1
    assert store.keys() == []
    assert dropped == [2]


def test_reachable_swapped_cluster_preserved_on_store(space):
    store = space.manager.available_stores()[0]
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.gc()
    assert len(store.keys()) == 1  # still reachable through the chain


def test_gc_frees_replacement_bytes(space):
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.del_root("h")
    space.gc()
    assert space.heap.used == 0


def test_stale_proxy_to_collected_cluster_raises(space):
    handle = space.ingest(build_chain(10), cluster_size=10, root_name="h")
    space.del_root("h")
    space.gc()
    with pytest.raises(IntegrityError):
        handle.get_value()


def test_gc_with_extra_roots_protects_locals(space):
    handle = space.ingest(build_chain(10), cluster_size=10, root_name="h")
    space.del_root("h")
    result = space.gc(extra_roots=(handle,))
    assert result.objects_collected == 0
    assert chain_values(handle) == list(range(10))


def test_partial_graph_collection(space):
    # two independent chains; drop one root
    space.ingest(build_chain(10), cluster_size=10, root_name="a")
    space.ingest(build_chain(6), cluster_size=6, root_name="b")
    space.del_root("a")
    result = space.gc()
    assert result.objects_collected == 10
    assert chain_values(space.get_root("b")) == list(range(6))


def test_collection_result_describe(space):
    space.ingest(build_chain(4), cluster_size=4, root_name="h")
    space.del_root("h")
    text = space.gc().describe()
    assert "4 objects" in text


def test_gc_emits_event(space):
    from repro.events import GcCompletedEvent

    space.ingest(build_chain(4), cluster_size=4, root_name="h")
    space.del_root("h")
    space.gc()
    event = space.bus.last(GcCompletedEvent)
    assert event is not None and event.collected_objects == 4


def test_swap_in_after_gc_of_other_cluster(space):
    space.ingest(build_chain(20), cluster_size=10, root_name="h")
    space.ingest(build_chain(5), cluster_size=5, root_name="dead")
    space.swap_out(2)
    space.del_root("dead")
    space.gc()
    assert chain_values(space.get_root("h")) == list(range(20))


def test_conservative_members_anchor_their_references(space):
    """Objects kept only by the whole-cluster rule still keep their own
    reference targets alive (cluster-transitive marking): a dead chain
    merged into a live cluster must not leave dangling proxies."""
    space.ingest(build_chain(9), cluster_size=3, root_name="dead")
    space.del_root("dead")
    live = space.ingest(build_chain(1), cluster_size=1, root_name="live")
    # fold the dead chain's first cluster into the live cluster
    live_sid = space.sid_of(live)
    space.merge_swap_clusters(live_sid, 1)
    space.gc()
    space.verify_integrity()
    # the dead head is conservatively kept, so everything it references
    # transitively survives too
    assert space.object_count() == 10


def test_conservative_transitivity_through_swapped_clusters(space):
    """The chain of anchors crosses a swapped cluster: resident dead
    member -> proxy -> replacement -> outbound proxy -> resident."""
    space.ingest(build_chain(9), cluster_size=3, root_name="dead")
    space.del_root("dead")
    live = space.ingest(build_chain(1), cluster_size=1, root_name="live")
    space.merge_swap_clusters(space.sid_of(live), 1)
    space.swap_out(2)  # the dead chain's middle cluster
    space.gc()
    space.verify_integrity()
    # middle stays swapped (reachable via the conservative anchor), and
    # the tail cluster behind it survives as well
    assert space.clusters()[2].is_swapped
    assert 3 in space.clusters()


def test_fully_dead_subgraph_still_collected_after_merge(space):
    space.ingest(build_chain(9), cluster_size=3, root_name="dead")
    live = space.ingest(build_chain(1), cluster_size=1, root_name="live")
    space.merge_swap_clusters(space.sid_of(live), 1)
    space.del_root("dead")
    space.del_root("live")
    result = space.gc()
    assert space.object_count() == 0
    assert result.objects_collected == 10
