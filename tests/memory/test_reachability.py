"""The marking walk, including the conservative swapped-cluster rule."""

from repro.memory.reachability import mark_from, space_roots
from tests.helpers import Holder, Node, Pair, build_chain, make_space


def test_marks_linear_chain(space):
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    result = mark_from(space_roots(space))
    assert len(result.oids) == 10


def test_unreferenced_objects_not_marked(space):
    space.ingest(build_chain(5), cluster_size=5, root_name="h")
    orphan = Node(99)
    space.adopt(orphan, space.new_swap_cluster().sid)
    result = mark_from(space_roots(space))
    assert orphan._obi_oid not in result.oids


def test_marks_through_containers(space):
    holder = Holder()
    holder.items.append(Node(1))
    holder.index["k"] = Node(2)
    holder.fixed = (Node(3),)
    space.set_root("holder", holder)
    result = mark_from(space_roots(space))
    assert len(result.oids) == 4


def test_marks_through_proxies(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    # cross-cluster edges are proxies; the walk must pass through them
    result = mark_from(space_roots(space))
    assert len(result.oids) == 20


def test_swapped_cluster_marks_replacement_not_objects(space):
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    space.swap_out(2)
    result = mark_from(space_roots(space))
    assert result.is_swapped_cluster_reachable(2)
    assert len(result.oids) == 10  # only the resident half


def test_swapped_cluster_outbound_keeps_targets_alive(space):
    # chain spans 3 clusters; swap the middle one; its outbound proxy to
    # cluster 3 must keep cluster 3 reachable even though every resident
    # path to cluster 3 goes through the swapped cluster
    handle = space.ingest(build_chain(30), cluster_size=10, root_name="h")
    space.swap_out(2)
    result = mark_from(space_roots(space))
    third_cluster_oids = space.clusters()[3].oids
    assert any(oid in result.oids for oid in third_cluster_oids)


def test_cycles_terminate():
    first, second = Pair(), Pair()
    first.left = second
    second.left = first
    space = make_space()
    space.set_root("a", first)
    result = mark_from(space_roots(space))
    assert len(result.oids) == 2


def test_pinned_clusters_are_roots(space):
    handle = space.ingest(build_chain(10), cluster_size=5)
    # not installed as a root; normally unreachable
    with space.pin(2):
        result = mark_from(space_roots(space))
        assert any(oid in result.oids for oid in space.clusters()[2].oids)


def test_extra_roots(space):
    node = Node(1)
    space.adopt(node, space.new_swap_cluster().sid)
    result = mark_from(space_roots(space, extra_roots=[node]))
    assert node._obi_oid in result.oids
