"""Heap accounting, watermarks, exhaustion callbacks."""

import pytest

from repro.errors import HeapExhaustedError
from repro.memory.heap import Heap


def test_allocate_and_free():
    heap = Heap(1000)
    heap.allocate(1, 100)
    heap.allocate(2, 200)
    assert heap.used == 300
    assert heap.free == 700
    assert heap.free_oid(1) == 100
    assert heap.used == 200


def test_ratio():
    heap = Heap(1000)
    heap.allocate(1, 250)
    assert heap.ratio == 0.25


def test_double_allocate_same_oid_rejected():
    heap = Heap(1000)
    heap.allocate(1, 10)
    with pytest.raises(KeyError):
        heap.allocate(1, 10)


def test_free_unknown_oid_raises():
    with pytest.raises(KeyError):
        Heap(100).free_oid(9)


def test_exhaustion_raises():
    heap = Heap(100)
    heap.allocate(1, 90)
    with pytest.raises(HeapExhaustedError):
        heap.allocate(2, 20)
    assert heap.used == 90  # failed allocation leaves no residue


def test_exhaustion_callback_gets_a_chance_to_free():
    heap = Heap(100)
    heap.allocate(1, 90)

    def relieve(h, need):
        h.free_oid(1)

    heap.on_exhausted(relieve)
    heap.allocate(2, 20)  # succeeds because the callback freed room
    assert heap.used == 20


def test_exhaustion_callback_insufficient_still_raises():
    heap = Heap(100)
    heap.allocate(1, 90)
    heap.on_exhausted(lambda h, need: None)
    with pytest.raises(HeapExhaustedError):
        heap.allocate(2, 20)


def test_high_watermark_fires_once_until_low():
    heap = Heap(100, high_watermark=0.8, low_watermark=0.5)
    highs, lows = [], []
    heap.on_high(lambda h, n: highs.append(h.used))
    heap.on_low(lambda h, n: lows.append(h.used))
    heap.allocate(1, 85)
    heap.allocate(2, 5)  # still above: no second high event
    assert len(highs) == 1
    heap.free_oid(1)  # drops to 5: below low
    assert len(lows) == 1
    heap.allocate(3, 80)  # crosses high again
    assert len(highs) == 2


def test_watermark_validation():
    with pytest.raises(ValueError):
        Heap(100, high_watermark=0.4, low_watermark=0.6)
    with pytest.raises(ValueError):
        Heap(0)


def test_resize_grow_and_shrink():
    heap = Heap(100)
    heap.allocate(1, 40)
    heap.resize(1, 60)
    assert heap.used == 60
    heap.resize(1, 10)
    assert heap.used == 10


def test_resize_over_capacity_raises():
    heap = Heap(100)
    heap.allocate(1, 40)
    with pytest.raises(HeapExhaustedError):
        heap.resize(1, 200)
    assert heap.size_of(1) == 40


def test_would_fit():
    heap = Heap(100)
    heap.allocate(1, 60)
    assert heap.would_fit(40)
    assert not heap.would_fit(41)


def test_bytes_over_low_watermark():
    heap = Heap(100, high_watermark=0.9, low_watermark=0.5)
    heap.allocate(1, 80)
    assert heap.bytes_over_low_watermark() == 30
    heap.free_oid(1)
    assert heap.bytes_over_low_watermark() == 0


def test_stats():
    heap = Heap(100)
    heap.allocate(1, 70)
    heap.free_oid(1)
    heap.allocate(2, 10)
    stats = heap.stats()
    assert stats.peak_used == 70
    assert stats.allocations == 2
    assert stats.used == 10
    assert stats.free == 90


def test_negative_allocation_rejected():
    with pytest.raises(ValueError):
        Heap(100).allocate(1, -5)
