"""Stateful property test of the heap's accounting invariants."""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.errors import HeapExhaustedError
from repro.memory.heap import Heap


class HeapMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.heap = Heap(10_000, high_watermark=0.8, low_watermark=0.4)
        self.model: dict[int, int] = {}
        self.next_oid = 1
        self.highs = 0
        self.lows = 0
        self.heap.on_high(lambda h, n: setattr(self, "highs", self.highs + 1))
        self.heap.on_low(lambda h, n: setattr(self, "lows", self.lows + 1))

    @rule(size=st.integers(min_value=0, max_value=4_000))
    def allocate(self, size):
        oid = self.next_oid
        self.next_oid += 1
        if sum(self.model.values()) + size > self.heap.capacity:
            with pytest.raises(HeapExhaustedError):
                self.heap.allocate(oid, size)
        else:
            self.heap.allocate(oid, size)
            self.model[oid] = size

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def free(self, pick):
        if not self.model:
            return
        oid = sorted(self.model)[pick % len(self.model)]
        freed = self.heap.free_oid(oid)
        assert freed == self.model.pop(oid)

    @rule(pick=st.integers(min_value=0, max_value=10_000),
          new_size=st.integers(min_value=0, max_value=4_000))
    def resize(self, pick, new_size):
        if not self.model:
            return
        oid = sorted(self.model)[pick % len(self.model)]
        delta = new_size - self.model[oid]
        if sum(self.model.values()) + delta > self.heap.capacity:
            with pytest.raises(HeapExhaustedError):
                self.heap.resize(oid, new_size)
        else:
            self.heap.resize(oid, new_size)
            self.model[oid] = new_size

    @invariant()
    def used_matches_model(self):
        if hasattr(self, "heap"):
            assert self.heap.used == sum(self.model.values())
            assert self.heap.free == self.heap.capacity - self.heap.used

    @invariant()
    def per_oid_sizes_match(self):
        if hasattr(self, "heap"):
            for oid, size in self.model.items():
                assert self.heap.holds(oid)
                assert self.heap.size_of(oid) == size

    @invariant()
    def watermark_events_alternate(self):
        # high/low notifications strictly alternate, starting with high
        if hasattr(self, "heap"):
            assert self.highs - self.lows in (0, 1)

    @invariant()
    def peak_monotone(self):
        if hasattr(self, "heap"):
            stats = self.heap.stats()
            assert stats.peak_used >= self.heap.used


TestHeapMachine = HeapMachine.TestCase
TestHeapMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
