"""Deterministic op completion ordering: CompletionQueue and the bus.

The async scheduler retires completions from a clock-ordered heap keyed
``(complete_s, seq)``.  The explicit sequence number is what keeps
seeded runs byte-identical: two ops landing at the same simulated
instant must retire in issue order no matter how they were pushed, and
the event stream a workload emits must not depend on heap internals.
"""

from __future__ import annotations

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.sched import CompletionQueue, SwapOp, SwapOpKind, SwapOpState
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from tests.helpers import build_chain, chain_values


def _op(seq: int, complete_s: float) -> SwapOp:
    return SwapOp(
        seq=seq, kind=SwapOpKind.FETCH, sid=seq, complete_s=complete_s
    )


# -- CompletionQueue ordering ----------------------------------------------


def test_retires_by_completion_time_then_sequence():
    queue = CompletionQueue()
    queue.push(_op(3, 2.0))
    queue.push(_op(1, 1.0))
    queue.push(_op(2, 2.0))
    order = [(op.complete_s, op.seq) for op in queue.pop_due(5.0)]
    assert order == [(1.0, 1), (2.0, 2), (2.0, 3)]


def test_equal_time_ops_retire_in_issue_order_regardless_of_push_order():
    # same instant, pushed backwards, forwards, and shuffled: the seq
    # tie-break must win every time
    for push_order in ([5, 4, 3, 2, 1], [1, 2, 3, 4, 5], [3, 1, 5, 2, 4]):
        queue = CompletionQueue()
        for seq in push_order:
            queue.push(_op(seq, 7.5))
        assert [op.seq for op in queue.pop_due(7.5)] == [1, 2, 3, 4, 5]


def test_pop_due_respects_the_now_boundary():
    queue = CompletionQueue()
    queue.push(_op(1, 1.0))
    queue.push(_op(2, 2.0))
    queue.push(_op(3, 3.0))
    assert queue.peek_time() == 1.0
    assert [op.seq for op in queue.pop_due(2.0)] == [1, 2]  # <= now, not <
    assert len(queue) == 1
    assert queue.peek_time() == 3.0
    assert queue.pop_due(2.5) == []
    assert [op.seq for op in queue.pop_due(3.0)] == [3]
    assert queue.peek_time() is None


def test_retire_due_promotes_in_flight_ops_and_spares_terminal_ones():
    from repro.core.sched import AsyncSchedConfig, AsyncSwapScheduler

    clock = SimulatedClock()
    space = Space("retire", heap_capacity=1 << 20, clock=clock)
    sched = AsyncSwapScheduler(space.manager, AsyncSchedConfig(channels=2))
    in_flight = _op(1, 0.0)
    in_flight.state = SwapOpState.IN_FLIGHT
    failed = _op(2, 0.0)
    failed.state = SwapOpState.FAILED
    sched.queue.push(in_flight)
    sched.queue.push(failed)
    done = sched.retire_due()
    assert done == [in_flight, failed]
    assert in_flight.state is SwapOpState.DONE
    # a FAILED op keeps its terminal state through retirement
    assert failed.state is SwapOpState.FAILED


# -- whole-workload determinism --------------------------------------------


def _walk_async(seed_stores: int = 3):
    """One seeded pointer walk under the async scheduler; returns the
    event-stream signature, final clock, and chain values."""
    clock = SimulatedClock()
    space = Space("det", heap_capacity=1 << 20, clock=clock)
    for index in range(seed_stores):
        link = bluetooth_link(clock, name=f"bt-{index}")
        space.manager.add_store(
            XmlStoreDevice(f"p-{index}", capacity=1 << 20, link=link)
        )
    events = []
    space.bus.subscribe_all(
        lambda event: events.append((type(event).__name__, event.describe()))
    )
    handle = space.ingest(build_chain(30), cluster_size=5, root_name="h")
    for sid, cluster in sorted(space._clusters.items()):
        if cluster.swappable() and cluster.oids:
            space.manager.swap_out(sid)
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    values = chain_values(handle)
    sched.drain()
    return events, clock.now(), values


def test_async_event_stream_is_identical_across_identical_runs():
    """Interleaved async completions must emit a reproducible stream."""
    first_events, first_clock, first_values = _walk_async()
    second_events, second_clock, second_values = _walk_async()
    assert first_values == second_values == list(range(30))
    assert first_clock == second_clock
    assert first_events == second_events
