"""Behavioral tests for the event-driven async swap scheduler.

Each test builds a small fully-swapped-out pointer chain over simulated
Bluetooth stores and walks it, checking one scheduler behavior at a
time: speculation hits, the degrade ladder's veto, buffer demotion,
waste accounting, backpressure, write-back overlap, and the serial
mode's inertness.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.sched import AsyncSchedConfig, SwapOpState
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from tests.helpers import build_chain, chain_values


def _space(stores: int = 3, nodes: int = 30, cluster_size: int = 5):
    """A chain of ``nodes`` fully swapped out across ``stores`` radios."""
    clock = SimulatedClock()
    space = Space("sched", heap_capacity=1 << 20, clock=clock)
    for index in range(stores):
        link = bluetooth_link(clock, name=f"bt-{index}")
        space.manager.add_store(
            XmlStoreDevice(f"p-{index}", capacity=1 << 20, link=link)
        )
    handle = space.ingest(
        build_chain(nodes), cluster_size=cluster_size, root_name="h"
    )
    for sid, cluster in sorted(space._clusters.items()):
        if cluster.swappable() and cluster.oids:
            space.manager.swap_out(sid)
    return space, clock, handle


# -- speculation -----------------------------------------------------------


def test_sequential_walk_prefetches_and_stalls_less_than_sync():
    sync_space, sync_clock, sync_handle = _space()
    walk_start = sync_clock.now()
    sync_values = chain_values(sync_handle)
    sync_stall = sync_clock.now() - walk_start

    space, clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    values = chain_values(handle)
    sched.drain()

    assert values == sync_values == list(range(30))
    assert sched.stats.prefetch_issued > 0
    assert sched.stats.prefetch_hits > 0
    # the blocking walk stalls for every link second; the scheduled walk
    # only stalls for time nothing else could hide
    stalled = (
        sched.stats.demand_stall_s
        + sched.stats.hit_stall_s
        + sched.stats.backpressure_stall_s
    )
    assert stalled < sync_stall
    assert 0.0 <= sched.overlap_ratio() <= 1.0


def test_prefetch_waste_ratio_accounts_for_unconsumed_buffers():
    space, _clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    chain_values(handle)
    sched.drain()
    assert 0.0 <= sched.stats.waste_ratio <= 1.0
    assert sched.stats.hit_ratio == pytest.approx(
        sched.stats.prefetch_hits / sched.stats.prefetch_issued
    )


def test_invalidate_turns_a_buffered_speculation_into_waste():
    space, _clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    _ = handle.get_value()  # one fault: speculation for the next clusters
    assert sched.in_flight_fetches() > 0
    target = next(iter(sched._speculative))
    waste_before = sched.stats.prefetch_waste
    sched.invalidate(target, "swap-out")
    assert sched.stats.prefetch_waste == waste_before + 1
    assert target not in sched._speculative


def test_stale_keyed_buffer_is_waste_not_a_hit():
    space, _clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    _ = handle.get_value()
    assert sched.in_flight_fetches() > 0
    target = next(iter(sched._speculative))
    # the cluster re-swapped under a new epoch since the speculation was
    # issued: its buffered payload must not satisfy the fault
    sched._speculative[target].key = "stale-epoch-key"
    location = space._clusters[target].location
    assert sched._consume_speculative(target, location) is None
    assert sched.stats.prefetch_waste == 1


def test_full_buffer_demotes_the_stalest_speculation():
    space, _clock, handle = _space(nodes=40, cluster_size=4)
    sched = space.manager.enable_async_scheduler(
        AsyncSchedConfig(channels=4, prefetch=True, prefetch_depth=4,
                         max_speculative=1)
    )
    chain_values(handle)
    sched.drain()
    assert sched.stats.prefetch_demoted > 0
    assert len(sched._speculative) <= 1


# -- the degrade ladder always wins ----------------------------------------


def test_pressure_rung_stops_new_speculation():
    space, _clock, handle = _space()
    space.manager.enable_degrade_ladder()  # NORMAL = rung 0
    sched = space.manager.enable_async_scheduler(
        AsyncSchedConfig(channels=3, prefetch=True,
                         prefetch_pressure_limit=0)
    )
    chain_values(handle)
    sched.drain()
    # with the limit at the ladder's current rung, speculation is vetoed
    # before a single fetch is issued
    assert sched.stats.prefetch_issued == 0


def test_pressure_sheds_buffered_speculation_and_frees_radios():
    space, clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    _ = handle.get_value()  # buffer some speculation
    buffered = sched.in_flight_fetches()
    assert buffered > 0
    sched.on_pressure(rung=1)
    assert sched.in_flight_fetches() == 0
    assert sched.stats.prefetch_cancelled == buffered
    # every shed op retired CANCELLED with the shed reason recorded
    cancelled = [
        op
        for op in sched.queue.pop_due(float("inf"))
        if op.state is SwapOpState.CANCELLED
    ]
    assert cancelled and all(op.error == "pressure" for op in cancelled)


def test_below_limit_rung_leaves_speculation_alone():
    space, _clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    _ = handle.get_value()
    buffered = sched.in_flight_fetches()
    sched.on_pressure(rung=0)  # NORMAL: below the default limit of 1
    assert sched.in_flight_fetches() == buffered
    assert sched.stats.prefetch_cancelled == 0


# -- backpressure ----------------------------------------------------------


def test_backpressure_waits_are_charged_to_the_stat():
    # two channels for three radios under an evicting walk: deferred
    # ships and drops keep both channels booked at fault instants, so
    # admission has to pace the app
    space, _clock, handle = _space(nodes=40, cluster_size=4)
    space.heap.capacity = space.heap.used + 400
    sched = space.manager.enable_async_scheduler(channels=2, prefetch=True)
    chain_values(handle)
    sched.drain()
    assert sched.stats.backpressure_stall_s > 0.0


def test_backpressure_can_be_disabled():
    space, _clock, handle = _space()
    sched = space.manager.enable_async_scheduler(
        AsyncSchedConfig(channels=3, prefetch=True, backpressure=False)
    )
    chain_values(handle)
    sched.drain()
    assert sched.stats.backpressure_stall_s == 0.0


# -- write-back and stale drops --------------------------------------------


def test_victim_writeback_rides_the_channels():
    space, clock, handle = _space(nodes=40, cluster_size=4)
    # clamp the heap to ~2 resident clusters: the walk must evict (and
    # re-ship) victims as it faults
    space.heap.capacity = space.heap.used + 400
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    values = chain_values(handle)
    sched.drain()
    assert values == list(range(40))
    assert sched.stats.writebacks > 0
    assert space.manager.stats.swap_outs > 0


def test_stale_copy_drops_are_deferred_onto_channels():
    space, _clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    chain_values(handle)
    sched.drain()
    # every successful reload invalidates its remote copy off the fault
    # path: one INVALIDATE op per replica, none stalling the app
    assert sched.stats.stale_drops > 0


# -- serial mode -----------------------------------------------------------


def test_serial_mode_is_inert():
    space, _clock, handle = _space()
    sched = space.manager.enable_async_scheduler(channels=1, prefetch=False)
    assert sched.serial
    assert sched.config.serial
    values = chain_values(handle)
    sched.drain()
    assert values == list(range(30))
    assert sched.stats.prefetch_issued == 0
    assert sched.stats.backpressure_stall_s == 0.0
    # deferred drops refuse serial mode: the caller must drop inline
    assert sched.defer_drops(0, ["k"], []) is False
    # the op ledger still records lifecycles (fetches, reloads, drops)
    assert sched.stats.ops_issued > 0
    assert sched.stats.demand_fetches > 0


def test_config_rejects_degenerate_values():
    with pytest.raises(ValueError):
        AsyncSchedConfig(channels=0)
    with pytest.raises(ValueError):
        AsyncSchedConfig(prefetch_depth=0)


def test_disable_drains_and_detaches():
    space, clock, handle = _space()
    space.manager.enable_async_scheduler(channels=3, prefetch=True)
    _ = handle.get_value()
    space.manager.disable_async_scheduler()
    assert space.manager.sched is None
    # nothing left in flight: the disable drained the channel pool
    values = chain_values(handle)
    assert values == list(range(30))
