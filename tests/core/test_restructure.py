"""Runtime swap-cluster merge/split."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utils import SwapClusterUtils
from repro.errors import ClusterNotResidentError, ClusterPinnedError, NotManagedError
from repro.events import SwapClusterMergedEvent, SwapClusterSplitEvent
from tests.helpers import Node, build_chain, chain_values, make_space


@pytest.fixture
def chain(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    return space, handle


# -- merge ---------------------------------------------------------------


def test_merge_semantics_preserved(chain):
    space, handle = chain
    space.merge_swap_clusters(1, 2)
    space.verify_integrity()
    assert chain_values(handle) == list(range(20))


def test_merge_dismantles_internal_proxies(chain):
    space, handle = chain
    space.merge_swap_clusters(1, 2)
    # the former 1->2 boundary is now a raw edge: full-speed navigation
    raw = space.resolve(handle)
    cursor = raw
    for _ in range(9):
        cursor = cursor.next
        assert not SwapClusterUtils.is_swap_proxy(cursor)
    assert cursor.value == 9


def test_merge_retargets_external_proxies(chain):
    space, handle = chain
    # a root-held proxy into cluster 2 must keep working after the merge
    node5_proxy = space._proxy_for(0, sorted(space.clusters()[2].oids)[0])
    space.merge_swap_clusters(1, 2)
    assert node5_proxy.get_value() == 5
    assert node5_proxy._obi_target_sid == 1


def test_merge_removes_absorbed_cluster(chain):
    space, handle = chain
    space.merge_swap_clusters(1, 2)
    assert 2 not in space.clusters()
    assert len(space.clusters()[1]) == 10


def test_merged_cluster_swaps_as_one(chain):
    space, handle = chain
    space.merge_swap_clusters(1, 2)
    location = space.swap_out(1)
    store = space.manager.available_stores()[0]
    assert store.fetch(location.key).count("<object ") == 10
    assert chain_values(handle) == list(range(20))
    space.verify_integrity()


def test_merge_emits_event(chain):
    space, _ = chain
    space.merge_swap_clusters(3, 4)
    event = space.bus.last(SwapClusterMergedEvent)
    assert event.absorber_sid == 3 and event.object_count == 5


def test_merge_requires_resident(chain):
    space, _ = chain
    space.swap_out(2)
    with pytest.raises(ClusterNotResidentError):
        space.merge_swap_clusters(1, 2)


def test_merge_rejects_self_and_root(chain):
    space, _ = chain
    with pytest.raises(NotManagedError):
        space.merge_swap_clusters(1, 1)
    with pytest.raises(ClusterNotResidentError):
        space.merge_swap_clusters(1, 0)


def test_merge_pinned_rejected(chain):
    space, handle = chain
    with space.pin(2):
        with pytest.raises(ClusterPinnedError):
            space.merge_swap_clusters(1, 2)


def test_merge_stats_folded(chain):
    space, handle = chain
    handle.get_value()  # crossings on cluster 1
    crossings_before = (
        space.clusters()[1].crossings + space.clusters()[2].crossings
    )
    space.merge_swap_clusters(1, 2)
    assert space.clusters()[1].crossings == crossings_before


# -- split ---------------------------------------------------------------


def test_split_tail_count(chain):
    space, handle = chain
    new_sid = space.split_swap_cluster(1, 2)
    space.verify_integrity()
    assert len(space.clusters()[1]) == 3
    assert len(space.clusters()[new_sid]) == 2
    assert chain_values(handle) == list(range(20))


def test_split_inserts_boundary_proxies(chain):
    space, handle = chain
    new_sid = space.split_swap_cluster(1, 2)
    raw = space.resolve(handle)
    cursor = raw.next.next  # node 2, last of the shrunk cluster
    assert SwapClusterUtils.is_swap_proxy(cursor.next)
    assert cursor.next._obi_target_sid == new_sid


def test_split_by_predicate(chain):
    space, handle = chain
    new_sid = space.split_swap_cluster(1, lambda obj: obj.value % 2 == 1)
    assert len(space.clusters()[new_sid]) == 2  # values 1, 3
    space.verify_integrity()
    assert chain_values(handle) == list(range(20))


def test_split_by_handles(chain):
    space, handle = chain
    raw = space.resolve(handle)
    victim = raw.next
    new_sid = space.split_swap_cluster(1, [victim])
    assert space.sid_of(victim) == new_sid
    space.verify_integrity()


def test_split_part_swaps_independently(chain):
    space, handle = chain
    new_sid = space.split_swap_cluster(1, 2)
    space.swap_out(new_sid)
    assert space.clusters()[1].is_resident
    assert chain_values(handle) == list(range(20))
    space.verify_integrity()


def test_split_retargets_live_proxies(chain):
    space, handle = chain
    raw = space.resolve(handle)
    node4_proxy = space._proxy_for(0, raw.next.next.next.next._obi_oid)
    new_sid = space.split_swap_cluster(1, 2)  # moves nodes 3, 4
    assert node4_proxy._obi_target_sid == new_sid
    assert node4_proxy.get_value() == 4


def test_split_emits_event(chain):
    space, _ = chain
    new_sid = space.split_swap_cluster(1, 1)
    event = space.bus.last(SwapClusterSplitEvent)
    assert event.new_sid == new_sid and event.object_count == 1


def test_split_rejects_empty_and_total(chain):
    space, _ = chain
    with pytest.raises(NotManagedError):
        space.split_swap_cluster(1, 0)
    with pytest.raises(NotManagedError):
        space.split_swap_cluster(1, 5)  # would empty the cluster


def test_split_rejects_foreign_members(chain):
    space, handle = chain
    foreign_oid = sorted(space.clusters()[2].oids)[0]
    with pytest.raises(NotManagedError):
        space.split_swap_cluster(1, [foreign_oid])


def test_split_requires_resident(chain):
    space, _ = chain
    space.swap_out(2)
    with pytest.raises(ClusterNotResidentError):
        space.split_swap_cluster(2, 1)


# -- composition -----------------------------------------------------------


def test_merge_then_split_round_trip(chain):
    space, handle = chain
    space.merge_swap_clusters(1, 2)
    space.split_swap_cluster(1, 5)
    space.verify_integrity()
    assert chain_values(handle) == list(range(20))


@settings(max_examples=20, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["merge", "split", "swap", "walk"]),
                  st.integers(min_value=0, max_value=1000)),
        max_size=10,
    )
)
def test_random_restructuring_preserves_semantics(operations):
    space = make_space(heap_capacity=4 << 20)
    handle = space.ingest(build_chain(30), cluster_size=6, root_name="h")
    for op, argument in operations:
        resident = [
            sid for sid, cluster in space.clusters().items()
            if cluster.swappable() and len(cluster) > 0
        ]
        if op == "merge" and len(resident) >= 2:
            absorber = resident[argument % len(resident)]
            absorbed = resident[(argument + 1) % len(resident)]
            if absorber != absorbed:
                space.merge_swap_clusters(absorber, absorbed)
        elif op == "split" and resident:
            sid = resident[argument % len(resident)]
            size = len(space.clusters()[sid])
            if size >= 2:
                space.split_swap_cluster(sid, 1 + argument % (size - 1))
        elif op == "swap" and resident:
            space.swap_out(resident[argument % len(resident)])
        elif op == "walk":
            assert chain_values(space.get_root("h")) == list(range(30))
        space.verify_integrity()
    assert chain_values(space.get_root("h")) == list(range(30))
