"""SwapCluster bookkeeping."""

import pytest

from repro.core.swap_cluster import SwapCluster, SwapClusterState
from repro.errors import ClusterNotResidentError, ClusterPinnedError
from repro.ids import ROOT_SID


def test_new_cluster_resident():
    cluster = SwapCluster(3)
    assert cluster.is_resident and not cluster.is_swapped
    assert cluster.epoch == 0


def test_membership():
    cluster = SwapCluster(1)
    cluster.add_member(10, "Node")
    cluster.add_member(11, "Node")
    assert len(cluster) == 2
    assert cluster.class_name_by_oid[10] == "Node"
    cluster.remove_member(10)
    assert len(cluster) == 1


def test_root_cluster_never_swappable():
    cluster = SwapCluster(ROOT_SID)
    cluster.add_member(1, "Node")
    assert not cluster.swappable()
    with pytest.raises(ClusterNotResidentError):
        cluster.ensure_swappable()


def test_pinned_cluster_not_swappable():
    cluster = SwapCluster(1)
    cluster.pins += 1
    with pytest.raises(ClusterPinnedError):
        cluster.ensure_swappable()
    cluster.pins -= 1
    cluster.ensure_swappable()  # no raise


def test_swapped_cluster_not_swappable_again():
    cluster = SwapCluster(1)
    cluster.state = SwapClusterState.SWAPPED
    with pytest.raises(ClusterNotResidentError):
        cluster.ensure_swappable()


def test_crossing_statistics():
    cluster = SwapCluster(1, created_tick=5)
    cluster.record_crossing(10)
    cluster.record_crossing(20)
    assert cluster.crossings == 2
    assert cluster.last_crossing_tick == 20
    assert cluster.idle_ticks(25) == 5


def test_repr_mentions_state():
    assert "resident" in repr(SwapCluster(1))
