"""SwapClusterUtils, especially the assign() iteration optimisation."""

import pytest

from repro.core.utils import SwapClusterUtils
from repro.errors import NotManagedError, PolicyError
from tests.helpers import Node, build_chain, chain_values, make_space


@pytest.fixture
def chain_space(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    return space, handle


def test_assign_requires_proxy(chain_space):
    with pytest.raises(NotManagedError):
        SwapClusterUtils.assign(Node(1))


def test_assign_requires_root_source(chain_space):
    space, handle = chain_space
    node = space.resolve(handle)
    for _ in range(4):
        node = node.next  # intra-cluster hops are raw
    boundary = node.next  # the (1 -> 2) proxy stored in node 4's field
    assert SwapClusterUtils.is_swap_proxy(boundary)
    assert SwapClusterUtils.source_sid(boundary) == 1
    with pytest.raises(PolicyError):
        SwapClusterUtils.assign(boundary)


def test_assign_iteration_single_proxy(chain_space):
    space, handle = chain_space
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    original_id = id(cursor)
    steps = 0
    while cursor is not None:
        assert id(cursor) == original_id  # always the same proxy object
        nxt = cursor.get_next()
        if nxt is None:
            break
        assert nxt is cursor
        cursor = nxt
        steps += 1
    assert steps == 19


def test_assign_iteration_values_correct(chain_space):
    space, handle = chain_space
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    values = []
    while cursor is not None:
        values.append(cursor.get_value())
        cursor = cursor.get_next()
    assert values == list(range(20))


def test_assign_survives_swap_cycle(chain_space):
    space, handle = chain_space
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    cursor.get_next()  # now points at node 1
    space.swap_out(1)  # the cluster the cursor points into
    assert cursor.get_value() == 1  # transparently reloads
    space.verify_integrity()


def test_unassign_restores_normal_behaviour(chain_space):
    space, handle = chain_space
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    SwapClusterUtils.unassign(cursor)
    nxt = cursor.get_next()
    assert nxt is not cursor  # a fresh proxy again


def test_assign_does_not_corrupt_canonical_root(chain_space):
    space, handle = chain_space
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    while cursor is not None:
        cursor = cursor.get_next()
    # the shared root handle must still denote the head
    assert handle.get_value() == 0
    assert chain_values(space.get_root("h")) == list(range(20))


def test_equals_helper(chain_space):
    space, handle = chain_space
    raw = space.resolve(handle)
    assert SwapClusterUtils.equals(handle, raw)
    assert SwapClusterUtils.equals(handle, handle)
    assert not SwapClusterUtils.equals(handle, handle.get_next())
    assert not SwapClusterUtils.equals(handle, 42)


def test_oid_of(chain_space):
    space, handle = chain_space
    raw = space.resolve(handle)
    assert SwapClusterUtils.oid_of(handle) == SwapClusterUtils.oid_of(raw)
    with pytest.raises(NotManagedError):
        SwapClusterUtils.oid_of(Node(1))  # not adopted
    with pytest.raises(NotManagedError):
        SwapClusterUtils.oid_of("plain")


def test_resolve_reloads_swapped(chain_space):
    space, handle = chain_space
    space.swap_out(1)
    raw = SwapClusterUtils.resolve(handle)
    assert raw.value == 0
    assert space.clusters()[1].is_resident


def test_resolve_passthrough_for_raw(chain_space):
    space, handle = chain_space
    raw = space.resolve(handle)
    assert SwapClusterUtils.resolve(raw) is raw
