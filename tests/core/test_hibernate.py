"""Persistence: hibernate / restore."""

import pytest

from repro.core.hibernate import hibernate, restore
from repro.devices import InMemoryStore
from repro.errors import CodecError
from tests.helpers import Holder, Node, build_chain, chain_values, make_space


@pytest.fixture
def populated(space):
    handle = space.ingest(build_chain(30), cluster_size=10, root_name="h")
    space.set_root("config", {"retries": 3, "tags": ["a", "b"]})
    return space, handle


def test_roundtrip_values_preserved(populated, tmp_path):
    space, handle = populated
    handle.set_value(777)
    hibernate(space, tmp_path)
    revived = restore(tmp_path)
    assert chain_values(revived.get_root("h")) == [777] + list(range(1, 30))
    assert revived.get_root("config") == {"retries": 3, "tags": ["a", "b"]}
    revived.verify_integrity()


def test_original_space_untouched(populated, tmp_path):
    space, handle = populated
    before_objects = space.object_count()
    hibernate(space, tmp_path)
    assert space.object_count() == before_objects
    assert chain_values(handle) == list(range(30))
    space.verify_integrity()


def test_cluster_layout_preserved(populated, tmp_path):
    space, _ = populated
    hibernate(space, tmp_path)
    revived = restore(tmp_path)
    assert sorted(revived.clusters()) == sorted(space.clusters())
    for sid, cluster in space.clusters().items():
        assert revived.clusters()[sid].oids == cluster.oids


def test_swapped_cluster_captured(populated, tmp_path):
    space, handle = populated
    space.swap_out(2)
    hibernate(space, tmp_path)
    assert space.clusters()[2].is_swapped  # snapshot did not reload it
    revived = restore(tmp_path)
    assert revived.clusters()[2].is_resident
    assert revived.clusters()[2].epoch == 1  # epoch preserved
    assert chain_values(revived.get_root("h")) == list(range(30))


def test_revived_space_swaps_and_collects(populated, tmp_path):
    space, _ = populated
    hibernate(space, tmp_path)
    revived = restore(tmp_path)
    revived.manager.add_store(InMemoryStore("fresh"))
    revived.swap_out(2)
    assert chain_values(revived.get_root("h")) == list(range(30))
    revived.del_root("h")
    revived.del_root("config")
    revived.gc()
    assert revived.object_count() == 0
    revived.verify_integrity()


def test_new_ids_do_not_collide_after_restore(populated, tmp_path):
    space, _ = populated
    hibernate(space, tmp_path)
    revived = restore(tmp_path)
    fresh = revived.ingest(build_chain(5), cluster_size=5, root_name="new")
    revived.verify_integrity()
    assert chain_values(fresh) == list(range(5))
    new_sid = revived.sid_of(fresh)
    assert new_sid not in space.clusters()  # a genuinely new sid


def test_roots_into_cluster_zero(tmp_path):
    space = make_space()
    space.set_root("global", Node(42))
    hibernate(space, tmp_path)
    revived = restore(tmp_path)
    assert revived.get_root("global").get_value() == 42
    revived.verify_integrity()


def test_container_fields_and_shared_structure(tmp_path):
    space = make_space()
    holder = Holder()
    shared = Node(7)
    holder.items.extend([shared, shared])
    holder.index["n"] = shared
    space.ingest(holder, cluster_size=1, root_name="holder")
    hibernate(space, tmp_path)
    revived = restore(tmp_path)
    revived_holder = revived.get_root("holder")
    first = revived_holder.item_at(0)
    second = revived_holder.item_at(1)
    assert first == second  # sharing preserved
    assert revived_holder.get("n") == first


def test_pending_replication_proxy_rejected(tmp_path):
    from repro.replication import DirectServerClient, ObjectServer, Replicator

    server = ObjectServer()
    server.publish("list", build_chain(20), cluster_size=10)
    space = make_space()
    Replicator(space, DirectServerClient(server)).replicate("list")
    with pytest.raises(CodecError, match="replication proxy"):
        hibernate(space, tmp_path)


def test_restore_requires_manifest(tmp_path):
    with pytest.raises(CodecError, match="manifest"):
        restore(tmp_path)


def test_heap_capacity_override(populated, tmp_path):
    space, _ = populated
    hibernate(space, tmp_path)
    revived = restore(tmp_path, heap_capacity=1 << 22)
    assert revived.heap.capacity == 1 << 22


def test_double_hibernate_is_deterministic(populated, tmp_path):
    space, _ = populated
    hibernate(space, tmp_path / "one")
    hibernate(space, tmp_path / "two")
    first = (tmp_path / "one" / "cluster-1.xml").read_text()
    second = (tmp_path / "two" / "cluster-1.xml").read_text()
    assert first == second
