"""The swap archive (versioning / reconciliation extension)."""

import pytest

from repro.core.archive import SwapArchive
from repro.errors import SwapStoreUnavailableError
from tests.helpers import build_chain, chain_values, make_space


@pytest.fixture
def archived(space):
    archive = SwapArchive(space)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    return space, archive, handle


def test_epochs_recorded(archived):
    space, archive, handle = archived
    space.swap_out(2)
    chain_values(handle)  # reload
    space.swap_out(2)
    records = archive.epochs(2)
    assert [record.epoch for record in records] == [1, 2]
    assert archive.latest(2).epoch == 2


def test_retained_copies_stay_on_store(archived):
    space, archive, handle = archived
    store = space.manager.available_stores()[0]
    space.swap_out(2)
    chain_values(handle)
    assert len(store.keys()) == 1  # epoch 1 retained after reload


def test_fetch_xml_verified(archived):
    space, archive, handle = archived
    space.swap_out(2)
    chain_values(handle)
    record = archive.latest(2)
    text = archive.fetch_xml(record)
    assert text.startswith("<swap-cluster")


def test_inspect_shows_field_values(archived):
    space, archive, handle = archived
    raw = space.resolve(handle)
    space.swap_out(2)
    record = archive.latest(2)
    snapshot = archive.inspect(record)
    assert len(snapshot) == 5
    values = sorted(fields["value"] for fields in snapshot.values())
    assert values == [5, 6, 7, 8, 9]
    # intra-cluster refs are symbolic
    ref_fields = [
        fields["next"] for fields in snapshot.values()
        if isinstance(fields["next"], tuple) and fields["next"][0] == "ref"
    ]
    assert len(ref_fields) == 4


def test_diff_between_epochs(archived):
    space, archive, handle = archived
    cursor = handle
    for _ in range(5):
        cursor = cursor.get_next()  # node 5, in cluster 2
    space.swap_out(2)
    chain_values(handle)  # reload epoch 1
    cursor = handle
    for _ in range(5):
        cursor = cursor.get_next()
    cursor.set_value(999)
    space.swap_out(2)  # epoch 2 with the change
    records = archive.epochs(2)
    changes = archive.diff(records[0], records[1])
    assert len(changes) == 1
    (oid, delta), = changes.items()
    assert delta == {"value": (5, 999)}


def test_diff_requires_same_cluster(archived):
    space, archive, handle = archived
    space.swap_out(1)
    chain_values(handle)
    space.swap_out(2)
    from repro.errors import CodecError

    with pytest.raises(CodecError):
        archive.diff(archive.latest(1), archive.latest(2))


def test_prune_drops_old_epochs(archived):
    space, archive, handle = archived
    store = space.manager.available_stores()[0]
    for _ in range(3):
        space.swap_out(2)
        chain_values(handle)
    assert len(store.keys()) == 3
    dropped = archive.prune(2, keep_last=1)
    assert dropped == 2
    assert len(store.keys()) == 1
    assert len(archive.epochs(2)) == 1


def test_fetch_after_holder_vanishes(archived):
    space, archive, handle = archived
    store = space.manager.available_stores()[0]
    space.swap_out(2)
    record = archive.latest(2)
    store.drop(record.key)
    with pytest.raises(SwapStoreUnavailableError):
        archive.fetch_xml(record)


def test_archived_bytes(archived):
    space, archive, handle = archived
    space.swap_out(2)
    assert archive.archived_bytes() == archive.latest(2).xml_bytes
