"""Dirty tracking: the write barrier, conservative proxy rules, readonly."""

import pytest

from repro import managed
from repro.core.fastpath import FastPathConfig
from repro.runtime import readonly
from tests.helpers import Node, Pair, build_chain, chain_values, make_space


@managed
class Gauge:
    """Local class exercising the @readonly exemption."""

    def __init__(self) -> None:
        self.level = 0

    @readonly
    def peek(self) -> int:
        return self.level

    def raise_level(self) -> int:
        self.level += 1
        return self.level

    @readonly
    def sneaky(self) -> int:
        # wrongly annotated: performs a field write inside @readonly;
        # the write barrier must still catch it
        self.level = 99
        return self.level


@managed
class Box:
    """Exposes a mutable container through a @readonly method."""

    def __init__(self) -> None:
        self.items = [1, 2, 3]

    @readonly
    def contents(self) -> list:
        return self.items


def _fast_space(**config):
    space = make_space()
    space.manager.enable_fastpath(FastPathConfig(**config))
    return space


def _cycle(space, sid):
    space.swap_out(sid)
    space.swap_in(sid)


def _ingest_chain(space, n=20, cluster_size=5):
    return space.ingest(build_chain(n), cluster_size=cluster_size, root_name="h")


def _raw_member(space, sid):
    return space._objects[min(space.clusters()[sid].oids)]


def _sid_of_class(space, class_name):
    for sid, cluster in space.clusters().items():
        if class_name in cluster.class_name_by_oid.values():
            return sid
    raise AssertionError(f"no cluster holds a {class_name}")


# -- basics --------------------------------------------------------------


def test_fresh_clusters_start_dirty(space):
    _ingest_chain(space)
    assert all(cluster.dirty for cluster in space.clusters().values())


def test_swap_cycle_marks_clean_under_fastpath():
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 2)
    cluster = space.clusters()[2]
    assert not cluster.dirty
    assert cluster.clean_digest is not None
    assert cluster.clean_key is not None
    assert cluster.clean_epoch == cluster.epoch
    assert cluster.clean_outbound is not None


def test_swap_cycle_without_fastpath_stays_dirty(space):
    _ingest_chain(space)
    _cycle(space, 2)
    assert space.clusters()[2].dirty


def test_direct_field_write_dirties():
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 2)
    node = _raw_member(space, 2)
    node.value = 777
    cluster = space.clusters()[2]
    assert cluster.dirty
    assert cluster.clean_digest is None
    assert cluster.clean_key is None
    assert cluster.clean_outbound is None


def test_bookkeeping_writes_do_not_dirty():
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 2)
    node = _raw_member(space, 2)
    object.__setattr__(node, "value", 777)  # middleware-style bypass
    node._obi_scratch = "x"  # _obi_-prefixed: never semantic
    assert not space.clusters()[2].dirty


# -- proxy-mediated mutation ---------------------------------------------


def test_mutating_method_through_proxy_dirties_target():
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 2)
    proxy = space._proxy_for(0, min(space.clusters()[2].oids))
    proxy.set_value(41)
    assert space.clusters()[2].dirty


def test_plain_getter_through_proxy_dirties_conservatively():
    # Node.get_value is not @readonly: the conservative rule applies
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 2)
    proxy = space._proxy_for(0, min(space.clusters()[2].oids))
    proxy.get_value()
    assert space.clusters()[2].dirty


def test_readonly_method_does_not_dirty():
    space = _fast_space()
    handle = space.ingest(Pair(Gauge()), cluster_size=1, root_name="p")
    gauge_proxy = handle.get_left()
    sid = _sid_of_class(space, "Gauge")
    _cycle(space, sid)
    assert not space.clusters()[sid].dirty
    assert gauge_proxy.peek() == 0
    assert not space.clusters()[sid].dirty
    gauge_proxy.raise_level()
    assert space.clusters()[sid].dirty


def test_field_write_inside_readonly_method_still_caught():
    space = _fast_space()
    handle = space.ingest(Pair(Gauge()), cluster_size=1, root_name="p")
    gauge_proxy = handle.get_left()
    sid = _sid_of_class(space, "Gauge")
    _cycle(space, sid)
    assert gauge_proxy.sneaky() == 99
    assert space.clusters()[sid].dirty


def test_container_argument_dirties_source_and_target():
    space = _fast_space()
    _ingest_chain(space)
    for sid in (1, 2):
        _cycle(space, sid)
    proxy = space._proxy_for(1, min(space.clusters()[2].oids))
    proxy.identity_of([1, 2])  # a list crosses the 1 -> 2 boundary
    assert space.clusters()[1].dirty  # callee may retain and mutate it
    assert space.clusters()[2].dirty


def test_container_return_dirties_even_from_readonly_method():
    space = _fast_space()
    handle = space.ingest(Pair(Box()), cluster_size=1, root_name="p")
    box_proxy = handle.get_left()
    sid = _sid_of_class(space, "Box")
    _cycle(space, sid)
    items = box_proxy.contents()
    assert items == [1, 2, 3]
    # the caller holds a raw alias into the cluster: assume the worst
    assert space.clusters()[sid].dirty


# -- membership and structural changes -----------------------------------


def test_merge_dirties_absorber():
    space = _fast_space()
    handle = _ingest_chain(space)
    for sid in (1, 2):
        _cycle(space, sid)
    space.merge_swap_clusters(1, 2)
    assert space.clusters()[1].dirty
    assert chain_values(handle) == list(range(20))


def test_adopt_into_cluster_dirties():
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 2)
    space.adopt(Node(99), sid=2)
    assert space.clusters()[2].dirty


def test_attach_dirties_owner_cluster():
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 1)
    owner = _raw_member(space, 1)
    target = _raw_member(space, 2)
    space.attach(owner, "next", target)
    assert space.clusters()[1].dirty


# -- payload identity ----------------------------------------------------


def test_mutation_forces_new_epoch_and_key():
    space = _fast_space()
    _ingest_chain(space)
    _cycle(space, 2)
    first_key = space.clusters()[2].clean_key
    first_epoch = space.clusters()[2].epoch
    _raw_member(space, 2).value = 123
    location = space.swap_out(2)
    assert location.key != first_key
    assert space.clusters()[2].epoch == first_epoch + 1


def test_clean_swap_out_is_byte_identical():
    space = _fast_space()
    _ingest_chain(space)
    store = space.manager.available_stores()[0]
    first = space.swap_out(2)
    shipped = store.fetch(first.key)
    space.swap_in(2)
    second = space.swap_out(2)
    assert second.key == first.key
    assert second.digest == first.digest
    assert store.fetch(second.key) == shipped
    assert space.manager.stats.encode_calls == 1
