"""Stateful model-based testing of the whole swapping core.

A hypothesis ``RuleBasedStateMachine`` drives one :class:`Space` through
arbitrary interleavings of every state-changing operation the library
offers — ingest, field writes, swap-out/in, merge, split, GC, root
deletion, store failure and recovery — while a plain-Python model tracks
what the application should observe.  Invariants checked after *every*
step:

* the visible values of every live chain match the model exactly;
* ``verify_integrity`` holds;
* heap accounting equals the sum of resident footprints.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.devices import InMemoryStore
from repro.errors import SwapStoreUnavailableError
from tests.helpers import Node, build_chain, chain_values, make_space


class SwapMachine(RuleBasedStateMachine):
    chains = Bundle("chains")

    @initialize()
    def setup(self) -> None:
        self.space = make_space(heap_capacity=8 << 20)
        self.store = self.space.manager.available_stores()[0]
        self.backup = InMemoryStore("backup")
        self.space.manager.add_store(self.backup)
        self.model: dict[str, list[int]] = {}
        self.counter = 0
        self.store_lost = False

    # -- operations ---------------------------------------------------------

    @rule(
        target=chains,
        length=st.integers(min_value=1, max_value=15),
        cluster_size=st.integers(min_value=1, max_value=6),
    )
    def ingest_chain(self, length, cluster_size):
        name = f"chain-{self.counter}"
        self.counter += 1
        self.space.ingest(
            build_chain(length), cluster_size=cluster_size, root_name=name
        )
        self.model[name] = list(range(length))
        return name

    @rule(name=chains)
    def walk(self, name):
        if name not in self.model:
            return
        assert chain_values(self.space.get_root(name)) == self.model[name]

    @rule(
        name=chains,
        position=st.integers(min_value=0, max_value=30),
        value=st.integers(min_value=-999, max_value=999),
    )
    def write(self, name, position, value):
        if name not in self.model:
            return
        position %= len(self.model[name])
        cursor = self.space.get_root(name)
        for _ in range(position):
            cursor = cursor.get_next()
        cursor.set_value(value)
        self.model[name][position] = value

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def swap_out_something(self, pick):
        candidates = [
            sid
            for sid, cluster in self.space.clusters().items()
            if cluster.swappable() and cluster.oids
        ]
        if not candidates:
            return
        self.space.swap_out(candidates[pick % len(candidates)])

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def swap_in_something(self, pick):
        swapped = [
            sid
            for sid, cluster in self.space.clusters().items()
            if cluster.is_swapped
        ]
        if not swapped:
            return
        sid = swapped[pick % len(swapped)]
        try:
            self.space.swap_in(sid)
        except SwapStoreUnavailableError:
            assert self.store_lost  # only legal while the store is away

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def merge_two(self, pick):
        candidates = [
            sid
            for sid, cluster in self.space.clusters().items()
            if cluster.swappable() and cluster.oids
        ]
        if len(candidates) < 2:
            return
        absorber = candidates[pick % len(candidates)]
        absorbed = candidates[(pick + 1) % len(candidates)]
        if absorber != absorbed:
            self.space.merge_swap_clusters(absorber, absorbed)

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def split_one(self, pick):
        candidates = [
            sid
            for sid, cluster in self.space.clusters().items()
            if cluster.swappable() and len(cluster) >= 2
        ]
        if not candidates:
            return
        sid = candidates[pick % len(candidates)]
        size = len(self.space.clusters()[sid])
        self.space.split_swap_cluster(sid, 1 + pick % (size - 1) if size > 2 else 1)

    @rule(name=chains)
    def drop_chain(self, name):
        if name not in self.model:
            return
        # roots of swapped clusters can't be collected while the store is
        # lost... they can: GC just drops the record and tells the store
        self.space.del_root(name)
        del self.model[name]

    @rule()
    def collect(self):
        self.space.gc()

    @rule()
    def toggle_store(self):
        # the backup store guarantees swap-outs still succeed; the
        # primary toggling exercises mirror-less failover paths
        if self.store_lost:
            self.space.manager.add_store(self.store)
            self.store_lost = False
        else:
            self.space.manager.remove_store(self.store)
            self.store_lost = True

    # -- invariants ------------------------------------------------------------

    @invariant()
    def integrity_holds(self):
        if hasattr(self, "space"):
            self.space.verify_integrity()

    @invariant()
    def heap_matches_residency(self):
        if not hasattr(self, "space"):
            return
        expected = sum(
            self.space.size_model.size_of(obj)
            for obj in self.space._objects.values()
        )
        replacement_bytes = sum(
            self.space.size_model.replacement_size(
                cluster.replacement.outbound_count()
            )
            for cluster in self.space._clusters.values()
            if cluster.replacement is not None
        )
        assert self.space.heap.used == expected + replacement_bytes

    @invariant()
    def model_matches_when_stores_present(self):
        if not hasattr(self, "space") or self.store_lost:
            return
        for name, expected in self.model.items():
            assert chain_values(self.space.get_root(name)) == expected


TestSwapMachine = SwapMachine.TestCase
TestSwapMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
