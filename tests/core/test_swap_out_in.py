"""The swap-out / swap-in protocol."""

import pytest

from repro.core.swap_cluster import SwapClusterState
from repro.errors import (
    ClusterNotResidentError,
    ClusterNotSwappedError,
    ClusterPinnedError,
    CodecError,
    NoSwapDeviceError,
    SwapStoreUnavailableError,
)
from repro.events import SwapInEvent, SwapOutEvent
from tests.helpers import build_chain, chain_values, make_space


@pytest.fixture
def loaded(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    return space, handle


def test_swap_out_frees_heap(loaded):
    space, _ = loaded
    before = space.heap.used
    location = space.swap_out(2)
    assert space.heap.used < before
    assert location.xml_bytes > 0


def test_swap_out_ships_xml(loaded):
    space, _ = loaded
    store = space.manager.available_stores()[0]
    location = space.swap_out(2)
    assert store.keys() == [location.key]
    text = store.fetch(location.key)
    assert text.startswith("<swap-cluster")


def test_swap_out_detaches_objects(loaded):
    space, _ = loaded
    oids = set(space.clusters()[2].oids)
    space.swap_out(2)
    assert all(oid not in space._objects for oid in oids)
    assert space.clusters()[2].state is SwapClusterState.SWAPPED


def test_swap_out_emits_event(loaded):
    space, _ = loaded
    space.swap_out(3)
    event = space.bus.last(SwapOutEvent)
    assert event.sid == 3 and event.object_count == 5


def test_access_triggers_swap_in(loaded):
    space, handle = loaded
    space.swap_out(2)
    assert chain_values(handle) == list(range(20))
    assert space.clusters()[2].is_resident
    assert space.bus.count(SwapInEvent) == 1


def test_swap_in_restores_exact_state(loaded):
    space, handle = loaded
    raw = space.resolve(handle)
    raw.value = 999
    space.swap_out(1)
    assert handle.get_value() == 999


def test_swap_in_drops_store_copy_by_default(loaded):
    space, handle = loaded
    store = space.manager.available_stores()[0]
    space.swap_out(2)
    chain_values(handle)
    assert store.keys() == []


def test_keep_swapped_copies(loaded):
    space, handle = loaded
    space.manager.keep_swapped_copies = True
    store = space.manager.available_stores()[0]
    space.swap_out(2)
    chain_values(handle)
    assert len(store.keys()) == 1


def test_swap_epoch_increments(loaded):
    space, handle = loaded
    first = space.swap_out(2)
    chain_values(handle)  # reload
    second = space.swap_out(2)
    assert second.epoch == first.epoch + 1
    assert first.key != second.key


def test_root_cluster_cannot_swap(loaded):
    space, _ = loaded
    with pytest.raises(ClusterNotResidentError):
        space.swap_out(0)


def test_double_swap_out_rejected(loaded):
    space, _ = loaded
    space.swap_out(2)
    with pytest.raises(ClusterNotResidentError):
        space.swap_out(2)


def test_swap_in_resident_rejected(loaded):
    space, _ = loaded
    with pytest.raises(ClusterNotSwappedError):
        space.swap_in(2)


def test_pinned_cluster_cannot_swap(loaded):
    space, handle = loaded
    with space.pin(handle):
        with pytest.raises(ClusterPinnedError):
            space.swap_out(1)
    space.swap_out(1)  # fine after unpin


def test_no_store_raises(loaded):
    space, _ = loaded
    store = space.manager.available_stores()[0]
    space.manager.remove_store(store)
    with pytest.raises(NoSwapDeviceError):
        space.swap_out(2)


def test_store_vanishes_before_reload(loaded):
    space, handle = loaded
    store = space.manager.available_stores()[0]
    location = space.swap_out(2)
    store.drop(location.key)  # the device lost our data
    with pytest.raises(SwapStoreUnavailableError):
        chain_values(handle)


def test_corrupted_store_payload_detected(loaded):
    space, handle = loaded
    store = space.manager.available_stores()[0]
    location = space.swap_out(2)
    text = store.fetch(location.key)
    store.store(location.key, text.replace("<int>5</int>", "<int>6</int>"))
    with pytest.raises(CodecError):
        chain_values(handle)


def test_explicit_store_choice(loaded):
    from repro.devices import InMemoryStore

    space, _ = loaded
    preferred = InMemoryStore("preferred")
    location = space.swap_out(2, store=preferred)
    assert location.device_id == "preferred"
    assert len(preferred.keys()) == 1


def test_swap_victims_auto_selection(loaded):
    space, handle = loaded
    handle.get_value()  # touch cluster 1: it becomes most recent
    location = space.swap_out()  # default LRU picks an untouched cluster
    assert location is not None
    assert space.clusters()[1].is_resident  # cluster 1 was spared


def test_new_proxy_into_swapped_cluster(loaded):
    space, handle = loaded
    space.swap_out(2)
    # walking up to the boundary creates a NEW proxy whose target is the
    # replacement; invoking it must reload
    node4 = handle
    for _ in range(4):
        node4 = node4.get_next()
    boundary = node4.get_next()
    assert boundary.get_value() == 5


def test_integrity_across_many_cycles(loaded):
    space, handle = loaded
    for _ in range(5):
        space.swap_out(2)
        assert chain_values(handle) == list(range(20))
        space.verify_integrity()


def test_reload_under_pressure_evicts_another_cluster():
    """Swap-in of one cluster may need room; the manager's victim loop
    evicts a different cluster mid-reload (never the one loading)."""
    from tests.helpers import make_space

    space = make_space(heap_capacity=1000)
    space.manager.auto_swap = False
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    space.manager.auto_swap = True
    # both clusters ~400B each; swap one out, fill the freed room
    space.swap_out(2)
    space.ingest(build_chain(10), cluster_size=10, root_name="filler")
    # reloading cluster 2 cannot fit without evicting something
    assert chain_values(handle) == list(range(20))
    swapped_now = [
        sid for sid, cluster in space.clusters().items() if cluster.is_swapped
    ]
    assert swapped_now, "something else must have been evicted"
    assert 2 not in swapped_now
    space.verify_integrity()
    assert chain_values(space.get_root("filler")) == list(range(10))


def test_reload_failure_when_nothing_evictable():
    """If the reload cannot fit and no victim exists, the swap-in fails
    cleanly and the cluster stays swapped."""
    from repro.errors import HeapExhaustedError
    from tests.helpers import make_space

    space = make_space(heap_capacity=900)
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    space.swap_out(2)
    space.ingest(build_chain(10), cluster_size=10, root_name="filler")
    with space.pin(1), space.pin(3):  # nothing else may be evicted
        with pytest.raises(HeapExhaustedError):
            space.swap_in(2)
    assert space.clusters()[2].is_swapped
    space.verify_integrity()
    assert chain_values(handle) == list(range(20))  # works once unpinned
