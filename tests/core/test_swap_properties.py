"""Property-based invariants of the swapping core.

The central theorem of the paper is referential integrity: any sequence
of swap-outs, reloads and collections leaves the application-visible
graph unchanged.  Hypothesis drives random graphs and random operation
sequences against a model of the expected values.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.utils import SwapClusterUtils
from tests.helpers import Node, Pair, build_chain, chain_values, make_space


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    length=st.integers(min_value=1, max_value=60),
    cluster_size=st.integers(min_value=1, max_value=12),
    operations=st.lists(
        st.tuples(st.sampled_from(["swap", "walk", "gc", "touch"]),
                  st.integers(min_value=0, max_value=10_000)),
        max_size=12,
    ),
)
def test_chain_semantics_invariant(length, cluster_size, operations):
    space = make_space(heap_capacity=4 << 20)
    handle = space.ingest(
        build_chain(length), cluster_size=cluster_size, root_name="h"
    )
    expected = list(range(length))

    for op, argument in operations:
        if op == "swap":
            swappable = [
                sid
                for sid, cluster in space.clusters().items()
                if cluster.swappable() and cluster.oids
            ]
            if swappable:
                space.swap_out(swappable[argument % len(swappable)])
        elif op == "walk":
            assert chain_values(space.get_root("h")) == expected
        elif op == "gc":
            space.gc()
        elif op == "touch":
            position = argument % length
            cursor = space.get_root("h")
            for _ in range(position):
                cursor = cursor.get_next()
            assert cursor.get_value() == position
        space.verify_integrity()

    assert chain_values(space.get_root("h")) == expected
    space.verify_integrity()


@settings(max_examples=25, deadline=None)
@given(
    length=st.integers(min_value=2, max_value=40),
    cluster_size=st.integers(min_value=1, max_value=8),
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=39),
                  st.integers(min_value=-1000, max_value=1000)),
        max_size=8,
    ),
)
def test_writes_survive_swap_cycles(length, cluster_size, writes):
    space = make_space(heap_capacity=4 << 20)
    handle = space.ingest(
        build_chain(length), cluster_size=cluster_size, root_name="h"
    )
    expected = list(range(length))

    for position, new_value in writes:
        position %= length
        cursor = space.get_root("h")
        for _ in range(position):
            cursor = cursor.get_next()
        cursor.set_value(new_value)
        expected[position] = new_value
        # swap the written cluster out and back: the write must persist
        sid = space.sid_of(cursor)
        if space.clusters()[sid].swappable():
            space.swap_out(sid)

    assert chain_values(space.get_root("h")) == expected
    space.verify_integrity()


@settings(max_examples=25, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=30),
    cluster_size=st.integers(min_value=1, max_value=6),
)
def test_assign_iteration_equivalent_to_plain(length, cluster_size):
    space = make_space(heap_capacity=4 << 20)
    handle = space.ingest(
        build_chain(length), cluster_size=cluster_size, root_name="h"
    )
    plain = chain_values(handle)
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    via_assign = []
    while cursor is not None:
        via_assign.append(cursor.get_value())
        cursor = cursor.get_next()
    assert via_assign == plain == list(range(length))
    space.verify_integrity()


@settings(max_examples=20, deadline=None)
@given(
    fan=st.integers(min_value=1, max_value=10),
    cluster_size=st.integers(min_value=1, max_value=4),
    swap_rounds=st.integers(min_value=0, max_value=4),
)
def test_shared_objects_keep_identity(fan, cluster_size, swap_rounds):
    # a diamond: many pairs all sharing one node; identity must hold
    # across arbitrary swapping
    shared = Node(7)
    root = Pair()
    root.left = [Pair(shared, None) for _ in range(fan)]
    root.right = shared
    space = make_space(heap_capacity=4 << 20)
    handle = space.ingest(root, cluster_size=cluster_size, root_name="r")

    for round_index in range(swap_rounds):
        swappable = [
            sid
            for sid, cluster in space.clusters().items()
            if cluster.swappable() and cluster.oids
        ]
        if not swappable:
            break
        space.swap_out(swappable[round_index % len(swappable)])

    handle = space.get_root("r")
    right = handle.get_right()
    for position in range(fan):
        left_shared = handle.get_left()[position].get_left()
        assert SwapClusterUtils.equals(left_shared, right)
        assert left_shared.get_value() == 7
    space.verify_integrity()
