"""The codec negotiation matrix: every store kind, advertisement, compression.

Satellite of the binary-framing work: {InMemoryStore, XmlStoreDevice,
FlakyStore} x {binary advertised, xml-only, absent advertisement} x
{zlib, no compression}, all driven through the manager hot path with
``FastPathConfig(codec="binary")``.  Binary frames must flow exactly
when the store advertises them, everything else must transparently stay
on canonical XML, and every combination must round-trip values.
"""

import pytest

from repro.core.fastpath import FastPathConfig
from repro.devices import InMemoryStore
from repro.devices.store import XmlStoreDevice
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from tests.helpers import build_chain, chain_values, make_space


def _make_store(kind, advert):
    inner = (
        InMemoryStore("s")
        if kind == "memory"
        else XmlStoreDevice("s", capacity=1 << 20)
    )
    if advert == "xml-only":
        inner.supported_codecs = ("xml",)
    elif advert == "absent":
        inner.supported_codecs = ()
    if kind == "flaky":
        return FlakyStore(inner, FaultInjector(FaultPlan.empty())), inner
    return inner, inner


def _binary_at_rest(inner):
    if isinstance(inner, InMemoryStore):
        return len(inner._wire)
    return len(inner._codecs)


@pytest.mark.parametrize("compression", ["zlib", "none"])
@pytest.mark.parametrize("advert", ["binary", "xml-only", "absent"])
@pytest.mark.parametrize("kind", ["memory", "xml", "flaky"])
def test_negotiation_matrix_roundtrips(kind, advert, compression):
    store, inner = _make_store(kind, advert)
    space = make_space(with_store=False)
    space.manager.add_store(store)
    space.manager.enable_fastpath(
        FastPathConfig(
            codec="binary",
            compression=("zlib",) if compression == "zlib" else (),
            serve_swap_in_from_cache=False,
        )
    )
    handle = space.ingest(build_chain(12), cluster_size=4, root_name="h")
    expected = list(range(12))
    assert chain_values(handle) == expected

    binary_expected = advert == "binary"
    space.swap_out(2)
    stats = space.manager.stats
    assert (stats.codec_binary_ships > 0) == binary_expected
    assert (_binary_at_rest(inner) > 0) == binary_expected
    assert space.manager.fastpath.negotiated_codec["s"] == (
        "binary" if binary_expected else None
    )

    space.swap_in(2)
    assert (stats.codec_binary_fetches > 0) == binary_expected
    assert chain_values(handle) == expected

    # mutate inside the swapped cluster, cycle again: values must travel
    node = handle
    for _ in range(5):
        node = node.get_next()
    node.set_value(999)
    expected[5] = 999
    space.swap_out(2)
    space.swap_in(2)
    assert chain_values(handle) == expected
    assert stats.codec_fallbacks == 0  # nothing ever rejected a ship


def test_matrix_never_leaks_binary_to_non_advertising_stores():
    for kind in ("memory", "xml", "flaky"):
        for advert in ("xml-only", "absent"):
            store, inner = _make_store(kind, advert)
            space = make_space(with_store=False)
            space.manager.add_store(store)
            space.manager.enable_fastpath(
                FastPathConfig(codec="binary", serve_swap_in_from_cache=False)
            )
            space.ingest(build_chain(8), cluster_size=4, root_name="h")
            space.swap_out(2)
            assert _binary_at_rest(inner) == 0
            assert space.manager.stats.codec_binary_ships == 0
