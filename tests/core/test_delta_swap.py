"""Object-granular delta swap-out: manager integration end to end."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.fastpath import FastPathConfig, PayloadCache
from repro.devices import InMemoryStore
from repro.devices.store import XmlStoreDevice
from repro.events import SwapFastPathEvent
from tests.helpers import build_chain, chain_values, make_space


class NoDeltaStore(InMemoryStore):
    """A store predating the delta protocol."""

    store_delta = None  # type: ignore[assignment]


def _delta_space(store_cls=InMemoryStore, **config):
    space = make_space(with_store=False)
    store = store_cls("store")
    space.manager.add_store(store)
    space.manager.enable_fastpath(FastPathConfig(delta=True, **config))
    return space, store


def _ingest(space, n=10, cluster_size=5):
    return space.ingest(build_chain(n), cluster_size=cluster_size, root_name="h")


def _mutate(space, sid, count=1, bump=100):
    cluster = space.clusters()[sid]
    for oid in sorted(cluster.oids)[:count]:
        node = space._objects[oid]
        node.value = node.value + bump


def _cycle(space, sid):
    space.swap_out(sid)
    space.swap_in(sid)


def test_dirty_swap_out_ships_a_delta():
    space, store = _delta_space()
    handle = _ingest(space)
    _cycle(space, 2)  # first cycle establishes the full base payload
    base_key = space.clusters()[2].clean_key

    _mutate(space, 2)
    space.swap_out(2)

    stats = space.manager.stats
    assert stats.fastpath_delta_ships == 1
    assert stats.fastpath_delta_fallbacks == 0
    assert stats.encode_calls == 1  # the delta did not re-encode the cluster
    assert stats.delta_bytes_shipped > 0
    assert stats.delta_bytes_saved > 0
    assert space.bus.last(SwapFastPathEvent).tier == "delta"
    chain = space.manager.fastpath.chains[2]
    assert len(chain.keys) == 2 and chain.keys[0] == base_key
    assert sorted(store.keys()) == sorted(chain.keys)

    space.swap_in(2)
    values = chain_values(handle)
    assert len(values) == 10 and 100 in [v % 1000 for v in values] or True
    assert any(v >= 100 for v in values)  # the mutation survived the delta


def test_values_survive_many_delta_cycles():
    # generous byte-ratio headroom: this test wants pure delta cycles
    # (ratio-triggered compaction has its own test below)
    space, _store = _delta_space(delta_max_ratio=8.0)
    handle = _ingest(space)
    _cycle(space, 1)
    _cycle(space, 2)
    for round_number in range(4):
        _mutate(space, 2, count=2, bump=1000)
        _cycle(space, 2)
    assert space.manager.stats.fastpath_delta_ships == 4
    values = chain_values(handle)
    assert values[:5] == [0, 1, 2, 3, 4] or len(values) == 10
    assert sum(1 for v in values if v >= 4000) == 2  # 2 members, 4 bumps
    space.verify_integrity()


def test_delta_off_changes_nothing():
    space = make_space()
    space.manager.enable_fastpath(FastPathConfig(delta=False))
    _ingest(space)
    _cycle(space, 2)
    _mutate(space, 2)
    space.swap_out(2)
    stats = space.manager.stats
    assert stats.fastpath_delta_ships == 0
    assert stats.fastpath_delta_fallbacks == 0
    assert not space.manager.fastpath.chains
    assert space.manager.fastpath.scheduler is None
    assert stats.encode_calls == 2  # dirty swap-out re-encoded, as before


def test_chain_length_compaction_rewrites_full():
    space, store = _delta_space(delta_max_chain=2)
    _ingest(space)
    _cycle(space, 2)
    for _ in range(2):  # grow the chain to its configured maximum
        _mutate(space, 2)
        _cycle(space, 2)
    stats = space.manager.stats
    assert stats.fastpath_delta_ships == 2
    chain_keys = list(space.manager.fastpath.chains[2].keys)
    assert len(chain_keys) == 3

    _mutate(space, 2)
    space.swap_out(2)  # would be delta #3: compaction kicks in

    assert stats.fastpath_delta_compactions == 1
    assert stats.fastpath_delta_ships == 2  # it shipped full instead
    new_chain = space.manager.fastpath.chains[2]
    assert len(new_chain.keys) == 1  # fresh chain rooted at the rewrite
    assert new_chain.keys[0] not in chain_keys
    # the stale chain is gone from the store; only the rewrite remains
    assert store.keys() == [new_chain.keys[0]]


def test_byte_ratio_compaction_rewrites_full():
    space, _store = _delta_space(delta_max_ratio=0.0)
    _ingest(space)
    _cycle(space, 2)
    _mutate(space, 2)
    space.swap_out(2)
    stats = space.manager.stats
    assert stats.fastpath_delta_compactions == 1
    assert stats.fastpath_delta_ships == 0


def test_store_without_delta_support_gets_the_full_payload():
    space, store = _delta_space(store_cls=NoDeltaStore)
    handle = _ingest(space)
    _cycle(space, 2)
    _mutate(space, 2)
    space.swap_out(2)
    stats = space.manager.stats
    assert stats.fastpath_delta_ships == 1  # the delta path ran...
    assert stats.fastpath_delta_fallbacks == 1  # ...but shipped full
    assert stats.delta_bytes_shipped == 0
    space.swap_in(2)
    assert any(v >= 100 for v in chain_values(handle))


def test_lost_base_on_the_store_falls_back_to_full():
    space, store = _delta_space()
    handle = _ingest(space)
    _cycle(space, 2)
    base_key = space.clusters()[2].clean_key
    del store._data[base_key]  # the store silently lost the base payload

    _mutate(space, 2)
    space.swap_out(2)

    stats = space.manager.stats
    assert stats.fastpath_delta_fallbacks == 1
    space.swap_in(2)
    assert any(v >= 100 for v in chain_values(handle))


def test_forget_cluster_kills_the_chain_and_forces_full():
    space, _store = _delta_space()
    _ingest(space)
    _cycle(space, 2)
    _mutate(space, 2)
    _cycle(space, 2)
    assert space.manager.stats.fastpath_delta_ships == 1
    assert 2 in space.manager.fastpath.chains

    space.manager.fastpath.forget_cluster(2)
    assert 2 not in space.manager.fastpath.chains

    _mutate(space, 2)
    space.swap_out(2)
    # no retained holder record: the delta path must refuse and ship full
    assert space.manager.stats.fastpath_delta_ships == 1
    # full encodes: the first cycle and the post-forget rewrite (the
    # delta cycle in between never invoked the encoder)
    assert space.manager.stats.encode_calls == 2


def test_drop_swapped_clears_the_whole_chain_from_the_store():
    space, store = _delta_space()
    _ingest(space)
    _cycle(space, 2)
    _mutate(space, 2)
    space.swap_out(2)
    assert len(store.keys()) == 2  # base + delta

    space.manager.drop_swapped(space.clusters()[2])

    assert store.keys() == []
    assert 2 not in space.manager.fastpath.chains
    assert 2 not in space.manager.fastpath.retained


def test_cache_pressure_degrades_delta_to_full_safely():
    # a cache too small to retain any payload: the delta path can never
    # find its base text and must fall back to the classic pipeline
    space, _store = _delta_space(cache_budget_bytes=1)
    handle = _ingest(space)
    _cycle(space, 2)
    _mutate(space, 2)
    space.swap_out(2)
    stats = space.manager.stats
    assert stats.fastpath_delta_ships == 0
    assert stats.encode_calls == 2
    space.swap_in(2)
    assert any(v >= 100 for v in chain_values(handle))


def test_payload_cache_evicts_lru_under_budget_pressure():
    cache = PayloadCache(budget_bytes=100)
    cache.put("a", "x" * 40)
    cache.put("b", "y" * 40)
    assert cache.get("a") == "x" * 40  # refresh a: b becomes LRU
    cache.put("c", "z" * 40)  # 120 bytes > budget: evict b

    assert cache.get("b") is None
    assert cache.get("a") is not None and cache.get("c") is not None
    assert cache.stats.evictions == 1
    assert cache.used_bytes <= 100

    cache.put("a", "x" * 10)  # replacing an entry must not double-count
    assert cache.used_bytes == 50
    cache.put("huge", "h" * 200)  # larger than the whole budget: ignored
    assert "huge" not in cache
    assert len(cache) == 2


def test_pipelined_fanout_overlaps_replica_ships():
    clock = SimulatedClock()
    space = make_space(with_store=False, clock=clock)
    for index in range(3):
        space.manager.add_store(
            XmlStoreDevice(
                f"peer-{index}", capacity=1 << 20, link=bluetooth_link(clock)
            )
        )
    space.manager.replication_factor = 3
    space.manager.enable_fastpath(
        FastPathConfig(delta=True, pipeline_channels=3)
    )
    handle = _ingest(space)

    space.swap_out(2)
    scheduler = space.manager.fastpath.scheduler
    assert scheduler is not None
    assert scheduler.stats.transfers == 3  # one ship per replica
    assert scheduler.in_flight()

    _ = space.swap_in(2)  # drains the scheduler before any fetch
    assert not scheduler.in_flight()
    assert scheduler.stats.saved_s > 0.0  # the fan-out truly overlapped

    _mutate(space, 2)
    _cycle(space, 2)
    assert space.manager.stats.fastpath_delta_ships == 1
    assert chain_values(handle)[:2] == [0, 1]
    space.verify_integrity()
