"""SwappingManager: store selection, pressure relief, stats."""

import pytest

from repro.devices import InMemoryStore, XmlStoreDevice
from repro.errors import HeapExhaustedError, NoSwapDeviceError
from tests.helpers import Node, build_chain, chain_values, make_space


def test_select_store_first_fit():
    space = make_space(with_store=False)
    small = XmlStoreDevice("small", capacity=10)
    big = XmlStoreDevice("big", capacity=1 << 20)
    space.manager.add_store(small)
    space.manager.add_store(big)
    assert space.manager.select_store(100) is big


def test_select_store_none_available():
    space = make_space(with_store=False)
    with pytest.raises(NoSwapDeviceError):
        space.manager.select_store(10)


def test_select_store_all_full():
    space = make_space(with_store=False)
    space.manager.add_store(XmlStoreDevice("tiny", capacity=8))
    with pytest.raises(NoSwapDeviceError):
        space.manager.select_store(100)


def test_store_provider_merged():
    space = make_space(with_store=False)
    dynamic = InMemoryStore("discovered")
    space.manager.set_store_provider(lambda: [dynamic])
    assert dynamic in space.manager.available_stores()
    space.ingest(build_chain(5), cluster_size=5, root_name="h")
    location = space.swap_out(1)
    assert location.device_id == "discovered"


def test_ensure_room_swaps_until_fit():
    space = make_space(heap_capacity=4096)
    for index in range(4):
        space.ingest(build_chain(10), cluster_size=10, root_name=f"c{index}")
    used_before = space.heap.used
    freed = space.manager.ensure_room(space.heap.free + 500)
    assert freed > 0
    assert space.heap.used < used_before


def test_ensure_room_gives_up_without_stores():
    space = make_space(with_store=False, heap_capacity=4096)
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    freed = space.manager.ensure_room(1 << 20)
    assert freed == 0


def test_auto_swap_on_exhaustion():
    space = make_space(heap_capacity=1600)
    # fill close to capacity, then keep allocating: the manager must
    # relieve pressure by swapping LRU clusters automatically
    for index in range(6):
        space.ingest(build_chain(10), cluster_size=10, root_name=f"c{index}")
    swapped = [c for c in space.clusters().values() if c.is_swapped]
    assert swapped, "expected automatic swap-outs under pressure"
    # everything still reachable
    for index in range(6):
        assert chain_values(space.get_root(f"c{index}")) == list(range(10))


def test_auto_swap_disabled_raises():
    space = make_space(heap_capacity=2000)
    space.manager.auto_swap = False
    with pytest.raises(HeapExhaustedError):
        for index in range(8):
            space.ingest(build_chain(10), cluster_size=10, root_name=f"c{index}")


def test_custom_victim_selector():
    space = make_space(heap_capacity=1 << 20)
    space.ingest(build_chain(10), cluster_size=10, root_name="a")
    space.ingest(build_chain(10), cluster_size=10, root_name="b")
    chosen = []

    def always_two(sp):
        chosen.append(2)
        return 2 if sp._clusters[2].is_resident else None

    space.manager.victim_selector = always_two
    space.swap_out()  # facade consults the selector
    assert chosen and space.clusters()[2].is_swapped


def test_stats_track_bytes():
    space = make_space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    chain_values(handle)
    stats = space.manager.stats
    assert stats.swap_outs == 1
    assert stats.swap_ins == 1
    assert stats.bytes_shipped > 0
    assert stats.bytes_restored > 0


def test_replicated_cluster_counter():
    space = make_space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    assert space.manager.stats.replicated_clusters == 2


def test_binding_tracked_per_cluster():
    space = make_space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    store = space.manager.available_stores()[0]
    space.swap_out(2)
    assert space.manager.binding_for(2) is store
    assert space.manager.binding_for(1) is None
