"""The swap fast path: payload cache, clean-cluster no-ops, re-ships."""

import pytest

from repro.core.fastpath import FastPathConfig, FastPathState, PayloadCache
from repro.events import SwapFastPathEvent, SwapOutEvent
from tests.helpers import build_chain, chain_values, make_space


def _fast_space(**config):
    space = make_space()
    space.manager.enable_fastpath(FastPathConfig(**config))
    return space


def _ingest_chain(space, n=20, cluster_size=5):
    return space.ingest(build_chain(n), cluster_size=cluster_size, root_name="h")


def _cycle(space, sid):
    space.swap_out(sid)
    space.swap_in(sid)


# -- manager integration -------------------------------------------------


def test_enable_and_disable():
    space = make_space()
    state = space.manager.enable_fastpath()
    assert isinstance(state, FastPathState)
    assert space.manager.fastpath is state
    space.manager.disable_fastpath()
    assert space.manager.fastpath is None


def test_clean_swap_out_is_metadata_noop():
    space = _fast_space()
    _ingest_chain(space)
    store = space.manager.available_stores()[0]
    first = space.swap_out(2)
    space.swap_in(2)

    second = space.swap_out(2)

    stats = space.manager.stats
    assert stats.encode_calls == 1  # only the first swap-out serialized
    assert stats.fastpath_noops == 1
    assert second.key == first.key
    assert space.clusters()[2].epoch == first.epoch  # no epoch bump
    assert store.keys() == [first.key]  # the retained copy, nothing new
    assert space.bus.last(SwapFastPathEvent).tier == "noop"
    assert space.bus.last(SwapOutEvent).xml_bytes == 0  # nothing traveled
    assert space.clusters()[2].is_swapped


def test_swap_in_served_from_payload_cache():
    space = _fast_space()
    handle = _ingest_chain(space)
    _cycle(space, 2)
    space.swap_out(2)
    space.swap_in(2)
    # swap-out seeds the cache, so both reloads were local
    assert space.manager.stats.swapin_cache_hits == 2
    assert chain_values(handle) == list(range(20))


def test_cache_serves_swap_in_after_store_loss():
    space = _fast_space()
    handle = _ingest_chain(space)
    store = space.manager.available_stores()[0]
    location = space.swap_out(2)
    store.drop(location.key)  # the device left the room with our bytes
    space.swap_in(2)
    assert space.manager.stats.swapin_cache_hits == 1
    assert chain_values(handle) == list(range(20))


def test_reship_from_cache_when_store_evicted():
    space = _fast_space()
    _ingest_chain(space)
    store = space.manager.available_stores()[0]
    first = space.swap_out(2)
    shipped = store.fetch(first.key)
    space.swap_in(2)
    store.drop(first.key)  # retention broken behind the manager's back

    second = space.swap_out(2)

    stats = space.manager.stats
    assert stats.fastpath_reships == 1
    assert stats.fastpath_noops == 0
    assert stats.encode_calls == 1  # shipped from cache, not re-encoded
    assert store.fetch(second.key) == shipped
    assert space.bus.last(SwapFastPathEvent).tier == "reship"


def test_cache_miss_without_retention_falls_back_to_full():
    # a 1-byte cache never holds the payload; retention is off, so the
    # clean path has nothing to work with and must re-encode
    space = _fast_space(cache_budget_bytes=1, retain_remote_copies=False)
    _ingest_chain(space)
    _cycle(space, 2)
    space.swap_out(2)
    stats = space.manager.stats
    assert stats.encode_calls == 2
    assert stats.fastpath_noops == 0
    assert stats.fastpath_reships == 0


def test_mutation_cleans_up_stale_store_copy():
    space = _fast_space()
    _ingest_chain(space)
    store = space.manager.available_stores()[0]
    first = space.swap_out(2)
    space.swap_in(2)
    space._objects[min(space.clusters()[2].oids)].value = 555
    second = space.swap_out(2)
    assert second.key != first.key
    assert store.keys() == [second.key]  # the stale copy was dropped


def test_disable_fastpath_restores_full_pipeline():
    space = _fast_space()
    handle = _ingest_chain(space)
    _cycle(space, 2)
    space.manager.disable_fastpath()
    space.swap_out(2)
    assert space.manager.stats.encode_calls == 2  # full path again
    assert chain_values(handle) == list(range(20))


def test_drop_swapped_forgets_retention():
    space = _fast_space()
    _ingest_chain(space)
    store = space.manager.available_stores()[0]
    space.swap_out(2)
    space.manager.drop_swapped(space.clusters()[2])
    assert space.manager.fastpath.retained.get(2) is None
    assert store.keys() == []


# -- PayloadCache --------------------------------------------------------


def test_cache_requires_positive_budget():
    with pytest.raises(ValueError):
        PayloadCache(0)


def test_cache_roundtrip_and_accounting():
    cache = PayloadCache(100)
    cache.put("d1", "hello")
    assert cache.get("d1") == "hello"
    assert cache.used_bytes == 5
    assert len(cache) == 1
    assert "d1" in cache
    cache.invalidate("d1")
    assert cache.get("d1") is None
    assert cache.used_bytes == 0


def test_cache_put_same_digest_does_not_double_count():
    cache = PayloadCache(100)
    cache.put("d1", "hello")
    cache.put("d1", "hello")
    assert cache.used_bytes == 5


def test_cache_evicts_least_recently_used():
    cache = PayloadCache(10)
    cache.put("a", "xxxxx")
    cache.put("b", "yyyyy")
    assert cache.get("a") == "xxxxx"  # promotes a over b
    cache.put("c", "zzzzz")  # must evict b, the coldest
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert cache.stats.evictions == 1
    assert cache.used_bytes == 10


def test_cache_rejects_oversized_payload():
    cache = PayloadCache(4)
    cache.put("big", "too large to ever fit")
    assert "big" not in cache
    assert cache.used_bytes == 0


# -- compression negotiation cache ---------------------------------------


class _Advertising:
    def __init__(self, device_id, codecs):
        self.device_id = device_id
        self.supported_compressions = codecs


def test_negotiate_for_caches_per_store():
    state = FastPathState(FastPathConfig(compression=("zlib",)))
    modern = _Advertising("modern", ("zlib",))
    legacy = _Advertising("legacy", ())
    assert state.negotiate_for(modern) == "zlib"
    assert state.negotiate_for(legacy) is None
    modern.supported_compressions = ()  # too late: the result is cached
    assert state.negotiate_for(modern) == "zlib"
    assert state.negotiated == {"modern": "zlib", "legacy": None}
