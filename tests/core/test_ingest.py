"""Graph ingestion: partitioning, boundary rewriting, grouping."""

import pytest

from repro.core.utils import SwapClusterUtils
from repro.errors import AlreadyManagedError, NotManagedError
from repro.ids import ROOT_SID
from tests.helpers import Holder, Node, Pair, build_chain, chain_values, make_space


def test_ingest_partitions_by_cluster_size(space):
    space.ingest(build_chain(12), cluster_size=5)
    clusters = space.clusters()
    sizes = sorted(len(clusters[sid]) for sid in clusters if sid != ROOT_SID)
    assert sizes == [2, 5, 5]


def test_ingest_clusters_per_swap_groups(space):
    space.ingest(build_chain(20), cluster_size=5, clusters_per_swap=2)
    clusters = space.clusters()
    non_root = [clusters[sid] for sid in clusters if sid != ROOT_SID]
    assert len(non_root) == 2
    assert all(len(cluster.cids) == 2 for cluster in non_root)


def test_ingest_returns_root_proxy(space):
    handle = space.ingest(build_chain(5), cluster_size=5)
    assert SwapClusterUtils.is_swap_proxy(handle)
    assert SwapClusterUtils.source_sid(handle) == ROOT_SID


def test_ingest_installs_root_name(space):
    handle = space.ingest(build_chain(5), cluster_size=5, root_name="mine")
    assert space.get_root("mine") is handle


def test_ingest_rewrites_boundaries(space):
    space.ingest(build_chain(10), cluster_size=5)
    space.verify_integrity()  # raw cross-cluster edges would fail this


def test_ingest_rewrites_container_edges(space):
    holder = Holder()
    chain = build_chain(8)
    holder.items.append(chain)
    cursor = chain
    while cursor.next is not None:
        cursor = cursor.next
    holder.index["tail"] = cursor
    space.ingest(holder, cluster_size=3, root_name="holder")
    space.verify_integrity()


def test_ingest_charges_heap(space):
    before = space.heap.used
    space.ingest(build_chain(10), cluster_size=5)
    assert space.heap.used > before


def test_ingest_twice_rejected(space):
    chain = build_chain(5)
    space.ingest(chain, cluster_size=5)
    with pytest.raises(AlreadyManagedError):
        space.ingest(chain, cluster_size=5)


def test_ingest_unmanaged_rejected(space):
    with pytest.raises(NotManagedError):
        space.ingest(object(), cluster_size=5)


def test_ingest_preserves_semantics(space):
    handle = space.ingest(build_chain(23), cluster_size=4, root_name="h")
    assert chain_values(handle) == list(range(23))


def test_ingest_shared_object_single_adoption(space):
    shared = Node(9)
    root = Pair(Pair(shared, None), shared)
    space.ingest(root, cluster_size=2, root_name="r")
    space.verify_integrity()
    handle = space.get_root("r")
    left_shared = handle.get_left().get_left()
    right_shared = handle.get_right()
    assert left_shared == right_shared


def test_ingest_emits_replication_events(space):
    from repro.events import ClusterReplicatedEvent

    space.ingest(build_chain(10), cluster_size=5)
    assert space.bus.count(ClusterReplicatedEvent) == 2


def test_custom_strategy(space):
    def reversed_chunks(root, size):
        from repro.core.clustering import partition_sequential, walk_graph

        order = list(reversed(walk_graph(root)))
        return partition_sequential(order, size)

    handle = space.ingest(build_chain(6), cluster_size=3, strategy=reversed_chunks)
    assert chain_values(handle) == list(range(6))
    space.verify_integrity()
