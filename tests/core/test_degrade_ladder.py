"""Degrade ladder: rung transitions, per-rung routing, emergency kills."""

import random

import pytest

from repro import Space, managed
from repro.clock import SimulatedClock
from repro.core.degrade import (
    DegradeLadderConfig,
    DegradeRung,
    StallTracker,
)
from repro.core.fastpath import FastPathConfig
from repro.core.manager import lru_victim
from repro.devices import InMemoryStore
from repro.errors import IntegrityError
from repro.policy.pressure import classify
from tests.helpers import build_chain, chain_values, make_space

NOMINAL = classify(0.9, 1.0, 0.0)
ELEVATED = classify(0.25, 1.0, 0.0)
HIGH = classify(0.10, 1.0, 0.0)
CRITICAL = classify(0.01, 1.0, 0.0)


@managed(size=512)
class Payload:
    """Fixed accounted size with an arbitrary-entropy body."""

    def __init__(self, body: str = "") -> None:
        self.body = body
        self.next = None

    def get_body(self) -> str:
        return self.body

    def get_next(self):
        return self.next


def _payload_chain(count, body_chars, rng):
    head = Payload("".join(rng.choice("0123456789abcdef")
                           for _ in range(body_chars)))
    node = head
    for _ in range(count - 1):
        node.next = Payload("".join(rng.choice("0123456789abcdef")
                                    for _ in range(body_chars)))
        node = node.next
    return head


# -- StallTracker ----------------------------------------------------------


def test_stall_tracker_p95_is_the_95th_percentile():
    tracker = StallTracker()
    for value in range(1, 101):
        tracker.record(float(value))
    assert tracker.p95() == 95.0
    assert tracker.max_s == 100.0
    assert tracker.mean() == pytest.approx(50.5)


def test_stall_tracker_empty_and_single_sample():
    tracker = StallTracker()
    assert tracker.p95() == 0.0
    tracker.record(3.0)
    assert tracker.p95() == 3.0


def test_stall_tracker_filters_by_priority():
    tracker = StallTracker()
    tracker.record(10.0, priority=0)
    tracker.record(1.0, priority=2)
    assert tracker.p95(min_priority=2) == 1.0
    assert tracker.p95() == 10.0


def test_stall_tracker_is_bounded():
    tracker = StallTracker(cap=4)
    for value in range(10):
        tracker.record(float(value))
    assert len(tracker.samples()) == 4
    assert tracker.count == 10  # totals keep counting past the cap


# -- rung transitions ------------------------------------------------------


def _ladder_space():
    clock = SimulatedClock()
    space = Space("ladder", heap_capacity=1 << 20, clock=clock)
    space.manager.add_store(InMemoryStore("ladder-store"))
    ladder = space.manager.enable_degrade_ladder(DegradeLadderConfig())
    return space, ladder, clock


def test_escalation_is_immediate():
    space, ladder, clock = _ladder_space()
    ladder.assess = lambda: CRITICAL
    assert ladder.update() is DegradeRung.EMERGENCY
    assert ladder.transitions == [(0.0, 0, 3)]
    assert space.manager.stats.ladder_escalations == 1


def test_deescalation_is_hysteretic_one_rung_per_hold():
    space, ladder, clock = _ladder_space()
    ladder.assess = lambda: CRITICAL
    ladder.update()
    ladder.assess = lambda: NOMINAL

    assert ladder.update() is DegradeRung.EMERGENCY  # starts the timer
    clock.advance(ladder.config.hold_s - 0.1)
    assert ladder.update() is DegradeRung.EMERGENCY  # not held long enough
    clock.advance(0.2)
    assert ladder.update() is DegradeRung.DROP_CLEAN  # one rung, not all
    clock.advance(ladder.config.hold_s)
    assert ladder.update() is DegradeRung.COMPRESS_LOCAL
    clock.advance(ladder.config.hold_s)
    assert ladder.update() is DegradeRung.NORMAL
    clock.advance(ladder.config.hold_s)
    assert ladder.update() is DegradeRung.NORMAL  # fully reversible, stays
    assert space.manager.stats.ladder_deescalations == 3


def test_rising_pressure_restarts_the_hold_timer():
    space, ladder, clock = _ladder_space()
    ladder.assess = lambda: HIGH
    ladder.update()
    ladder.assess = lambda: NOMINAL
    ladder.update()
    clock.advance(ladder.config.hold_s - 0.1)
    ladder.assess = lambda: HIGH  # pressure came back mid-hold
    assert ladder.update() is DegradeRung.DROP_CLEAN
    ladder.assess = lambda: NOMINAL
    clock.advance(0.2)
    # the old timer must not carry over: 0.2s below is not hold_s
    assert ladder.update() is DegradeRung.DROP_CLEAN


def test_force_emergency_overrides_the_signal():
    space, ladder, clock = _ladder_space()
    ladder.assess = lambda: NOMINAL
    ladder.update()
    ladder.force_emergency("victim loop failed")
    assert ladder.rung is DegradeRung.EMERGENCY
    escalations = space.manager.stats.ladder_escalations
    ladder.force_emergency("again")  # already there: no double count
    assert space.manager.stats.ladder_escalations == escalations
    # normal hysteretic recovery still applies
    ladder.update()
    clock.advance(ladder.config.hold_s)
    assert ladder.update() is DegradeRung.DROP_CLEAN


# -- per-rung routing ------------------------------------------------------


def test_drop_clean_rung_skips_contains_probes():
    space = make_space("dropclean")
    space.manager.enable_fastpath(FastPathConfig())
    ladder = space.manager.enable_degrade_ladder(DegradeLadderConfig())
    space.ingest(build_chain(6), cluster_size=6, root_name="t")
    space.swap_out(1)
    space.swap_in(1)  # clean, cached, with a retained holder

    store = space.manager._stores[0]
    probes = []
    original = store.contains
    store.contains = lambda key: probes.append(key) or original(key)

    ladder.assess = lambda: HIGH  # DROP_CLEAN
    space.swap_out(1)
    assert space.manager.stats.ladder_drop_clean == 1
    assert probes == []  # the ledger's word, zero control traffic

    space.swap_in(1)
    ladder.assess = lambda: NOMINAL
    ladder.rung = DegradeRung.NORMAL  # skip the hysteresis hold
    space.swap_out(1)  # back at NORMAL the probe path returns
    assert space.manager.stats.fastpath_noops == 1
    assert len(probes) == 1


def test_compress_local_needs_no_store_and_reverses():
    clock = SimulatedClock()
    space = Space("pool-only", heap_capacity=1 << 20, clock=clock)
    ladder = space.manager.enable_degrade_ladder(DegradeLadderConfig())
    handle = space.ingest(build_chain(8), cluster_size=8, root_name="t")
    ladder.assess = lambda: ELEVATED

    location = space.swap_out(1)
    assert space.manager.stats.ladder_compress_local == 1
    assert location.device_id == ladder.fallback_store().device_id

    space.swap_in(1)  # CPU-only round trip, zero link traffic
    assert chain_values(handle) == list(range(8))
    space.verify_integrity()


def test_compress_local_displaces_the_victim_on_a_full_heap():
    # free heap (64 bytes) is far below any compressed payload: without
    # the zswap-style displacement of the victim's own accounting the
    # pool allocation must fail.  The random-hex bodies keep zlib from
    # shrinking the payload under the free space.
    rng = random.Random(7)
    head = _payload_chain(6, 400, rng)
    space = Space("tight", heap_capacity=6 * 512 + 64)
    space.manager.auto_swap = False
    ladder = space.manager.enable_degrade_ladder(
        DegradeLadderConfig(fallback_pool_fraction=1.0)
    )
    space.ingest(head, cluster_size=6, root_name="t")
    assert space.heap.capacity - space.heap.used == 64
    ladder.assess = lambda: ELEVATED

    location = space.swap_out(1)
    assert space.manager.stats.ladder_compress_local == 1
    assert location.device_id == ladder.fallback_store().device_id
    assert space.heap.used < 6 * 512  # compressed residue, not the victim


# -- emergency rung --------------------------------------------------------


def test_emergency_evict_kills_idle_before_foreground():
    space = Space("oom", heap_capacity=8 << 10)
    space.manager.auto_swap = False
    space.manager.enable_degrade_ladder(DegradeLadderConfig())
    fg = space.ingest(build_chain(6, Payload), cluster_size=6, root_name="fg")
    idle = space.ingest(
        build_chain(6, Payload), cluster_size=6, root_name="idle"
    )
    space.set_priority(fg, 2)
    space.set_priority(idle, 0)

    freed = space.manager._emergency_evict(4 << 10)
    assert freed >= 6 * 512
    assert space.manager.stats.oom_kills == 1
    assert fg.get_body() == 0  # foreground untouched
    with pytest.raises(IntegrityError):
        idle.get_body()  # tombstoned: the app-relaunch signal


def test_emergency_evict_refuses_to_kill_the_last_foreground():
    space = Space("oom-fg", heap_capacity=8 << 10)
    space.manager.auto_swap = False
    space.manager.enable_degrade_ladder(DegradeLadderConfig())
    fg = space.ingest(build_chain(6, Payload), cluster_size=6, root_name="fg")
    space.set_priority(fg, 2)

    assert space.manager._emergency_evict(1 << 20) == 0
    assert space.manager.stats.oom_kills == 0
    assert fg.get_body() == 0  # stays full rather than kill foreground


def test_unprotected_ladder_does_kill_foreground():
    space = Space("oom-unprot", heap_capacity=8 << 10)
    space.manager.auto_swap = False
    space.manager.enable_degrade_ladder(
        DegradeLadderConfig(protect_foreground=False)
    )
    fg = space.ingest(build_chain(6, Payload), cluster_size=6, root_name="fg")
    space.set_priority(fg, 2)

    assert space.manager._emergency_evict(7 << 10) > 0
    with pytest.raises(IntegrityError):
        fg.get_body()


# -- enable/disable --------------------------------------------------------


def test_disable_restores_the_default_victim_selector():
    space = make_space("toggle")
    assert space.manager.victim_selector is lru_victim
    space.manager.enable_degrade_ladder(DegradeLadderConfig())
    assert space.manager.victim_selector is not lru_victim
    space.manager.disable_degrade_ladder()
    assert space.manager.ladder is None
    assert space.manager.victim_selector is lru_victim


def test_enable_without_selector_keeps_the_current_one():
    space = make_space("keep")
    space.manager.enable_degrade_ladder(
        DegradeLadderConfig(install_selector=False)
    )
    assert space.manager.victim_selector is lru_victim
