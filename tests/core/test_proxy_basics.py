"""Swap-cluster-proxy behaviour: methods, fields, identity."""

import pytest

from repro.core.utils import SwapClusterUtils
from tests.helpers import Node, Pair, build_chain, make_space


@pytest.fixture
def two_clusters():
    """A 10-node chain split into two clusters; returns (space, handle)."""
    space = make_space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    return space, handle


def test_method_call_through_proxy(two_clusters):
    _, handle = two_clusters
    assert handle.get_value() == 0


def test_field_read_through_proxy(two_clusters):
    _, handle = two_clusters
    assert handle.value == 0


def test_field_read_returns_proxy_at_boundary(two_clusters):
    space, handle = two_clusters
    node4 = handle
    for _ in range(4):
        node4 = node4.get_next()
    boundary = node4.next  # field access crossing into cluster 2
    assert SwapClusterUtils.is_swap_proxy(boundary)
    assert boundary.get_value() == 5


def test_field_write_through_proxy(two_clusters):
    _, handle = two_clusters
    handle.value = 42
    assert handle.get_value() == 42


def test_field_write_of_reference_translates(two_clusters):
    space, handle = two_clusters
    far = handle
    for _ in range(7):
        far = far.get_next()
    handle.next = far  # writes a cross-cluster reference through the proxy
    space.verify_integrity()
    assert handle.get_next().get_value() == 7


def test_missing_attribute_raises(two_clusters):
    _, handle = two_clusters
    with pytest.raises(AttributeError):
        handle.nonexistent


def test_dunder_probe_fails_fast(two_clusters):
    # runtime protocol probes (copy, pickle, ...) must not fault/forward
    _, handle = two_clusters
    with pytest.raises(AttributeError):
        handle.__deepcopy__


def test_private_method_forwarded(two_clusters):
    space, handle = two_clusters

    raw = space.resolve(handle)
    raw._secret = lambda: "nope"  # not a bound method: returned as value

    # a real private method defined on the class:
    def _peek(self):
        return self.value

    Node._peek = _peek
    try:
        assert handle._peek() == 0
    finally:
        del Node._peek


def test_equality_proxy_vs_proxy(two_clusters):
    space, handle = two_clusters
    first = handle.get_next()
    second = handle.get_next()
    assert first == second
    assert not (first != second)


def test_equality_proxy_vs_raw(two_clusters):
    space, handle = two_clusters
    raw = space.resolve(handle)
    assert handle == raw
    assert raw == handle  # reflected


def test_equality_distinct_targets(two_clusters):
    _, handle = two_clusters
    assert handle != handle.get_next()


def test_equality_against_plain_value(two_clusters):
    _, handle = two_clusters
    assert (handle == 42) is False
    assert (handle != 42) is True


def test_hash_consistent_with_equality(two_clusters):
    space, handle = two_clusters
    first = handle.get_next()
    second = handle.get_next()
    assert hash(first) == hash(second)


def test_two_proxies_for_same_object_across_pairs(two_clusters):
    """An object referenced from two different swap-clusters is
    represented by two different swap-cluster-proxies (paper §4), and
    the == overload still reports them as the same object."""
    space, handle = two_clusters
    raw_head = space.resolve(handle)
    node7 = raw_head
    for _ in range(7):
        node7 = node7.get_next() if hasattr(node7, "get_next") else node7.next
        node7 = space.resolve(node7)
    proxy_from_root = space._proxy_for(0, node7._obi_oid)
    proxy_from_cluster1 = space._proxy_for(1, node7._obi_oid)
    assert proxy_from_root is not proxy_from_cluster1
    assert proxy_from_root == proxy_from_cluster1


def test_proxy_reuse_per_pair(two_clusters):
    space, handle = two_clusters
    oid = SwapClusterUtils.oid_of(handle)
    assert space._proxy_for(0, oid) is space._proxy_for(0, oid)


def test_repr_shows_route(two_clusters):
    _, handle = two_clusters
    text = repr(handle)
    assert "Node" in text and "0->1" in text


def test_same_object_helper(two_clusters):
    space, handle = two_clusters
    raw = space.resolve(handle)
    assert handle._obi_same_object(raw)
    assert not handle._obi_same_object(handle.get_next())


def test_bool_defaults_to_true(two_clusters):
    _, handle = two_clusters
    assert bool(handle) is True
