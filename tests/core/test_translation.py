"""The paper's three reference-translation rules."""

import pytest

from repro.core.utils import SwapClusterUtils
from tests.helpers import Factory, Holder, Node, Pair, build_chain, make_space


@pytest.fixture
def space_with_chain():
    space = make_space()
    handle = space.ingest(build_chain(15), cluster_size=5, root_name="h")
    return space, handle


def test_rule_i_raw_cross_cluster_result_wrapped(space_with_chain):
    space, handle = space_with_chain
    node4 = handle
    for _ in range(4):
        node4 = node4.get_next()
    crossing = node4.get_next()  # raw next lives in cluster 2
    assert SwapClusterUtils.is_swap_proxy(crossing)
    assert SwapClusterUtils.source_sid(crossing) == 0
    assert SwapClusterUtils.target_sid(crossing) == 2


def test_rule_iii_argument_proxy_dismantled(space_with_chain):
    space, handle = space_with_chain
    # handle is a (0 -> cluster1) proxy; identity_of echoes its argument.
    # Passing `handle` to a method of the SAME cluster must dismantle it:
    raw_head = space.resolve(handle)
    echoed = handle.identity_of(handle)
    # inside the method, the argument was the raw object:
    assert echoed is not None
    # result translated back out to cluster 0 -> proxy again
    assert SwapClusterUtils.is_swap_proxy(echoed)
    assert echoed == raw_head


def test_rule_ii_proxy_handoff_rewrapped(space_with_chain):
    space, handle = space_with_chain
    far = handle
    for _ in range(10):
        far = far.get_next()  # proxy (0 -> cluster 3)
    # pass the cluster-3 proxy into a cluster-1 method; the value the
    # method observes must be a proxy with source cluster 1
    received = handle.identity_of(far)
    raw_head = space.resolve(handle)
    observed = raw_head.identity_of.__self__  # sanity: raw object exists
    assert received == far
    space.verify_integrity()


def test_same_cluster_result_stays_raw(space_with_chain):
    space, handle = space_with_chain
    raw_head = space.resolve(handle)
    raw_next = raw_head.get_next()
    assert not SwapClusterUtils.is_swap_proxy(raw_next)  # intra-cluster: raw


def test_container_results_translated(space_with_chain):
    space, handle = space_with_chain

    raw_head = space.resolve(handle)
    far = raw_head
    for _ in range(7):
        far = space.resolve(far.get_next() if far.get_next() is not None else far)

    holder = Holder()
    holder.items.append(far)  # cluster-2 object inside a root-side list
    space.set_root("holder", holder)
    space.verify_integrity()
    stored = space.resolve(space.get_root("holder")).items[0]
    assert SwapClusterUtils.is_swap_proxy(stored)


def test_new_objects_absorbed_into_creating_cluster(space_with_chain):
    space, handle = space_with_chain
    factory = Factory()
    factory_handle = space.ingest(factory, cluster_size=1, root_name="factory")
    made = factory_handle.make_node(7)
    # the new node was created by cluster code: absorbed and mediated
    assert made.get_value() == 7
    assert SwapClusterUtils.is_swap_proxy(made)
    space.verify_integrity()


def test_new_object_graph_absorbed_recursively(space_with_chain):
    space, handle = space_with_chain
    factory_handle = space.ingest(Factory(), cluster_size=1, root_name="factory")
    chain = factory_handle.make_chain(5)
    values = []
    cursor = chain
    while cursor is not None:
        values.append(cursor.get_value())
        cursor = cursor.get_next()
    assert values == [0, 1, 2, 3, 4]
    space.verify_integrity()


def test_atomic_values_pass_untouched(space_with_chain):
    space, handle = space_with_chain
    assert handle.identity_of(42) == 42
    assert handle.identity_of("text") == "text"
    assert handle.identity_of(None) is None
    assert handle.identity_of((1, "a")) == (1, "a")


def test_kwargs_translated(space_with_chain):
    space, handle = space_with_chain
    far = handle
    for _ in range(10):
        far = far.get_next()
    # the generic wrapper path handles keyword arguments
    result = handle.identity_of(other=far)
    assert result == far


def test_set_root_wraps_raw_cross_cluster(space_with_chain):
    space, handle = space_with_chain
    raw_head = space.resolve(handle)
    stored = space.set_root("again", raw_head)
    assert SwapClusterUtils.is_swap_proxy(stored)
    assert SwapClusterUtils.source_sid(stored) == 0


def test_set_root_plain_value(space_with_chain):
    space, _ = space_with_chain
    space.set_root("config", {"retries": 3})
    assert space.get_root("config") == {"retries": 3}


def test_attach_mediates_raw_write(space_with_chain):
    space, handle = space_with_chain
    raw_head = space.resolve(handle)
    far = space.resolve(space._proxy_for(0, sorted(space.clusters()[3].oids)[0]))
    space.attach(raw_head, "next", far)
    space.verify_integrity()
    assert SwapClusterUtils.is_swap_proxy(raw_head.next)
