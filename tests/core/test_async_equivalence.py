"""Serial-mode equivalence: the scheduler must be invisible at channels=1.

``enable_async_scheduler(channels=1, prefetch=False)`` routes every op
through exactly the legacy blocking code path.  These property-style
tests run the same seeded workload twice — once bare, once under the
serial scheduler — and require byte-identical outcomes: every unified
counter, the simulated clock, cluster epochs, heap occupancy, and the
emitted event stream.  Any divergence means the scheduler leaked
behavior into a mode that promises none.
"""

from __future__ import annotations

import random

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.stats import counter_snapshot
from tests.helpers import build_chain, chain_values


def _run_workload(
    *,
    serial_sched: bool,
    nodes: int = 30,
    cluster_size: int = 5,
    stores: int = 3,
    clamp: int = 0,
    resilience: bool = False,
    replication: int = 1,
    mutate_seed: int = 0,
):
    """One seeded walk; returns the full observable state fingerprint."""
    clock = SimulatedClock()
    space = Space("equiv", heap_capacity=1 << 20, clock=clock)
    manager = space.manager
    if resilience:
        manager.enable_resilience()
        manager.replication_factor = replication
    for index in range(stores):
        link = bluetooth_link(clock, name=f"bt-{index}")
        manager.add_store(
            XmlStoreDevice(f"p-{index}", capacity=1 << 20, link=link)
        )
    events = []
    space.bus.subscribe_all(
        lambda event: events.append((type(event).__name__, event.describe()))
    )
    handle = space.ingest(
        build_chain(nodes), cluster_size=cluster_size, root_name="h"
    )
    for sid, cluster in sorted(space._clusters.items()):
        if cluster.swappable() and cluster.oids:
            manager.swap_out(sid)
    if clamp:
        space.heap.capacity = space.heap.used + clamp
    if serial_sched:
        manager.enable_async_scheduler(channels=1, prefetch=False)

    values = chain_values(handle)
    if mutate_seed:
        # a second pass that dirties objects and re-walks: exercises
        # re-ship, re-fetch and epoch bumps under the serial scheduler
        rng = random.Random(mutate_seed)
        cursor = handle
        while cursor is not None:
            if rng.random() < 0.3:
                cursor.set_value(cursor.get_value() + 1000)
            cursor = cursor.get_next()
        values = chain_values(handle)

    if manager.sched is not None:
        manager.sched.drain()
    return {
        "values": values,
        "clock": clock.now(),
        "counters": counter_snapshot(manager.stats),
        "epochs": {
            str(sid): cluster.epoch
            for sid, cluster in sorted(space._clusters.items())
        },
        "heap": space.heap.used,
        "events": events,
    }


SHAPES = {
    "plain-walk": {},
    "evicting-walk": {"nodes": 40, "cluster_size": 4, "clamp": 400},
    "replicated": {"resilience": True, "replication": 2},
    "mutating-rewalk": {"mutate_seed": 7},
    "evicting-replicated": {
        "nodes": 40,
        "cluster_size": 4,
        "clamp": 400,
        "resilience": True,
        "replication": 2,
    },
}


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_serial_scheduler_is_bit_identical_to_legacy(shape):
    legacy = _run_workload(serial_sched=False, **SHAPES[shape])
    serial = _run_workload(serial_sched=True, **SHAPES[shape])
    assert serial["values"] == legacy["values"]
    assert serial["clock"] == legacy["clock"]
    assert serial["counters"] == legacy["counters"]
    assert serial["epochs"] == legacy["epochs"]
    assert serial["heap"] == legacy["heap"]
    assert serial["events"] == legacy["events"]


def test_full_async_mode_preserves_results_but_not_the_clock():
    """The async schedule may bend time, never data: same values, same
    epoch structure, strictly no more stalled seconds."""
    legacy = _run_workload(serial_sched=False)
    clock = SimulatedClock()
    space = Space("equiv", heap_capacity=1 << 20, clock=clock)
    for index in range(3):
        link = bluetooth_link(clock, name=f"bt-{index}")
        space.manager.add_store(
            XmlStoreDevice(f"p-{index}", capacity=1 << 20, link=link)
        )
    handle = space.ingest(build_chain(30), cluster_size=5, root_name="h")
    for sid, cluster in sorted(space._clusters.items()):
        if cluster.swappable() and cluster.oids:
            space.manager.swap_out(sid)
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    values = chain_values(handle)
    sched.drain()
    assert values == legacy["values"]
    assert space.manager.stats.swap_ins == legacy["counters"]["swap.in.count"]
