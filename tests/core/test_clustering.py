"""Graph walking and partitioning."""

import pytest

from repro.core.clustering import (
    group_clusters,
    managed_neighbors,
    partition_bfs,
    partition_sequential,
    resolve_strategy,
    walk_graph,
)
from repro.errors import NotManagedError
from tests.helpers import Holder, Node, Pair, build_chain


def test_walk_linear_chain_in_order():
    head = build_chain(5)
    order = walk_graph(head)
    assert [node.value for node in order] == [0, 1, 2, 3, 4]


def test_walk_bfs_order_on_tree():
    root = Pair(Pair(Node(1), Node(2)), Node(3))
    order = walk_graph(root)
    # BFS: root, its two children, then the grandchildren
    assert order[0] is root
    assert set(id(x) for x in order[1:3]) == {id(root.left), id(root.right)}


def test_walk_handles_cycles():
    first, second = Pair(), Pair()
    first.left = second
    second.left = first
    assert len(walk_graph(first)) == 2


def test_walk_through_containers():
    holder = Holder()
    holder.items.extend([Node(1), Node(2)])
    holder.index["k"] = Node(3)
    holder.fixed = (Node(4),)
    assert len(walk_graph(holder)) == 5


def test_walk_stops_at_proxies(space):
    handle = space.ingest(build_chain(10), cluster_size=5)
    raw = space.resolve(handle)
    order = walk_graph(raw)
    assert len(order) == 5  # the proxy at the boundary is not traversed


def test_walk_rejects_unmanaged_root():
    with pytest.raises(NotManagedError):
        walk_graph(object())


def test_walk_max_objects():
    with pytest.raises(ValueError):
        walk_graph(build_chain(10), max_objects=5)


def test_managed_neighbors_deduplication_not_required():
    node = Node(1)
    pair = Pair(node, node)
    neighbors = list(managed_neighbors(pair))
    assert len(neighbors) == 2  # walk dedups, neighbors does not


def test_partition_sequential_sizes():
    parts = partition_sequential(list(range(10)), 3)
    assert [len(part) for part in parts] == [3, 3, 3, 1]


def test_partition_sequential_invalid_size():
    with pytest.raises(ValueError):
        partition_sequential([1], 0)


def test_partition_bfs_chained():
    parts = partition_bfs(build_chain(10), 4)
    assert [len(part) for part in parts] == [4, 4, 2]
    # chained: the last element of part i references the first of part i+1
    assert parts[0][-1].next is parts[1][0]


def test_group_clusters():
    groups = group_clusters([[1], [2], [3], [4], [5]], 2)
    assert [len(group) for group in groups] == [2, 2, 1]


def test_resolve_strategy():
    assert resolve_strategy("bfs") is partition_bfs
    custom = lambda root, size: []  # noqa: E731
    assert resolve_strategy(custom) is custom
    with pytest.raises(ValueError):
        resolve_strategy("dfs-nope")
