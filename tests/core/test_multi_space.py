"""Two spaces sharing one store fleet: key namespacing, pinning,
placement-ledger separation.

The tenancy layer (:mod:`repro.fleet`) leans on these invariants —
per-space swap-key prefixes are what make physical per-tenant
accounting possible — so they get their own direct coverage here,
with no registry involved.
"""

from __future__ import annotations

import pytest

from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.errors import ClusterPinnedError
from repro.fleet import manager_store_bytes
from repro.ids import format_swap_key
from tests.helpers import build_chain, chain_values


@pytest.fixture
def fleet():
    return [
        XmlStoreDevice(f"shared-{index}", capacity=64 << 10)
        for index in range(2)
    ]


def make_space(name, fleet, heap=1 << 20):
    space = Space(name, heap_capacity=heap)
    for store in fleet:
        space.manager.add_store(store)
    return space


def load(space, objects=20, cluster_size=5):
    return space.ingest(
        build_chain(objects), cluster_size=cluster_size, root_name="h"
    )


def test_same_sid_from_two_spaces_never_collides(fleet):
    left = make_space("ms-left", fleet)
    right = make_space("ms-right", fleet)
    left_handle = load(left)
    right_handle = load(right)
    # both spaces swap out their cluster 1 — identical sid and epoch
    left_location = left.swap_out(1)
    right_location = right.swap_out(1)
    assert left_location.key != right_location.key
    assert left_location.key == format_swap_key("ms-left", 1, 1)
    assert right_location.key == format_swap_key("ms-right", 1, 1)
    # each side swaps back in its own payload, not the neighbor's
    assert chain_values(left_handle) == list(range(20))
    assert chain_values(right_handle) == list(range(20))


def test_store_keys_partition_by_space_prefix(fleet):
    left = make_space("part-left", fleet)
    right = make_space("part-right", fleet)
    load(left)
    load(right)
    for sid in (1, 2):
        left.swap_out(sid)
        right.swap_out(sid)
    all_keys = [key for store in fleet for key in store.keys()]
    lefts = [k for k in all_keys if k.startswith("part-left/")]
    rights = [k for k in all_keys if k.startswith("part-right/")]
    assert len(lefts) == 2 and len(rights) == 2
    assert len(lefts) + len(rights) == len(all_keys)
    # ... which is exactly what per-tenant physical accounting scans
    assert manager_store_bytes(left.manager, fleet) + manager_store_bytes(
        right.manager, fleet
    ) == sum(store.used for store in fleet)


def test_pin_protects_one_space_while_the_other_swaps(fleet):
    pinned = make_space("pin-holder", fleet, heap=8 << 10)
    noisy = make_space("pin-noisy", fleet, heap=8 << 10)
    handle = load(pinned, objects=10, cluster_size=5)
    load(noisy, objects=10, cluster_size=5)
    with pinned.pin(handle) as cluster:
        with pytest.raises(ClusterPinnedError):
            pinned.swap_out(cluster.sid)
        # the neighbor's traffic on the shared fleet is unaffected
        noisy.swap_out(1)
        assert cluster.is_resident
    # unpinned again: the cluster may now leave
    pinned.swap_out(cluster.sid)
    assert not pinned.clusters()[cluster.sid].is_resident


def test_swap_in_one_space_leaves_the_neighbor_at_rest(fleet):
    left = make_space("rest-left", fleet)
    right = make_space("rest-right", fleet)
    left_handle = load(left)
    load(right)
    left.swap_out(1)
    right.swap_out(1)
    right_bytes = manager_store_bytes(right.manager, fleet)
    chain_values(left_handle)  # swap left's cluster back in
    assert manager_store_bytes(left.manager, fleet) == 0
    assert manager_store_bytes(right.manager, fleet) == right_bytes


def test_two_spaces_fill_and_drain_without_crosstalk(fleet):
    left = make_space("drain-left", fleet)
    right = make_space("drain-right", fleet)
    left_handle = load(left, objects=30)
    right_handle = load(right, objects=30)
    for cluster in list(left.clusters().values()):
        if cluster.is_resident and not cluster.is_root_cluster:
            left.swap_out(cluster.sid)
    for cluster in list(right.clusters().values()):
        if cluster.is_resident and not cluster.is_root_cluster:
            right.swap_out(cluster.sid)
    assert chain_values(right_handle) == list(range(30))
    assert chain_values(left_handle) == list(range(30))
    assert manager_store_bytes(left.manager, fleet) == 0
    assert manager_store_bytes(right.manager, fleet) == 0
