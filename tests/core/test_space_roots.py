"""Roots (swap-cluster-0) and space basics."""

import pytest

from repro.core.utils import SwapClusterUtils
from repro.errors import AlreadyManagedError, NotManagedError
from repro.ids import ROOT_SID
from tests.helpers import Node, build_chain, make_space


def test_set_root_adopts_fresh_object(space):
    node = Node(1)
    stored = space.set_root("n", node)
    assert stored is node  # cluster-0 objects stay raw
    assert node._obi_sid == ROOT_SID


def test_set_root_wraps_other_cluster(space):
    handle = space.ingest(build_chain(5), cluster_size=5)
    raw = space.resolve(handle)
    stored = space.set_root("head", raw)
    assert SwapClusterUtils.is_swap_proxy(stored)


def test_set_root_reuses_existing_root_proxy(space):
    handle = space.ingest(build_chain(5), cluster_size=5, root_name="a")
    stored = space.set_root("b", handle)
    assert stored is handle  # same (0, oid) pair


def test_get_missing_root_raises(space):
    with pytest.raises(KeyError):
        space.get_root("missing")


def test_del_root(space):
    space.set_root("x", Node(1))
    space.del_root("x")
    assert "x" not in space.root_names()


def test_roots_snapshot(space):
    space.set_root("a", Node(1))
    space.set_root("b", 42)
    roots = space.roots()
    assert set(roots) == {"a", "b"}


def test_adopt_foreign_space_rejected(space):
    other = make_space("other")
    node = Node(1)
    other.set_root("n", node)
    with pytest.raises(AlreadyManagedError):
        space.adopt(node)


def test_adopt_unmanaged_rejected(space):
    with pytest.raises(NotManagedError):
        space.adopt(object())


def test_new_swap_cluster_ids_unique(space):
    first = space.new_swap_cluster()
    second = space.new_swap_cluster()
    assert first.sid != second.sid
    assert first.sid != ROOT_SID


def test_describe_output(space):
    space.ingest(build_chain(5), cluster_size=5, root_name="h")
    text = space.describe()
    assert "sc-1" in text and "resident" in text


def test_sid_of_handles(space):
    handle = space.ingest(build_chain(10), cluster_size=5)
    assert space.sid_of(handle) == 1
    raw = space.resolve(handle)
    assert space.sid_of(raw) == 1


def test_managed_class_with_slots_rejected_at_decoration(space):
    from repro import managed

    with pytest.raises(TypeError, match="__slots__"):
        @managed
        class Slotted:
            __slots__ = ("x",)

            def ping(self):
                return 1


def test_foreign_space_proxy_rejected(space):
    other = make_space("elsewhere")
    other_handle = other.ingest(build_chain(3), cluster_size=3, root_name="x")
    with pytest.raises(NotManagedError, match="cannot cross spaces"):
        space.set_root("bad", other_handle)
