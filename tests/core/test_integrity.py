"""verify_integrity: the boundary-mediation invariant checker."""

import pytest

from repro.errors import IntegrityError
from tests.helpers import Node, build_chain, make_space


def test_clean_space_passes(space):
    space.ingest(build_chain(10), cluster_size=3, root_name="h")
    space.verify_integrity()


def test_raw_cross_cluster_edge_detected(space):
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    raw_head = space.resolve(handle)
    far_oid = sorted(space.clusters()[2].oids)[0]
    object.__setattr__(raw_head, "next", space._objects[far_oid])  # corrupt
    with pytest.raises(IntegrityError, match="raw cross-cluster"):
        space.verify_integrity()


def test_foreign_object_reference_detected(space):
    handle = space.ingest(build_chain(5), cluster_size=5, root_name="h")
    raw_head = space.resolve(handle)
    object.__setattr__(raw_head, "next", Node(999))  # unadopted object
    with pytest.raises(IntegrityError, match="foreign/unadopted"):
        space.verify_integrity()


def test_wrong_source_proxy_detected(space):
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    raw_head = space.resolve(handle)
    far_oid = sorted(space.clusters()[2].oids)[0]
    wrong_source = space._proxy_for(0, far_oid)  # source 0, stored in sc-1
    object.__setattr__(raw_head, "next", wrong_source)
    with pytest.raises(IntegrityError, match="source"):
        space.verify_integrity()


def test_self_cluster_proxy_detected(space):
    handle = space.ingest(build_chain(5), cluster_size=5, root_name="h")
    raw_head = space.resolve(handle)
    self_proxy = space.make_cursor(handle)  # (0 -> 1)
    # force its source to 1 so it points into its own cluster
    object.__setattr__(self_proxy, "_obi_source_sid", 1)
    object.__setattr__(raw_head, "next", self_proxy)
    with pytest.raises(IntegrityError, match="own cluster"):
        space.verify_integrity()


def test_swapped_cluster_bookkeeping_checked(space):
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    cluster = space.clusters()[2]
    cluster.replacement = None  # corrupt the record
    with pytest.raises(IntegrityError, match="replacement"):
        space.verify_integrity()


def test_root_raw_reference_to_cluster_detected(space):
    handle = space.ingest(build_chain(5), cluster_size=5, root_name="h")
    raw_head = space.resolve(handle)
    space._roots["bad"] = raw_head  # bypassing set_root's mediation
    with pytest.raises(IntegrityError):
        space.verify_integrity()


def test_container_contents_checked(space):
    from tests.helpers import Holder

    handle = space.ingest(build_chain(6), cluster_size=3, root_name="h")
    holder = Holder()
    space.set_root("holder", holder)
    raw_far = space._objects[sorted(space.clusters()[2].oids)[0]]
    holder.items.append(raw_far)  # raw cross-cluster ref inside a list
    with pytest.raises(IntegrityError):
        space.verify_integrity()
