"""Replacement-objects."""

from repro.core.replacement import ReplacementObject, SwapLocation
from tests.helpers import build_chain, make_space


def _location(**overrides):
    defaults = dict(device_id="d", key="k", digest="x", xml_bytes=10, epoch=1)
    defaults.update(overrides)
    return SwapLocation(**defaults)


def test_outbound_array_semantics():
    proxies = ["p0", "p1", "p2"]
    replacement = ReplacementObject(3, 100, proxies, _location())
    assert replacement.outbound_count() == 3
    assert replacement.outbound_at(1) == "p1"
    assert replacement.outbound == proxies


def test_outbound_copy_is_defensive():
    replacement = ReplacementObject(3, 100, ["p"], _location())
    replacement.outbound.append("other")
    assert replacement.outbound_count() == 1


def test_marker_attribute():
    replacement = ReplacementObject(1, 1, [], _location())
    assert type(replacement)._obi_is_replacement is True


def test_location_describe():
    assert "sc-3" not in _location().describe()  # key holds the sc part
    assert "device=d" in _location().describe()


def test_replacement_holds_outbound_proxies_alive(space):
    import weakref

    handle = space.ingest(build_chain(15), cluster_size=5, root_name="h")
    # materialize the (2 -> 3) boundary proxy by touching nothing: it was
    # created at ingest; find it through cluster 2's member fields
    member = space._objects[sorted(space.clusters()[2].oids)[-1]]
    boundary_proxy = member.next
    ref = weakref.ref(boundary_proxy)
    space.swap_out(2)
    del member, boundary_proxy
    import gc

    gc.collect()
    # the replacement array is the only strong holder now — still alive
    assert ref() is not None
    cluster = space.clusters()[2]
    assert ref() in cluster.replacement.outbound


def test_replacement_accounted_on_heap(space):
    handle = space.ingest(build_chain(15), cluster_size=5, root_name="h")
    space.swap_out(2)
    cluster = space.clusters()[2]
    assert space.heap.holds(cluster.replacement.oid)
    expected = space.size_model.replacement_size(
        cluster.replacement.outbound_count()
    )
    assert space.heap.size_of(cluster.replacement.oid) == expected
