"""Swap redundancy: mirrored copies across the device myriad.

Extension of the paper's envisioned scenario ("a myriad of small
memory-enabled devices ... scattered all-over"): with
``manager.replication_factor > 1`` each swapped cluster is stored on
several nearby devices, so one device leaving the room no longer loses
the cluster.
"""

import pytest

from repro.devices import InMemoryStore, XmlStoreDevice
from repro.errors import SwapStoreUnavailableError
from repro.sim import ScenarioWorld, StoreSpec
from tests.helpers import build_chain, chain_values, make_space


def _space_with_stores(count=3, factor=2):
    space = make_space(with_store=False)
    stores = [InMemoryStore(f"store-{index}") for index in range(count)]
    for store in stores:
        space.manager.add_store(store)
    space.manager.replication_factor = factor
    return space, stores


def test_mirror_written_to_k_stores():
    space, stores = _space_with_stores(count=3, factor=2)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    location = space.swap_out(2)
    holding = [store for store in stores if store.keys()]
    assert len(holding) == 2
    assert all(store.fetch(location.key) for store in holding)
    assert space.manager.stats.mirror_writes == 1
    assert len(space.manager.bindings_for(2)) == 2


def test_factor_capped_by_available_stores():
    space, stores = _space_with_stores(count=2, factor=5)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert len(space.manager.bindings_for(2)) == 2  # best-effort


def test_failover_to_mirror():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("primary"))
    world.add_store(StoreSpec("mirror"))
    space = world.space
    space.manager.replication_factor = 2
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    world.vanish_with_data("primary")
    # the mirror saves the day
    assert chain_values(handle) == list(range(10))
    assert space.manager.stats.mirror_failovers == 1
    space.verify_integrity()


def test_all_copies_lost_still_fails():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("a"))
    world.add_store(StoreSpec("b"))
    space = world.space
    space.manager.replication_factor = 2
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    world.vanish_with_data("a")
    world.vanish_with_data("b")
    with pytest.raises(SwapStoreUnavailableError):
        chain_values(handle)


def test_reload_drops_all_copies():
    space, stores = _space_with_stores(count=3, factor=3)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert sum(len(store.keys()) for store in stores) == 3
    chain_values(handle)  # reload
    assert sum(len(store.keys()) for store in stores) == 0


def test_gc_drop_cleans_all_copies():
    space, stores = _space_with_stores(count=2, factor=2)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.del_root("h")
    space.gc()
    assert sum(len(store.keys()) for store in stores) == 0


def test_mirror_skips_full_stores():
    space = make_space(with_store=False)
    big = InMemoryStore("big")
    tiny = XmlStoreDevice("tiny", capacity=8)
    space.manager.add_store(big)
    space.manager.add_store(tiny)
    space.manager.replication_factor = 2
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)  # tiny can't hold it: one copy, no error
    assert len(space.manager.bindings_for(2)) == 1
    assert space.manager.stats.mirror_writes == 0


def test_explicit_store_gains_mirrors():
    space, stores = _space_with_stores(count=3, factor=2)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2, store=stores[2])
    bindings = space.manager.bindings_for(2)
    assert bindings[0] is stores[2]
    assert len(bindings) == 2
