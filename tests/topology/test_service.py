"""TopologyService: cells, reparenting, cell loss, rebuild, routing."""

import pytest

from repro.core.space import Space
from repro.devices import XmlStoreDevice
from repro.errors import SwapError
from repro.events import (
    CellDownEvent,
    CellRecoveredEvent,
    ShardReparentedEvent,
)
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig
from repro.topology import CellState
from tests.helpers import build_chain


def fleet_space(cells=3, per_cell=3, factor=3, shards=8, capacity=1 << 22):
    """A space over ``cells`` x ``per_cell`` flaky stores with topology on."""
    space = Space("topo", heap_capacity=1 << 22)
    stores = {}
    for cell in range(cells):
        for i in range(per_cell):
            inner = XmlStoreDevice(
                f"c{cell}s{i}",
                capacity=capacity,
                placement_group=f"cell-{cell}",
            )
            flaky = FlakyStore(
                inner,
                FaultInjector(FaultPlan(seed=cell * 100 + i), space.clock),
            )
            stores[flaky.device_id] = flaky
            space.manager.add_store(flaky)
    space.manager.enable_resilience(
        ResilienceConfig(replication_factor=factor)
    )
    topology = space.manager.enable_topology(shards=shards)
    return space, stores, topology


def swap_out_all(space):
    sids = []
    for sid, cluster in sorted(space.clusters().items()):
        if sid != 0 and cluster.swappable():
            space.swap_out(sid)
            sids.append(sid)
    return sids


def ingest_chains(space, count=6, length=8):
    for n in range(count):
        space.ingest(build_chain(length), cluster_size=length, root_name=f"r{n}")


class TestEnable:
    def test_requires_resilience(self):
        space = Space("bare", heap_capacity=1 << 20)
        space.manager.add_store(XmlStoreDevice("s0"))
        with pytest.raises(SwapError):
            space.manager.enable_topology(shards=4)

    def test_installs_placement_observer_and_disable_removes_it(self):
        space, _, topology = fleet_space()
        assert space.manager.resilience.placement.observer is topology
        space.manager.disable_topology()
        assert space.manager.resilience.placement.observer is None
        assert space.manager.topology is None

    def test_cells_derive_from_placement_groups(self):
        _, _, topology = fleet_space(cells=3, per_cell=2)
        assert sorted(topology.cells()) == ["cell-0", "cell-1", "cell-2"]
        assert topology.cell_of("c1s0") == "cell-1"

    def test_shard_holders_span_distinct_cells(self):
        _, _, topology = fleet_space(cells=3, per_cell=3, factor=3)
        for record in topology.shard_table.records():
            holders = record.holders()
            assert len(holders) == 3
            cells = {topology.cell_of(holder) for holder in holders}
            assert len(cells) == 3  # anti-affinity across cells


class TestRouting:
    def test_swap_out_lands_on_the_shard_holders(self):
        space, _, topology = fleet_space()
        ingest_chains(space)
        sids = swap_out_all(space)
        placement = space.manager.resilience.placement
        for sid in sids:
            record = placement.get(sid)
            holders = set(
                topology.shard_table.record_for(sid).holders()
            )
            assert set(record.active()) <= holders

    def test_cell_records_track_replica_sets(self):
        space, _, topology = fleet_space()
        ingest_chains(space)
        sids = swap_out_all(space)
        tracked = set()
        for cell in topology.cells().values():
            tracked.update(cell.shards)
        assert {topology.shard_of(sid) for sid in sids} <= tracked

    def test_forget_unregisters_from_cell_records(self):
        space, _, topology = fleet_space()
        ingest_chains(space, count=1)
        (sid,) = swap_out_all(space)
        space.swap_in(sid)
        for cell in topology.cells().values():
            assert topology.shard_of(sid) not in cell.shards

    def test_select_for_prefers_primary_then_replicas(self):
        space, stores, topology = fleet_space()
        record = topology.shard_table.record(0)
        chosen = topology.select_for_sid = topology.select_for(
            next(
                sid for sid in range(1, 500)
                if topology.shard_of(sid) == 0
            ),
            100,
            3,
        )
        assert [s.device_id for s in chosen][0] == record.primary

    def test_dark_cell_records_read_as_partial(self):
        space, stores, topology = fleet_space()
        for store in stores.values():
            if topology.cell_of(store.device_id) == "cell-1":
                store.partition()
        topology.tick()
        before = topology.stats.partial_reads
        assert topology.cell_records("cell-1") is None
        assert topology.stats.partial_reads == before + 1
        assert topology.cell_records("cell-0") is not None


class TestReparent:
    def test_dead_primary_reparents_to_healthiest_replica(self):
        space, stores, topology = fleet_space()
        ingest_chains(space)
        swap_out_all(space)
        record = topology.shard_table.record(0)
        old_primary = record.primary
        stores[old_primary].kill(lose_data=True)
        space.manager.detach_store(stores[old_primary], dead=True)
        assert record.primary != old_primary
        assert record.primary is not None
        event = space.bus.last(ShardReparentedEvent)
        assert event is not None
        assert event.to_device == record.primary
        assert record.parent_epoch >= 1

    def test_reparent_is_idempotent(self):
        space, stores, topology = fleet_space()
        record = topology.shard_table.record(0)
        # the incumbent is alive: repeated calls are no-ops
        for _ in range(3):
            assert topology.reparent(0, reason="test") is False
        assert topology.stats.reparent_noops == 3
        assert topology.stats.reparents == 0

    def test_election_ranks_by_failure_rate_not_net_success(self):
        space, stores, topology = fleet_space()
        resilience = space.manager.resilience
        record = topology.shard_table.record(0)
        primary, good, bad = record.holders()
        # `bad` is busier (more net successes) but fails more often
        for _ in range(20):
            resilience.record_success(bad)
        for _ in range(5):
            resilience.record_failure(bad)
            resilience.record_success(bad)
        for _ in range(4):
            resilience.record_success(good)
        stores[primary].kill()
        topology.reparent(0, reason="primary died")
        assert record.primary == good

    def test_deterministic_tie_break_by_device_id(self):
        space, stores, topology = fleet_space()
        record = topology.shard_table.record(0)
        primary = record.primary
        replicas = sorted(record.replicas)
        stores[primary].kill()
        topology.reparent(0, reason="primary died")
        assert record.primary == replicas[0]

    def test_reparent_triggers_deficit_repair(self):
        space, stores, topology = fleet_space()
        ingest_chains(space)
        sids = swap_out_all(space)
        placement = space.manager.resilience.placement
        victim = topology.shard_table.record_for(sids[0]).primary
        stores[victim].kill(lose_data=True)
        space.manager.detach_store(stores[victim], dead=True)
        space.manager.resilience.scrubber.run_until_stable()
        rf = space.manager.target_replicas()
        for sid in sids:
            assert placement.get(sid).live_count == rf

    def test_reparent_survives_partial_reads_while_cell_down(self):
        space, stores, topology = fleet_space()
        ingest_chains(space)
        swap_out_all(space)
        # darken one cell, then kill a primary in another: the election
        # must proceed off the readable records only
        for store in stores.values():
            if topology.cell_of(store.device_id) == "cell-2":
                store.partition()
        topology.tick()
        record = next(
            r
            for r in topology.shard_table.records()
            if topology.cell_of(r.primary) == "cell-0"
        )
        stores[record.primary].kill()
        assert topology.reparent(record.shard_id, reason="died") is True
        assert topology.cell_of(record.primary) == "cell-1"


class TestCellLoss:
    def test_tick_detects_full_cell_outage(self):
        space, stores, topology = fleet_space()
        ingest_chains(space)
        swap_out_all(space)
        for store in stores.values():
            if topology.cell_of(store.device_id) == "cell-0":
                store.kill(lose_data=True)
        reparented = topology.tick()
        event = space.bus.last(CellDownEvent)
        assert event is not None and event.cell == "cell-0"
        assert set(event.stores) == {"c0s0", "c0s1", "c0s2"}
        assert topology.cells()["cell-0"].state is CellState.DOWN
        assert topology.live_cell_fraction() == pytest.approx(2 / 3)
        # every shard the cell led was reparented out of it
        for record in topology.shard_table.records():
            assert topology.cell_of(record.primary) != "cell-0"
        assert space.manager.stats.cell_outages == 1

    def test_tick_is_idempotent_while_cell_stays_down(self):
        space, stores, topology = fleet_space()
        for store in stores.values():
            if topology.cell_of(store.device_id) == "cell-0":
                store.partition()
        topology.tick()
        topology.tick()
        topology.tick()
        assert space.bus.count(CellDownEvent) == 1

    def test_heal_emits_recovery_and_restores_fraction(self):
        space, stores, topology = fleet_space()
        cell_stores = [
            store
            for store in stores.values()
            if topology.cell_of(store.device_id) == "cell-1"
        ]
        for store in cell_stores:
            store.partition()
        topology.tick()
        for store in cell_stores:
            store.heal()
        topology.tick()
        event = space.bus.last(CellRecoveredEvent)
        assert event is not None and event.cell == "cell-1"
        assert topology.live_cell_fraction() == 1.0
        assert space.manager.stats.cell_recoveries == 1

    def test_one_survivor_keeps_the_cell_up(self):
        space, stores, topology = fleet_space()
        cell_stores = [
            store
            for store in stores.values()
            if topology.cell_of(store.device_id) == "cell-0"
        ]
        for store in cell_stores[:-1]:
            store.kill()
        topology.tick()
        assert space.bus.count(CellDownEvent) == 0

    def test_losing_any_full_cell_loses_zero_clusters(self):
        for dead_cell in ("cell-0", "cell-1", "cell-2"):
            space, stores, topology = fleet_space()
            ingest_chains(space)
            sids = swap_out_all(space)
            for store in list(stores.values()):
                if topology.cell_of(store.device_id) == dead_cell:
                    store.kill(lose_data=True)
                    space.manager.detach_store(store, dead=True)
            space.manager.resilience.scrubber.run_until_stable()
            placement = space.manager.resilience.placement
            assert all(placement.get(sid).live_count > 0 for sid in sids)
            for sid in sids:
                space.swap_in(sid)  # raises on loss/corruption

    def test_cell_outage_is_store_health_pressure(self):
        space, stores, topology = fleet_space()
        space.manager.enable_degrade_ladder()
        assert space.manager.ladder.assess().store_health == 1.0
        for store in stores.values():
            if topology.cell_of(store.device_id) == "cell-0":
                store.partition()
        topology.tick()
        signal = space.manager.ladder.assess()
        assert signal.store_health <= 2 / 3


class TestRebuild:
    def test_rebuild_from_surviving_cells_and_inventory(self):
        space, stores, topology = fleet_space()
        ingest_chains(space)
        sids = swap_out_all(space)
        for store in stores.values():
            if topology.cell_of(store.device_id) == "cell-1":
                store.partition()
        result = space.manager.rebuild_topology()
        assert result["cells_partial"] == 1
        assert result["placement_records"] == len(sids)
        for record in topology.shard_table.records():
            assert topology.cell_of(record.primary) != "cell-1"
        assert space.manager.stats.topology_rebuilds == 1

    def test_rebuild_readopts_replicas_from_raw_inventory(self):
        space, stores, topology = fleet_space()
        ingest_chains(space)
        sids = swap_out_all(space)
        # simulate total graph loss: wipe every cell record, keep stores;
        # rebuild() alone must re-adopt the graph from raw key inventory
        # (through the manager, recover_placement's observer hooks would
        # repopulate the records first — also correct, tested above)
        for cell in topology.cells().values():
            cell.shards.clear()
        result = topology.rebuild()
        assert result["inventory_replicas"] > 0
        tracked = set()
        for cell in topology.cells().values():
            tracked.update(cell.shards)
        assert {topology.shard_of(sid) for sid in sids} <= tracked

    def test_rebuild_without_topology_raises(self):
        space = Space("bare", heap_capacity=1 << 20)
        with pytest.raises(SwapError):
            space.manager.rebuild_topology()


class TestAttach:
    def test_newcomer_fills_underfilled_shards(self):
        space, stores, topology = fleet_space(cells=2, per_cell=1, factor=3)
        # rf=3 over 2 cells: every shard is one holder short
        inner = XmlStoreDevice(
            "late0", capacity=1 << 22, placement_group="cell-late"
        )
        late = FlakyStore(
            inner, FaultInjector(FaultPlan(seed=99), space.clock)
        )
        space.manager.attach_store(late)
        for record in topology.shard_table.records():
            assert "late0" in record.holders()
