"""Delta chains whose base spans a dead cell.

A chain's base document lives on the shard holders; when the *entire
cell* holding the retained base dies, the next mutation must ship a
full payload to surviving cells — a delta against a base no reachable
store holds would strand the chain.  Recovery paths (``recover_placement``
and ``rebuild_topology``) must likewise rebuild a usable replica set
from the survivors, never resurrect the dead cell's stale copies.
"""

from repro.core.fastpath import FastPathConfig
from repro.core.space import Space
from repro.devices import XmlStoreDevice
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig, placement_group_of
from tests.helpers import build_chain, chain_values


def _fleet(cells=3, per_cell=2, factor=3, shards=4):
    space = Space("chain-cell", heap_capacity=1 << 22)
    stores = {}
    for cell in range(cells):
        for i in range(per_cell):
            flaky = FlakyStore(
                XmlStoreDevice(
                    f"c{cell}s{i}",
                    capacity=1 << 22,
                    placement_group=f"cell-{cell}",
                ),
                FaultInjector(FaultPlan.empty(), space.clock),
            )
            stores[flaky.device_id] = flaky
            space.manager.add_store(flaky)
    space.manager.enable_resilience(
        ResilienceConfig(replication_factor=factor)
    )
    topology = space.manager.enable_topology(shards=shards)
    space.manager.enable_fastpath(
        FastPathConfig(delta=True, delta_max_ratio=8.0)
    )
    return space, stores, topology


def _mutate(space, sid, bump=100):
    cluster = space.clusters()[sid]
    oid = sorted(cluster.oids)[0]
    space._objects[oid].value += bump


def _start_chain(space, sid):
    """Base ship + one delta: the chain is now genuinely in flight."""
    space.swap_out(sid)
    space.swap_in(sid)
    _mutate(space, sid)
    space.swap_out(sid)
    assert space.manager.stats.fastpath_delta_ships == 1
    space.swap_in(sid)


def _base_cell(space, sid):
    _key, retained = space.manager.fastpath.retained[sid]
    return placement_group_of(retained[0])


def _kill_cell(space, stores, cell):
    """Detach every store in ``cell`` as dead — the whole rack burned."""
    for store in stores.values():
        if placement_group_of(store) == cell:
            store.kill(lose_data=True)
            space.manager.detach_store(store, dead=True)


def test_losing_the_base_cell_mid_chain_forces_a_full_reship():
    # rf=1: the retained base has no mirror, so its cell dying really
    # does lose the chain tip (with rf=3 a sibling cell still holds the
    # base and a delta against it stays legitimate)
    space, stores, topology = _fleet(factor=1)
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    doomed = _base_cell(space, 2)

    _kill_cell(space, stores, doomed)

    _mutate(space, 2)
    space.swap_out(2)
    # the retained base went down with its cell: the delta path must not
    # apply — the payload ships whole to the surviving cells
    assert space.manager.stats.fastpath_delta_ships == 1
    record = space.manager.resilience.placement.get(2)
    for device_id in record.active():
        assert topology.cell_of(device_id) != doomed
    assert record.live_count >= 1

    space.swap_in(2)
    assert sorted(v % 100 for v in chain_values(handle)) == list(range(10))
    assert max(chain_values(handle)) >= 200
    space.verify_integrity()


def test_ledger_epochs_stay_coherent_after_cell_loss_full_fallback():
    space, stores, _ = _fleet(factor=1)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    _kill_cell(space, stores, _base_cell(space, 2))

    _mutate(space, 2)
    space.swap_out(2)
    record = space.manager.resilience.placement.get(2)
    cluster = space.clusters()[2]
    for device_id in record.active():
        # every surviving copy must sit at the new epoch; a stale
        # applied_epoch would invite a delta against a base the dead
        # cell took with it
        assert record.applied_epochs[device_id] == cluster.epoch
    space.swap_in(2)
    space.verify_integrity()


def test_rebuild_topology_over_a_dead_cell_serves_swapped_chains():
    space, stores, topology = _fleet()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    _mutate(space, 2)
    space.swap_out(2)  # chain swapped out, tip = delta or full on holders
    doomed = _base_cell(space, 2)

    for store in stores.values():
        if placement_group_of(store) == doomed:
            store.kill(lose_data=True)
    topology.tick()

    result = space.manager.rebuild_topology()
    assert result["cells_partial"] >= 1
    record = space.manager.resilience.placement.get(2)
    assert record is not None and record.live_count >= 1
    for device_id in record.active():
        assert topology.cell_of(device_id) != doomed
    for shard in topology.shard_table.records():
        if shard.primary is not None:
            assert topology.cell_of(shard.primary) != doomed

    space.swap_in(2)  # partial reads tolerated: survivors carry the chain
    assert sorted(v % 100 for v in chain_values(handle)) == list(range(10))
    space.verify_integrity()


def test_chain_continues_after_rebuild_without_stale_bases():
    space, stores, topology = _fleet()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    _start_chain(space, 2)
    doomed = _base_cell(space, 2)
    _kill_cell(space, stores, doomed)
    space.manager.rebuild_topology()

    ships_before = space.manager.stats.fastpath_delta_ships
    _mutate(space, 2)
    space.swap_out(2)
    space.swap_in(2)
    _mutate(space, 2)
    space.swap_out(2)
    space.swap_in(2)
    # whatever mix of full/delta ships the rebuilt fleet settles on,
    # the chain's content must round-trip exactly
    assert space.manager.stats.fastpath_delta_ships >= ships_before
    assert sorted(v % 100 for v in chain_values(handle)) == list(range(10))
    assert max(chain_values(handle)) >= 300
    space.verify_integrity()
