"""Hash sharding layer: stability, spread, and shard-record semantics."""

import pytest

from repro.topology import ShardRecord, ShardTable, shard_of


class TestShardOf:
    def test_pinned_values_never_change(self):
        # the routing contract: these values must agree across processes,
        # restarts and releases — a change here orphans every stored key
        assert [shard_of(s, 16) for s in (0, 1, 2, 3, 1000, 724911)] == [
            0, 6, 12, 5, 11, 7,
        ]

    def test_deterministic_and_in_range(self):
        for sid in range(0, 5000, 37):
            shard = shard_of(sid, 64)
            assert 0 <= shard < 64
            assert shard == shard_of(sid, 64)

    def test_sequential_sids_spread_evenly(self):
        counts = [0] * 16
        for sid in range(1, 100001):
            counts[shard_of(sid, 16)] += 1
        # multiplicative hashing keeps sequential allocation near-uniform
        assert max(counts) - min(counts) < 0.02 * (100000 / 16)

    def test_single_shard_collapses_everything(self):
        assert all(shard_of(sid, 1) == 0 for sid in range(100))

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError):
            shard_of(1, 0)
        with pytest.raises(ValueError):
            ShardTable(0)


class TestShardRecord:
    def test_set_primary_demotes_incumbent_and_bumps_epoch(self):
        record = ShardRecord(shard_id=3, primary="a", replicas=["b", "c"])
        record.set_primary("b")
        assert record.primary == "b"
        assert sorted(record.replicas) == ["a", "c"]  # deposed, not dropped
        assert record.parent_epoch == 1
        record.set_primary("c")
        assert record.parent_epoch == 2

    def test_remove_reports_primary_loss(self):
        record = ShardRecord(shard_id=0, primary="a", replicas=["b"])
        assert record.remove("b") is False
        assert record.remove("a") is True
        assert record.primary is None and record.replicas == []

    def test_holders_orders_primary_first(self):
        record = ShardRecord(shard_id=0, primary="z", replicas=["a", "b"])
        assert record.holders() == ["z", "a", "b"]

    def test_add_replica_dedupes_and_skips_primary(self):
        record = ShardRecord(shard_id=0, primary="a", replicas=["b"])
        record.add_replica("a")
        record.add_replica("b")
        record.add_replica("c")
        assert record.replicas == ["b", "c"]


class TestShardTable:
    def test_record_for_routes_by_hash(self):
        table = ShardTable(16)
        for sid in range(200):
            assert table.record_for(sid).shard_id == shard_of(sid, 16)

    def test_lookup_queries(self):
        table = ShardTable(4)
        table.record(0).set_primary("a")
        table.record(1).add_replica("a")
        table.record(2).set_primary("b")
        assert table.shards_led_by("a") == [0]
        assert table.shards_holding("a") == [0, 1]
        assert len(table) == 4
