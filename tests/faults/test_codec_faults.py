"""Injected codec faults: downgrade-after-advertise and rotted frames."""

import pytest

from repro.core.fastpath import FastPathConfig
from repro.devices.store import XmlStoreDevice
from repro.errors import CodecError, CodecNegotiationError
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.faults.flaky import mangle_frames
from tests.helpers import build_chain, chain_values, make_space


def _flaky_space(plan=None, **config):
    injector = FaultInjector(plan if plan is not None else FaultPlan.empty())
    inner = XmlStoreDevice("x", capacity=1 << 20)
    flaky = FlakyStore(inner, injector)
    space = make_space(with_store=False)
    space.manager.add_store(flaky)
    space.manager.enable_fastpath(
        FastPathConfig(
            codec="binary", serve_swap_in_from_cache=False, **config
        )
    )
    return space, flaky, inner, injector


def _mutate(space, sid, bump=100):
    cluster = space.clusters()[sid]
    oid = sorted(cluster.oids)[0]
    node = space._objects[oid]
    node.value = node.value + bump


# -- mangle_frames -------------------------------------------------------------


def test_mangle_frames_changes_bytes_preserving_length():
    data = bytes(range(64))
    mangled = mangle_frames(data)
    assert mangled != data and len(mangled) == len(data)


def test_mangle_frames_on_empty_payload_still_rots():
    assert mangle_frames(b"") != b""


# -- codec downgrade (advertise, then refuse) ----------------------------------


def test_downgrade_fault_falls_back_to_xml_transparently():
    space, flaky, inner, injector = _flaky_space()
    flaky.codec_downgrade = True
    handle = space.ingest(build_chain(12), cluster_size=4, root_name="h")

    space.swap_out(2)  # the binary ship is refused; XML must still land

    stats = space.manager.stats
    assert stats.codec_fallbacks == 1
    assert injector.stats.codec_downgrades >= 1
    assert inner._codecs == {}  # the payload landed as canonical XML
    assert space.manager.fastpath.negotiated_codec["x"] is None  # demoted

    space.swap_in(2)
    assert chain_values(handle) == list(range(12))

    # the demotion is sticky: the next cycle ships XML without another
    # negotiation round trip
    _mutate(space, 2)
    space.swap_out(2)
    assert stats.codec_fallbacks == 1
    assert injector.stats.codec_downgrades == 1


def test_downgrade_fault_raises_codec_negotiation_error_directly():
    injector = FaultInjector(FaultPlan.empty())
    flaky = FlakyStore(XmlStoreDevice("x", capacity=1 << 20), injector)
    flaky.codec_downgrade = True
    with pytest.raises(CodecNegotiationError) as exc_info:
        flaky.store_stream("k", [b"frames"], codec="binary")
    assert "x" in str(exc_info.value)
    assert injector.stats.codec_downgrades == 1
    # XML ships pass straight through the downgrade gate
    flaky.store_stream("k", ["<swap-cluster/>".encode("utf-8")])
    assert flaky.fetch("k") == "<swap-cluster/>"


def test_downgrade_fault_on_delta_ships_full_xml_instead():
    space, flaky, inner, injector = _flaky_space(delta=True)
    handle = space.ingest(build_chain(12), cluster_size=4, root_name="h")
    space.swap_out(2)
    space.swap_in(2)
    assert space.manager.stats.codec_binary_ships >= 1  # binary base landed

    flaky.codec_downgrade = True  # the store turns hostile mid-session
    _mutate(space, 2)
    location = space.swap_out(2)

    stats = space.manager.stats
    assert stats.codec_fallbacks >= 1
    assert injector.stats.codec_downgrades >= 1
    assert location.key not in inner._codecs  # what landed is XML at rest
    space.swap_in(2)
    assert any(v >= 100 for v in chain_values(handle))


# -- rotted binary frames ------------------------------------------------------


def test_corrupt_binary_frames_are_caught_by_digest_verify():
    space, flaky, _inner, injector = _flaky_space(
        plan=FaultPlan(seed=1, corruption_rate=1.0)
    )
    space.ingest(build_chain(12), cluster_size=4, root_name="h")
    space.swap_out(2)
    assert space.manager.stats.codec_binary_ships >= 1

    with pytest.raises(CodecError):
        space.swap_in(2)

    assert injector.stats.corruptions >= 1
    assert space.manager.stats.replicas_quarantined >= 1
    assert space.manager.stats.codec_binary_fetches == 0  # never verified


def test_fetch_wire_corruption_mangles_the_frames():
    injector = FaultInjector(FaultPlan(seed=2, corruption_rate=1.0))
    inner = XmlStoreDevice("x", capacity=1 << 20)
    flaky = FlakyStore(inner, injector)
    inner.store("k", "<swap-cluster/>")
    data, codec = flaky.fetch_wire("k")
    assert data != "<swap-cluster/>".encode("utf-8")
    assert codec is None
    assert injector.stats.corruptions == 1
