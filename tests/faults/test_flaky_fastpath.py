"""Fault injection on the new fast-path surfaces: batches and probes."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link, chunk_text
from repro.devices import InMemoryStore, XmlStoreDevice
from repro.errors import TransportError
from repro.faults import FaultInjector, FaultPlan, FlakyLink, FlakyStore

PAYLOAD = "<doc>" + "y" * 200 + "</doc>"


def _flaky_device(plan, clock=None):
    injector = FaultInjector(plan, clock)
    inner = XmlStoreDevice("x", capacity=1 << 20)
    return FlakyStore(inner, injector), inner, injector


def test_store_stream_passes_through_on_empty_plan():
    store, inner, injector = _flaky_device(FaultPlan.empty())
    store.store_stream("k", chunk_text(PAYLOAD, 64))
    assert inner.fetch("k") == PAYLOAD
    assert injector.stats.total_faults == 0


def test_store_stream_respects_down_windows():
    clock = SimulatedClock()
    store, _, injector = _flaky_device(
        FaultPlan(down_windows=((5.0, 10.0),)), clock
    )
    clock.advance(6.0)
    with pytest.raises(TransportError):
        store.store_stream("k", [b"frame"])
    assert injector.stats.window_denials == 1


def test_store_stream_interruption_lands_truncated_batch():
    store, inner, injector = _flaky_device(
        FaultPlan(seed=3, interruption_rate=1.0)
    )
    frames = chunk_text(PAYLOAD, 16)
    with pytest.raises(TransportError):
        store.store_stream("k", frames)
    assert injector.stats.interruptions == 1
    landed = b"".join(frames[: len(frames) // 2]).decode("utf-8")
    assert inner.fetch("k") == landed  # half the frames made it


def test_store_stream_transient_failure():
    store, inner, _ = _flaky_device(FaultPlan(seed=7, store_failure_rate=1.0))
    with pytest.raises(TransportError):
        store.store_stream("k", [b"frame"])
    assert "k" not in inner.keys()


def test_contains_probe_faults():
    store, _, injector = _flaky_device(FaultPlan(seed=9, probe_failure_rate=1.0))
    with pytest.raises(TransportError):
        store.contains("k")
    assert injector.stats.probe_faults == 1


def test_contains_passes_through_when_healthy():
    store, inner, _ = _flaky_device(FaultPlan.empty())
    inner.store("k", "<doc/>")
    assert store.contains("k")
    assert not store.contains("other")


def test_flaky_link_transfer_batch_gates_and_delegates():
    clock = SimulatedClock()
    injector = FaultInjector(FaultPlan(down_windows=((1.0, 2.0),)), clock)
    link = FlakyLink(bluetooth_link(clock), injector)
    elapsed = link.transfer_batch([100, 100])
    assert elapsed > 0
    clock.advance(1.0)  # into the down window
    with pytest.raises(TransportError):
        link.transfer_batch([100, 100])


def test_flaky_link_transfer_batch_transient_failure():
    injector = FaultInjector(FaultPlan(seed=5, link_failure_rate=1.0))
    link = FlakyLink(bluetooth_link(SimulatedClock()), injector)
    with pytest.raises(TransportError):
        link.transfer_batch([10])
    assert injector.stats.link_faults == 1
