"""Fault injection: deterministic, replayable, wall-clock-free."""

import pytest

from repro.clock import SimulatedClock
from repro.devices import InMemoryStore
from repro.errors import TransportError
from repro.faults import FaultInjector, FaultPlan, FlakyLink, FlakyStore


def _drive(seed: int, rate: float = 0.4, operations: int = 60):
    """One scripted run; returns the success/failure pattern."""
    clock = SimulatedClock()
    plan = FaultPlan(
        seed=seed,
        store_failure_rate=rate,
        fetch_failure_rate=rate,
        corruption_rate=0.2,
    )
    injector = FaultInjector(plan, clock)
    store = FlakyStore(InMemoryStore("x"), injector)
    pattern = []
    for index in range(operations):
        try:
            store.store(f"k{index}", f"<doc n='{index}' pad='{'x' * 20}'/>")
            pattern.append("s+")
        except TransportError:
            pattern.append("s-")
    for index in range(operations):
        try:
            text = store.fetch(f"k{index}")
            pattern.append("f+" if "rot" not in text else "f~")
        except Exception:
            pattern.append("f-")
    return pattern, injector.stats


def test_same_seed_replays_identically():
    pattern_a, stats_a = _drive(seed=42)
    pattern_b, stats_b = _drive(seed=42)
    assert pattern_a == pattern_b
    assert stats_a == stats_b
    assert stats_a.total_faults > 0  # the plan actually bit


def test_different_seeds_differ():
    pattern_a, _ = _drive(seed=1)
    pattern_b, _ = _drive(seed=2)
    assert pattern_a != pattern_b


def test_empty_plan_injects_nothing():
    plan = FaultPlan.empty()
    assert plan.is_empty
    injector = FaultInjector(plan)
    store = FlakyStore(InMemoryStore("x"), injector)
    for index in range(50):
        store.store(f"k{index}", "<doc/>")
        assert store.fetch(f"k{index}") == "<doc/>"
        assert store.has_room(10)
        store.drop(f"k{index}")
    assert injector.stats.decisions == 0
    assert injector.stats.total_faults == 0


def test_down_windows_follow_the_simulated_clock():
    clock = SimulatedClock()
    injector = FaultInjector(FaultPlan(down_windows=((5.0, 10.0),)), clock)
    store = FlakyStore(InMemoryStore("x"), injector)
    store.store("k", "<doc/>")  # t=0: fine
    clock.advance(6.0)
    with pytest.raises(TransportError):
        store.fetch("k")
    with pytest.raises(TransportError):
        store.has_room(10)
    clock.advance(5.0)  # t=11: the device is back
    assert store.fetch("k") == "<doc/>"
    assert injector.stats.window_denials == 2


def test_interruption_leaves_a_truncated_payload():
    injector = FaultInjector(FaultPlan(seed=3, interruption_rate=1.0))
    inner = InMemoryStore("x")
    store = FlakyStore(inner, injector)
    payload = "<doc>" + "y" * 100 + "</doc>"
    with pytest.raises(TransportError):
        store.store("k", payload)
    # half the document landed before the link died
    assert inner.fetch("k") == payload[: len(payload) // 2]
    assert injector.stats.interruptions == 1


def test_corruption_mangles_the_fetched_text():
    injector = FaultInjector(FaultPlan(seed=4, corruption_rate=1.0))
    store = FlakyStore(InMemoryStore("x"), injector)
    store.store("k", "<doc attr='value'/>")
    assert store.fetch("k") != "<doc attr='value'/>"
    assert injector.stats.corruptions == 1


def test_latency_spikes_charge_the_simulated_clock():
    clock = SimulatedClock()
    injector = FaultInjector(
        FaultPlan(seed=5, latency_spike_rate=1.0, latency_spike_s=0.5), clock
    )
    store = FlakyStore(InMemoryStore("x"), injector)
    store.store("k", "<doc/>")
    store.fetch("k")
    assert clock.now() == pytest.approx(1.0)
    assert injector.stats.latency_spikes == 2


def test_flaky_link_injects_and_reports_down_windows():
    clock = SimulatedClock()

    class Wire:
        def transfer(self, nbytes: int) -> float:
            return 0.0

        @property
        def is_up(self) -> bool:
            return True

    injector = FaultInjector(FaultPlan(down_windows=((1.0, 2.0),)), clock)
    link = FlakyLink(Wire(), injector)
    assert link.is_up
    link.transfer(100)
    clock.advance(1.5)
    assert not link.is_up
    with pytest.raises(TransportError):
        link.transfer(100)


def test_malformed_plans_are_rejected():
    with pytest.raises(ValueError):
        FaultPlan(store_failure_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(down_windows=((5.0, 1.0),))
