"""Cell-level churn actions: kill/partition/heal a whole placement group."""

import pytest

from repro.clock import SimulatedClock
from repro.devices import XmlStoreDevice
from repro.faults import (
    CELL_ACTIONS,
    ChurnEvent,
    ChurnInjector,
    ChurnPlan,
    FaultInjector,
    FaultPlan,
    FlakyStore,
)


def _fleet(clock, cells=2, per_cell=2):
    stores = {}
    for cell in range(cells):
        for i in range(per_cell):
            inner = XmlStoreDevice(
                f"c{cell}s{i}", placement_group=f"cell-{cell}"
            )
            stores[inner.device_id] = FlakyStore(
                inner, FaultInjector(FaultPlan.empty(), clock)
            )
    return stores


class TestCellEvents:
    def test_cell_action_requires_a_cell(self):
        for action in CELL_ACTIONS:
            with pytest.raises(ValueError):
                ChurnEvent(0.0, "", action)

    def test_unknown_action_still_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(0.0, "s0", "explode")

    def test_store_level_partition_heal_actions(self):
        clock = SimulatedClock()
        stores = _fleet(clock)
        plan = ChurnPlan(
            events=(
                ChurnEvent(1.0, "c0s0", "partition"),
                ChurnEvent(2.0, "c0s0", "heal"),
            )
        )
        injector = ChurnInjector(plan, clock)
        clock.advance(1.0)
        injector.apply(stores)
        assert stores["c0s0"].is_partitioned
        assert not stores["c0s1"].is_partitioned
        clock.advance(1.0)
        injector.apply(stores)
        assert not stores["c0s0"].is_partitioned


class TestCellFanOut:
    def test_kill_cell_fans_out_to_every_store_in_the_group(self):
        clock = SimulatedClock()
        stores = _fleet(clock)
        plan = ChurnPlan(
            events=(ChurnEvent(5.0, "", "kill_cell", cell="cell-0"),)
        )
        injector = ChurnInjector(plan, clock)
        assert injector.apply(stores) == []  # not due yet
        clock.advance(5.0)
        fired = injector.apply(stores)
        assert len(fired) == 1 and fired[0].cell == "cell-0"
        assert stores["c0s0"].is_dead and stores["c0s1"].is_dead
        assert not stores["c1s0"].is_dead and not stores["c1s1"].is_dead

    def test_kill_cell_lose_data_wipes_each_store(self):
        clock = SimulatedClock()
        stores = _fleet(clock)
        stores["c0s0"].store("k", "<x/>")
        plan = ChurnPlan(
            events=(
                ChurnEvent(0.0, "", "kill_cell", cell="cell-0", lose_data=True),
                ChurnEvent(1.0, "", "heal_cell", cell="cell-0"),
            )
        )
        injector = ChurnInjector(plan, clock)
        injector.apply(stores)
        clock.advance(1.0)
        injector.apply(stores)
        assert not stores["c0s0"].is_dead
        assert stores["c0s0"].keys() == []  # revived empty

    def test_partition_cell_preserves_data_and_heal_restores_it(self):
        clock = SimulatedClock()
        stores = _fleet(clock)
        stores["c1s0"].store("k", "<x/>")
        plan = ChurnPlan(
            events=(
                ChurnEvent(0.0, "", "partition_cell", cell="cell-1"),
                ChurnEvent(3.0, "", "heal_cell", cell="cell-1"),
            )
        )
        injector = ChurnInjector(plan, clock)
        injector.apply(stores)
        assert stores["c1s0"].is_partitioned and stores["c1s1"].is_partitioned
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            stores["c1s0"].fetch("k")
        clock.advance(3.0)
        injector.apply(stores)
        assert not stores["c1s0"].is_partitioned
        assert stores["c1s0"].fetch("k") == "<x/>"  # nothing lost

    def test_heal_cell_revives_dead_and_partitioned_alike(self):
        clock = SimulatedClock()
        stores = _fleet(clock)
        stores["c0s0"].kill()
        stores["c0s1"].partition()
        plan = ChurnPlan(
            events=(ChurnEvent(0.0, "", "heal_cell", cell="cell-0"),)
        )
        ChurnInjector(plan, clock).apply(stores)
        assert not stores["c0s0"].is_dead
        assert not stores["c0s1"].is_partitioned

    def test_implicit_cell_default_targets_single_store(self):
        # stores without an explicit group live in "cell:<device_id>"
        clock = SimulatedClock()
        solo = FlakyStore(
            XmlStoreDevice("solo"),
            FaultInjector(FaultPlan.empty(), clock),
        )
        other = FlakyStore(
            XmlStoreDevice("other"),
            FaultInjector(FaultPlan.empty(), clock),
        )
        stores = {"solo": solo, "other": other}
        plan = ChurnPlan(
            events=(ChurnEvent(0.0, "", "kill_cell", cell="cell:solo"),)
        )
        ChurnInjector(plan, clock).apply(stores)
        assert solo.is_dead and not other.is_dead
