"""Brownout: degraded-but-up links, squeezed stores, churn dispatch."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import FRAME_OVERHEAD_BYTES, SimulatedLink
from repro.devices import XmlStoreDevice
from repro.errors import StoreFullError
from repro.faults import (
    ChurnEvent,
    ChurnInjector,
    ChurnPlan,
    FaultInjector,
    FaultPlan,
    FlakyStore,
)


def _link(clock=None):
    return SimulatedLink(
        1000.0, latency_s=0.1, clock=clock or SimulatedClock(), name="bt"
    )


# -- SimulatedLink ---------------------------------------------------------


def test_brownout_multiplies_latency_and_divides_bandwidth():
    link = _link()
    assert link.transfer_time(100) == pytest.approx(0.1 + 800 / 1000)
    link.brownout(latency_factor=2.0, bandwidth_factor=0.5)
    assert link.in_brownout
    assert link.transfer_time(100) == pytest.approx(0.2 + 800 / 500)


def test_brownout_batches_pay_the_degraded_latency_once():
    link = _link()
    link.brownout(latency_factor=2.0, bandwidth_factor=0.5)
    total = (100 + FRAME_OVERHEAD_BYTES) * 2
    assert link.batch_transfer_time([100, 100]) == pytest.approx(
        0.2 + total * 8 / 500
    )


def test_brownout_link_stays_up_and_charges_the_clock():
    link = _link()
    link.brownout(latency_factor=10.0)
    assert link.is_up  # degraded is not down
    elapsed = link.transfer(100)
    assert elapsed == pytest.approx(1.0 + 800 / 1000)
    assert link.stats.seconds_charged == pytest.approx(elapsed)
    assert link.clock.now() == pytest.approx(elapsed)


def test_clear_brownout_restores_the_cost_model():
    link = _link()
    healthy = link.transfer_time(100)
    link.brownout(latency_factor=5.0, bandwidth_factor=0.1)
    link.clear_brownout()
    assert not link.in_brownout
    assert link.transfer_time(100) == pytest.approx(healthy)


def test_link_brownout_rejects_nonpositive_factors():
    link = _link()
    with pytest.raises(ValueError):
        link.brownout(latency_factor=0.0)
    with pytest.raises(ValueError):
        link.brownout(bandwidth_factor=-1.0)


# -- FlakyStore ------------------------------------------------------------


def _flaky(capacity=1000, clock=None):
    clock = clock or SimulatedClock()
    link = _link(clock)
    inner = XmlStoreDevice("dev", capacity=capacity, link=link)
    injector = FaultInjector(FaultPlan.empty(), clock)
    return FlakyStore(inner, injector), link


def test_set_brownout_reaches_the_inner_link():
    flaky, link = _flaky()
    flaky.set_brownout(latency_factor=3.0, bandwidth_factor=0.5)
    assert flaky.in_brownout
    assert link.in_brownout
    flaky.clear_brownout()
    assert not flaky.in_brownout
    assert not link.in_brownout


def test_set_brownout_validates_factors():
    flaky, _ = _flaky()
    with pytest.raises(ValueError):
        flaky.set_brownout(latency_factor=0.0)
    with pytest.raises(ValueError):
        flaky.set_brownout(capacity_factor=0.0)
    with pytest.raises(ValueError):
        flaky.set_brownout(capacity_factor=1.5)


def test_capacity_squeeze_refuses_writes_but_never_reads():
    flaky, _ = _flaky(capacity=1000)
    flaky.store("k0", "x" * 300)
    flaky.set_brownout(capacity_factor=0.5)  # 500 B usable, 300 used
    with pytest.raises(StoreFullError):
        flaky.store("k1", "y" * 300)
    assert flaky.fetch("k0") == "x" * 300  # reads are never refused
    flaky.store("k2", "z" * 100)  # still fits under the squeeze


def test_has_room_reflects_the_squeeze():
    flaky, _ = _flaky(capacity=1000)
    flaky.store("k0", "x" * 300)
    flaky.set_brownout(capacity_factor=0.5)
    assert not flaky.has_room(300)
    assert flaky.has_room(100)
    flaky.clear_brownout()
    assert flaky.has_room(300)


# -- churn dispatch --------------------------------------------------------


def test_churn_brownout_and_recover_round_trip():
    clock = SimulatedClock()
    flaky, link = _flaky(clock=clock)
    plan = ChurnPlan(events=(
        ChurnEvent(at_s=10.0, device_id="dev", action="brownout",
                   latency_factor=20.0, bandwidth_factor=1 / 30,
                   capacity_factor=0.05),
        ChurnEvent(at_s=50.0, device_id="dev", action="recover"),
    ))
    churn = ChurnInjector(plan, clock)

    assert churn.apply({"dev": flaky}) == []  # nothing due yet
    clock.advance(10.0)
    fired = churn.apply({"dev": flaky})
    assert [event.action for event in fired] == ["brownout"]
    assert flaky.in_brownout and link.in_brownout

    clock.advance(40.0)
    churn.apply({"dev": flaky})
    assert not flaky.in_brownout
    assert churn.exhausted


def test_churn_event_validates_brownout_factors():
    with pytest.raises(ValueError):
        ChurnEvent(at_s=0.0, device_id="d", action="brownout",
                   latency_factor=0.0)
    with pytest.raises(ValueError):
        ChurnEvent(at_s=0.0, device_id="d", action="brownout",
                   capacity_factor=0.0)
    with pytest.raises(ValueError):
        ChurnEvent(at_s=0.0, device_id="d", action="brownout",
                   capacity_factor=2.0)
