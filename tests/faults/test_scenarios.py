"""Scenario specs: validation, the registry, scripted-churn invariants."""

import pytest

from repro.faults.scenarios import (
    SCENARIOS,
    ScenarioPhase,
    ScenarioSpec,
    device_name,
)


def test_phase_rejects_negative_steps_and_durations():
    with pytest.raises(ValueError):
        ScenarioPhase(name="p", steps=-1)
    with pytest.raises(ValueError):
        ScenarioPhase(name="p", steps=1, step_s=-0.5)


def test_phase_rejects_unknown_patterns():
    with pytest.raises(ValueError):
        ScenarioPhase(name="p", steps=1, pattern="zipfian")


def test_phase_named_raises_on_unknown_phase():
    spec = SCENARIOS["memory_spike"]()
    with pytest.raises(KeyError):
        spec.phase_named("no-such-phase")


def test_registry_builds_well_formed_specs():
    assert set(SCENARIOS) == {
        "app_switch_storm",
        "memory_spike",
        "flash_crowd",
        "long_idle_then_burst",
        "store_fleet_brownout",
        "noisy_neighbor",
    }
    for name, factory in SCENARIOS.items():
        spec = factory()
        assert spec.name == name
        assert spec.phases  # every scenario actually does something
        assert spec.slo_p95_stall_s > 0
        assert spec.tasks > 0 and spec.objects_per_task > 0
        # churn only ever names devices the harness will build
        devices = {device_name(i) for i in range(spec.store_count)}
        for event in spec.churn.ordered():
            assert event.device_id in devices, (
                f"{name}: churn names unknown {event.device_id!r}"
            )


def test_every_scenario_pressures_the_heap():
    # a working set that fits in heap never swaps, and a scenario that
    # never swaps measures nothing
    for factory in SCENARIOS.values():
        spec = factory()
        objects = spec.tasks * spec.objects_per_task
        objects += max(
            (phase.spike_objects for phase in spec.phases), default=0
        )
        objects += sum(
            phase.steps * phase.arrivals_per_step * phase.arrival_objects
            for phase in spec.phases
        )
        # the accounted per-object size exceeds payload_bytes, so
        # matching the capacity already means the heap cannot hold all
        assert objects * spec.payload_bytes >= spec.heap_capacity


def test_store_fleet_brownout_never_recovers_in_run():
    # stall time is charged to the simulated clock, so a time-based
    # recovery would fire after a different number of workload steps in
    # the slow (baseline) run than in the fast (ladder) run — the
    # brownout must outlast the scripted window to keep them comparable
    spec = SCENARIOS["store_fleet_brownout"]()
    actions = [event.action for event in spec.churn.ordered()]
    assert "brownout" in actions
    assert "recover" not in actions
    assert all(event.capacity_factor <= 1.0 for event in spec.churn.ordered())


def test_memory_spike_has_a_spiking_phase():
    spec = SCENARIOS["memory_spike"]()
    assert any(phase.spike_objects > 0 for phase in spec.phases)


def test_noisy_neighbor_squeezes_then_recovers():
    # the neighbor's burst must both squeeze capacity (so the squeeze
    # is about fleet room, not just link speed) and lift before the
    # drain phase ends — the space has to come back without help
    spec = SCENARIOS["noisy_neighbor"]()
    brownouts = [e for e in spec.churn.ordered() if e.action == "brownout"]
    recoveries = [e for e in spec.churn.ordered() if e.action == "recover"]
    assert brownouts and recoveries
    assert all(e.capacity_factor < 1.0 for e in brownouts)
    assert {e.device_id for e in brownouts} == {
        device_name(i) for i in range(spec.store_count)
    }
    scripted_s = sum(p.steps * p.step_s for p in spec.phases)
    assert max(e.at_s for e in recoveries) < scripted_s
    # the squeeze phase keeps the foreground active under arrivals
    squeeze = spec.phase_named("squeeze")
    assert squeeze.pattern == "foreground"
    assert squeeze.arrivals_per_step > 0


def test_flash_crowd_has_arrivals():
    spec = SCENARIOS["flash_crowd"]()
    assert any(
        phase.arrivals_per_step > 0 and phase.arrival_objects > 0
        for phase in spec.phases
    )
