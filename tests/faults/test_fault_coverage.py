"""Fault-surface coverage: the probes and extras misbehave too.

The gap this closes: ``contains()`` answered truthfully and ``keys()``
ignored the fault plan entirely, so chaos runs exercised the payload
path but never a lying probe or an inventory scan against a dead link.
"""

import pytest

from repro.clock import SimulatedClock
from repro.devices import InMemoryStore
from repro.errors import TransportError
from repro.faults import (
    ChurnEvent,
    ChurnPlan,
    FaultInjector,
    FaultPlan,
    FlakyStore,
    mangle_payload,
)
from repro.wire.canonical import digest_of_canonical


def _flaky(plan, clock=None):
    injector = FaultInjector(plan, clock or SimulatedClock())
    store = FlakyStore(InMemoryStore("target"), injector)
    return store, injector


def test_contains_lies_under_corruption():
    store, injector = _flaky(FaultPlan(seed=3, corruption_rate=1.0))
    store._inner.store("k", "<x/>")
    assert store.contains("k") is False  # present, but the answer rotted
    assert store.contains("missing") is True  # absent, reported present
    assert injector.stats.corruptions == 2


def test_contains_is_truthful_on_an_empty_plan():
    store, injector = _flaky(FaultPlan.empty())
    store._inner.store("k", "<x/>")
    assert store.contains("k") is True
    assert store.contains("missing") is False
    assert injector.stats.decisions == 0  # zero-rate rolls skip the PRNG


def test_keys_honors_down_windows():
    clock = SimulatedClock()
    store, injector = _flaky(
        FaultPlan(down_windows=((5.0, 10.0),)), clock=clock
    )
    store._inner.store("k", "<x/>")
    assert store.keys() == ["k"]
    clock.advance(6.0)
    with pytest.raises(TransportError):
        store.keys()
    assert injector.stats.window_denials == 1


def test_keys_honors_probe_failures():
    store, injector = _flaky(FaultPlan(seed=1, probe_failure_rate=1.0))
    with pytest.raises(TransportError):
        store.keys()
    assert injector.stats.probe_faults == 1


def test_digest_probe_fails_and_corrupts_on_schedule():
    store, _ = _flaky(FaultPlan(seed=2, probe_failure_rate=1.0))
    store._inner.store("k", "<x/>")
    with pytest.raises(TransportError):
        store.digest("k")

    store, injector = _flaky(FaultPlan(seed=2, corruption_rate=1.0))
    store._inner.store("k", "<x/>")
    value = store.digest("k")
    assert value != digest_of_canonical("<x/>")
    assert value.startswith("corrupt:")
    assert injector.stats.corruptions == 1


def test_at_rest_corruption_acks_but_lands_rot():
    store, injector = _flaky(FaultPlan(seed=4, at_rest_corruption_rate=1.0))
    store.store("k", "<x/>")  # acknowledged: no exception
    assert injector.stats.at_rest_corruptions == 1
    landed = store._inner.fetch("k")
    assert landed == mangle_payload("<x/>")
    assert digest_of_canonical(landed) != digest_of_canonical("<x/>")


def test_kill_makes_every_operation_raise_until_revive():
    store, injector = _flaky(FaultPlan.empty())
    store._inner.store("k", "<x/>")
    store.kill()
    assert store.is_dead
    for operation in (
        lambda: store.store("k2", "<y/>"),
        lambda: store.fetch("k"),
        lambda: store.drop("k"),
        lambda: store.has_room(10),
        lambda: store.contains("k"),
        lambda: store.digest("k"),
        lambda: store.keys(),
    ):
        with pytest.raises(TransportError):
            operation()
    assert injector.stats.dead_denials == 7
    store.revive()
    assert store.fetch("k") == "<x/>"


def test_kill_with_lose_data_wipes_the_inventory():
    store, _ = _flaky(FaultPlan.empty())
    store._inner.store("k", "<x/>")
    store.kill(lose_data=True)
    store.revive()
    assert store.keys() == []  # the device came back, the data did not


def test_corrupt_at_rest_helper_targets_the_lowest_key():
    store, injector = _flaky(FaultPlan.empty())
    store._inner.store("b", "<b/>")
    store._inner.store("a", "<a/>")
    assert store.corrupt_at_rest() == "a"
    assert store._inner.fetch("a") == mangle_payload("<a/>")
    assert store._inner.fetch("b") == "<b/>"
    assert injector.stats.at_rest_corruptions == 1
    empty, _ = _flaky(FaultPlan.empty())
    assert empty.corrupt_at_rest() is None


def test_fault_plan_validates_the_new_rate():
    with pytest.raises(ValueError):
        FaultPlan(at_rest_corruption_rate=1.5)
    assert not FaultPlan(at_rest_corruption_rate=0.1).is_empty
    assert FaultPlan.empty().is_empty


def test_churn_events_validate_their_action():
    with pytest.raises(ValueError):
        ChurnEvent(at_s=1.0, device_id="s", action="explode")
    with pytest.raises(ValueError):
        ChurnEvent(at_s=-1.0, device_id="s", action="kill")
    plan = ChurnPlan(
        events=(
            ChurnEvent(at_s=9.0, device_id="b", action="kill"),
            ChurnEvent(at_s=2.0, device_id="a", action="corrupt", key="k"),
        )
    )
    assert [e.at_s for e in plan.ordered()] == [2.0, 9.0]
    assert not plan.is_empty and ChurnPlan().is_empty
