"""Exporters: JSONL dump schema and Prometheus text format."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.export import (
    check_dump,
    load_dump,
    parse_prometheus,
    registry_from_dump,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def _registry():
    registry = MetricsRegistry()
    registry.counter("swap.out.count").inc(3)
    registry.gauge("heap.used.bytes").set(1024)
    histogram = registry.histogram("swap.out.latency_s", (0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    return registry


# -- Prometheus --------------------------------------------------------------


def test_render_counter_gets_total_suffix():
    text = render_prometheus(_registry())
    assert "repro_swap_out_count_total 3" in text
    assert "# TYPE repro_swap_out_count_total counter" in text


def test_render_gauge():
    text = render_prometheus(_registry())
    assert "repro_heap_used_bytes 1024" in text


def test_render_histogram_buckets():
    text = render_prometheus(_registry())
    assert 'repro_swap_out_latency_s_bucket{le="0.1"} 1' in text
    assert 'repro_swap_out_latency_s_bucket{le="1"} 2' in text
    assert 'repro_swap_out_latency_s_bucket{le="+Inf"} 2' in text
    assert "repro_swap_out_latency_s_count 2" in text


def test_render_parses_back():
    samples = parse_prometheus(render_prometheus(_registry()))
    assert samples[("repro_swap_out_count_total", "")] == 3.0
    assert samples[("repro_swap_out_latency_s_bucket", 'le="+Inf"')] == 2.0


def test_prefix_configurable():
    text = render_prometheus(_registry(), prefix="obi")
    assert "obi_swap_out_count_total" in text


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("}bad{ 1")
    with pytest.raises(ValueError):
        parse_prometheus("no_value_here")


# -- JSONL -------------------------------------------------------------------


def _dump_records(space_cls=None):
    """A real dump produced by a tiny swap cycle."""
    from tests.helpers import build_chain, make_space

    space = make_space("dump")
    obs = space.manager.enable_observability()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.swap_in(2)
    buffer = io.StringIO()
    from repro.obs.export import write_dump

    obs.refresh()
    write_dump(obs, buffer, label="unit")
    buffer.seek(0)
    return load_dump(buffer)


def test_dump_well_formed():
    records = _dump_records()
    assert check_dump(records) == []
    kinds = {record["kind"] for record in records}
    assert kinds == {"meta", "span", "metric"}


def test_dump_meta_carries_label_and_version():
    meta = [r for r in _dump_records() if r["kind"] == "meta"][0]
    assert meta["label"] == "unit"
    assert meta["version"] == 1
    assert meta["space"] == "dump"


def test_dump_is_json_lines():
    records = _dump_records()
    for record in records:
        json.dumps(record)  # every record is JSON-clean


def test_check_flags_missing_keys():
    problems = check_dump([{"kind": "span", "trace": "t-000001"}])
    assert any("missing keys" in problem for problem in problems)


def test_check_flags_unknown_kind():
    assert check_dump([{"kind": "mystery"}])


def test_check_flags_missing_meta():
    problems = check_dump(
        [{"kind": "metric", "type": "counter", "name": "c", "value": 1}]
    )
    assert any("no meta" in problem for problem in problems)


def test_check_flags_bad_histogram_shape():
    records = [
        {"kind": "meta", "version": 1, "space": "s", "clock_s": 0.0},
        {
            "kind": "metric", "type": "histogram", "name": "h",
            "bounds": [1.0, 2.0], "counts": [1], "sum": 0.5, "count": 1,
        },
    ]
    assert any("counts" in problem for problem in check_dump(records))


def test_check_flags_inverted_span():
    records = [
        {"kind": "meta", "version": 1, "space": "s", "clock_s": 0.0},
        {
            "kind": "span", "trace": "t", "span": "s1", "parent": None,
            "name": "x", "start_s": 2.0, "end_s": 1.0, "duration_s": -1.0,
            "wall_s": 0.0, "status": "ok", "error": None, "tags": {},
        },
    ]
    assert any("ends before" in problem for problem in check_dump(records))


def test_registry_from_dump_merges_runs():
    records = _dump_records() + _dump_records()
    registry = registry_from_dump(records)
    single = registry_from_dump(_dump_records())
    assert (
        registry.get("swap.out.count").value
        == 2 * single.get("swap.out.count").value
    )
    merged = registry.get("swap.out.latency_s")
    assert merged.count == 2 * single.get("swap.out.latency_s").count


def test_load_dump_from_path(tmp_path):
    target = tmp_path / "dump.jsonl"
    from tests.helpers import build_chain, make_space

    space = make_space("filed")
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    obs.export_jsonl(str(target), label="run-a")
    obs.export_jsonl(str(target), label="run-b", append=True)
    records = load_dump(str(target))
    assert check_dump(records) == []
    labels = [r["label"] for r in records if r["kind"] == "meta"]
    assert labels == ["run-a", "run-b"]


def test_load_dump_rejects_bad_json(tmp_path):
    target = tmp_path / "bad.jsonl"
    target.write_text('{"kind": "meta"\n', encoding="utf-8")
    with pytest.raises(ValueError, match="not JSON"):
        load_dump(str(target))
