"""The metrics registry: counters, gauges, fixed-bucket histograms."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)


def test_counter_increments():
    counter = Counter("swap.out.count")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_counter_set_to_never_goes_down():
    counter = Counter("c")
    counter.set_to(10)
    counter.set_to(3)
    assert counter.value == 10


def test_gauge_moves_both_ways():
    gauge = Gauge("heap.used.bytes")
    gauge.set(100)
    gauge.inc(20)
    gauge.dec(50)
    assert gauge.value == 70


def test_histogram_bucketing():
    histogram = Histogram("latency", (0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    assert histogram.counts == [1, 2, 1, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(56.05)


def test_histogram_boundary_lands_in_bucket():
    # le-semantics: an observation equal to a bound counts in that bucket
    histogram = Histogram("h", (1.0, 2.0))
    histogram.observe(1.0)
    assert histogram.counts == [1, 0, 0]


def test_histogram_cumulative_shape():
    histogram = Histogram("h", (1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(1.5)
    histogram.observe(99.0)
    rows = histogram.cumulative()
    assert rows == [(1.0, 1), (2.0, 2), (float("inf"), 3)]


def test_histogram_sorts_bounds():
    histogram = Histogram("h", (10.0, 1.0, 5.0))
    assert histogram.bounds == (1.0, 5.0, 10.0)


def test_histogram_needs_bounds():
    with pytest.raises(ValueError):
        Histogram("h", ())


def test_registry_create_or_get():
    registry = MetricsRegistry()
    first = registry.counter("a")
    assert registry.counter("a") is first


def test_registry_type_conflict():
    registry = MetricsRegistry()
    registry.counter("a")
    with pytest.raises(TypeError, match="already registered"):
        registry.gauge("a")


def test_registry_histogram_default_bounds():
    registry = MetricsRegistry()
    assert registry.histogram("h").bounds == tuple(LATENCY_BUCKETS_S)


def test_registry_all_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a")
    assert [metric.name for metric in registry.all()] == ["a", "b"]


def test_snapshot_round_trips_values():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h", (1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["c"]["value"] == 3
    assert snap["g"]["value"] == 1.5
    assert snap["h"]["counts"] == [1, 0]
