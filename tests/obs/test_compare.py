"""``python -m repro obs report --compare``: bench-report diffing."""

import json

from repro.obs.cli import main


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def _report(link_bytes, cost, ratio):
    return {
        "benchmark": "delta_swap",
        "scenarios": {
            "delta": {
                "bytes_on_link": link_bytes,
                "swap_out_phase_mean_s": cost,
                "phases": {"encode": {"sim_s": 0.5}},
            }
        },
        "reductions": {"link_bytes": ratio},
    }


def test_compare_identical_reports_exits_zero(tmp_path, capsys):
    a = _write(tmp_path, "a.json", _report(1000, 2.0, 4.0))
    b = _write(tmp_path, "b.json", _report(1000, 2.0, 4.0))
    assert main(["report", a, "--compare", b]) == 0
    out = capsys.readouterr().out
    assert "benchmark 'delta_swap'" in out
    assert "scenario 'delta':" in out
    assert "+0.0%" in out
    assert "*" not in out  # nothing changed: no starred rows


def test_compare_marks_changed_leaves(tmp_path, capsys):
    new = _write(tmp_path, "new.json", _report(500, 1.0, 8.0))
    old = _write(tmp_path, "old.json", _report(1000, 2.0, 4.0))
    assert main(["report", new, "--compare", old]) == 0
    out = capsys.readouterr().out
    assert "-50.0%" in out  # bytes_on_link halved
    assert "+100.0%" in out  # the reduction ratio doubled
    assert "phases.encode.sim_s" in out  # nested leaves flattened
    assert out.count("*") >= 3


def test_compare_rejects_mismatched_benchmarks(tmp_path, capsys):
    delta = _write(tmp_path, "delta.json", _report(1, 1.0, 1.0))
    other = _write(
        tmp_path, "other.json", {"benchmark": "swap_hotpath", "scenarios": {}}
    )
    assert main(["report", delta, "--compare", other]) == 1
    assert "different benchmarks" in capsys.readouterr().out


def test_compare_rejects_non_bench_files(tmp_path, capsys):
    bench = _write(tmp_path, "bench.json", _report(1, 1.0, 1.0))
    junk = _write(tmp_path, "junk.json", {"no": "benchmark key"})
    assert main(["report", bench, "--compare", junk]) == 1
    assert "not a bench report" in capsys.readouterr().out
    missing = str(tmp_path / "missing.json")
    assert main(["report", bench, "--compare", missing]) == 1


def test_compare_schema_mismatch_exits_nonzero_with_diff(tmp_path, capsys):
    """A structural conflict must produce a readable diff, not a traceback."""
    good = _write(tmp_path, "good.json", _report(1000, 2.0, 4.0))
    # same benchmark name, but 'scenarios' is an array: indexing it with
    # a scenario name used to raise TypeError straight to the user
    broken = _write(
        tmp_path,
        "broken.json",
        {"benchmark": "delta_swap", "scenarios": [1, 2, 3]},
    )
    assert main(["report", good, "--compare", broken]) == 1
    out = capsys.readouterr().out
    assert "schema mismatch" in out
    assert "scenarios" in out
    assert "mapping" in out and "array" in out
    assert "Traceback" not in out


def test_compare_schema_mismatch_reports_top_level_keys(tmp_path, capsys):
    current = _write(tmp_path, "cur.json", _report(1, 1.0, 1.0))
    baseline = _write(
        tmp_path,
        "base.json",
        {
            "benchmark": "delta_swap",
            "scenarios": {},
            "reductions": {},
            "extra_section": {"x": 1},
        },
    )
    assert main(["report", current, "--compare", baseline]) == 1
    out = capsys.readouterr().out
    assert "schema mismatch" in out
    assert "extra_section: only in baseline" in out


def test_compare_nested_type_conflict_is_fatal(tmp_path, capsys):
    current = _write(tmp_path, "c.json", _report(1000, 2.0, 4.0))
    conflicted = _report(1000, 2.0, 4.0)
    conflicted["scenarios"]["delta"]["phases"] = 7  # was a mapping
    baseline = _write(tmp_path, "b.json", conflicted)
    assert main(["report", current, "--compare", baseline]) == 1
    out = capsys.readouterr().out
    assert "schema mismatch" in out
    assert "scenarios.delta.phases" in out


def test_compare_missing_nested_keys_stay_nonfatal(tmp_path, capsys):
    """Leaf drift (new or vanished metrics) is a diff, not a schema break."""
    current = _report(1000, 2.0, 4.0)
    current["scenarios"]["delta"]["new_metric"] = 5
    a = _write(tmp_path, "a.json", current)
    b = _write(tmp_path, "b.json", _report(1000, 2.0, 4.0))
    assert main(["report", a, "--compare", b]) == 0
    out = capsys.readouterr().out
    assert "new_metric" in out
    assert "(new)" in out


def _wall_report(wall, sim=3.0):
    return {
        "benchmark": "async_sched",
        "scenarios": {
            "async": {"sim_clock_s": sim, "wall_s": wall},
        },
        "reductions": {"p95_fault_stall": 2.5},
    }


def test_compare_marks_wall_jitter_with_a_tilde_not_a_star(tmp_path, capsys):
    """Wall-clock readings jitter with the host: a change inside the
    tolerance is flagged as noise (~), never as a regression (*)."""
    current = _write(tmp_path, "cur.json", _wall_report(0.45))
    baseline = _write(tmp_path, "base.json", _wall_report(0.40))
    assert main(["report", current, "--compare", baseline]) == 0
    out = capsys.readouterr().out
    wall_row = next(line for line in out.splitlines() if "wall_s" in line)
    assert wall_row.rstrip().endswith("~")
    assert "*" not in wall_row


def test_compare_still_stars_wall_changes_beyond_the_tolerance(
    tmp_path, capsys
):
    current = _write(tmp_path, "cur.json", _wall_report(2.0))
    baseline = _write(tmp_path, "base.json", _wall_report(0.4))
    assert main(["report", current, "--compare", baseline]) == 0
    out = capsys.readouterr().out
    wall_row = next(line for line in out.splitlines() if "wall_s" in line)
    assert wall_row.rstrip().endswith("*")


def test_compare_simulated_time_changes_are_never_jitter(tmp_path, capsys):
    """Only wall paths get the tolerance: a simulated-clock drift of the
    same magnitude is a real, starred change."""
    current = _write(tmp_path, "cur.json", _wall_report(0.4, sim=3.3))
    baseline = _write(tmp_path, "base.json", _wall_report(0.4, sim=3.0))
    assert main(["report", current, "--compare", baseline]) == 0
    out = capsys.readouterr().out
    sim_row = next(line for line in out.splitlines() if "sim_clock_s" in line)
    assert sim_row.rstrip().endswith("*")
