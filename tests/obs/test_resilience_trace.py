"""The acceptance scenario: a faulted swap-out under resilience yields ONE
trace showing the failed attempt, the retry backoff, and the failover target,
with bus events stamped with that trace ID."""

from __future__ import annotations

import pytest

from repro.comm.transport import bluetooth_link
from repro.devices.store import XmlStoreDevice
from repro.events import SwapFailoverEvent, SwapOutEvent, SwapRetryEvent
from repro.faults.flaky import FaultInjector, FlakyStore
from repro.faults.plan import FaultPlan
from repro.obs import parse_prometheus
from repro.resilience import ResilienceConfig, RetryPolicy
from tests.helpers import build_chain, make_space


@pytest.fixture
def faulted():
    """s0 always fails on store; s1 is healthy. Retries then failover."""
    space = make_space("faulted", with_store=False)
    injector = FaultInjector(
        FaultPlan(seed=7, store_failure_rate=1.0), clock=space.clock
    )
    broken = FlakyStore(
        XmlStoreDevice("s0", capacity=1 << 20, link=bluetooth_link(clock=space.clock)),
        injector,
    )
    healthy = XmlStoreDevice(
        "s1", capacity=1 << 20, link=bluetooth_link(clock=space.clock)
    )
    space.manager.add_store(broken)
    space.manager.add_store(healthy)
    space.manager.enable_resilience(
        ResilienceConfig(retry=RetryPolicy(max_attempts=3, base_delay_s=0.1))
    )
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    return space, obs


def test_one_trace_for_the_whole_story(faulted):
    space, obs = faulted
    traces = obs.tracer.traces()
    assert len(traces) == 1
    (trace_id,) = traces


def test_failed_attempt_recorded_as_error_span(faulted):
    _, obs = faulted
    stores = [s for s in obs.tracer.spans() if s.name == "swap.out.store"]
    failed = [s for s in stores if s.status == "error"]
    assert len(failed) == 1
    assert failed[0].tags["device"] == "s0"
    assert failed[0].tags["stage"] == "primary"
    assert "injected" in failed[0].error


def test_retry_backoff_spans_inside_the_failed_attempt(faulted):
    _, obs = faulted
    stores = {s.tags["device"]: s for s in obs.tracer.spans()
              if s.name == "swap.out.store"}
    backoffs = [s for s in obs.tracer.spans() if s.name == "retry.backoff"]
    assert len(backoffs) == 2  # max_attempts=3 sleeps twice
    for index, span in enumerate(backoffs, start=1):
        assert span.parent_id == stores["s0"].span_id
        assert span.tags["attempt"] == index
        assert span.tags["device"] == "s0"
        assert "injected" in span.tags["cause"]
        assert span.duration_s == pytest.approx(span.tags["delay_s"])


def test_failover_span_lands_on_the_healthy_store(faulted):
    _, obs = faulted
    stores = [s for s in obs.tracer.spans() if s.name == "swap.out.store"]
    won = [s for s in stores if s.status == "ok"]
    assert len(won) == 1
    assert won[0].tags["device"] == "s1"
    assert won[0].tags["stage"] == "failover"


def test_events_stamped_with_the_trace(faulted):
    space, obs = faulted
    (trace_id,) = obs.tracer.traces()
    for event_type in (SwapOutEvent, SwapRetryEvent, SwapFailoverEvent):
        event = space.bus.last(event_type)
        assert event is not None, event_type.__name__
        assert event.trace_id == trace_id, event_type.__name__


def test_retry_attempts_histogram(faulted):
    _, obs = faulted
    histogram = obs.metrics.get("swap.retry.attempts")
    # the exhausted s0 operation observed 3 attempts; s1 took 1
    assert histogram.count == 2
    assert histogram.sum == 4


def test_prometheus_snapshot_of_the_incident(faulted):
    _, obs = faulted
    obs.refresh()
    samples = parse_prometheus(obs.prometheus())
    assert samples[("repro_swap_retry_count_total", "")] == 2.0
    assert samples[("repro_resilience_failover_count_total", "")] == 1.0
    buckets = [
        (labels, value)
        for (name, labels), value in samples.items()
        if name == "repro_swap_out_latency_s_bucket"
    ]
    assert buckets and any(value == 1.0 for _, value in buckets)


def test_journal_spans_bracket_the_shipment(faulted):
    _, obs = faulted
    journal = [s for s in obs.tracer.spans() if s.name == "swap.out.journal"]
    assert [s.tags["op"] for s in journal] == ["begin", "commit"]


def test_format_report_tells_the_story(faulted):
    _, obs = faulted
    report = obs.format_report()
    assert "retry.backoff" in report
    assert "swap.out.store" in report
