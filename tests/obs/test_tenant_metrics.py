"""Per-tenant metric labels in the obs refresh: mirrored, not doubled."""

from __future__ import annotations

import json

from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.fleet import TenantRegistry, TenantSpec
from repro.obs.export import check_dump
from tests.helpers import build_chain, chain_values


def make_world(tenant_id="t-a"):
    stores = [
        XmlStoreDevice(f"obs-store-{i}", capacity=64 << 10) for i in range(2)
    ]
    space = Space(f"obs-{tenant_id}", heap_capacity=1 << 20)
    for store in stores:
        space.manager.add_store(store)
    registry = TenantRegistry(stores)
    registry.register(
        TenantSpec(
            tenant_id=tenant_id,
            heap_budget_bytes=1 << 20,
            store_quota_bytes=64 << 10,
            guaranteed_share=0.5,
        ),
        space.manager,
    )
    return space, registry


def churn(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    space.swap_out(1)
    space.swap_out(2)
    chain_values(handle)
    return handle


def test_tenant_series_mirror_global_swap_counters():
    space, _registry = make_world()
    obs = space.manager.enable_observability()
    churn(space)
    obs.refresh()
    snapshot = obs.metrics.snapshot()
    labeled = {
        name: entry
        for name, entry in snapshot.items()
        if name.startswith("tenant.t-a.")
    }
    assert labeled, "expected tenant.t-a.* series after refresh"
    for name, entry in labeled.items():
        global_name = name.replace("tenant.t-a.", "", 1)
        assert global_name.startswith("swap.")
        assert entry["value"] == snapshot[global_name]["value"], name


def test_repeated_refresh_never_double_counts():
    space, _registry = make_world()
    obs = space.manager.enable_observability()
    churn(space)
    obs.refresh()
    first = obs.metrics.snapshot()["tenant.t-a.swap.out.count"]["value"]
    obs.refresh()
    obs.refresh()
    again = obs.metrics.snapshot()["tenant.t-a.swap.out.count"]["value"]
    assert again == first == space.manager.stats.swap_outs


def test_fleet_and_tenant_gauges_present_with_tenant_bound():
    space, registry = make_world()
    obs = space.manager.enable_observability()
    churn(space)
    space.swap_out(3)
    obs.refresh()
    snapshot = obs.metrics.snapshot()
    tenant = space.manager.tenant
    assert snapshot["tenant.store.bytes"]["value"] == tenant.store_bytes()
    assert snapshot["tenant.quota.bytes"]["value"] == 64 << 10
    assert (
        snapshot["fleet.capacity.bytes"]["value"]
        == registry.capacity_bytes()
    )
    assert snapshot["fleet.used.bytes"]["value"] == registry.used_bytes()
    assert snapshot["fleet.under_pressure"]["value"] in (0, 1)


def test_no_tenant_series_without_a_tenant(space):
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(1)
    obs.refresh()
    names = set(obs.metrics.snapshot())
    # the flat ManagerStats counters (fleet.admission.denials,
    # tenant.pressure.bumps, ...) are always exported and stay zero;
    # the *labeled* series and the registry-backed gauges only exist
    # once a tenant is bound
    flat_stats = {
        "tenant.pressure.bumps",
        "fleet.admission.denials",
        "fleet.reclaim.evictions",
        "fleet.reclaim.bytes",
        "fleet.config.updates",
    }
    loose = {
        name
        for name in names
        if name.startswith(("tenant.", "fleet.")) and name not in flat_stats
    }
    assert loose == set()


def test_labeled_dump_passes_schema_check(tmp_path):
    space, _registry = make_world()
    space.manager.enable_observability()
    churn(space)
    path = tmp_path / "tenant_obs.jsonl"
    space.manager.obs.export_jsonl(str(path), label="tenant-metrics")
    records = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    assert check_dump(records) == []
