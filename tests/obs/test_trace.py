"""Tracer and span mechanics (simulated-clock timestamps, nesting)."""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.obs.trace import NULL_SPAN, Tracer, span_tree


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


def test_root_span_opens_new_trace(tracer):
    with tracer.span("swap.out", sid=2) as span:
        assert span.trace_id == "t-000001"
        assert span.parent_id is None
        assert not span.finished
    assert span.finished
    assert tracer.spans() == [span]


def test_nested_spans_share_trace_id(tracer):
    with tracer.span("swap.out") as root:
        with tracer.span("swap.out.encode") as child:
            assert child.trace_id == root.trace_id
            assert child.parent_id == root.span_id
    assert root.trace_id in tracer.traces()
    assert len(tracer.traces()[root.trace_id]) == 2


def test_sequential_roots_get_distinct_traces(tracer):
    with tracer.span("swap.out"):
        pass
    with tracer.span("swap.in"):
        pass
    assert list(tracer.traces()) == ["t-000001", "t-000002"]


def test_span_ids_are_deterministic(clock):
    def run(tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        return [(s.span_id, s.trace_id) for s in tracer.spans()]

    assert run(Tracer(SimulatedClock())) == run(Tracer(SimulatedClock()))


def test_simulated_duration(clock, tracer):
    with tracer.span("op") as span:
        clock.advance(1.5)
    assert span.duration_s == pytest.approx(1.5)
    assert span.start_s == 0.0
    assert span.end_s == pytest.approx(1.5)


def test_wall_duration_recorded(tracer):
    with tracer.span("op") as span:
        pass
    assert span.wall_s >= 0.0


def test_exception_marks_error_and_propagates(tracer):
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("op"):
            raise ValueError("boom")
    span = tracer.spans()[0]
    assert span.status == "error"
    assert "boom" in span.error


def test_explicit_fail(tracer):
    with tracer.span("op") as span:
        span.fail("injected: store failed")
    assert span.status == "error"
    assert span.error.startswith("injected")


def test_set_tag_chains(tracer):
    with tracer.span("op") as span:
        span.set_tag("tier", "full").set_tag("sid", 2)
    assert span.tags == {"tier": "full", "sid": 2}


def test_finish_is_idempotent(tracer):
    span = tracer.span("op")
    span.finish()
    end = span.end_s
    span.finish()
    assert span.end_s == end
    assert len(tracer.spans()) == 1


def test_record_span_attaches_to_current(clock, tracer):
    with tracer.span("swap.out") as root:
        tracer.record_span(
            "link.transfer", start_s=0.0, end_s=0.25, nbytes=100
        )
    spans = {s.name: s for s in tracer.spans()}
    link = spans["link.transfer"]
    assert link.parent_id == root.span_id
    assert link.trace_id == root.trace_id
    assert link.duration_s == pytest.approx(0.25)
    assert link.tags["nbytes"] == 100


def test_record_span_without_parent_is_own_trace(tracer):
    span = tracer.record_span("orphan", start_s=0.0, end_s=1.0)
    assert span.parent_id is None
    assert span.trace_id == "t-000001"


def test_current_context(tracer):
    assert tracer.current_context() is None
    with tracer.span("swap.out") as root:
        assert tracer.current_context() == (root.trace_id, root.span_id)
        with tracer.span("child") as child:
            assert tracer.current_context()[1] == child.span_id
    assert tracer.current_context() is None


def test_bounded_buffer_counts_drops(clock):
    tracer = Tracer(clock, max_spans=3)
    for index in range(5):
        with tracer.span(f"op{index}"):
            pass
    assert len(tracer.spans()) == 3
    assert tracer.dropped_spans == 2


def test_observers_see_finished_spans(tracer):
    seen = []
    tracer.add_observer(seen.append)
    with tracer.span("op"):
        pass
    assert [s.name for s in seen] == ["op"]


def test_observer_errors_never_propagate(tracer):
    def bad(_span):
        raise RuntimeError("observer bug")

    tracer.add_observer(bad)
    with tracer.span("op"):
        pass  # must not raise
    assert len(tracer.spans()) == 1


def test_clear(tracer):
    with tracer.span("op"):
        pass
    tracer.clear()
    assert tracer.spans() == []
    assert tracer.dropped_spans == 0


def test_null_span_is_inert():
    with NULL_SPAN as span:
        span.set_tag("x", 1).fail("nope").finish()
    # re-entrant: the shared instance can nest
    with NULL_SPAN:
        with NULL_SPAN:
            pass


def test_null_span_never_swallows():
    with pytest.raises(KeyError):
        with NULL_SPAN:
            raise KeyError("through")


def test_span_tree_orders_children(clock, tracer):
    with tracer.span("root"):
        with tracer.span("first"):
            clock.advance(0.1)
        with tracer.span("second"):
            pass
    rows = span_tree(tracer.spans())
    assert [(s.name, depth) for s, depth in rows] == [
        ("root", 0),
        ("first", 1),
        ("second", 1),
    ]


def test_span_tree_handles_evicted_parents(clock):
    tracer = Tracer(clock, max_spans=2)
    with tracer.span("root"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    # root + a evicted "a"? buffer keeps the last 2 finished: b, root
    kept = tracer.spans()
    rows = span_tree(kept)
    assert {s.name for s, _ in rows} == {s.name for s in kept}
