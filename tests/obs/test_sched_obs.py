"""The ``sched.*`` meter family: async-scheduler state in the registry."""

from __future__ import annotations

from repro.comm.transport import bluetooth_link
from repro.devices.store import XmlStoreDevice
from tests.helpers import build_chain, chain_values, make_space


def _sched_space(stores=3):
    space = make_space("schedobs", with_store=False)
    for index in range(stores):
        link = bluetooth_link(clock=space.clock, name=f"bt{index}")
        space.manager.add_store(
            XmlStoreDevice(f"s{index}", capacity=1 << 20, link=link)
        )
    handle = space.ingest(build_chain(30), cluster_size=5, root_name="h")
    for sid, cluster in sorted(space._clusters.items()):
        if cluster.swappable() and cluster.oids:
            space.manager.swap_out(sid)
    return space, handle


def test_refresh_publishes_the_sched_meter_family():
    space, handle = _sched_space()
    obs = space.manager.enable_observability()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    chain_values(handle)
    sched.drain()
    obs.refresh()

    metrics = obs.metrics
    assert metrics.counter("sched.ops.issued").value == sched.stats.ops_issued
    assert (
        metrics.counter("sched.fetch.demand").value
        == sched.stats.demand_fetches
    )
    assert (
        metrics.counter("sched.prefetch.issued").value
        == sched.stats.prefetch_issued
    )
    assert (
        metrics.counter("sched.prefetch.hits").value
        == sched.stats.prefetch_hits
    )
    assert (
        metrics.counter("sched.drops.stale").value == sched.stats.stale_drops
    )
    assert metrics.counter("sched.drops.stale").value > 0
    assert (
        metrics.counter("sched.prefetch.preempted").value
        == sched.stats.prefetch_preempted
    )
    assert (
        metrics.counter("sched.prefetch.demoted").value
        == sched.stats.prefetch_demoted
    )
    assert metrics.gauge("sched.stall.demand_s").value == (
        sched.stats.demand_stall_s
    )
    assert metrics.gauge("sched.stall.backpressure_s").value == (
        sched.stats.backpressure_stall_s
    )
    assert 0.0 <= metrics.gauge("sched.overlap.ratio").value <= 1.0
    assert metrics.gauge("sched.queue.depth").value == len(sched.queue)
    assert (
        metrics.counter("sched.queue.max_depth").value
        == sched.stats.max_queue_depth
    )


def test_sched_meters_absent_without_the_scheduler():
    space, handle = _sched_space()
    obs = space.manager.enable_observability()
    chain_values(handle)
    obs.refresh()
    assert "sched.ops.issued" not in obs.metrics.snapshot()


def test_inflight_gauge_tracks_buffered_speculation():
    space, handle = _sched_space()
    obs = space.manager.enable_observability()
    sched = space.manager.enable_async_scheduler(channels=3, prefetch=True)
    _ = handle.get_value()  # one fault: speculation buffers behind it
    obs.refresh()
    assert (
        obs.metrics.gauge("sched.inflight.fetches").value
        == sched.in_flight_fetches()
    )
    assert obs.metrics.gauge("sched.inflight.fetches").value > 0
    sched.on_pressure(rung=1)  # shed everything
    obs.refresh()
    assert obs.metrics.gauge("sched.inflight.fetches").value == 0
    assert (
        obs.metrics.counter("sched.prefetch.cancelled").value
        == sched.stats.prefetch_cancelled
    )
