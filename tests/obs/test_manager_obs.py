"""Observability wired through the manager: spans, metrics, lifecycle."""

from __future__ import annotations

import pytest

from repro.comm.transport import bluetooth_link
from repro.devices.store import XmlStoreDevice
from repro.obs import parse_prometheus, span_tree
from repro.obs.runtime import ObsConfig
from tests.helpers import build_chain, chain_values, make_space


def _linked_space(name="obs", stores=1, capacity=1 << 20):
    """A space whose stores sit behind real simulated Bluetooth links."""
    space = make_space(name, with_store=False)
    for index in range(stores):
        link = bluetooth_link(clock=space.clock, name=f"bt{index}")
        space.manager.add_store(
            XmlStoreDevice(f"s{index}", capacity=capacity, link=link)
        )
    return space


def _trees(obs):
    return {
        trace_id: [s.name for s, _ in span_tree(spans)]
        for trace_id, spans in obs.tracer.traces().items()
    }


# -- lifecycle ---------------------------------------------------------------


def test_disabled_by_default(space):
    assert space.manager.obs is None


def test_enable_returns_and_installs(space):
    obs = space.manager.enable_observability()
    assert space.manager.obs is obs
    space.manager.disable_observability()
    assert space.manager.obs is None


def test_enable_twice_replaces_state(space):
    first = space.manager.enable_observability()
    second = space.manager.enable_observability()
    assert second is not first
    assert space.manager.obs is second


def test_disable_stops_stamping_and_spans(space):
    space.manager.enable_observability()
    space.manager.disable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert space.bus.last(type(space.bus.history[-1])).trace_id is None


def test_disabled_pipeline_emits_no_spans(space):
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)  # must not raise with obs None
    obs = space.manager.enable_observability()
    assert obs.tracer.spans() == []


# -- swap-out / swap-in span trees ------------------------------------------


def test_swap_out_trace_shape():
    space = _linked_space()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    trees = _trees(obs)
    assert len(trees) == 1
    names = next(iter(trees.values()))
    assert names[0] == "swap.out"
    assert "swap.out.encode" in names
    assert "swap.out.store" in names
    assert "link.transfer" in names


def test_swap_in_trace_shape():
    space = _linked_space()
    obs = space.manager.enable_observability()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    chain_values(handle)  # forces the reload
    trees = _trees(obs)
    swap_in = [names for names in trees.values() if names[0] == "swap.in"]
    assert swap_in, f"no swap.in trace in {trees}"
    names = swap_in[0]
    assert "swap.in.fetch" in names
    assert "swap.in.verify" in names
    assert "swap.in.decode" in names


def test_events_carry_the_trace_id():
    space = _linked_space()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    from repro.events import SwapOutEvent

    event = space.bus.last(SwapOutEvent)
    (trace_id,) = obs.tracer.traces().keys()
    assert event.trace_id == trace_id
    assert event.span_id is not None


def test_simulated_latency_attributed():
    space = _linked_space()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    before = space.clock.now()
    space.swap_out(2)
    elapsed = space.clock.now() - before
    root = [s for s in obs.tracer.spans() if s.name == "swap.out"][0]
    assert root.duration_s == pytest.approx(elapsed)
    assert elapsed > 0  # the Bluetooth link charged real simulated time


def test_link_transfer_spans_carry_bytes():
    space = _linked_space()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    link_spans = [s for s in obs.tracer.spans() if s.name == "link.transfer"]
    assert link_spans
    assert all(s.tags["nbytes"] > 0 for s in link_spans)
    assert obs.metrics.counter("link.bytes.total").value == sum(
        s.tags["nbytes"] for s in link_spans
    )


def test_trace_link_transfers_can_be_disabled():
    space = _linked_space()
    obs = space.manager.enable_observability(
        ObsConfig(trace_link_transfers=False)
    )
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert not [s for s in obs.tracer.spans() if s.name == "link.transfer"]
    assert obs.metrics.counter("link.transfer.count").value > 0


# -- fast-path tiers ---------------------------------------------------------


def test_fastpath_tiers_tagged():
    space = _linked_space()
    space.manager.enable_fastpath()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.swap_in(2)  # reload without touching: cluster stays clean
    space.swap_out(2)  # metadata-only no-op
    roots = [s for s in obs.tracer.spans() if s.name == "swap.out"]
    assert [s.tags["tier"] for s in roots] == ["full", "noop"]
    probe = [s for s in obs.tracer.spans() if s.name == "fastpath.probe"]
    assert probe and probe[0].tags["hit"] is True


def test_swap_in_cache_hit_tagged():
    space = _linked_space()
    space.manager.enable_fastpath()
    obs = space.manager.enable_observability()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    chain_values(handle)
    root = [s for s in obs.tracer.spans() if s.name == "swap.in"][0]
    assert root.tags["source"] == "cache"
    # served locally: no fetch span
    assert not [s for s in obs.tracer.spans() if s.name == "swap.in.fetch"]


# -- metrics -----------------------------------------------------------------


def test_latency_histograms_populated():
    space = _linked_space()
    obs = space.manager.enable_observability()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    chain_values(handle)
    assert obs.metrics.get("swap.out.latency_s").count == 1
    assert obs.metrics.get("swap.in.latency_s").count == 1
    assert obs.metrics.get("swap.payload.bytes").count == 1


def test_refresh_absorbs_manager_counters():
    space = _linked_space()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    obs.refresh()
    assert obs.metrics.counter("swap.out.count").value == 1
    assert (
        obs.metrics.counter("swap.out.bytes").value
        == space.manager.stats.bytes_shipped
    )
    assert obs.metrics.gauge("heap.used.bytes").value == space.heap.used


def test_event_counters():
    space = _linked_space()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert obs.metrics.counter("event.swap.out.count").value == 1


def test_prometheus_export_parses_with_latency_buckets():
    space = _linked_space()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    samples = parse_prometheus(obs.prometheus())
    buckets = [
        labels
        for (name, labels) in samples
        if name == "repro_swap_out_latency_s_bucket"
    ]
    assert any('le="+Inf"' in labels for labels in buckets)
    assert samples[("repro_swap_out_latency_s_count", "")] == 1.0
    assert samples[("repro_swap_out_count_total", "")] == 1.0


def test_snapshot_and_report():
    space = _linked_space()
    obs = space.manager.enable_observability()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    chain_values(handle)
    snap = obs.snapshot()
    assert snap["traces"] == 2
    assert "encode" in snap["phases"]
    report = obs.format_report()
    assert "swap.out" in report and "phase" in report


# -- scrub span --------------------------------------------------------------


def test_scrub_pass_traced():
    space = _linked_space(stores=2)
    space.manager.enable_resilience()
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    space.manager.resilience.scrubber.tick(force=True)
    scrub = [s for s in obs.tracer.spans() if s.name == "scrub.pass"]
    assert len(scrub) == 1
    assert scrub[0].parent_id is None  # its own trace, not a swap's child
    assert "under_replicated" in scrub[0].tags


# -- store instrumentation lifecycle ----------------------------------------


def test_stores_added_later_are_hooked():
    space = _linked_space(stores=0)
    obs = space.manager.enable_observability()
    link = bluetooth_link(clock=space.clock, name="late")
    space.manager.add_store(XmlStoreDevice("late-s", capacity=1 << 20, link=link))
    assert link.on_transfer is not None
    space.manager.disable_observability()
    assert link.on_transfer is None


def test_flaky_wrapped_store_still_hooked():
    from repro.faults.flaky import FaultInjector, FlakyLink, FlakyStore
    from repro.faults.plan import FaultPlan

    space = _linked_space(stores=0)
    injector = FaultInjector(FaultPlan(seed=1), clock=space.clock)
    link = bluetooth_link(clock=space.clock, name="bt0")
    inner = XmlStoreDevice("s0", capacity=1 << 20, link=FlakyLink(link, injector))
    space.manager.add_store(FlakyStore(inner, injector))
    obs = space.manager.enable_observability()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert [s for s in obs.tracer.spans() if s.name == "link.transfer"]
