"""The profiling harness: spans fold into per-phase aggregates."""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.obs.profile import PHASE_OF, PhaseProfiler, format_breakdown
from repro.obs.trace import Tracer


@pytest.fixture
def wired():
    clock = SimulatedClock()
    tracer = Tracer(clock)
    profiler = PhaseProfiler()
    tracer.add_observer(profiler.record)
    return clock, tracer, profiler


def test_phase_attribution(wired):
    clock, tracer, profiler = wired
    with tracer.span("swap.out"):
        with tracer.span("swap.out.encode"):
            pass
        with tracer.span("swap.out.store", device="s0"):
            clock.advance(0.5)
    breakdown = profiler.breakdown()
    assert breakdown["encode"]["count"] == 1
    assert breakdown["store"]["sim_s"] == pytest.approx(0.5)
    # container spans are not phases: no double counting
    assert "swap.out" not in breakdown


def test_error_spans_counted(wired):
    _, tracer, profiler = wired
    with pytest.raises(RuntimeError):
        with tracer.span("swap.in.fetch"):
            raise RuntimeError("injected")
    assert profiler.breakdown()["fetch"]["errors"] == 1


def test_recorded_spans_profiled(wired):
    _, tracer, profiler = wired
    tracer.record_span("retry.backoff", start_s=1.0, end_s=1.4)
    assert profiler.breakdown()["backoff"]["sim_s"] == pytest.approx(0.4)


def test_probe_counts_as_store_phase(wired):
    _, tracer, profiler = wired
    with tracer.span("fastpath.probe", device="s0"):
        pass
    assert profiler.breakdown()["store"]["count"] == 1


def test_every_mapped_span_has_a_phase():
    # the mapping stays total over the span names the pipeline emits
    for name in (
        "swap.out.encode", "swap.out.store", "swap.out.journal",
        "swap.in.fetch", "swap.in.verify", "swap.in.decode",
        "link.transfer", "retry.backoff", "fastpath.probe",
    ):
        assert name in PHASE_OF


def test_format_breakdown_tabulates(wired):
    clock, tracer, profiler = wired
    with tracer.span("link.transfer"):
        clock.advance(0.25)
    text = format_breakdown(profiler.breakdown())
    assert "link" in text
    assert "0.2500" in text


def test_clear(wired):
    _, tracer, profiler = wired
    with tracer.span("swap.out.encode"):
        pass
    profiler.clear()
    assert profiler.breakdown() == {}
