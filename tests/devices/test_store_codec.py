"""Binary payloads at rest: every store transcodes, verifies, accounts."""

import pytest

from repro.comm.transport import compress_body
from repro.devices import InMemoryStore
from repro.devices.store import (
    CORRUPT_BINARY_TEXT,
    UNREADABLE_DIGEST,
    FileStore,
    XmlStoreDevice,
)
from repro.wire.binary import encode_cluster_binary, encode_delta_binary
from repro.wire.canonical import digest_of_canonical
from repro.wire.delta import encode_cluster_delta
from tests.helpers import Node


def _oid_of(obj):
    return obj._test_oid


def _members(n=3):
    members = {}
    previous = None
    for oid in range(1, n + 1):
        node = Node(oid)
        object.__setattr__(node, "_test_oid", oid)
        if previous is not None:
            previous.next = node
        members[oid] = node
        previous = node
    return members


def _outbound():
    collected = []

    def index_of(proxy):
        if proxy not in collected:
            collected.append(proxy)
        return collected.index(proxy)

    return index_of


def _binary(members, epoch=1):
    return encode_cluster_binary(
        sid=1,
        space="t",
        epoch=epoch,
        objects=members,
        oid_of=_oid_of,
        outbound_index_of=_outbound(),
    )


def _delta_text(members, dirty, base_epoch, epoch):
    text, _ = encode_cluster_delta(
        sid=1,
        space="t",
        base_epoch=base_epoch,
        epoch=epoch,
        objects={oid: members[oid] for oid in dirty},
        dead_oids=set(),
        member_oids=set(members),
        oid_of=_oid_of,
        outbound_index_of=_outbound(),
    )
    return text


@pytest.fixture(params=["memory", "xml", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryStore("s")
    if request.param == "xml":
        return XmlStoreDevice("s", capacity=1 << 20)
    return FileStore(tmp_path, device_id="s")


# -- round trips ---------------------------------------------------------------


def test_binary_at_rest_fetches_canonical_text(store):
    text, digest, payload = _binary(_members())
    store.store_stream("k", [payload], codec="binary")
    assert store.fetch("k") == text
    assert store.digest("k") == digest
    assert digest_of_canonical(store.fetch("k")) == digest


def test_fetch_wire_returns_the_binary_frames(store):
    _text, _digest, payload = _binary(_members())
    store.store_stream("k", [payload], codec="binary")
    raw, codec = store.fetch_wire("k")
    assert raw == payload
    assert codec == "binary"


def test_fetch_wire_of_text_entry_reports_no_codec(store):
    text, _digest, _payload = _binary(_members())
    store.store("k", text)
    raw, codec = store.fetch_wire("k")
    assert raw.decode("utf-8") == text
    assert codec is None


def test_plain_store_replaces_binary_entry(store):
    text, _digest, payload = _binary(_members())
    store.store_stream("k", [payload], codec="binary")
    replacement = "<swap-cluster/>"
    store.store("k", replacement)
    assert store.fetch("k") == replacement
    raw, codec = store.fetch_wire("k")
    assert codec is None


def test_drop_and_contains_cover_binary_entries(store):
    _text, _digest, payload = _binary(_members())
    store.store_stream("k", [payload], codec="binary")
    assert store.contains("k")
    assert "k" in store.keys()
    store.drop("k")
    assert not store.contains("k")


def test_compressed_binary_frames_roundtrip(store):
    if isinstance(store, (InMemoryStore, FileStore)):
        pytest.skip("compression negotiation is XmlStoreDevice-only")
    text, digest, payload = _binary(_members())
    data = compress_body(payload, "zlib")
    store.store_stream("k", [data], compression="zlib", codec="binary")
    assert store.used == len(data)  # capacity charges the wire bytes
    assert store.fetch("k") == text
    raw, codec = store.fetch_wire("k")
    assert raw == payload and codec == "binary"


# -- integrity -----------------------------------------------------------------


def test_rotted_binary_frames_surface_as_corrupt_text(store):
    _text, digest, payload = _binary(_members())
    store.store_stream("k", [payload], codec="binary")
    mangled = bytearray(payload)
    mangled[len(mangled) // 2] ^= 0xFF
    if isinstance(store, InMemoryStore):
        store._wire["k"] = bytes(mangled)
    elif isinstance(store, XmlStoreDevice):
        store._data["k"] = (bytes(mangled), None)
    else:
        store._paths["k"].write_bytes(bytes(mangled))
    assert store.fetch("k") == CORRUPT_BINARY_TEXT
    assert store.digest("k") in (UNREADABLE_DIGEST, digest_of_canonical(CORRUPT_BINARY_TEXT))
    assert store.digest("k") != digest


# -- deltas against binary bases -----------------------------------------------


@pytest.fixture(params=["memory", "xml"])
def delta_store(request):
    if request.param == "memory":
        return InMemoryStore("s")
    return XmlStoreDevice("s", capacity=1 << 20)


def test_delta_applies_against_a_binary_base(delta_store):
    members = _members()
    _text, _digest, payload = _binary(members, epoch=1)
    delta_store.store_stream("base", [payload], codec="binary")
    members[2].value = 99
    delta = _delta_text(members, dirty={2}, base_epoch=1, epoch=2)
    delta_store.store_delta("tip", 1, [delta.encode("utf-8")], base_key="base")
    assert 'value="99"' in delta_store.fetch("tip") or "99" in delta_store.fetch("tip")


def test_binary_framed_delta_lands_as_xml_at_rest(delta_store):
    members = _members()
    _text, _digest, payload = _binary(members, epoch=1)
    delta_store.store_stream("base", [payload], codec="binary")
    members[2].value = 99
    delta = _delta_text(members, dirty={2}, base_epoch=1, epoch=2)
    wrapped = encode_delta_binary(delta)
    delta_store.store_delta("tip", 1, [wrapped], base_key="base", codec="binary")
    resolved = delta_store.fetch("tip")
    assert "99" in resolved
    # the stored delta is canonical XML, not wire frames
    if isinstance(delta_store, InMemoryStore):
        assert delta_store._deltas["tip"][0] == delta
    else:
        assert delta_store._deltas["tip"][0] == delta.encode("utf-8")


def test_used_by_prefix_counts_binary_entries():
    store = InMemoryStore("s")
    _text, _digest, payload = _binary(_members())
    store.store_stream("space-a/sc-1/e1", [payload], codec="binary")
    assert store.used_by_prefix("space-a/") == len(payload)
    assert store.used_by_prefix("space-b/") == 0
    assert len(store) == 1
