"""Store-side streaming: batched receive, compression, key probes."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import chunk_text, compress_payload, bluetooth_link
from repro.devices.store import (
    CONTROL_MESSAGE_BYTES,
    FileStore,
    InMemoryStore,
    XmlStoreDevice,
)
from repro.errors import StoreFullError, TransportError

PAYLOAD = "<swap-cluster count='3'>" + "<object/>" * 200 + "</swap-cluster>"


def _device(clock=None, capacity=1 << 20):
    link = bluetooth_link(clock) if clock is not None else None
    return XmlStoreDevice("nearby", capacity=capacity, link=link)


# -- store_stream ---------------------------------------------------------


def test_store_stream_plain_frames_roundtrip():
    device = _device()
    device.store_stream("k", chunk_text(PAYLOAD, 64))
    assert device.fetch("k") == PAYLOAD
    assert device.used == len(PAYLOAD.encode("utf-8"))


def test_store_stream_batches_on_the_link():
    clock = SimulatedClock()
    device = _device(clock)
    frames = chunk_text(PAYLOAD, 64)
    device.store_stream("k", frames)
    expected = device.link.batch_transfer_time([len(f) for f in frames])
    assert clock.now() == pytest.approx(expected)
    assert device.link.stats.transfers == 1
    assert device.link.stats.frames == len(frames)


def test_store_stream_compressed_accounts_compressed_size():
    device = _device()
    data = compress_payload(PAYLOAD, "zlib")
    frames = [data[i : i + 64] for i in range(0, len(data), 64)]
    device.store_stream("k", frames, compression="zlib")
    assert device.used == len(data)  # stored bytes, not decoded bytes
    assert device.fetch("k") == PAYLOAD  # fetch decompresses


def test_store_stream_compression_stretches_capacity():
    text = "a" * 10_000  # very compressible
    data = compress_payload(text, "zlib")
    device = _device(capacity=len(data) + 10)
    with pytest.raises(StoreFullError):
        device.store("raw", text)
    device.store_stream("k", [data], compression="zlib")
    assert device.fetch("k") == text


def test_store_stream_rejects_unsupported_codec():
    device = _device()
    with pytest.raises(TransportError):
        device.store_stream("k", [b"x"], compression="lzma")
    assert device.keys() == []


def test_device_advertises_codecs():
    assert "zlib" in _device().supported_compressions


# -- key probes -----------------------------------------------------------


def test_contains_is_a_control_round_trip():
    clock = SimulatedClock()
    device = _device(clock)
    device.store("k", "<doc/>")
    before = clock.now()
    assert device.contains("k")
    assert not device.contains("other")
    per_probe = device.link.transfer_time(CONTROL_MESSAGE_BYTES)
    assert clock.now() - before == pytest.approx(2 * per_probe)


def test_inmemory_store_contains():
    store = InMemoryStore("m")
    store.store("k", "<doc/>")
    assert store.contains("k")
    assert not store.contains("other")
    store.drop("k")
    assert not store.contains("k")


def test_file_store_contains(tmp_path):
    store = FileStore(tmp_path)
    store.store("k", "<doc/>")
    assert store.contains("k")
    assert not store.contains("other")
    store.drop("k")
    assert not store.contains("k")
