"""Peer stores: a constrained device lending heap to a neighbour."""

import pytest

from repro.devices.peer import PeerStore
from repro.errors import NoSwapDeviceError, StoreFullError, UnknownKeyError
from tests.helpers import build_chain, chain_values, make_space


def test_guest_data_charges_host_heap():
    host = make_space("host", heap_capacity=10_000, with_store=False)
    peer = PeerStore(host, reserve_fraction=0.5)
    before = host.heap.used
    peer.store("k", "x" * 1000)
    assert host.heap.used == before + 1000
    peer.drop("k")
    assert host.heap.used == before


def test_reserve_fraction_caps_guests():
    host = make_space("host", heap_capacity=10_000, with_store=False)
    peer = PeerStore(host, reserve_fraction=0.1)  # 1000 bytes
    peer.store("a", "x" * 900)
    with pytest.raises(StoreFullError):
        peer.store("b", "y" * 200)
    assert not peer.has_room(200)


def test_host_working_set_shrinks_generosity():
    host = make_space("host", heap_capacity=4_000, with_store=False)
    host.manager.auto_swap = False
    peer = PeerStore(host, reserve_fraction=1.0)
    host.ingest(build_chain(80), cluster_size=80, root_name="mine")  # ~3200B
    assert not peer.has_room(2000)  # host heap simply has no room
    with pytest.raises(StoreFullError):
        peer.store("k", "x" * 2000)


def test_overwrite_same_key_reaccounts():
    host = make_space("host", heap_capacity=10_000, with_store=False)
    peer = PeerStore(host, reserve_fraction=0.5)
    peer.store("k", "x" * 1000)
    peer.store("k", "y" * 200)
    assert peer.guest_bytes == 200
    assert peer.fetch("k") == "y" * 200


def test_unknown_key():
    host = make_space("host", with_store=False)
    peer = PeerStore(host)
    with pytest.raises(UnknownKeyError):
        peer.fetch("ghost")
    peer.drop("ghost")  # idempotent


def test_two_devices_swap_into_each_other():
    alpha = make_space("alpha", heap_capacity=6_000, with_store=False)
    beta = make_space("beta", heap_capacity=6_000, with_store=False)
    alpha.manager.add_store(PeerStore(beta, reserve_fraction=0.5))
    beta.manager.add_store(PeerStore(alpha, reserve_fraction=0.5))

    alpha_handle = alpha.ingest(build_chain(40), cluster_size=10, root_name="a")
    beta_handle = beta.ingest(build_chain(40), cluster_size=10, root_name="b")

    alpha.swap_out(2)  # lands in beta's heap
    beta.swap_out(3)  # lands in alpha's heap
    assert chain_values(alpha_handle) == list(range(40))
    assert chain_values(beta_handle) == list(range(40))
    alpha.verify_integrity()
    beta.verify_integrity()


def test_peer_pressure_propagates():
    """When the host itself is squeezed, it stops admitting guests —
    the guest's swap fails over to whoever else is around."""
    host = make_space("host", heap_capacity=3_000, with_store=False)
    host.manager.auto_swap = False
    guest = make_space("guest", heap_capacity=3_000, with_store=False)
    peer = PeerStore(host, reserve_fraction=1.0)
    guest.manager.add_store(peer)

    guest.ingest(build_chain(60), cluster_size=30, root_name="g")
    host.ingest(build_chain(70), cluster_size=70, root_name="mine")  # fills host
    with pytest.raises(NoSwapDeviceError):
        guest.swap_out(1)
    # a roomier device appears; life goes on
    from repro.devices import InMemoryStore

    guest.manager.add_store(InMemoryStore("pc"))
    guest.swap_out(1)
    assert chain_values(guest.get_root("g")) == list(range(60))


def test_invalid_reserve_fraction():
    with pytest.raises(ValueError):
        PeerStore(make_space(with_store=False), reserve_fraction=0)
