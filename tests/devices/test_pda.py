"""The full MobileDevice wiring."""

from repro.devices import IPAQ_3360, InMemoryStore, MobileDevice
from repro.devices.profiles import ALL_PROFILES, WRIST_DEVICE
from tests.helpers import build_chain, chain_values


def test_profiles_sane():
    for profile in ALL_PROFILES:
        assert profile.heap_bytes > 0
        assert profile.link_bps > 0
        link = profile.make_link()
        assert link.bandwidth_bps == profile.link_bps


def test_ipaq_profile_matches_paper_link():
    assert IPAQ_3360.link_bps == 700_000


def test_device_space_sized_from_profile():
    device = MobileDevice("pda", WRIST_DEVICE)
    assert device.space.heap.capacity == WRIST_DEVICE.heap_bytes


def test_discovery_feeds_manager():
    device = MobileDevice("pda")
    store = InMemoryStore("pc")
    device.discover_store(store)
    assert store in device.manager.available_stores()
    device.lose_store("pc")
    assert store not in device.manager.available_stores()


def test_default_policy_swaps_under_pressure():
    device = MobileDevice("pda", WRIST_DEVICE, high_watermark=0.5, low_watermark=0.3)
    device.discover_store(InMemoryStore("pc"))
    space = device.space
    # fill past the high watermark (wrist device: 256 KB heap); the
    # machine policy must relieve pressure by swapping
    chains = 40
    for index in range(chains):
        space.ingest(
            build_chain(100), cluster_size=100, root_name=f"chain-{index}"
        )
    assert device.manager.stats.swap_outs > 0
    for index in range(chains):
        assert chain_values(space.get_root(f"chain-{index}")) == list(range(100))
    space.verify_integrity()


def test_context_properties_tracked():
    device = MobileDevice("pda")
    assert "memory.ratio" in device.context
    assert "devices.in_range" in device.context
    device.discover_store(InMemoryStore("pc"))
    assert device.context.get("devices.in_range") == 1


def test_no_default_policies_option():
    device = MobileDevice("pda", load_default_policies=False)
    assert device.policy_engine.policies() == []


def test_describe():
    device = MobileDevice("pda")
    device.discover_store(InMemoryStore("pc"))
    text = device.describe()
    assert "pda" in text and "pc" in text
