"""Swapping through the full web-service stack (the paper's transfer path)."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import LoopbackLink, bluetooth_link
from repro.core.interfaces import SwapStore
from repro.devices.remote import RemoteStoreClient
from repro.devices.store import XmlStoreDevice
from repro.errors import StoreFullError, TransportError, UnknownKeyError
from tests.helpers import build_chain, chain_values, make_space


def _remote(capacity=1 << 20, clock=None):
    backing = XmlStoreDevice("room-pc", capacity=capacity)
    link = bluetooth_link(clock) if clock is not None else LoopbackLink()
    return backing, RemoteStoreClient(backing.as_endpoint(), link)


def test_conforms_to_swap_store_protocol():
    _, remote = _remote()
    assert isinstance(remote, SwapStore)
    assert remote.device_id == "room-pc"


def test_contract_roundtrip():
    backing, remote = _remote()
    remote.store("k", "<a/>")
    assert backing.keys() == ["k"]
    assert remote.fetch("k") == "<a/>"
    assert remote.has_room(100)
    remote.drop("k")
    with pytest.raises(UnknownKeyError):
        remote.fetch("k")


def test_has_room_respects_capacity():
    _, remote = _remote(capacity=100)
    assert remote.has_room(100)
    assert not remote.has_room(101)
    remote.store("k", "x" * 60)
    assert not remote.has_room(50)


def test_store_full_travels_in_band():
    _, remote = _remote(capacity=10)
    with pytest.raises(StoreFullError):
        remote.store("k", "x" * 100)


def test_full_swap_cycle_over_web_services():
    clock = SimulatedClock()
    backing, remote = _remote(clock=clock)
    space = make_space(with_store=False, clock=clock)
    space.manager.add_store(remote)
    handle = space.ingest(build_chain(30), cluster_size=10, root_name="h")
    space.swap_out(2)
    assert len(backing.keys()) == 1
    assert clock.now() > 0  # envelopes charged the Bluetooth link
    out_time = clock.now()
    assert chain_values(handle) == list(range(30))  # reload over WS too
    assert clock.now() > out_time
    space.verify_integrity()


def test_link_failure_surfaces_as_swap_error():
    from repro.errors import NoSwapDeviceError

    clock = SimulatedClock()
    backing, remote = _remote(clock=clock)
    link = remote._client._link
    space = make_space(with_store=False, clock=clock)
    space.manager.add_store(remote)
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    link.fail()
    # has_room raises TransportError -> selection skips -> no device
    with pytest.raises(NoSwapDeviceError):
        space.swap_out(1)
    link.restore()
    space.swap_out(1)
    assert chain_values(space.get_root("h")) == list(range(10))
