"""XML store devices."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import LoopbackLink, SimulatedLink
from repro.comm.webservice import WebServiceClient
from repro.devices.store import FileStore, InMemoryStore, XmlStoreDevice
from repro.errors import StoreFullError, TransportError, UnknownKeyError


def test_in_memory_contract():
    store = InMemoryStore("m")
    store.store("k", "<a/>")
    assert store.fetch("k") == "<a/>"
    store.drop("k")
    with pytest.raises(UnknownKeyError):
        store.fetch("k")
    store.drop("k")  # idempotent
    assert store.has_room(10**9)


def test_xml_store_capacity_accounting():
    store = XmlStoreDevice("d", capacity=100)
    store.store("a", "x" * 60)
    assert store.used == 60 and store.free == 40
    with pytest.raises(StoreFullError):
        store.store("b", "y" * 50)
    store.drop("a")
    assert store.used == 0


def test_xml_store_overwrite_same_key():
    store = XmlStoreDevice("d", capacity=100)
    store.store("a", "x" * 60)
    store.store("a", "y" * 80)  # replaces, net delta fits
    assert store.used == 80
    assert store.fetch("a") == "y" * 80


def test_has_room():
    store = XmlStoreDevice("d", capacity=100)
    store.store("a", "x" * 60)
    assert store.has_room(40)
    assert not store.has_room(41)


def test_link_charged_on_payloads():
    clock = SimulatedClock()
    link = SimulatedLink(8_000, latency_s=0.0, clock=clock)
    store = XmlStoreDevice("d", capacity=10_000, link=link)
    store.store("k", "x" * 1000)  # 8000 bits at 8000 bps = 1s
    assert clock.now() == pytest.approx(1.0)
    store.fetch("k")
    assert clock.now() == pytest.approx(2.0)


def test_down_link_fails_operations():
    link = SimulatedLink(1000)
    store = XmlStoreDevice("d", capacity=1000, link=link)
    store.store("k", "v")
    link.fail()
    with pytest.raises(TransportError):
        store.fetch("k")
    with pytest.raises(TransportError):
        store.has_room(10)


def test_store_as_web_service_endpoint():
    store = XmlStoreDevice("remote", capacity=10_000)
    client = WebServiceClient(store.as_endpoint(), LoopbackLink())
    client.call("store", key="k", text="<a/>")
    assert client.call("fetch", key="k") == "<a/>"
    assert client.call("keys") == ["k"]
    client.call("drop", key="k")
    with pytest.raises(UnknownKeyError):
        client.call("fetch", key="k")


def test_endpoint_store_full_travels_in_band():
    store = XmlStoreDevice("remote", capacity=10)
    client = WebServiceClient(store.as_endpoint(), LoopbackLink())
    with pytest.raises(StoreFullError):
        client.call("store", key="k", text="x" * 100)


def test_file_store_roundtrip(tmp_path):
    store = FileStore(tmp_path, device_id="flash")
    store.store("pda/sc-1/e1", "<cluster/>")
    assert (tmp_path / "pda_sc-1_e1.xml").exists()
    assert store.fetch("pda/sc-1/e1") == "<cluster/>"
    store.drop("pda/sc-1/e1")
    with pytest.raises(UnknownKeyError):
        store.fetch("pda/sc-1/e1")
    assert not (tmp_path / "pda_sc-1_e1.xml").exists()


def test_file_store_as_swap_target(tmp_path):
    from tests.helpers import build_chain, chain_values, make_space

    space = make_space(with_store=False)
    space.manager.add_store(FileStore(tmp_path))
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert len(list(tmp_path.iterdir())) == 1
    assert chain_values(handle) == list(range(10))


def test_invalid_capacity():
    with pytest.raises(ValueError):
        XmlStoreDevice("d", capacity=0)
