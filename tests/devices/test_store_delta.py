"""The store-side delta protocol: chains, resolution, divergence, drops."""

import pytest

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link, compress_payload
from repro.devices import InMemoryStore
from repro.devices.store import XmlStoreDevice
from repro.errors import (
    CodecError,
    StoreFullError,
    TransportError,
    UnknownKeyError,
)
from repro.wire.canonical import digest_of_canonical
from repro.wire.delta import encode_cluster_delta
from repro.wire.xmlcodec import encode_cluster_canonical
from tests.helpers import Node


def _oid_of(obj):
    return obj._test_oid


def _members(n=3):
    members = {}
    previous = None
    for oid in range(1, n + 1):
        node = Node(oid)
        object.__setattr__(node, "_test_oid", oid)
        if previous is not None:
            previous.next = node
        members[oid] = node
        previous = node
    return members


def _outbound():
    collected = []

    def index_of(proxy):
        if proxy not in collected:
            collected.append(proxy)
        return collected.index(proxy)

    return index_of


def _full(members, epoch):
    text, _ = encode_cluster_canonical(
        sid=1,
        space="t",
        epoch=epoch,
        objects=members,
        oid_of=_oid_of,
        outbound_index_of=_outbound(),
    )
    return text


def _delta(members, dirty, base_epoch, epoch):
    text, _ = encode_cluster_delta(
        sid=1,
        space="t",
        base_epoch=base_epoch,
        epoch=epoch,
        objects={oid: members[oid] for oid in dirty},
        dead_oids=set(),
        member_oids=set(members),
        oid_of=_oid_of,
        outbound_index_of=_outbound(),
    )
    return text


@pytest.fixture(params=["memory", "xml"])
def store(request):
    if request.param == "memory":
        return InMemoryStore("s")
    return XmlStoreDevice("s", capacity=1 << 20)


def test_delta_chain_resolves_on_fetch(store):
    members = _members()
    store.store("k/e1", _full(members, epoch=1))
    members[2].value = 20
    store.store_delta(
        "k/e2", 1, [_delta(members, [2], 1, 2).encode()], base_key="k/e1"
    )
    members[3].value = 30
    store.store_delta(
        "k/e3", 2, [_delta(members, [3], 2, 3).encode()], base_key="k/e2"
    )

    resolved = store.fetch("k/e3")
    assert resolved == _full(members, epoch=3)
    # the chain's intermediate hop resolves too, to the e2 document
    assert 'epoch="2"' in store.fetch("k/e2")


def test_chain_tip_digest_and_contains_are_chain_aware(store):
    members = _members()
    store.store("k/e1", _full(members, epoch=1))
    members[1].value = 10
    store.store_delta(
        "k/e2", 1, [_delta(members, [1], 1, 2).encode()], base_key="k/e1"
    )
    assert store.contains("k/e2")
    assert "k/e2" in store.keys()
    assert len(store) == 2
    assert store.digest("k/e2") == digest_of_canonical(_full(members, epoch=2))


def test_epoch_mismatch_is_the_divergence_signal(store):
    members = _members()
    store.store("k/e1", _full(members, epoch=1))
    members[1].value = 10
    stale = _delta(members, [1], 4, 5)  # claims a base this store never saw
    with pytest.raises(CodecError, match="delta expects"):
        store.store_delta("k/e5", 4, [stale.encode()], base_key="k/e1")
    assert not store.contains("k/e5")


def test_missing_base_raises_unknown_key(store):
    members = _members()
    with pytest.raises(UnknownKeyError):
        store.store_delta(
            "k/e2",
            1,
            [_delta(members, [1], 1, 2).encode()],
            base_key="k/e1",
        )


def test_a_delta_cannot_be_its_own_base(store):
    members = _members()
    store.store("k/e1", _full(members, epoch=1))
    with pytest.raises(TransportError):
        store.store_delta(
            "k/e1", 1, [_delta(members, [1], 1, 2).encode()], base_key="k/e1"
        )


def test_dropping_the_base_collapses_dependents(store):
    members = _members()
    store.store("k/e1", _full(members, epoch=1))
    members[2].value = 20
    expected = _full(members, epoch=2)
    store.store_delta(
        "k/e2", 1, [_delta(members, [2], 1, 2).encode()], base_key="k/e1"
    )

    store.drop("k/e1")

    assert not store.contains("k/e1")
    assert store.fetch("k/e2") == expected  # survived as a full payload
    assert store.digest("k/e2") == digest_of_canonical(expected)


def test_full_payload_arriving_over_a_delta_key_replaces_it(store):
    members = _members()
    store.store("k/e1", _full(members, epoch=1))
    members[1].value = 10
    store.store_delta(
        "k/e2", 1, [_delta(members, [1], 1, 2).encode()], base_key="k/e1"
    )
    rewrite = _full(members, epoch=2)
    store.store("k/e2", rewrite)
    store.drop("k/e1")  # must not disturb the now-independent e2
    assert store.fetch("k/e2") == rewrite


def test_xml_store_capacity_accounts_delta_bytes():
    members = _members()
    store = XmlStoreDevice("s", capacity=1 << 20)
    store.store("k/e1", _full(members, epoch=1))
    before = store.used
    members[1].value = 10
    delta_bytes = _delta(members, [1], 1, 2).encode()
    store.store_delta("k/e2", 1, [delta_bytes], base_key="k/e1")
    assert store.used == before + len(delta_bytes)  # the delta, not the doc


def test_xml_store_rejects_delta_past_capacity():
    members = _members()
    full_text = _full(members, epoch=1)
    store = XmlStoreDevice("s", capacity=len(full_text.encode()) + 8)
    store.store("k/e1", full_text)
    members[1].value = 10
    with pytest.raises(StoreFullError):
        store.store_delta(
            "k/e2", 1, [_delta(members, [1], 1, 2).encode()], base_key="k/e1"
        )


def test_xml_store_ships_compressed_delta_frames_over_the_link():
    members = _members()
    clock = SimulatedClock()
    link = bluetooth_link(clock)
    store = XmlStoreDevice("s", capacity=1 << 20, link=link)
    store.store("k/e1", _full(members, epoch=1))
    members[1].value = 10
    data = compress_payload(_delta(members, [1], 1, 2), "zlib")
    carried = link.stats.bytes_carried
    store.store_delta("k/e2", 1, [data], base_key="k/e1", compression="zlib")
    # only the compressed delta (plus per-frame overhead) travelled,
    # and the chain still resolves
    travelled = link.stats.bytes_carried - carried
    assert len(data) <= travelled <= len(data) + 64
    assert store.fetch("k/e2") == _full(members, epoch=2)


def test_xml_store_rejects_unknown_compression():
    members = _members()
    store = XmlStoreDevice("s", capacity=1 << 20)
    store.store("k/e1", _full(members, epoch=1))
    with pytest.raises(TransportError, match="compression"):
        store.store_delta(
            "k/e2",
            1,
            [_delta(members, [1], 1, 2).encode()],
            base_key="k/e1",
            compression="lz-nope",
        )
