"""The event bus."""

import pytest

from repro.events import (
    Event,
    EventBus,
    MemoryHighEvent,
    MemoryLowEvent,
    SwapInEvent,
    SwapOutEvent,
    topic_of,
)


def _high(ratio=0.9):
    return MemoryHighEvent(space="s", used=90, capacity=100, ratio=ratio)


def _swap_out(sid=1):
    return SwapOutEvent(
        space="s", sid=sid, device_id="d", key="k", object_count=1,
        bytes_freed=10, xml_bytes=20,
    )


def test_subscribe_by_type():
    bus = EventBus()
    seen = []
    bus.subscribe(MemoryHighEvent, seen.append)
    bus.emit(_high())
    assert len(seen) == 1


def test_type_subscription_ignores_other_events():
    bus = EventBus()
    seen = []
    bus.subscribe(MemoryHighEvent, seen.append)
    bus.emit(_swap_out())
    assert seen == []


def test_subscribe_base_type_matches_subclasses():
    bus = EventBus()
    seen = []
    bus.subscribe(Event, seen.append)
    bus.emit(_high())
    bus.emit(_swap_out())
    assert len(seen) == 2


def test_subscribe_topic_exact():
    bus = EventBus()
    seen = []
    bus.subscribe_topic("swap.out", seen.append)
    bus.emit(_swap_out())
    bus.emit(_high())
    assert len(seen) == 1


def test_subscribe_topic_wildcard():
    bus = EventBus()
    seen = []
    bus.subscribe_topic("swap.*", seen.append)
    bus.emit(_swap_out())
    bus.emit(
        SwapInEvent(space="s", sid=1, device_id="d", key="k",
                    object_count=1, bytes_restored=5)
    )
    bus.emit(_high())
    assert len(seen) == 2


def test_subscribe_all():
    bus = EventBus()
    seen = []
    bus.subscribe_all(seen.append)
    bus.emit(_high())
    bus.emit(_swap_out())
    assert len(seen) == 2


def test_unsubscribe():
    bus = EventBus()
    seen = []
    unsubscribe = bus.subscribe(MemoryHighEvent, seen.append)
    bus.emit(_high())
    unsubscribe()
    bus.emit(_high())
    assert len(seen) == 1


def test_handler_error_does_not_block_others():
    bus = EventBus()
    seen = []

    def bad(_event):
        raise RuntimeError("boom")

    bus.subscribe(MemoryHighEvent, bad)
    bus.subscribe(MemoryHighEvent, seen.append)
    with pytest.raises(RuntimeError):
        bus.emit(_high())
    assert len(seen) == 1  # the good handler still ran


def test_history_and_last():
    bus = EventBus()
    bus.emit(_high(0.9))
    bus.emit(_swap_out())
    assert len(bus.history) == 2
    last = bus.last(MemoryHighEvent)
    assert isinstance(last, MemoryHighEvent)
    assert bus.last(MemoryLowEvent) is None


def test_count():
    bus = EventBus()
    bus.emit(_high())
    bus.emit(_high())
    bus.emit(_swap_out())
    assert bus.count(MemoryHighEvent) == 2


def test_history_bounded():
    bus = EventBus(history=5)
    for _ in range(10):
        bus.emit(_high())
    assert len(bus.history) == 5


def test_topic_of():
    assert topic_of(MemoryHighEvent) == "memory.high"
    assert topic_of(_swap_out()) == "swap.out"


def test_events_are_frozen():
    event = _high()
    with pytest.raises(AttributeError):
        event.ratio = 0.1


def test_describe_mentions_fields():
    text = _swap_out(sid=7).describe()
    assert "sid=7" in text and "SwapOutEvent" in text


# -- drain / dropped accounting (observability satellite) -------------------


def test_drain_consumes_and_clears():
    bus = EventBus()
    bus.emit(_high())
    bus.emit(_swap_out())
    drained = bus.drain()
    assert len(drained) == 2
    assert bus.history == []
    assert bus.drain() == []


def test_dropped_count_tracks_evictions():
    bus = EventBus(history=3)
    for _ in range(5):
        bus.emit(_high())
    assert bus.dropped_count == 2
    assert len(bus.history) == 3


def test_drain_does_not_reset_dropped_count():
    bus = EventBus(history=2)
    for _ in range(4):
        bus.emit(_high())
    bus.drain()
    assert bus.dropped_count == 2
    bus.emit(_high())
    assert bus.dropped_count == 2  # deque emptied: nothing evicted


def test_no_drops_within_capacity():
    bus = EventBus(history=10)
    for _ in range(10):
        bus.emit(_high())
    assert bus.dropped_count == 0


# -- trace-context stamping --------------------------------------------------


def test_trace_provider_stamps_events():
    bus = EventBus()
    bus.set_trace_provider(lambda: ("t-000009", "s-000004"))
    seen = []
    bus.subscribe(MemoryHighEvent, seen.append)
    bus.emit(_high())
    assert seen[0].trace_id == "t-000009"
    assert seen[0].span_id == "s-000004"
    assert bus.history[0].trace_id == "t-000009"


def test_trace_provider_none_context_leaves_event_unstamped():
    bus = EventBus()
    bus.set_trace_provider(lambda: None)
    bus.emit(_high())
    assert bus.history[0].trace_id is None


def test_existing_trace_id_not_overwritten():
    import dataclasses

    bus = EventBus()
    bus.set_trace_provider(lambda: ("t-000002", "s-000002"))
    stamped = dataclasses.replace(_high(), trace_id="t-000001", span_id="s-1")
    bus.emit(stamped)
    assert bus.history[0].trace_id == "t-000001"


def test_clearing_trace_provider_stops_stamping():
    bus = EventBus()
    bus.set_trace_provider(lambda: ("t-000001", "s-000001"))
    bus.set_trace_provider(None)
    bus.emit(_high())
    assert bus.history[0].trace_id is None


def test_stamped_event_still_equal_to_original():
    bus = EventBus()
    bus.set_trace_provider(lambda: ("t-000001", "s-000001"))
    original = _high()
    bus.emit(original)
    assert bus.history[0] == original
