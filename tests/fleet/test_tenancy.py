"""Tenancy: specs, fair shares, admission, fair-share reclaim."""

from __future__ import annotations

import pytest

from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.errors import NoSwapDeviceError
from repro.events import (
    TenantAdmissionDeniedEvent,
    TenantEvictedEvent,
    TenantRegisteredEvent,
)
from repro.fleet import (
    FleetConfig,
    FleetError,
    TenantRegistry,
    TenantSpec,
    manager_store_bytes,
)
from repro.policy.pressure import PressureLevel, classify
from repro.resilience import ResilienceConfig
from tests.helpers import build_chain, chain_values


def spec(tenant_id="t", heap=1 << 20, quota=1 << 20, **kwargs):
    return TenantSpec(
        tenant_id=tenant_id,
        heap_budget_bytes=heap,
        store_quota_bytes=quota,
        **kwargs,
    )


def make_fleet(count=2, capacity=8 << 10):
    return [
        XmlStoreDevice(f"store-{index}", capacity=capacity)
        for index in range(count)
    ]


def make_tenant_space(name, stores, *, heap=1 << 20, mirrors=False):
    space = Space(name, heap_capacity=heap)
    for store in stores:
        space.manager.add_store(store)
    if mirrors:
        space.manager.enable_resilience(
            ResilienceConfig(
                seed=1,
                replication_factor=2,
                scrub_interval_s=10.0**9,
                degrade_to_local=False,
            )
        )
    return space


def swap_all(space, handle_objects=40, cluster_size=5):
    """Ingest a chain and swap every cluster out; returns the handle."""
    handle = space.ingest(
        build_chain(handle_objects), cluster_size=cluster_size, root_name="h"
    )
    for cluster in list(space.clusters().values()):
        if cluster.is_resident and not cluster.is_root_cluster:
            space.swap_out(cluster.sid)
    return handle


# -- spec and config validation ----------------------------------------------


def test_spec_rejects_bad_fields():
    with pytest.raises(FleetError):
        spec(tenant_id="")
    with pytest.raises(FleetError):
        spec(heap=0)
    with pytest.raises(FleetError):
        spec(quota=-1)
    with pytest.raises(FleetError):
        spec(guaranteed_share=1.5)
    with pytest.raises(FleetError):
        spec(priority_class=-1)


def test_fleet_config_rejects_bad_pressure_fraction():
    with pytest.raises(FleetError):
        FleetConfig(pressure_free_fraction=1.0)
    with pytest.raises(FleetError):
        FleetConfig(pressure_free_fraction=-0.1)


def test_registry_needs_stores():
    with pytest.raises(FleetError):
        TenantRegistry([])


# -- membership --------------------------------------------------------------


def test_register_binds_and_emits():
    stores = make_fleet()
    space = make_tenant_space("reg-a", stores)
    registry = TenantRegistry(stores)
    tenant = registry.register(spec("a"), space.manager)
    assert space.manager.tenant is tenant
    assert space.manager.feature_flags()["tenancy"]
    event = space.bus.last(TenantRegisteredEvent)
    assert event.tenant_id == "a"


def test_reregister_identical_spec_binds_second_space():
    stores = make_fleet()
    first = make_tenant_space("multi-1", stores)
    second = make_tenant_space("multi-2", stores)
    registry = TenantRegistry(stores)
    tenant = registry.register(spec("a", heap=4 << 20), first.manager)
    again = registry.register(spec("a", heap=4 << 20), second.manager)
    assert again is tenant
    assert len(tenant.managers) == 2


def test_reregister_differing_spec_raises():
    stores = make_fleet()
    space = make_tenant_space("re-diff", stores)
    registry = TenantRegistry(stores)
    registry.register(spec("a"), space.manager)
    other = make_tenant_space("re-diff-2", stores)
    with pytest.raises(FleetError, match="different spec"):
        registry.register(spec("a", quota=123), other.manager)


def test_register_rejects_guarantee_oversubscription():
    stores = make_fleet()
    registry = TenantRegistry(stores)
    registry.register(
        spec("a", guaranteed_share=0.7),
        make_tenant_space("over-a", stores).manager,
    )
    with pytest.raises(FleetError, match="sum"):
        registry.register(
            spec("b", guaranteed_share=0.4),
            make_tenant_space("over-b", stores).manager,
        )


def test_bind_enforces_heap_budget_across_spaces():
    stores = make_fleet()
    big = make_tenant_space("budget-big", stores, heap=64 << 10)
    more = make_tenant_space("budget-more", stores, heap=64 << 10)
    registry = TenantRegistry(stores)
    registry.register(spec("a", heap=96 << 10), big.manager)
    with pytest.raises(FleetError, match="heap budget"):
        registry.register(spec("a", heap=96 << 10), more.manager)


def test_space_cannot_serve_two_tenants():
    stores = make_fleet()
    space = make_tenant_space("twice", stores)
    registry = TenantRegistry(stores)
    registry.register(spec("a"), space.manager)
    with pytest.raises(FleetError, match="already bound"):
        registry.register(spec("b"), space.manager)


def test_unregister_unbinds_managers():
    stores = make_fleet()
    space = make_tenant_space("unreg", stores)
    registry = TenantRegistry(stores)
    registry.register(spec("a"), space.manager)
    registry.unregister("a")
    assert space.manager.tenant is None
    assert not space.manager.feature_flags()["tenancy"]
    with pytest.raises(FleetError):
        registry.unregister("a")


def test_update_spec_validates_and_refuses_rename():
    stores = make_fleet()
    space = make_tenant_space("upd", stores)
    registry = TenantRegistry(stores)
    registry.register(spec("a"), space.manager)
    updated = registry.update_spec("a", store_quota_bytes=4096)
    assert updated.store_quota_bytes == 4096
    assert registry.tenants["a"].spec is updated
    with pytest.raises(FleetError):
        registry.update_spec("a", tenant_id="b")
    with pytest.raises(FleetError):
        registry.update_spec("a", guaranteed_share=2.0)
    with pytest.raises(FleetError):
        registry.update_spec("nobody", store_quota_bytes=1)


# -- accounting and fair shares ----------------------------------------------


def test_manager_store_bytes_is_a_per_space_prefix_scan():
    stores = make_fleet(count=1, capacity=64 << 10)
    left = make_tenant_space("acct-left", stores)
    right = make_tenant_space("acct-right", stores)
    swap_all(left)
    swap_all(right)
    left_bytes = manager_store_bytes(left.manager, stores)
    right_bytes = manager_store_bytes(right.manager, stores)
    assert left_bytes > 0 and right_bytes > 0
    # the two prefix scans partition exactly what the device holds
    assert left_bytes + right_bytes == stores[0].used


def test_fair_share_is_guarantee_plus_split_remainder_capped_by_quota():
    stores = make_fleet(count=2, capacity=1024)  # capacity 2048
    registry = TenantRegistry(stores)
    a = registry.register(
        spec("a", guaranteed_share=0.5),
        make_tenant_space("share-a", stores).manager,
    )
    b = registry.register(
        spec("b"), make_tenant_space("share-b", stores).manager
    )
    # leftover = (1 - 0.5) / 2 per tenant
    assert registry.fair_share_bytes(a) == int(0.75 * 2048)
    assert registry.fair_share_bytes(b) == int(0.25 * 2048)
    registry.update_spec("b", store_quota_bytes=100)
    assert registry.fair_share_bytes(b) == 100


def test_pressure_tracks_free_fraction():
    stores = make_fleet(count=2, capacity=1024)
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.9)
    )
    assert not registry.under_pressure()  # empty fleet: free fraction 1.0
    space = make_tenant_space("press", stores)
    registry.register(spec("a"), space.manager)
    swap_all(space, handle_objects=10, cluster_size=5)
    assert registry.under_pressure()


# -- admission ---------------------------------------------------------------


def test_quota_denial_raises_without_degrade_fallback():
    stores = make_fleet()
    space = make_tenant_space("quota", stores)
    registry = TenantRegistry(stores)
    registry.register(spec("a", quota=16), space.manager)
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    with pytest.raises(NoSwapDeviceError, match="quota"):
        space.swap_out(1)
    assert space.manager.stats.fleet_admission_denials == 1
    event = space.bus.last(TenantAdmissionDeniedEvent)
    assert event.tenant_id == "a" and "quota" in event.reason


def test_admitted_freely_when_fleet_has_headroom():
    stores = make_fleet()
    space = make_tenant_space("free", stores)
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.0)
    )
    registry.register(spec("a"), space.manager)
    handle = swap_all(space)
    assert space.manager.stats.fleet_admission_denials == 0
    assert chain_values(handle) == list(range(40))


def test_over_share_ship_denied_under_global_pressure():
    stores = make_fleet(count=2, capacity=2048)
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.9)
    )
    greedy = make_tenant_space("deny-greedy", stores)
    other = make_tenant_space("deny-other", stores)
    # fill past both the pressure threshold and greedy's fair share
    # before the admission gate exists
    swap_all(greedy, handle_objects=15, cluster_size=5)
    registry.register(spec("greedy"), greedy.manager)
    registry.register(
        spec("other", guaranteed_share=0.5), other.manager
    )
    tenant = greedy.manager.tenant
    assert tenant.store_bytes() > tenant.fair_share_bytes()
    greedy.ingest(build_chain(10), cluster_size=5, root_name="more")
    fresh = [
        c.sid
        for c in greedy.clusters().values()
        if c.is_resident and not c.is_root_cluster
    ]
    with pytest.raises(NoSwapDeviceError, match="fair share"):
        greedy.swap_out(fresh[0])
    assert greedy.manager.stats.fleet_admission_denials == 1


def test_under_share_ship_reclaims_from_over_share_tenant():
    stores = make_fleet(count=2, capacity=4096)
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.9)
    )
    greedy = make_tenant_space("recl-greedy", stores, mirrors=True)
    meek = make_tenant_space("recl-meek", stores)
    greedy_handle = swap_all(greedy, handle_objects=20, cluster_size=5)
    registry.register(spec("greedy", quota=1), greedy.manager)
    registry.register(
        spec("meek", guaranteed_share=0.5, priority_class=2), meek.manager
    )
    hog = greedy.manager.tenant
    before = hog.store_bytes()
    swap_all(meek, handle_objects=10, cluster_size=5)
    assert meek.manager.stats.fleet_admission_denials == 0
    assert hog.evicted_copies > 0
    assert hog.store_bytes() < before
    event = greedy.bus.last(TenantEvictedEvent)
    assert event.tenant_id == "greedy"
    assert event.requested_by == "meek"
    # erosion only: every greedy cluster kept a copy and swaps back in
    assert chain_values(greedy_handle) == list(range(20))


def test_reclaim_orders_victims_by_overage_and_spares_guarantees():
    stores = make_fleet(count=2, capacity=4096)
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.9)
    )
    big = make_tenant_space("ord-big", stores, mirrors=True)
    small = make_tenant_space("ord-small", stores, mirrors=True)
    safe = make_tenant_space("ord-safe", stores, mirrors=True)
    swap_all(big, handle_objects=20, cluster_size=5)
    swap_all(small, handle_objects=5, cluster_size=5)
    swap_all(safe, handle_objects=5, cluster_size=5)
    big_t = registry.register(spec("big", quota=1), big.manager)
    small_t = registry.register(spec("small", quota=1), small.manager)
    # safe's guarantee covers its usage: never a victim
    safe_t = registry.register(
        spec("safe", guaranteed_share=0.9), safe.manager
    )
    assert safe_t.store_bytes() <= registry.fair_share_bytes(safe_t)
    copies, freed = registry.reclaim(64)
    assert copies > 0 and freed > 0
    # the furthest-over tenant pays first; 64 bytes never needs a second
    assert big_t.evicted_copies > 0
    assert small_t.evicted_copies == 0
    assert safe_t.evicted_copies == 0
    # exhaustive reclaim still never touches the guaranteed tenant
    registry.reclaim(1 << 30)
    assert safe_t.evicted_copies == 0


def test_reclaim_stops_at_last_copy():
    stores = make_fleet(count=2, capacity=4096)
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.9)
    )
    space = make_tenant_space("last-copy", stores, mirrors=True)
    handle = swap_all(space, handle_objects=20, cluster_size=5)
    registry.register(spec("hog", quota=1), space.manager)
    registry.reclaim(1 << 30)
    # mirrors are gone, primaries are not: the chain is fully readable
    assert chain_values(handle) == list(range(20))


# -- per-tenant pressure -----------------------------------------------------


def test_overlay_bumps_over_share_tenant_one_level():
    stores = make_fleet(count=2, capacity=1024)
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.9)
    )
    space = make_tenant_space("bump", stores)
    swap_all(space, handle_objects=10, cluster_size=5)
    tenant = registry.register(spec("hog", quota=1), space.manager)
    ladder = space.manager.enable_degrade_ladder()
    assert ladder.pressure_overlay is not None
    calm = classify(0.9, 1.0, 0.0)
    bumped = ladder.pressure_overlay(calm)
    assert bumped.level == PressureLevel.ELEVATED
    assert tenant.pressure_bumps == 1
    assert space.manager.stats.tenant_pressure_bumps == 1
    # CRITICAL stays CRITICAL (no wraparound, no double count)
    critical = classify(0.01, 1.0, 0.0)
    assert ladder.pressure_overlay(critical).level == PressureLevel.CRITICAL
    assert tenant.pressure_bumps == 1


def test_overlay_passes_through_without_global_pressure():
    stores = make_fleet()
    registry = TenantRegistry(
        stores, config=FleetConfig(pressure_free_fraction=0.0)
    )
    space = make_tenant_space("calm", stores)
    swap_all(space, handle_objects=10, cluster_size=5)
    tenant = registry.register(spec("hog", quota=1), space.manager)
    space.manager.enable_degrade_ladder()
    signal = classify(0.9, 1.0, 0.0)
    assert space.manager.ladder.pressure_overlay(signal) is signal
    assert tenant.pressure_bumps == 0


def test_bind_before_ladder_still_installs_overlay():
    stores = make_fleet()
    space = make_tenant_space("order", stores)
    registry = TenantRegistry(stores)
    registry.register(spec("a"), space.manager)
    ladder = space.manager.enable_degrade_ladder()
    assert ladder.pressure_overlay is not None


def test_snapshot_reports_every_tenant():
    stores = make_fleet()
    space = make_tenant_space("snap", stores)
    registry = TenantRegistry(stores)
    registry.register(spec("a", guaranteed_share=0.25), space.manager)
    snap = registry.snapshot()
    assert snap["capacity_bytes"] == sum(s.capacity for s in stores)
    entry = snap["tenants"]["a"]
    assert entry["spaces"] == ["snap"]
    assert entry["guaranteed_bytes"] == int(0.25 * snap["capacity_bytes"])
    assert {"store_bytes", "denials", "evicted_copies", "pressure_level"} <= (
        set(entry)
    )
