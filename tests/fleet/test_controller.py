"""The control plane: schema, versioning, failover, exactly-once."""

from __future__ import annotations

import pytest

from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.events import (
    FleetConfigAppliedEvent,
    FleetConfigRejectedEvent,
    FleetLeaderElectedEvent,
    SwapOutEvent,
)
from repro.fleet import (
    FleetController,
    FleetError,
    TenantRegistry,
    TenantSpec,
)
from tests.helpers import build_chain


def make_world(*, tenants=("a", "b"), guarantees=(0.3, 0.3)):
    """A registry with one space per tenant, plus a 3-replica controller."""
    stores = [
        XmlStoreDevice(f"store-{i}", capacity=64 << 10) for i in range(2)
    ]
    registry = TenantRegistry(stores)
    spaces = {}
    for tenant_id, share in zip(tenants, guarantees):
        space = Space(f"cp-{tenant_id}", heap_capacity=64 << 10)
        for store in stores:
            space.manager.add_store(store)
        registry.register(
            TenantSpec(
                tenant_id=tenant_id,
                heap_budget_bytes=64 << 10,
                store_quota_bytes=64 << 10,
                guaranteed_share=share,
            ),
            space.manager,
        )
        spaces[tenant_id] = space
    return registry, spaces, FleetController(registry)


# -- leadership --------------------------------------------------------------


def test_startup_elects_lowest_replica_at_epoch_one():
    _registry, _spaces, controller = make_world()
    assert controller.leader_id == 0
    assert controller.epoch == 1
    event = controller.bus.last(FleetLeaderElectedEvent)
    assert event.replica_id == 0 and event.epoch == 1


def test_killing_a_follower_changes_nothing():
    _registry, _spaces, controller = make_world()
    controller.kill_replica(2)
    assert controller.leader_id == 0
    assert controller.epoch == 1


def test_killing_the_leader_fails_over_deterministically():
    _registry, _spaces, controller = make_world()
    controller.kill_replica(0)
    assert controller.leader_id == 1
    assert controller.epoch == 2
    controller.kill_replica(1)
    assert controller.leader_id == 2
    assert controller.epoch == 3


def test_revived_replica_catches_up_but_never_usurps():
    _registry, _spaces, controller = make_world()
    controller.submit({"tenant.priority_class": 3}, tenant_id="a")
    controller.kill_replica(0)
    controller.submit({"tenant.priority_class": 4}, tenant_id="a")
    controller.revive_replica(0)
    assert controller.leader_id == 1  # no usurpation
    assert controller.replicas[0].log == controller.leader().log


def test_dead_fleet_rejects_until_revival():
    _registry, _spaces, controller = make_world()
    for replica_id in range(3):
        controller.kill_replica(replica_id)
    assert controller.leader_id is None
    decision = controller.submit({"tenant.priority_class": 2}, tenant_id="a")
    assert not decision.accepted and "no live leader" in decision.reason
    controller.revive_replica(2)
    assert controller.leader_id == 2


# -- validation --------------------------------------------------------------


def test_unknown_key_rejected():
    _registry, _spaces, controller = make_world()
    decision = controller.submit({"tenant.color": "red"}, tenant_id="a")
    assert not decision.accepted
    assert "unknown config key" in decision.reason
    assert controller.rejected == 1
    event = controller.bus.last(FleetConfigRejectedEvent)
    assert "unknown config key" in event.reason


def test_type_and_range_guards():
    _registry, _spaces, controller = make_world()
    cases = [
        ({"manager.replication_factor": True}, None),  # bool is not an int
        ({"manager.replication_factor": 9}, None),
        ({"tenant.heap_budget_bytes": 0}, "a"),
        ({"tenant.guaranteed_share": 1.5}, "a"),
        ({"tenant.priority_class": -1}, "a"),
        ({"fleet.pressure_free_fraction": 1.0}, None),
        ({}, None),  # empty change set
    ]
    for changes, tenant_id in cases:
        decision = controller.submit(changes, tenant_id=tenant_id)
        assert not decision.accepted, changes


def test_scope_mismatches_rejected():
    _registry, _spaces, controller = make_world()
    tenant_scoped = controller.submit({"tenant.priority_class": 2})
    assert "tenant-scoped" in tenant_scoped.reason
    fleet_scoped = controller.submit(
        {"fleet.pressure_free_fraction": 0.5}, tenant_id="a"
    )
    assert "fleet-scoped" in fleet_scoped.reason
    nobody = controller.submit(
        {"tenant.priority_class": 2}, tenant_id="ghost"
    )
    assert "unknown tenant" in nobody.reason


def test_guarantee_oversubscription_rejected():
    _registry, _spaces, controller = make_world(guarantees=(0.5, 0.4))
    decision = controller.submit(
        {"tenant.guaranteed_share": 0.7}, tenant_id="a"
    )
    assert not decision.accepted
    assert "1.0" in decision.reason


def test_heap_budget_below_bound_capacity_rejected():
    _registry, _spaces, controller = make_world()
    decision = controller.submit(
        {"tenant.heap_budget_bytes": 1024}, tenant_id="a"
    )
    assert not decision.accepted
    assert "heap budget below" in decision.reason


def test_feature_gated_key_needs_the_feature_on():
    _registry, spaces, controller = make_world()
    denied = controller.submit({"degrade.hold_s": 5.0}, tenant_id="a")
    assert not denied.accepted
    assert "'degrade' feature" in denied.reason
    spaces["a"].manager.enable_degrade_ladder()
    allowed = controller.submit({"degrade.hold_s": 5.0}, tenant_id="a")
    assert allowed.accepted


# -- versioning and distribution ---------------------------------------------


def test_accepted_changes_version_monotonically():
    _registry, _spaces, controller = make_world()
    first = controller.submit({"tenant.priority_class": 2}, tenant_id="a")
    second = controller.submit({"tenant.priority_class": 3}, tenant_id="b")
    assert (first.version, second.version) == (1, 2)
    event = controller.bus.last(FleetConfigAppliedEvent)
    assert event.version == 2
    assert all(
        len(replica.log) == 2 for replica in controller.replicas
    )


def test_distribute_applies_each_entry_exactly_once():
    registry, spaces, controller = make_world()
    controller.submit({"manager.replication_factor": 2}, tenant_id="a")
    manager = spaces["a"].manager
    # targets: the registry plus tenant a's single manager
    assert controller.distribute() == 2
    assert manager.replication_factor == 2
    assert manager.stats.fleet_config_updates == 1
    assert controller.distribute() == 0
    assert controller.undelivered() == 0
    assert manager.stats.fleet_config_updates == 1


def test_distribute_updates_registry_specs_and_fleet_config():
    registry, _spaces, controller = make_world()
    controller.submit({"tenant.store_quota_bytes": 4096}, tenant_id="a")
    controller.submit({"fleet.pressure_free_fraction": 0.5})
    controller.distribute()
    assert registry.tenants["a"].spec.store_quota_bytes == 4096
    assert registry.config.pressure_free_fraction == 0.5


def test_fleet_wide_manager_change_reaches_every_tenant():
    _registry, spaces, controller = make_world()
    controller.submit({"manager.replication_factor": 2})
    controller.distribute()
    assert all(
        space.manager.replication_factor == 2 for space in spaces.values()
    )


def test_killing_leader_mid_distribution_preserves_exactly_once():
    registry, spaces, controller = make_world()
    controller.submit({"manager.replication_factor": 2}, tenant_id="a")
    controller.submit({"tenant.priority_class": 3}, tenant_id="b")
    # deliver one of the four (2 entries x (registry + one manager))
    assert controller.distribute(limit=1) == 1
    remaining = controller.undelivered()
    assert remaining == 3
    controller.kill_replica(0)
    assert controller.leader_id == 1 and controller.epoch == 2
    # the new leader owes exactly what the dead one still owed
    assert controller.undelivered() == remaining
    assert controller.distribute() == remaining
    assert controller.undelivered() == 0
    assert spaces["a"].manager.replication_factor == 2
    assert spaces["a"].manager.stats.fleet_config_updates == 1
    assert spaces["b"].manager.stats.fleet_config_updates == 1
    assert registry.tenants["b"].spec.priority_class == 3


def test_stale_epoch_rejected_after_failover():
    _registry, _spaces, controller = make_world()
    old_epoch = controller.epoch
    controller.kill_replica(0)
    decision = controller.submit(
        {"tenant.priority_class": 2}, tenant_id="a", epoch=old_epoch
    )
    assert not decision.accepted
    assert "stale epoch" in decision.reason
    current = controller.submit(
        {"tenant.priority_class": 2}, tenant_id="a", epoch=controller.epoch
    )
    assert current.accepted


# -- subscriptions -----------------------------------------------------------


def test_subscriptions_filter_by_tenant_space():
    _registry, spaces, controller = make_world()
    seen = []
    controller.subscribe("a", "swap.*", seen.append)
    for space in spaces.values():
        controller.watch(space.bus)
        space.ingest(build_chain(10), cluster_size=5, root_name="h")
        space.swap_out(1)
    assert seen  # tenant a saw its own swap traffic
    assert all(event.space == "cp-a" for event in seen)
    assert any(isinstance(event, SwapOutEvent) for event in seen)


def test_fleet_scoped_events_visible_to_every_subscriber():
    _registry, _spaces, controller = make_world()
    seen = []
    controller.subscribe("b", "fleet.*", seen.append)
    controller.submit({"tenant.priority_class": 2}, tenant_id="a")
    assert any(
        isinstance(event, FleetConfigAppliedEvent) for event in seen
    )


def test_topic_prefix_matching_and_unsubscribe():
    _registry, spaces, controller = make_world()
    exact = []
    wild = []
    controller.subscribe("a", "swap.out", exact.append)
    cancel = controller.subscribe("a", "swap.*", wild.append)
    controller.watch(spaces["a"].bus)
    spaces["a"].ingest(build_chain(10), cluster_size=5, root_name="h")
    spaces["a"].swap_out(1)
    assert len(exact) == 1
    assert len(wild) >= len(exact)  # the family saw at least the exact hit
    cancel()
    before = len(wild)
    spaces["a"].swap_out(2)
    assert len(wild) == before
    assert len(exact) == 2


def test_subscribe_unknown_tenant_raises():
    _registry, _spaces, controller = make_world()
    with pytest.raises(FleetError):
        controller.subscribe("ghost", "swap.*", lambda event: None)
