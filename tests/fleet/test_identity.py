"""With no tenant bound, the runtime is bit-identical to the committed
single-tenant results.

The fleet subsystem is strictly opt-in: ``manager.tenant`` is ``None``
unless a registry binds one, and every fleet hook sits behind that
check.  The strongest regression guard is replaying a scenario-bench
run and comparing the *entire* scored result — stall distributions,
counters, rung transitions — against the entry committed in
``BENCH_scenarios.json`` before/alongside the fleet work.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.scenarios import build_script, run_once
from repro.faults.scenarios import SCENARIOS

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_scenarios.json"


@pytest.fixture(scope="module")
def committed():
    if not BENCH_PATH.exists():
        pytest.skip(
            "BENCH_scenarios.json not present (bench artifacts are "
            "generated, not tracked) — run "
            "`python -m repro.bench.scenarios` first"
        )
    return json.loads(BENCH_PATH.read_text())


@pytest.mark.parametrize("scenario", ["memory_spike", "app_switch_storm"])
@pytest.mark.parametrize("ladder", [True, False])
def test_single_tenant_run_matches_committed_bench(
    committed, scenario, ladder
):
    spec = SCENARIOS[scenario]()
    seed = 1
    result = run_once(spec, seed, build_script(spec, seed), ladder=ladder)
    mode = "ladder" if ladder else "baseline"
    expected = committed["scenarios"][scenario]["seeds"][str(seed)][mode]
    assert result == expected


def test_fleet_counters_stay_zero_without_a_tenant():
    spec = SCENARIOS["memory_spike"]()
    result = run_once(spec, 2, build_script(spec, 2), ladder=True)
    # the scored counters never grow fleet series in single-tenant runs
    assert not any(key.startswith("fleet.") for key in result["counters"])
    assert not any(key.startswith("tenant.") for key in result["counters"])
