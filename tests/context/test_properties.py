"""Observable context properties."""

import pytest

from repro.context.properties import ContextProperty, ContextTable


def test_property_set_and_observe():
    prop = ContextProperty("p", 1)
    seen = []
    prop.observe(lambda name, old, new: seen.append((name, old, new)))
    prop.set(2)
    assert prop.value == 2
    assert seen == [("p", 1, 2)]


def test_no_notification_on_same_value():
    prop = ContextProperty("p", 1)
    seen = []
    prop.observe(lambda *args: seen.append(args))
    prop.set(1)
    assert seen == []


def test_unobserve():
    prop = ContextProperty("p", 1)
    seen = []
    unobserve = prop.observe(lambda *args: seen.append(args))
    unobserve()
    prop.set(2)
    assert seen == []


def test_table_define_get_set():
    table = ContextTable()
    table.define("memory.ratio", 0.0)
    table.set("memory.ratio", 0.5)
    assert table.get("memory.ratio") == 0.5
    assert "memory.ratio" in table
    assert table.names() == ["memory.ratio"]


def test_table_duplicate_definition():
    table = ContextTable()
    table.define("x", 1)
    with pytest.raises(KeyError):
        table.define("x", 2)


def test_table_snapshot():
    table = ContextTable()
    table.define("a", 1)
    table.define("b", 2)
    assert table.snapshot() == {"a": 1, "b": 2}


def test_table_property_access():
    table = ContextTable()
    prop = table.define("a", 1)
    assert table.property("a") is prop
