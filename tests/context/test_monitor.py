"""Memory and connectivity monitors."""

from repro.comm.discovery import Neighborhood
from repro.context.monitor import ConnectivityMonitor, MemoryMonitor
from repro.context.properties import ContextTable
from repro.devices import InMemoryStore
from repro.events import (
    AllocationFailedEvent,
    DeviceJoinedEvent,
    MemoryHighEvent,
    MemoryLowEvent,
)
from tests.helpers import build_chain, make_space


def test_memory_monitor_emits_high_and_low():
    space = make_space(heap_capacity=1000, high_watermark=0.8, low_watermark=0.4)
    monitor = MemoryMonitor(space)
    space.heap.allocate(-1, 850)
    assert space.bus.count(MemoryHighEvent) == 1
    assert monitor.high_events == 1
    space.heap.free_oid(-1)
    assert space.bus.count(MemoryLowEvent) == 1


def test_memory_event_carries_need_bytes():
    space = make_space(heap_capacity=1000, high_watermark=0.8, low_watermark=0.5)
    MemoryMonitor(space)
    space.heap.allocate(-1, 900)
    event = space.bus.last(MemoryHighEvent)
    assert event.need_bytes == 400  # down to the 50% mark


def test_exhaustion_event():
    space = make_space(with_store=False, heap_capacity=100)
    monitor = MemoryMonitor(space)
    space.manager.auto_swap = False
    try:
        space.heap.allocate(-1, 500)
    except Exception:
        pass
    assert space.bus.count(AllocationFailedEvent) == 1
    assert monitor.exhaustion_events == 1


def test_memory_context_property_refreshed():
    table = ContextTable()
    space = make_space(heap_capacity=1000, high_watermark=0.5, low_watermark=0.2)
    monitor = MemoryMonitor(space, context=table)
    space.heap.allocate(-1, 600)
    assert table.get("memory.ratio") == 0.6
    assert monitor.check() == 0.6


def test_connectivity_monitor_counts():
    bus_space = make_space()
    neighborhood = Neighborhood(bus=bus_space.bus)
    table = ContextTable()
    monitor = ConnectivityMonitor(neighborhood, bus_space.bus, context=table)
    neighborhood.join(InMemoryStore("a"))
    neighborhood.join(InMemoryStore("b"))
    assert monitor.connected_count == 2
    assert table.get("devices.in_range") == 2
    neighborhood.leave("a")
    assert table.get("devices.in_range") == 1
    assert monitor.joins == 2 and monitor.leaves == 1
