"""Cross-module integration: server -> device -> stores -> GC."""

import pytest

from repro.baselines.compression import CompressedPoolStore
from repro.comm import LoopbackLink, WebServiceClient
from repro.devices import InMemoryStore, XmlStoreDevice
from repro.replication import DirectServerClient, ObjectServer, Replicator
from repro.replication.server import WsServerClient
from tests.helpers import Node, build_chain, chain_values, make_space


def test_full_pipeline_server_to_stores():
    """Replicate over the web-service bridge, browse under pressure,
    revisit everything, discard, collect — the paper's whole story."""
    server = ObjectServer()
    server.publish("data", build_chain(200), cluster_size=20)

    space = make_space(heap_capacity=4500)
    space.manager.add_store(XmlStoreDevice("pc", capacity=1 << 20))
    client = WsServerClient(
        WebServiceClient(server.as_endpoint(), LoopbackLink())
    )
    replicator = Replicator(space, client, clusters_per_swap=2)

    handle = replicator.replicate("data")
    assert chain_values(handle) == list(range(200))  # streams + swaps
    assert space.manager.stats.swap_outs > 0
    space.verify_integrity()

    # revisit: everything reloadable
    assert chain_values(space.get_root("data")) == list(range(200))

    # discard and collect: all stores drained eventually
    space.del_root("data")
    space.gc()
    assert space.object_count() == 0
    space.verify_integrity()


def test_mixed_stores_compression_and_device():
    """Victims can go to a nearby device OR the in-heap compressed pool;
    both paths preserve semantics."""
    space = make_space(with_store=False, heap_capacity=1 << 20)
    device = InMemoryStore("pc")
    pool = CompressedPoolStore(space)
    space.manager.add_store(device)

    handle = space.ingest(build_chain(40), cluster_size=10, root_name="h")
    space.swap_out(1, store=pool)
    space.swap_out(3, store=device)
    space.verify_integrity()
    assert chain_values(handle) == list(range(40))
    space.verify_integrity()


def test_two_spaces_one_server():
    server = ObjectServer()
    server.publish("shared", build_chain(30), cluster_size=10)
    client = DirectServerClient(server)

    first = make_space("alpha")
    second = make_space("beta")
    first_handle = Replicator(first, client).replicate("shared")
    second_handle = Replicator(second, client).replicate("shared")

    assert chain_values(first_handle) == chain_values(second_handle)
    first.swap_out(2)
    assert chain_values(first.get_root("shared")) == list(range(30))
    # the other replica is untouched by alpha's swapping
    assert second.manager.stats.swap_outs == 0
    first.verify_integrity()
    second.verify_integrity()


def test_store_capacity_spillover():
    space = make_space(with_store=False, heap_capacity=1 << 20)
    # tiny first store: only one cluster fits; the rest spill to the big one
    tiny = XmlStoreDevice("tiny", capacity=2100)
    big = XmlStoreDevice("big", capacity=1 << 20)
    space.manager.add_store(tiny)
    space.manager.add_store(big)
    handle = space.ingest(build_chain(40), cluster_size=10, root_name="h")
    for sid in (1, 2, 3, 4):
        space.swap_out(sid)
    assert len(tiny.keys()) >= 1
    assert len(big.keys()) >= 1
    assert chain_values(handle) == list(range(40))


def test_writes_reach_swap_and_server_replicas_independent():
    server = ObjectServer()
    master = build_chain(10)
    server.publish("w", master, cluster_size=5)
    space = make_space()
    handle = Replicator(space, DirectServerClient(server)).replicate("w")
    chain_values(handle)
    handle.set_value(999)
    space.swap_out(space.sid_of(handle))
    assert handle.get_value() == 999  # replica write survived its swap
    assert master.value == 0  # the master copy is a separate replica
