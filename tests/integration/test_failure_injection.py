"""Failure injection: departing devices, lost data, full stores."""

import pytest

from repro.devices import InMemoryStore, XmlStoreDevice
from repro.errors import (
    HeapExhaustedError,
    NoSwapDeviceError,
    SwapStoreUnavailableError,
)
from repro.sim import ScenarioWorld, StoreSpec
from tests.helpers import build_chain, chain_values, make_space


def test_department_midway_other_clusters_unaffected():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("a"))
    world.add_store(StoreSpec("b"))
    space = world.space
    handle = space.ingest(build_chain(30), cluster_size=10, root_name="h")
    space.swap_out(2, store=world.store("a"))
    space.swap_out(3, store=world.store("b"))
    world.depart_cleanly("a")
    # cluster 3 on device b is still fine
    space.swap_in(3)
    # cluster 2 is not
    with pytest.raises(SwapStoreUnavailableError):
        space.swap_in(2)
    # and the failure left the cluster consistently swapped
    assert space.clusters()[2].is_swapped
    world.come_back("a")
    assert chain_values(handle) == list(range(30))


def test_swap_out_fails_when_link_drops():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("a"))
    space = world.space
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    world.link("a").fail()
    # has_room raises TransportError -> selection skips it -> no device
    with pytest.raises(NoSwapDeviceError):
        space.swap_out(1)
    assert space.clusters()[1].is_resident  # nothing half-done


def test_pressure_with_no_devices_degrades_to_exhaustion():
    space = make_space(with_store=False, heap_capacity=2000)
    with pytest.raises(HeapExhaustedError):
        for index in range(10):
            space.ingest(build_chain(10), cluster_size=10, root_name=f"c{index}")
    space.verify_integrity()


def test_store_full_mid_sequence_falls_through():
    space = make_space(with_store=False, heap_capacity=1 << 20)
    small = XmlStoreDevice("small", capacity=2100)
    space.manager.add_store(small)
    handle = space.ingest(build_chain(20), cluster_size=10, root_name="h")
    space.swap_out(1)  # fills the small store
    with pytest.raises(NoSwapDeviceError):
        space.swap_out(2)
    # late-arriving capacity fixes it
    space.manager.add_store(InMemoryStore("late"))
    space.swap_out(2)
    assert chain_values(handle) == list(range(20))


def test_data_loss_is_contained():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("flaky"))
    space = world.space
    handle = space.ingest(build_chain(30), cluster_size=10, root_name="h")
    space.swap_out(2)
    world.vanish_with_data("flaky")
    world.come_back("flaky")
    # lost cluster raises; the rest of the graph works
    values = []
    cursor = handle
    with pytest.raises(SwapStoreUnavailableError):
        while cursor is not None:
            values.append(cursor.get_value())
            cursor = cursor.get_next()
    assert values == list(range(10))  # everything up to the lost boundary
    space.verify_integrity()


def test_retry_after_transient_outage():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("pc"))
    space = world.space
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    world.depart_cleanly("pc")
    for _ in range(3):  # repeated attempts fail cleanly
        with pytest.raises(SwapStoreUnavailableError):
            chain_values(handle)
    world.come_back("pc")
    assert chain_values(handle) == list(range(10))  # then recovers


def test_corrupted_payload_reported_not_loaded():
    from repro.errors import CodecError

    space = make_space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    store = space.manager.available_stores()[0]
    location = space.swap_out(2)
    store.store(location.key, "<swap-cluster sid='2'>garbage</swap-cluster>")
    with pytest.raises(CodecError):
        chain_values(handle)
    assert space.clusters()[2].is_swapped  # state not corrupted
