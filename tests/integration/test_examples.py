"""The example scripts must run clean end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def _run(name: str, cwd=None) -> str:
    # the examples import `repro` from the source tree, regardless of
    # where pytest was launched from or what the child's cwd is
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=cwd,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    output = _run("quickstart.py")
    assert "sum = 4950" in output
    assert "integrity verified" in output


def test_photo_album():
    output = _run("photo_album.py")
    assert "swap-outs" in output
    assert "integrity verified" in output


def test_field_survey():
    output = _run("field_survey.py")
    assert "all pages verified" in output
    assert "integrity verified" in output


def test_device_mesh():
    output = _run("device_mesh.py")
    assert "failover to mirror" in output
    assert "hot boundaries merged away" in output
    assert "integrity verified" in output


def test_shared_notes():
    output = _run("shared_notes.py")
    assert "REFUSED" in output
    assert "replicas converged" in output


def test_evaluation_sweep(tmp_path):
    output = _run("evaluation_sweep.py", cwd=tmp_path)
    assert "mJ/KB" in output
    assert (tmp_path / "results" / "swap_cycle_sweep.csv").exists()
