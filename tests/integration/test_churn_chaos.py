"""Churn chaos: replication factor 3 over 5 stores, kill any 2 mid-run.

The acceptance bar for the replicated pipeline (ISSUE acceptance
criteria): with ``replication_factor=3`` across five stores, killing
any two of them mid-run — including with data loss and at-rest
corruption — never loses a cluster.  Every swap-in is digest-verified,
and after scrub ticks every cluster is back at full replication on the
surviving stores.

``CHAOS_SEED`` in the environment adds an extra seed to the matrix so
CI (and humans) can probe new schedules without editing the test.
"""

import itertools
import os

import pytest

from repro.clock import SimulatedClock
from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.faults import (
    ChurnEvent,
    ChurnInjector,
    ChurnPlan,
    FaultInjector,
    FaultPlan,
    FlakyStore,
)
from repro.resilience import ResilienceConfig, RetryPolicy
from tests.helpers import build_chain, chain_values

CHAIN = 60
CLUSTER = 10
CYCLES = 4
STORES = 5
FACTOR = 3

_SEEDS = [1, 2, 3]
if os.environ.get("CHAOS_SEED"):
    _SEEDS.append(int(os.environ["CHAOS_SEED"]))


def _build(seed, fault_plan=None):
    clock = SimulatedClock()
    space = Space(f"churnchaos-{seed}", heap_capacity=1 << 20, clock=clock)
    plan = fault_plan or FaultPlan(
        seed=seed,
        store_failure_rate=0.10,
        fetch_failure_rate=0.10,
        probe_failure_rate=0.05,
        latency_spike_rate=0.10,
        latency_spike_s=0.05,
    )
    injector = FaultInjector(plan, clock)
    stores = {}
    for i in range(STORES):
        flaky = FlakyStore(InMemoryStore(f"s{i}"), injector)
        stores[f"s{i}"] = flaky
        space.manager.add_store(flaky)
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=5,
                base_delay_s=0.05,
                multiplier=2.0,
                max_delay_s=1.0,
                jitter=0.25,
                deadline_s=120.0,
            ),
            failure_threshold=4,
            cooldown_s=3.0,
            degrade_to_local=True,
            seed=seed,
            replication_factor=FACTOR,
            scrub_interval_s=5.0,
        )
    )
    return space, stores, injector


def _run_churn_cycle(seed, kill_ids, lose_data=False):
    """One full run; churn kills ``kill_ids`` mid-way, revives later."""
    space, stores, injector = _build(seed)
    churn = ChurnInjector(
        ChurnPlan(
            events=tuple(
                ChurnEvent(at_s=8.0, device_id=d, action="kill", lose_data=lose_data)
                for d in kill_ids
            )
            + tuple(
                ChurnEvent(at_s=40.0, device_id=d, action="revive")
                for d in kill_ids
            )
        ),
        space.clock,
    )
    handle = space.ingest(build_chain(CHAIN), cluster_size=CLUSTER, root_name="h")
    scrubber = space.manager.resilience.scrubber

    for cycle in range(CYCLES):
        for sid in sorted(space.clusters()):
            cluster = space.clusters()[sid]
            if cluster.swappable() and cluster.oids:
                space.swap_out(sid)
        space.clock.advance(6.0)
        for event in churn.apply(stores):
            if event.action == "kill":
                space.manager.detach_store(stores[event.device_id], dead=True)
            elif event.action == "revive":
                space.manager.attach_store(stores[event.device_id])
        scrubber.tick()
        # traversal swaps everything back in, digest-verified
        assert chain_values(handle) == list(range(CHAIN)), (
            f"seed {seed}: data lost after killing {kill_ids} in cycle {cycle}"
        )
        space.verify_integrity()

    # settle: swap everything out once more and scrub to full replication
    for sid in sorted(space.clusters()):
        cluster = space.clusters()[sid]
        if cluster.swappable() and cluster.oids:
            space.swap_out(sid)
    scrubber.run_until_stable()
    placement = space.manager.resilience.placement
    for sid, record in placement.records().items():
        assert record.live_count >= FACTOR, (
            f"seed {seed}: sc-{sid} stuck at {record.live_count} replicas"
        )
    assert chain_values(handle) == list(range(CHAIN))
    space.verify_integrity()
    return space, injector


@pytest.mark.parametrize("seed", _SEEDS)
def test_killing_any_two_of_five_never_loses_a_cluster(seed):
    # "any 2": sweep every pair on the first seed, a rotating sample on
    # the rest (the full 10-pair sweep per seed is needless runtime)
    pairs = list(itertools.combinations([f"s{i}" for i in range(STORES)], 2))
    sample = pairs if seed == _SEEDS[0] else pairs[seed % len(pairs)::4]
    for kill_ids in sample:
        _run_churn_cycle(seed, kill_ids)


@pytest.mark.parametrize("seed", _SEEDS)
def test_killing_two_stores_with_data_loss_still_recovers(seed):
    space, _ = _run_churn_cycle(seed, ("s1", "s3"), lose_data=True)
    assert space.manager.stats.replicas_repaired > 0


@pytest.mark.parametrize("seed", _SEEDS)
def test_at_rest_corruption_fails_over_quarantines_and_repairs(seed):
    """One replica rots at rest each cycle: the swap-in must detect it,
    fail over to a healthy copy, and quarantine the bad one.

    Runs on a quiet fault plan so replica ranking stays stable and the
    rotted copy is provably the one each swap-in tries first — the
    transient-failure mix is covered by the kill-two suites above."""
    space, stores, injector = _build(seed, fault_plan=FaultPlan.empty(seed))
    handle = space.ingest(build_chain(CHAIN), cluster_size=CLUSTER, root_name="h")
    placement = space.manager.resilience.placement
    for cycle in range(CYCLES):
        for sid in sorted(space.clusters()):
            cluster = space.clusters()[sid]
            if cluster.swappable() and cluster.oids:
                space.swap_out(sid)
        # rot the copy the next swap-in will try first
        swapped = sorted(placement.records())
        victim_sid = swapped[cycle % len(swapped)]
        record = placement.get(victim_sid)
        first_holder = space.manager.bindings_for(victim_sid)[0]
        stores[first_holder.device_id].corrupt_at_rest(record.key)
        space.clock.advance(6.0)
        assert chain_values(handle) == list(range(CHAIN))
        space.verify_integrity()
    assert injector.stats.at_rest_corruptions == CYCLES
    assert space.manager.stats.replicas_quarantined == CYCLES

    # settle: full replication again, no quarantined copies left behind
    for sid in sorted(space.clusters()):
        cluster = space.clusters()[sid]
        if cluster.swappable() and cluster.oids:
            space.swap_out(sid)
    space.manager.resilience.scrubber.run_until_stable()
    for record in placement.records().values():
        assert record.live_count >= FACTOR
        assert not record.quarantined()
    assert chain_values(handle) == list(range(CHAIN))


def test_churn_chaos_replays_deterministically():
    def counters(seed):
        space, injector = _run_churn_cycle(seed, ("s0", "s4"))
        stats = space.manager.stats
        return (
            stats.swap_outs,
            stats.swap_ins,
            stats.retries,
            stats.failovers,
            stats.replicas_repaired,
            stats.replicas_quarantined,
            stats.scrub_bytes_repaired,
            injector.stats.total_faults,
        )

    assert counters(9) == counters(9)
