"""The ``python -m repro`` command-line entry point."""

import subprocess
import sys
from pathlib import Path


def _run(*args, timeout=180):
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return completed


def test_default_self_check():
    completed = _run()
    assert completed.returncode == 0, completed.stderr
    assert "self-check: OK" in completed.stdout
    assert "ICDCS 2007" in completed.stdout


def test_demo_scenario():
    completed = _run("demo")
    assert completed.returncode == 0, completed.stderr
    assert "data consistent:    True" in completed.stdout
    assert "swap-outs:" in completed.stdout


def test_figure5_subcommand_reduced():
    completed = _run("figure5", "--objects", "500", "--repeats", "1", timeout=300)
    # reduced sizes may not satisfy every shape check; the command must
    # still run the harness end to end and print the table
    assert "Performance impact of swapping" in completed.stdout
    assert "NO-SWAP" in completed.stdout


def test_hibernate_across_processes(tmp_path):
    """Hibernate in a child process, restore here: persistence is real."""
    script = tmp_path / "writer.py"
    script.write_text(
        "import sys\n"
        f"sys.path.insert(0, {str(Path.cwd())!r})\n"
        "from tests.helpers import build_chain, make_space\n"
        "from repro.core.hibernate import hibernate\n"
        "space = make_space()\n"
        "h = space.ingest(build_chain(12), cluster_size=4, root_name='h')\n"
        "h.set_value(99)\n"
        "space.swap_out(2)\n"
        f"hibernate(space, {str(tmp_path / 'snapshot')!r})\n"
        "print('written')\n"
    )
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=120
    )
    assert completed.returncode == 0, completed.stderr

    from repro.core.hibernate import restore
    from tests.helpers import chain_values

    revived = restore(tmp_path / "snapshot")
    assert chain_values(revived.get_root("h")) == [99] + list(range(1, 12))
    revived.verify_integrity()
