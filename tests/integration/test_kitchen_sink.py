"""Everything at once: the whole middleware running one long scenario.

Replication over the web-service bridge + mirrored swapping + archive +
adaptive tuning + policy-driven pressure relief + failure injection +
GC with server-side DGC-lite — all in one story, with consistency
checked throughout.  This is the test that catches cross-feature
interference.
"""

from __future__ import annotations

import pytest

from repro.comm import WebServiceClient
from repro.core.archive import SwapArchive
from repro.policy.tuning import AdaptiveTuner
from repro.replication import ObjectServer, Replicator
from repro.replication.server import WsServerClient
from repro.sim import ScenarioWorld, StoreSpec
from repro.stats import format_report, snapshot
from tests.helpers import Node, build_chain, chain_values


def test_kitchen_sink():
    # -- the resourceful side -------------------------------------------------
    server = ObjectServer("archive-server")
    master = build_chain(120)
    server.publish("data", master, cluster_size=12)

    # -- the constrained side --------------------------------------------------
    world = ScenarioWorld("pda", heap_capacity=3 * 1024)
    world.add_store(StoreSpec("desk-pc", capacity=2 << 20))
    world.add_store(StoreSpec("peer-pda", capacity=1 << 20))
    space = world.space
    space.manager.replication_factor = 2
    space.manager.validate_documents = True
    archive = SwapArchive(space)
    tuner = AdaptiveTuner(
        space, hot_crossings=30, max_cluster_objects=60, cooldown_ticks=0
    )

    client = WsServerClient(
        WebServiceClient(
            server.as_endpoint(), world.device.profile.make_link(world.clock)
        )
    )
    replicator = Replicator(space, client, clusters_per_swap=2, prefetch_frontier=1)

    # -- phase 1: replicate under pressure (the heap holds ~half the data) -----
    handle = replicator.replicate("data")
    expected = list(range(120))
    assert chain_values(handle) == expected
    assert space.manager.stats.swap_outs > 0, "pressure should have swapped"
    assert replicator.prefetched > 0
    space.verify_integrity()

    # -- phase 2: edits survive swap cycles, the archive records epochs --------
    handle.set_value(-1)
    expected[0] = -1
    sid = space.sid_of(handle)
    if space.clusters()[sid].swappable():
        space.swap_out(sid)
    assert chain_values(space.get_root("data")) == expected
    assert archive.archived_bytes() > 0

    # -- phase 3: a mirror holder vanishes mid-scenario -------------------------
    swapped_sids = [
        cluster_sid
        for cluster_sid, cluster in space.clusters().items()
        if cluster.is_swapped
    ]
    if swapped_sids:
        holders = space.manager.bindings_for(swapped_sids[0])
        if len(holders) == 2:
            world.vanish_with_data(holders[0].device_id)
            assert chain_values(space.get_root("data")) == expected
            world.come_back(holders[0].device_id)
    space.verify_integrity()

    # -- phase 4: hot traversal drives the tuner to merge ------------------------
    for _ in range(8):
        assert chain_values(space.get_root("data")) == expected
        tuner.step()
    merges = sum(
        1 for decision in tuner.decisions if decision.action == "merge"
    )
    assert merges > 0
    space.verify_integrity()

    # -- phase 5: discard everything; GC cleans device, stores, and server ------
    replica_count_before = server.replica_count("data")
    assert replica_count_before > 0
    space.del_root("data")
    del handle
    space.gc()
    assert space.object_count() == 0
    assert server.replica_count("data") == 0  # DGC-lite released everything
    # archived epochs may remain by design (retention is the archive's job)
    archive_keys = sum(
        len(world.store(name).keys()) for name in ("desk-pc", "peer-pda")
    )
    archive.prune(1, keep_last=0)
    space.verify_integrity()

    # -- the master copy was never touched ----------------------------------------
    assert master.value == 0

    # telemetry renders without error on the final state
    assert "pda" in format_report(snapshot(space))
