"""Chaos: a full swap lifecycle under a seeded ≥30% fault plan.

The acceptance bar for the resilient pipeline: with transient store and
link failures injected on more than 30% of operations (plus corruption,
interruptions and latency spikes), repeated swap-out/invoke/swap-in
cycles complete with referential integrity intact and zero lost
clusters — and replaying the same seed reproduces the exact same
retry/failover counts.
"""

import pytest

from repro.clock import SimulatedClock
from repro.core.space import Space
from repro.devices import InMemoryStore
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig, RetryPolicy
from tests.helpers import build_chain, chain_values

CHAIN = 60
CLUSTER = 10
CYCLES = 3


def _chaos_cycle(seed: int):
    """One complete chaos run; returns (counters, fault stats)."""
    clock = SimulatedClock()
    space = Space(f"chaos-{seed}", heap_capacity=1 << 20, clock=clock)
    plan = FaultPlan(
        seed=seed,
        store_failure_rate=0.35,
        fetch_failure_rate=0.35,
        drop_failure_rate=0.30,
        probe_failure_rate=0.15,
        corruption_rate=0.15,
        interruption_rate=0.10,
        latency_spike_rate=0.20,
        latency_spike_s=0.05,
    )
    injector = FaultInjector(plan, clock)
    for name in ("alpha", "beta", "gamma"):
        space.manager.add_store(FlakyStore(InMemoryStore(name), injector))
    space.manager.replication_factor = 2
    space.manager.enable_resilience(
        ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=6,
                base_delay_s=0.05,
                multiplier=2.0,
                max_delay_s=2.0,
                jitter=0.25,
                deadline_s=300.0,
            ),
            failure_threshold=5,
            cooldown_s=3.0,
            degrade_to_local=True,
            seed=seed,
        )
    )

    handle = space.ingest(build_chain(CHAIN), cluster_size=CLUSTER, root_name="h")
    for _ in range(CYCLES):
        for sid in sorted(space.clusters()):
            cluster = space.clusters()[sid]
            if cluster.swappable() and cluster.oids:
                space.swap_out(sid)
        # traversal transparently swaps every cluster back in — and
        # proves nothing was lost on the way
        assert chain_values(handle) == list(range(CHAIN))
        space.verify_integrity()

    # zero lost clusters: every cluster is resident and fully populated
    assert all(
        cluster.is_resident for cluster in space.clusters().values()
    ), "a cluster was stranded in the swapped state"
    stats = space.manager.stats
    assert stats.swap_outs >= CYCLES * (CHAIN // CLUSTER)
    assert stats.swap_ins == stats.swap_outs
    journal = space.manager.resilience.journal
    assert journal.stats.begins == stats.swap_outs + journal.stats.aborts
    assert not journal.pending()
    counters = (
        stats.retries,
        stats.failovers,
        stats.mirror_failovers,
        stats.circuit_opens,
        stats.circuit_closes,
        stats.degraded_swaps,
        stats.swap_outs,
        stats.swap_ins,
        stats.mirror_writes,
    )
    return counters, injector.stats, clock.now()


@pytest.mark.parametrize("seed", [7, 2026])
def test_chaos_cycle_survives_heavy_transient_failure(seed):
    counters, fault_stats, _ = _chaos_cycle(seed)
    # the plan must actually have hurt, and the pipeline must have healed
    assert fault_stats.total_faults > 20
    retries = counters[0]
    assert retries > 0


def test_chaos_runs_are_deterministic_per_seed():
    first = _chaos_cycle(seed=1234)
    second = _chaos_cycle(seed=1234)
    assert first[0] == second[0]  # identical retry/failover counts
    assert first[1] == second[1]  # identical injected faults
    assert first[2] == pytest.approx(second[2])  # identical simulated time


def test_chaos_differs_across_seeds():
    first = _chaos_cycle(seed=1)
    second = _chaos_cycle(seed=2)
    # same workload, different weather: the decision streams diverge
    assert first[1] != second[1]
