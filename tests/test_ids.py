"""Identifier allocation."""

import threading

from repro.ids import IdAllocator, IdSpace, ROOT_SID, format_swap_key


def test_allocator_monotonic():
    allocator = IdAllocator()
    values = [allocator.next() for _ in range(100)]
    assert values == sorted(values)
    assert len(set(values)) == 100


def test_allocator_start():
    allocator = IdAllocator(start=42)
    assert allocator.next() == 42


def test_reserve_above_skips_ids():
    allocator = IdAllocator()
    allocator.next()
    allocator.reserve_above(500)
    assert allocator.next() == 501


def test_reserve_above_never_goes_backwards():
    allocator = IdAllocator(start=1000)
    allocator.reserve_above(5)
    assert allocator.next() >= 1000


def test_allocator_thread_safety():
    allocator = IdAllocator()
    seen = []

    def grab():
        seen.extend(allocator.next() for _ in range(500))

    threads = [threading.Thread(target=grab) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(set(seen)) == 2000


def test_id_space_namespaces_independent():
    ids = IdSpace()
    assert ids.oids.next() == 1
    assert ids.cids.next() == 1
    assert ids.sids.next() == 1
    assert ids.oids.next() == 2


def test_root_sid_reserved():
    ids = IdSpace()
    assert ROOT_SID == 0
    assert ids.sids.next() != ROOT_SID


def test_swap_key_unique_per_epoch():
    first = format_swap_key("pda", 3, 1)
    second = format_swap_key("pda", 3, 2)
    assert first != second
    assert "sc-3" in first


def test_swap_key_includes_space():
    assert format_swap_key("a", 1, 1) != format_swap_key("b", 1, 1)
