"""Clocks."""

import pytest

from repro.clock import SimulatedClock, Stopwatch, WallClock


def test_simulated_clock_starts_at_zero():
    assert SimulatedClock().now() == 0.0


def test_simulated_clock_advances():
    clock = SimulatedClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now() == 2.0


def test_simulated_clock_rejects_negative():
    with pytest.raises(ValueError):
        SimulatedClock().advance(-1)


def test_simulated_clock_custom_start():
    assert SimulatedClock(start=10.0).now() == 10.0


def test_wall_clock_monotonic():
    clock = WallClock()
    first = clock.now()
    second = clock.now()
    assert second >= first


def test_stopwatch_on_simulated_clock():
    clock = SimulatedClock()
    watch = Stopwatch(clock)
    clock.advance(2.0)
    assert watch.elapsed() == 2.0
    assert watch.elapsed_ms() == 2000.0


def test_stopwatch_restart():
    clock = SimulatedClock()
    watch = Stopwatch(clock)
    clock.advance(5.0)
    watch.restart()
    clock.advance(1.0)
    assert watch.elapsed() == 1.0
