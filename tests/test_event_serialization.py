"""Every Event subclass round-trips through its dict form.

The JSONL/bench artifacts and the trace-correlation machinery both rely
on ``Event.to_dict`` / ``event_from_dict`` being exact inverses for
every event the system can emit — including classes added later (the
subclass walk in ``event_types`` is live).
"""

from __future__ import annotations

import dataclasses
import json
import typing

import pytest

from repro.events import Event, event_from_dict, event_types, topic_of

#: Deterministic sample values per annotated field type.
_SAMPLES = {
    str: "sample",
    int: 7,
    float: 2.5,
    bool: True,
    tuple: (1, 2, 3),
}


def _build(cls: type) -> Event:
    """Construct an instance with a sample value for every required field."""
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if (
            f.default is not dataclasses.MISSING
            or f.default_factory is not dataclasses.MISSING  # type: ignore[misc]
        ):
            continue  # defaults (incl. trace_id/span_id) round-trip anyway
        hint = hints.get(f.name, str)
        origin = typing.get_origin(hint) or hint
        sample = _SAMPLES.get(origin)
        if sample is None:
            sample = _SAMPLES[str]
        kwargs[f.name] = sample
    return cls(**kwargs)


ALL_EVENT_CLASSES = sorted(event_types().values(), key=lambda c: c.__name__)


def test_event_registry_is_nonempty():
    assert len(ALL_EVENT_CLASSES) >= 25


@pytest.mark.parametrize(
    "cls", ALL_EVENT_CLASSES, ids=lambda cls: cls.__name__
)
def test_round_trip(cls):
    event = _build(cls)
    data = event.to_dict()
    # the dict is JSON-clean (tuples became lists, values are scalars)
    rebuilt = event_from_dict(json.loads(json.dumps(data)))
    assert rebuilt == event
    assert type(rebuilt) is cls
    assert topic_of(rebuilt) == topic_of(cls)


@pytest.mark.parametrize(
    "cls", ALL_EVENT_CLASSES, ids=lambda cls: cls.__name__
)
def test_dict_carries_class_and_topic(cls):
    data = _build(cls).to_dict()
    assert data["event"] == cls.__name__
    assert data["topic"] == cls.topic


def test_trace_context_round_trips():
    cls = ALL_EVENT_CLASSES[0]
    event = dataclasses.replace(
        _build(cls), trace_id="t-000042", span_id="s-000099"
    )
    rebuilt = event_from_dict(event.to_dict())
    assert rebuilt.trace_id == "t-000042"
    assert rebuilt.span_id == "s-000099"


def test_trace_fields_do_not_affect_equality():
    event = _build(ALL_EVENT_CLASSES[0])
    stamped = dataclasses.replace(event, trace_id="t-000001", span_id="s-1")
    assert stamped == event


def test_unknown_class_rejected():
    with pytest.raises(ValueError, match="unknown event class"):
        event_from_dict({"event": "NoSuchEvent", "topic": "x"})


def test_topic_mismatch_rejected():
    data = _build(ALL_EVENT_CLASSES[0]).to_dict()
    data["topic"] = "definitely.not.this"
    with pytest.raises(ValueError, match="does not match"):
        event_from_dict(data)


def test_missing_class_name_rejected():
    with pytest.raises(ValueError, match="no 'event' class name"):
        event_from_dict({"topic": "swap.out"})
