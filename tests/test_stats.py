"""Telemetry snapshots."""

from repro.stats import format_report, snapshot
from tests.helpers import build_chain, chain_values, make_space


def test_snapshot_basic_counts(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    telemetry = snapshot(space)
    assert telemetry.resident_objects == 20
    assert telemetry.swapped_objects == 0
    assert telemetry.roots == 1
    assert len(telemetry.clusters) == 5  # roots + 4
    assert telemetry.heap_used == space.heap.used


def test_snapshot_after_swap(space):
    handle = space.ingest(build_chain(20), cluster_size=5, root_name="h")
    space.swap_out(2)
    telemetry = snapshot(space)
    assert telemetry.swapped_objects == 5
    assert telemetry.resident_objects == 15
    swapped = telemetry.swapped_clusters()
    assert len(swapped) == 1
    assert swapped[0].device_ids  # bound to a store
    assert telemetry.swap_outs == 1


def test_cluster_footprints_sum_to_heap(space):
    space.ingest(build_chain(20), cluster_size=5, root_name="h")
    telemetry = snapshot(space)
    assert (
        sum(record.footprint_bytes for record in telemetry.clusters)
        == telemetry.heap_used
    )


def test_crossings_reported(space):
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    chain_values(handle)
    telemetry = snapshot(space)
    by_sid = {record.sid: record for record in telemetry.clusters}
    assert by_sid[1].crossings > 0


def test_format_report(space):
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    text = format_report(snapshot(space))
    assert "sc-0 (roots)" in text
    assert "swapped" in text
    assert "1 out" in text


def test_mirror_counters_surface(space):
    from repro.devices import InMemoryStore

    space.manager.add_store(InMemoryStore("mirror"))
    space.manager.replication_factor = 2
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    telemetry = snapshot(space)
    assert telemetry.mirror_writes == 1
    assert "mirrors" in format_report(telemetry)


# -- unified counter naming (observability satellite) ------------------------


def test_counter_snapshot_from_manager_stats(space):
    from repro.stats import COUNTER_NAMES, counter_snapshot

    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    counters = counter_snapshot(space.manager.stats)
    assert counters["swap.out.count"] == 1
    assert counters["swap.out.bytes"] > 0
    assert counters["swap.in.count"] == 0
    # ManagerStats carries every unified counter
    assert set(counters) == set(COUNTER_NAMES)


def test_counter_snapshot_from_telemetry(space):
    from repro.stats import counter_snapshot

    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    from_stats = counter_snapshot(space.manager.stats)
    from_telemetry = counter_snapshot(snapshot(space))
    # the two sources agree wherever the telemetry carries the counter
    for name, value in from_telemetry.items():
        assert from_stats[name] == value
    assert from_telemetry["swap.out.count"] == 1


def test_counter_snapshot_passes_mappings_through():
    from repro.stats import counter_snapshot

    source = {"swap.out.count": 3}
    copied = counter_snapshot(source)
    assert copied == source
    assert copied is not source


def test_counter_diff_reports_only_changes(space):
    from repro.stats import counter_diff, counter_snapshot

    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    before = counter_snapshot(space.manager.stats)
    space.swap_out(2)
    deltas = counter_diff(before, space.manager.stats)
    assert deltas["swap.out.count"] == 1
    assert deltas["swap.out.bytes"] > 0
    assert "swap.in.count" not in deltas  # zero deltas omitted
    chain_values(handle)  # forces the reload
    deltas = counter_diff(before, space.manager.stats)
    assert deltas["swap.in.count"] == 1


def test_counter_diff_empty_when_nothing_happened(space):
    from repro.stats import counter_diff

    assert counter_diff(space.manager.stats, space.manager.stats) == {}
