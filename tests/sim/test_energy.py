"""The energy model."""

import pytest

from repro.sim.energy import (
    EnergyLedger,
    EnergyModel,
    PDA_ENERGY,
    WRIST_ENERGY,
    swap_cycle_energy,
)


def test_cpu_and_radio_joules():
    model = EnergyModel("t", cpu_active_w=0.5, radio_tx_w=0.1,
                        radio_rx_w=0.08, idle_w=0.01)
    assert model.cpu_joules(2.0) == pytest.approx(1.0)
    assert model.radio_joules(1.0, 2.0) == pytest.approx(0.1 + 0.16)
    assert model.idle_joules(10.0) == pytest.approx(0.1)


def test_ledger_accumulates():
    ledger = EnergyLedger(model=PDA_ENERGY)
    ledger.charge_cpu(0.1)
    ledger.charge_cpu(0.1)
    ledger.charge_radio_tx(1.0)
    ledger.charge_radio_rx(0.5)
    assert ledger.cpu_joules == pytest.approx(0.4 * 0.2)
    assert ledger.radio_joules == pytest.approx(0.1 * 1.0 + 0.085 * 0.5)
    assert ledger.total_joules == ledger.cpu_joules + ledger.radio_joules


def test_millijoules_per_kb():
    ledger = EnergyLedger(model=PDA_ENERGY)
    ledger.charge_radio_tx(1.0)  # 100 mJ
    assert ledger.millijoules_per_kb(2048) == pytest.approx(50.0)
    assert ledger.millijoules_per_kb(0) == 0.0


def test_swap_cycle_energy_scales_with_payload():
    small = swap_cycle_energy(1_000, 700_000, 0.05, cpu_seconds=0.001)
    large = swap_cycle_energy(100_000, 700_000, 0.05, cpu_seconds=0.001)
    assert large.total_joules > small.total_joules * 5


def test_wrist_cheaper_than_pda():
    pda = swap_cycle_energy(10_000, 700_000, 0.05, 0.01, model=PDA_ENERGY)
    wrist = swap_cycle_energy(10_000, 700_000, 0.05, 0.01, model=WRIST_ENERGY)
    assert wrist.total_joules < pda.total_joules


def test_describe_renders():
    ledger = swap_cycle_energy(10_000, 700_000, 0.05, 0.01)
    text = ledger.describe()
    assert "mJ" in text and "radio" in text
