"""Scenario world and the canned pressure scenario."""

import pytest

from repro.errors import SwapStoreUnavailableError
from repro.sim import ScenarioWorld, StoreSpec, run_pressure_scenario
from tests.helpers import build_chain, chain_values


def test_add_store_discovers():
    world = ScenarioWorld()
    world.add_store(StoreSpec("pc"))
    assert world.stores_in_range() == ["pc"]


def test_clean_departure_and_return():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("pc"))
    space = world.space
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    world.depart_cleanly("pc")
    with pytest.raises(SwapStoreUnavailableError):
        chain_values(handle)
    world.come_back("pc")
    assert chain_values(handle) == list(range(10))


def test_vanish_with_data_loses_cluster():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("pc"))
    space = world.space
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    world.vanish_with_data("pc")
    world.come_back("pc")  # device returns, but the XML is gone
    with pytest.raises(SwapStoreUnavailableError):
        chain_values(handle)
    # the resident half is still intact
    assert space.get_root("h").get_value() == 0


def test_transfers_charge_sim_clock():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("pc", bandwidth_bps=700_000))
    space = world.space
    space.ingest(build_chain(50), cluster_size=50, root_name="h")
    space.swap_out(1)
    assert world.clock.now() > 0


def test_swap_avoids_departed_stores():
    world = ScenarioWorld(heap_capacity=1 << 20)
    world.add_store(StoreSpec("first"))
    world.add_store(StoreSpec("second"))
    world.depart_cleanly("first")
    space = world.space
    space.ingest(build_chain(10), cluster_size=10, root_name="h")
    location = space.swap_out(1)
    assert location.device_id == "second"


def test_pressure_scenario_consistent():
    report = run_pressure_scenario()
    assert report.consistent
    assert report.swap_outs > 0
    assert report.swap_ins > 0
    assert report.drops >= 1
    assert report.sim_seconds > 0


def test_pressure_scenario_small_store_overflow():
    # tiny stores: some swaps go to the second device
    report = run_pressure_scenario(
        store_specs=[StoreSpec("tiny", capacity=6 << 10),
                     StoreSpec("big", capacity=4 << 20)],
    )
    assert report.consistent
    assert "big" in set(report.stores_used)


def test_describe():
    world = ScenarioWorld()
    world.add_store(StoreSpec("pc"))
    text = world.describe()
    assert "pc" in text and "sim time" in text
