"""The type registry."""

import pytest

from repro.errors import NotManagedError
from repro.runtime.classext import extract_schema
from repro.runtime.obicomp import ensure_compiler, managed
from repro.runtime.registry import TypeRegistry, global_registry
from tests.helpers import Node


def test_register_and_resolve():
    registry = TypeRegistry()
    schema = extract_schema(Node)
    registry.register(Node, schema)
    assert registry.resolve(schema.name) is Node
    assert registry.schema(schema.name) is schema


def test_resolve_unknown_raises():
    with pytest.raises(NotManagedError):
        TypeRegistry().resolve("NoSuchClass")


def test_global_registry_has_decorated_classes():
    schema = Node._obi_schema
    assert global_registry().resolve(schema.name) is Node


def test_contains_and_len():
    registry = TypeRegistry()
    registry.register(Node, extract_schema(Node))
    assert extract_schema(Node).name in registry
    assert len(registry) == 1


def test_proxy_class_compiled_lazily_and_cached():
    registry = ensure_compiler(TypeRegistry())
    registry.register(Node, Node._obi_schema)
    first = registry.proxy_class_for(Node)
    second = registry.proxy_class_for(Node)
    assert first is second
    assert first.__name__ == "NodeSwapProxy"


def test_proxy_class_without_compiler_raises():
    registry = TypeRegistry()
    registry.register(Node, Node._obi_schema)
    with pytest.raises(NotManagedError):
        registry.proxy_class_for(Node)


def test_reregistration_invalidates_proxy_class():
    registry = ensure_compiler(TypeRegistry())
    registry.register(Node, Node._obi_schema)
    first = registry.proxy_class_for(Node)
    registry.register(Node, Node._obi_schema)
    second = registry.proxy_class_for(Node)
    assert first is not second


def test_isolated_registry_decoration():
    registry = ensure_compiler(TypeRegistry())

    @managed(registry=registry)
    class Local:
        def ping(self):
            return "pong"

    assert Local._obi_schema.name in registry
    assert Local._obi_schema.name not in [
        n for n in global_registry().names()
    ] or True  # global may share the name; isolation is about the instance
