"""Schema extraction."""

from repro.runtime.classext import (
    declared_field_names,
    extract_schema,
    instance_fields,
    is_managed,
    is_proxy,
    public_method_names,
    schema_of,
)
from tests.helpers import Holder, Node


def test_public_methods_discovered():
    methods = public_method_names(Node)
    assert "get_value" in methods and "get_next" in methods


def test_private_methods_excluded():
    class WithPrivate:
        def visible(self):
            return 1

        def _hidden(self):
            return 2

    assert public_method_names(WithPrivate) == ["visible"]


def test_dunder_protocol_methods_forwarded():
    class Sized:
        def __len__(self):
            return 3

        def item(self):
            return None

    methods = public_method_names(Sized)
    assert "__len__" in methods and "item" in methods


def test_init_and_identity_dunders_excluded():
    methods = public_method_names(Node)
    assert "__init__" not in methods
    assert "__eq__" not in methods


def test_inherited_methods_included():
    class Base:
        def base_method(self):
            return 1

    class Child(Base):
        def child_method(self):
            return 2

    methods = public_method_names(Child)
    assert "base_method" in methods and "child_method" in methods


def test_static_and_class_methods_excluded():
    class Mixed:
        def plain(self):
            return 1

        @staticmethod
        def helper():
            return 2

        @classmethod
        def maker(cls):
            return 3

    assert public_method_names(Mixed) == ["plain"]


def test_declared_fields_from_annotations():
    class Annotated:
        name: str
        count: int
        _internal: int

    fields = declared_field_names(Annotated)
    assert fields == ["name", "count"]


def test_extract_schema():
    schema = extract_schema(Node, size_hint=32)
    assert schema.name.endswith("Node")
    assert schema.size_hint == 32
    assert "get_value" in schema.public_methods


def test_is_managed_and_is_proxy():
    node = Node(1)
    assert is_managed(node)
    assert not is_proxy(node)
    assert not is_managed(42)


def test_schema_of_unmanaged_raises():
    import pytest

    from repro.errors import NotManagedError

    with pytest.raises(NotManagedError):
        schema_of(dict)


def test_instance_fields_excludes_internals():
    node = Node(7)
    object.__setattr__(node, "_obi_oid", 1)
    fields = instance_fields(node)
    assert fields == {"value": 7, "next": None}


def test_instance_fields_keeps_app_underscore_fields():
    node = Node(1)
    node._cache = "keep me"
    assert instance_fields(node)["_cache"] == "keep me"
