"""The obicomp proxy compiler."""

import pytest

from repro import managed
from repro.core.swap_proxy import SwapClusterProxyBase
from repro.runtime.obicomp import compile_proxy_class
from tests.helpers import Node, build_chain, make_space


def test_managed_sets_markers():
    assert Node._obi_managed is True
    assert Node._obi_schema is not None


def test_managed_with_size():
    @managed(size=128)
    class Sized:
        def noop(self):
            return None

    assert Sized._obi_size_hint == 128


def test_proxy_class_shape():
    proxy_class = compile_proxy_class(Node)
    assert issubclass(proxy_class, SwapClusterProxyBase)
    assert proxy_class._obi_target_class is Node
    assert hasattr(proxy_class, "get_value")
    assert proxy_class.__slots__ == ()


def test_proxy_class_rejects_unmanaged():
    class Plain:
        pass

    with pytest.raises(TypeError):
        compile_proxy_class(Plain)


def test_proxies_cannot_be_constructed_directly():
    proxy_class = compile_proxy_class(Node)
    with pytest.raises(TypeError):
        proxy_class()


def test_generated_method_forwards_and_translates():
    space = make_space()
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    assert handle.get_value() == 0
    nxt = handle.get_next()
    assert nxt.get_value() == 1


def test_generated_method_with_arguments():
    space = make_space()
    handle = space.ingest(build_chain(3), cluster_size=1, root_name="h")
    assert handle.set_value(42) == 42
    assert handle.get_value() == 42


def test_exact_arity_wrapper_signature_errors():
    space = make_space()
    handle = space.ingest(build_chain(3), cluster_size=1, root_name="h")
    with pytest.raises(TypeError):
        handle.get_value(1, 2)  # too many arguments


def test_generic_fallback_for_varargs_methods():
    @managed
    class Variadic:
        def collect(self, *items, **named):
            return (items, named)

    space = make_space()
    first = Variadic()
    space.ingest(first, cluster_size=1, root_name="v")
    proxy = space.get_root("v")
    items, named = proxy.collect(1, 2, key="x")
    assert items == (1, 2) and named == {"key": "x"}


def test_default_arguments_fall_back_to_generic_wrapper():
    @managed
    class Defaulted:
        def greet(self, name="world"):
            return f"hello {name}"

    space = make_space()
    space.ingest(Defaulted(), cluster_size=1, root_name="d")
    proxy = space.get_root("d")
    assert proxy.greet() == "hello world"
    assert proxy.greet("there") == "hello there"


def test_kwargs_through_generic_wrapper_translate_references():
    space = make_space()
    handle = space.ingest(build_chain(4), cluster_size=2, root_name="h")
    other = handle.get_next().get_next()  # different cluster
    # identity_of returns its argument; passing a proxy across must
    # round-trip to something equal to the original
    assert handle.identity_of(other) == other


def test_forwarded_dunder_len():
    @managed
    class Bag:
        def __init__(self):
            self.items = [1, 2, 3]

        def __len__(self):
            return len(self.items)

        def touch(self):
            return None

    space = make_space()
    space.ingest(Bag(), cluster_size=1, root_name="bag")
    assert len(space.get_root("bag")) == 3


def test_managed_preserves_class_identity():
    node = Node(1)
    assert type(node) is Node
    assert node.get_value() == 1  # undecorated behaviour intact
