"""Replication proxies (object-fault handlers)."""

import pytest

from repro.replication import DirectServerClient, ObjectServer, Replicator
from repro.replication.proxies import ReplicationProxy
from tests.helpers import build_chain, make_space


def _setup():
    server = ObjectServer()
    server.publish("list", build_chain(20), cluster_size=10)
    space = make_space()
    replicator = Replicator(space, DirectServerClient(server))
    handle = replicator.replicate("list")
    return space, replicator, handle


def _frontier_proxy(space):
    # the last object of cluster 1 holds the frontier replication proxy
    member = space._objects[sorted(space.clusters()[1].oids)[-1]]
    value = member.next
    assert isinstance(value, ReplicationProxy)
    return value


def test_attribute_access_faults(space=None):
    space, replicator, handle = _setup()
    proxy = _frontier_proxy(space)
    assert proxy.value == 10  # field access on the proxy faults cluster 2
    assert replicator.clusters_fetched == 2


def test_method_call_faults():
    space, replicator, handle = _setup()
    proxy = _frontier_proxy(space)
    assert proxy.get_value() == 10


def test_fault_replaces_holder_fields():
    space, replicator, handle = _setup()
    proxy = _frontier_proxy(space)
    holder = space._objects[sorted(space.clusters()[1].oids)[-1]]
    proxy.get_value()
    assert not isinstance(holder.next, ReplicationProxy)


def test_equality_faults():
    space, replicator, handle = _setup()
    proxy = _frontier_proxy(space)
    other = _frontier_proxy(space) if replicator.clusters_fetched == 1 else proxy
    assert (proxy == proxy) is True


def test_setattr_faults_and_writes():
    space, replicator, handle = _setup()
    proxy = _frontier_proxy(space)
    proxy.value = 777
    assert proxy.get_value() == 777


def test_extern_attrs():
    space, replicator, handle = _setup()
    proxy = _frontier_proxy(space)
    attrs = proxy._obi_extern_attrs()
    assert set(attrs) == {"cid", "soid"}


def test_repr_does_not_fault():
    space, replicator, handle = _setup()
    proxy = _frontier_proxy(space)
    fetched_before = replicator.clusters_fetched
    repr(proxy)
    assert replicator.clusters_fetched == fetched_before
