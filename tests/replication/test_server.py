"""The master object server."""

import pytest

from repro.comm import LoopbackLink, WebServiceClient
from repro.errors import ReplicationError
from repro.replication.server import (
    DirectServerClient,
    ObjectServer,
    WsServerClient,
    parse_replica_document,
)
from tests.helpers import Node, Pair, build_chain


def test_publish_and_describe():
    server = ObjectServer()
    descriptor = server.publish("list", build_chain(23), cluster_size=5)
    assert descriptor.cluster_count == 5
    assert descriptor.object_count == 23
    assert descriptor.class_name.endswith("Node")
    assert descriptor.root_cid == server.describe_root("list").root_cid


def test_publish_twice_rejected():
    server = ObjectServer()
    server.publish("x", build_chain(3))
    with pytest.raises(ReplicationError):
        server.publish("x", build_chain(3))


def test_unknown_root():
    with pytest.raises(ReplicationError):
        ObjectServer().describe_root("ghost")


def test_fetch_cluster_document_shape():
    server = ObjectServer()
    descriptor = server.publish("list", build_chain(10), cluster_size=5)
    text = server.fetch_cluster("list", descriptor.root_cid)
    cid, frontier, body, version = parse_replica_document(text)
    assert cid == descriptor.root_cid
    assert len(frontier) == 1  # one edge to the second cluster
    assert body.startswith("<swap-cluster")
    assert version == 1


def test_last_cluster_has_empty_frontier():
    server = ObjectServer()
    server.publish("list", build_chain(10), cluster_size=5)
    last_cid = server.cluster_ids("list")[-1]
    _, frontier, _, _ = parse_replica_document(server.fetch_cluster("list", last_cid))
    assert frontier == []


def test_fetch_unknown_cluster():
    server = ObjectServer()
    server.publish("list", build_chain(5))
    with pytest.raises(ReplicationError):
        server.fetch_cluster("list", 999)


def test_frontier_deduplicates_targets():
    server = ObjectServer()
    shared = Node(7)
    root = Pair(Pair(shared, shared), Pair(shared, None))
    server.publish("diamond", root, cluster_size=3)
    root_cid = server.describe_root("diamond").root_cid
    _, frontier, _, _ = parse_replica_document(server.fetch_cluster("diamond", root_cid))
    soids = [soid for _, soid in frontier]
    assert len(soids) == len(set(soids))


def test_unpublish():
    server = ObjectServer()
    server.publish("x", build_chain(3))
    server.unpublish("x")
    assert server.published_roots() == []


def test_ws_client_parity():
    server = ObjectServer()
    server.publish("list", build_chain(10), cluster_size=5)
    direct = DirectServerClient(server)
    remote = WsServerClient(WebServiceClient(server.as_endpoint(), LoopbackLink()))
    assert remote.describe_root("list") == direct.describe_root("list")
    cid = direct.describe_root("list").root_cid
    assert remote.fetch_cluster("list", cid) == direct.fetch_cluster("list", cid)


def test_clusters_served_counter():
    server = ObjectServer()
    server.publish("list", build_chain(10), cluster_size=5)
    for cid in server.cluster_ids("list"):
        server.fetch_cluster("list", cid)
    assert server.clusters_served == 2
