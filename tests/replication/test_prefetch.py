"""Frontier prefetching (hoarding extension)."""

import pytest

from repro.replication import DirectServerClient, ObjectServer, Replicator
from tests.helpers import build_chain, chain_values, make_space


def _setup(prefetch=0, n=60, cluster_size=10):
    server = ObjectServer()
    server.publish("list", build_chain(n), cluster_size=cluster_size)
    space = make_space()
    replicator = Replicator(
        space, DirectServerClient(server), prefetch_frontier=prefetch
    )
    return server, space, replicator


def test_prefetch_zero_is_pure_on_demand():
    _, space, replicator = _setup(prefetch=0)
    handle = replicator.replicate("list")
    chain_values(handle)
    assert replicator.faults == 5
    assert replicator.prefetched == 0


def test_prefetch_one_halves_faults():
    _, space, replicator = _setup(prefetch=1)
    handle = replicator.replicate("list")
    chain_values(handle)
    assert replicator.clusters_fetched == 6
    # each fault brings its cluster plus the next: fewer faults
    assert replicator.faults < 5
    assert replicator.prefetched > 0
    space.verify_integrity()


def test_prefetch_large_budget_fetches_whole_chain():
    _, space, replicator = _setup(prefetch=10)
    handle = replicator.replicate("list")
    handle.get_value()
    # first fault cascades down the frontier chain
    cursor = handle
    for _ in range(10):
        cursor = cursor.get_next()
    cursor.get_value()
    assert replicator.faults == 1
    assert replicator.clusters_fetched == 6
    assert chain_values(handle) == list(range(60))
    assert replicator.faults == 1  # nothing left to fault


def test_prefetch_counts_against_heap_pressure():
    server = ObjectServer()
    server.publish("list", build_chain(100), cluster_size=10)
    space = make_space(heap_capacity=2500)
    replicator = Replicator(
        space, DirectServerClient(server), prefetch_frontier=3
    )
    handle = replicator.replicate("list")
    assert chain_values(handle) == list(range(100))
    assert space.manager.stats.swap_outs > 0  # prefetching forced swaps
    space.verify_integrity()


def test_negative_prefetch_rejected():
    server = ObjectServer()
    server.publish("list", build_chain(10), cluster_size=5)
    with pytest.raises(ValueError):
        Replicator(
            make_space(), DirectServerClient(server), prefetch_frontier=-1
        )
