"""DGC-lite: server-side replica reference listing."""

import pytest

from repro.comm import LoopbackLink, WebServiceClient
from repro.errors import ReplicationError
from repro.replication import DirectServerClient, ObjectServer, Replicator
from repro.replication.server import WsServerClient
from tests.helpers import build_chain, chain_values, make_space


def _setup(n=30, cluster_size=10, client_factory=DirectServerClient):
    server = ObjectServer()
    server.publish("list", build_chain(n), cluster_size=cluster_size)
    space = make_space()
    if client_factory is DirectServerClient:
        client = DirectServerClient(server)
    else:
        client = WsServerClient(
            WebServiceClient(server.as_endpoint(), LoopbackLink())
        )
    replicator = Replicator(space, client)
    return server, space, replicator


def test_materialization_registers_replica():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")
    root_cid = server.describe_root("list").root_cid
    assert server.replica_holders("list", root_cid) == ["test"]
    assert server.replica_count("list") == 1


def test_full_walk_registers_all_clusters():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")
    chain_values(handle)
    assert server.replica_count("list") == 3
    assert server.unreplicated_clusters("list") == []


def test_collection_unregisters():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")
    chain_values(handle)
    space.del_root("list")
    del handle
    space.gc()
    assert server.replica_count("list") == 0
    assert server.unreplicated_clusters("list") == server.cluster_ids("list")


def test_partial_collection_partial_unregister():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")  # only the root cluster
    assert server.replica_count("list") == 1
    space.del_root("list")
    del handle
    space.gc()
    assert server.replica_count("list") == 0


def test_swapped_replica_stays_registered():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")
    chain_values(handle)
    sid = space.sid_of(handle)
    space.swap_out(sid)
    # the replica still exists (as XML on a store): registration holds
    assert server.replica_count("list") == 3


def test_gc_of_swapped_replica_unregisters():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")
    chain_values(handle)
    sid = space.sid_of(handle)
    space.del_root("list")
    del handle
    space.gc()
    assert server.replica_count("list") == 0


def test_two_devices_tracked_separately():
    server = ObjectServer()
    server.publish("list", build_chain(10), cluster_size=10)
    client = DirectServerClient(server)
    alpha, beta = make_space("alpha"), make_space("beta")
    Replicator(alpha, client).replicate("list")
    Replicator(beta, client).replicate("list")
    root_cid = server.describe_root("list").root_cid
    assert server.replica_holders("list", root_cid) == ["alpha", "beta"]
    alpha.del_root("list")
    alpha.gc()
    assert server.replica_holders("list", root_cid) == ["beta"]


def test_registration_over_web_service_bridge():
    server, space, replicator = _setup(client_factory=WsServerClient)
    handle = replicator.replicate("list")
    chain_values(handle)
    assert server.replica_count("list") == 3
    space.del_root("list")
    del handle
    space.gc()
    assert server.replica_count("list") == 0


def test_unregister_idempotent():
    server = ObjectServer()
    server.publish("list", build_chain(5), cluster_size=5)
    server.register_replica("list", 1, "pda")
    server.unregister_replica("list", 1, "pda")
    server.unregister_replica("list", 1, "pda")
    assert server.replica_holders("list", 1) == []


def test_register_unknown_root_rejected():
    server = ObjectServer()
    with pytest.raises(ReplicationError):
        server.register_replica("ghost", 1, "pda")
