"""Incremental replication + proxy replacement + swapping interplay."""

import pytest

from repro.core.utils import SwapClusterUtils
from repro.events import ClusterReplicatedEvent, ObjectFaultEvent
from repro.replication import DirectServerClient, ObjectServer, Replicator
from tests.helpers import Node, Pair, build_chain, chain_values, make_space


def _setup(n=50, cluster_size=10, clusters_per_swap=1, **space_kwargs):
    server = ObjectServer()
    server.publish("list", build_chain(n), cluster_size=cluster_size)
    space = make_space(**space_kwargs)
    replicator = Replicator(
        space, DirectServerClient(server), clusters_per_swap=clusters_per_swap
    )
    return server, space, replicator


def test_replicate_fetches_only_root_cluster():
    server, space, replicator = _setup()
    replicator.replicate("list")
    assert space.object_count() == 10
    assert replicator.clusters_fetched == 1
    assert replicator.pending_proxy_count() == 1


def test_navigation_faults_in_remaining_clusters():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")
    assert chain_values(handle) == list(range(50))
    assert replicator.clusters_fetched == 5
    assert replicator.faults == 4
    assert space.bus.count(ObjectFaultEvent) == 4
    space.verify_integrity()


def test_proxy_replacement_to_raw_within_swap_cluster():
    # two replication clusters grouped into ONE swap-cluster: after both
    # materialize, the edge between them must be raw (full speed)
    server, space, replicator = _setup(n=20, cluster_size=10, clusters_per_swap=2)
    handle = replicator.replicate("list")
    chain_values(handle)
    raw = space.resolve(handle)
    cursor = raw
    hops = 0
    while getattr(cursor, "next", None) is not None:
        assert not SwapClusterUtils.is_swap_proxy(cursor.next)
        cursor = cursor.next
        hops += 1
    assert hops == 19  # the whole chain is raw inside one swap-cluster


def test_proxy_replacement_to_swap_proxy_across_swap_clusters():
    server, space, replicator = _setup(n=20, cluster_size=10, clusters_per_swap=1)
    handle = replicator.replicate("list")
    chain_values(handle)
    raw = space.resolve(handle)
    cursor = raw
    boundary_proxies = 0
    for _ in range(19):
        value = cursor.next
        if SwapClusterUtils.is_swap_proxy(value):
            boundary_proxies += 1
            cursor = space.resolve(value)
        else:
            cursor = value
    assert boundary_proxies == 1  # exactly the swap-cluster boundary


def test_replicate_twice_idempotent():
    server, space, replicator = _setup()
    first = replicator.replicate("list")
    second = replicator.replicate("list")
    assert first == second
    assert replicator.clusters_fetched == 1


def test_prefetch():
    server, space, replicator = _setup()
    replicator.replicate("list")
    replicator.prefetch("list", server.cluster_ids("list"))
    assert replicator.clusters_fetched == 5
    assert replicator.faults == 0
    handle = space.get_root("list")
    assert chain_values(handle) == list(range(50))


def test_cluster_events_emitted():
    server, space, replicator = _setup()
    handle = replicator.replicate("list")
    chain_values(handle)
    assert space.bus.count(ClusterReplicatedEvent) == 5
    assert space.manager.stats.replicated_clusters == 5


def test_swap_cycle_with_pending_frontier():
    """A cluster holding replication proxies can swap out; the <extref>
    wire reference reconnects on reload."""
    server, space, replicator = _setup(n=30, cluster_size=10)
    handle = replicator.replicate("list")
    assert replicator.pending_proxy_count() == 1
    space.swap_out(1)
    space.verify_integrity()
    assert chain_values(handle) == list(range(30))
    space.verify_integrity()


def test_swap_cycle_after_full_replication():
    server, space, replicator = _setup(n=30, cluster_size=10)
    handle = replicator.replicate("list")
    chain_values(handle)
    for sid in (1, 2, 3):
        space.swap_out(sid)
        assert chain_values(handle) == list(range(30))
        space.verify_integrity()


def test_replication_under_memory_pressure():
    # heap too small for the whole list: earlier clusters must swap out
    # automatically while later ones stream in
    server, space, replicator = _setup(
        n=100, cluster_size=10, heap_capacity=2500
    )
    handle = replicator.replicate("list")
    assert chain_values(handle) == list(range(100))
    assert space.manager.stats.swap_outs > 0
    space.verify_integrity()


def test_extern_resolution_to_materialized_target():
    # swap a cluster holding a frontier proxy; materialize the frontier
    # through ANOTHER path; then reload: the extref must resolve to a
    # swap-cluster-proxy, not a new replication proxy
    server, space, replicator = _setup(n=20, cluster_size=10)
    handle = replicator.replicate("list")
    space.swap_out(1)
    replicator.prefetch("list", [server.cluster_ids("list")[1]])
    assert chain_values(handle) == list(range(20))
    assert replicator.pending_proxy_count() == 0
    space.verify_integrity()


def test_shared_structure_replicates_once():
    server = ObjectServer()
    shared = Node(7)
    root = Pair(Pair(shared, None), shared)
    server.publish("diamond", root, cluster_size=2)
    space = make_space()
    replicator = Replicator(space, DirectServerClient(server))
    handle = replicator.replicate("diamond")
    left_shared = handle.get_left().get_left()
    right_shared = handle.get_right()
    assert SwapClusterUtils.equals(left_shared, right_shared)
    assert left_shared.get_value() == 7
    space.verify_integrity()


def test_invalid_clusters_per_swap():
    server, space, _ = _setup()
    with pytest.raises(ValueError):
        Replicator(space, DirectServerClient(server), clusters_per_swap=0)
