"""Push/pull replica reintegration."""

import pytest

from repro.comm import LoopbackLink, WebServiceClient
from repro.errors import SyncConflictError, SyncError
from repro.replication import DirectServerClient, ObjectServer, Replicator
from repro.replication.server import WsServerClient
from repro.replication.sync import ReplicaSync
from tests.helpers import Node, build_chain, chain_values, make_space


def _setup(n=30, cluster_size=10, ws=False):
    server = ObjectServer()
    master = build_chain(n)
    server.publish("data", master, cluster_size=cluster_size)
    space = make_space()
    client = (
        WsServerClient(WebServiceClient(server.as_endpoint(), LoopbackLink()))
        if ws
        else DirectServerClient(server)
    )
    replicator = Replicator(space, client)
    handle = replicator.replicate("data")
    chain_values(handle)  # materialize everything
    sync = ReplicaSync(replicator)
    return server, master, space, replicator, handle, sync


def test_clean_replica_is_not_dirty():
    server, master, space, replicator, handle, sync = _setup()
    assert sync.dirty_clusters() == []


def test_local_write_marks_dirty():
    server, master, space, replicator, handle, sync = _setup()
    handle.set_value(999)
    root_cid = server.describe_root("data").root_cid
    assert sync.dirty(root_cid)
    assert sync.dirty_clusters() == [root_cid]


def test_push_updates_master():
    server, master, space, replicator, handle, sync = _setup()
    handle.set_value(999)
    root_cid = server.describe_root("data").root_cid
    result = sync.push(root_cid)
    assert result.accepted and result.version == 2
    assert master.value == 999
    assert not sync.dirty(root_cid)


def test_push_preserves_master_topology():
    server, master, space, replicator, handle, sync = _setup()
    # re-point the replica's head to skip one node, then push
    second_next = handle.get_next().get_next()
    handle.next = second_next
    root_cid = server.describe_root("data").root_cid
    sync.push(root_cid)
    assert master.next.value == 2  # master edge re-pointed
    # cross-cluster master edges stay raw master references
    cursor = master
    count = 0
    while cursor is not None:
        cursor = cursor.next
        count += 1
    assert count == 29  # one node skipped


def test_push_conflict_detected():
    server, master, space, replicator, handle, sync = _setup()
    root_cid = server.describe_root("data").root_cid
    # another device pushes first
    other_space = make_space("other")
    other_repl = Replicator(other_space, DirectServerClient(server))
    other_handle = other_repl.replicate("data")
    other_sync = ReplicaSync(other_repl)
    other_handle.set_value(111)
    other_sync.push(root_cid)

    handle.set_value(222)
    with pytest.raises(SyncConflictError):
        sync.push(root_cid)
    assert master.value == 111  # the refused push changed nothing


def test_pull_after_conflict_then_push():
    server, master, space, replicator, handle, sync = _setup()
    root_cid = server.describe_root("data").root_cid
    other_repl = Replicator(make_space("other"), DirectServerClient(server))
    other_handle = other_repl.replicate("data")
    other_sync = ReplicaSync(other_repl)
    other_handle.set_value(111)
    other_sync.push(root_cid)

    handle.set_value(222)
    with pytest.raises(SyncConflictError):
        sync.push(root_cid)
    version = sync.pull(root_cid, overwrite=True)
    assert version == 2
    assert handle.get_value() == 111  # local replica refreshed
    handle.set_value(222)
    result = sync.push(root_cid)  # now based on the current version
    assert result.accepted
    assert master.value == 222


def test_pull_refuses_to_clobber_dirty_replica():
    server, master, space, replicator, handle, sync = _setup()
    root_cid = server.describe_root("data").root_cid
    handle.set_value(999)
    with pytest.raises(SyncConflictError):
        sync.pull(root_cid)


def test_pull_preserves_handles_and_proxies():
    server, master, space, replicator, handle, sync = _setup()
    root_cid = server.describe_root("data").root_cid
    master.value = 424242  # master-side change
    server._graph("data").versions[root_cid] += 1
    sync.pull(root_cid)
    assert handle.get_value() == 424242  # the old handle sees new state
    assert chain_values(space.get_root("data"))[0] == 424242
    space.verify_integrity()


def test_push_swapped_cluster_reloads_first():
    server, master, space, replicator, handle, sync = _setup()
    root_cid = server.describe_root("data").root_cid
    handle.set_value(7)
    space.swap_out(space.sid_of(handle))
    result = sync.push(root_cid)
    assert result.accepted
    assert master.value == 7


def test_push_rejects_device_created_objects():
    server, master, space, replicator, handle, sync = _setup()
    root_cid = server.describe_root("data").root_cid
    raw_head = space.resolve(handle)
    space.attach(raw_head, "next", Node(12345))  # absorbed new object
    with pytest.raises(SyncError, match="device-created"):
        sync.push(root_cid)


def test_push_unknown_cluster():
    server, master, space, replicator, handle, sync = _setup()
    with pytest.raises(SyncError):
        sync.push(999)


def test_status():
    server, master, space, replicator, handle, sync = _setup()
    root_cid = server.describe_root("data").root_cid
    status = sync.status(root_cid)
    assert not status.dirty and not status.behind
    assert status.local_version == status.server_version == 1
    # master moves ahead
    other_repl = Replicator(make_space("other"), DirectServerClient(server))
    other_handle = other_repl.replicate("data")
    other_sync = ReplicaSync(other_repl)
    other_handle.set_value(5)
    other_sync.push(root_cid)
    status = sync.status(root_cid)
    assert status.behind and status.server_version == 2


def test_sync_over_web_service_bridge():
    server, master, space, replicator, handle, sync = _setup(ws=True)
    root_cid = server.describe_root("data").root_cid
    handle.set_value(31337)
    result = sync.push(root_cid)
    assert result.accepted
    assert master.value == 31337
    assert sync.status(root_cid).server_version == 2


def test_push_all():
    server, master, space, replicator, handle, sync = _setup()
    handle.set_value(1)
    tail = handle
    while tail.get_next() is not None:
        tail = tail.get_next()
    tail.set_value(2)
    results = sync.push_all()
    assert len(results) == 2
    assert all(result.accepted for result in results.values())
    assert sync.dirty_clusters() == []
