"""Property-based swap-cycle round-trips over random object graphs.

Hypothesis builds arbitrary graphs (random payload values, random
topology including shared nodes and cycles, container fields), ingests
them, swaps every swappable cluster out and back, and asserts the
application-visible state is bit-identical.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import managed
from tests.helpers import make_space


@managed
class GraphNode:
    """A node with a scalar payload, two edges, and a container field."""

    def __init__(self, payload):
        self.payload = payload
        self.left = None
        self.right = None
        self.bag = []

    def get_payload(self):
        return self.payload

    def get_left(self):
        return self.left

    def get_right(self):
        return self.right

    def get_bag(self):
        return self.bag


payloads = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)


@st.composite
def graphs(draw):
    """(nodes, edges) — a random graph over 1..12 nodes."""
    count = draw(st.integers(min_value=1, max_value=12))
    node_payloads = draw(
        st.lists(payloads, min_size=count, max_size=count)
    )
    edge_count = draw(st.integers(min_value=0, max_value=2 * count))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, count - 1),
                st.integers(0, count - 1),
                st.sampled_from(["left", "right", "bag"]),
            ),
            min_size=edge_count,
            max_size=edge_count,
        )
    )
    return node_payloads, edges


def _build(node_payloads, edges):
    nodes = [GraphNode(payload) for payload in node_payloads]
    for source, target, kind in edges:
        if kind == "bag":
            nodes[source].bag.append(nodes[target])
        else:
            setattr(nodes[source], kind, nodes[target])
    # chain everything off node 0 so the whole graph is reachable
    for index in range(1, len(nodes)):
        nodes[0].bag.append(nodes[index])
    return nodes[0]


def _observe(space, handle, budget=200):
    """A deterministic serialization of the visible graph state."""
    seen = {}
    order = []

    def visit(value):
        if len(order) > budget:
            return "..."
        from repro.core.utils import SwapClusterUtils

        if getattr(type(value), "_obi_is_proxy", False) or getattr(
            type(value), "_obi_managed", False
        ):
            oid = SwapClusterUtils.oid_of(value)
            if oid in seen:
                return f"#<{seen[oid]}>"
            seen[oid] = len(seen)
            order.append(oid)
            raw = space.resolve(value)
            return (
                f"node{seen[oid]}(",
                repr(raw.payload),
                visit(raw.left) if raw.left is not None else "-",
                visit(raw.right) if raw.right is not None else "-",
                tuple(visit(item) for item in raw.bag),
            )
        return repr(value)

    return visit(handle)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(graph=graphs(), cluster_size=st.integers(min_value=1, max_value=5))
def test_swap_cycle_roundtrip_arbitrary_graphs(graph, cluster_size):
    node_payloads, edges = graph
    space = make_space(heap_capacity=8 << 20)
    root = _build(node_payloads, edges)
    handle = space.ingest(root, cluster_size=cluster_size, root_name="g")
    before = _observe(space, handle)
    space.verify_integrity()

    for sid, cluster in list(space.clusters().items()):
        if cluster.swappable() and cluster.oids:
            space.swap_out(sid)
    space.verify_integrity()

    after = _observe(space, handle)
    assert after == before
    space.verify_integrity()
