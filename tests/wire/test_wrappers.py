"""Value wrapping, including property-based round-trips."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.wire.wrappers import decode_value, encode_value


def _no_refs(_value):
    return None


def _no_resolve(kind, ident):
    raise AssertionError("no references expected")


def roundtrip(value):
    return decode_value(encode_value(value, _no_refs), _no_resolve)


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -17,
        2**80,
        1.5,
        -0.0,
        "plain",
        "",
        "uni→code 🚀",
        "<xml> & entities",
        "control \x00\x1f chars",
        "carriage\rreturn",
        "lone surrogate \udcff",
        "  leading and trailing  ",
        b"",
        b"\x00\xff\x10",
        [],
        [1, "two", 3.0, None],
        (1, (2, 3)),
        set(),
        {1, 2, 3},
        frozenset({"a", "b"}),
        {},
        {"k": "v", 1: [2, 3]},
        {(1, 2): "tuple key"},
        [[["deep"]]],
    ],
)
def test_roundtrip_values(value):
    assert roundtrip(value) == value


def test_roundtrip_preserves_types():
    assert isinstance(roundtrip((1, 2)), tuple)
    assert isinstance(roundtrip([1, 2]), list)
    assert isinstance(roundtrip(frozenset({1})), frozenset)
    assert isinstance(roundtrip({1}), set)
    assert isinstance(roundtrip(b"x"), bytes)


def test_bool_not_confused_with_int():
    assert roundtrip(True) is True
    assert roundtrip(1) == 1 and roundtrip(1) is not True


def test_nan_and_infinities():
    assert math.isnan(roundtrip(float("nan")))
    assert roundtrip(float("inf")) == float("inf")
    assert roundtrip(float("-inf")) == float("-inf")


def test_unencodable_type_raises():
    class Strange:
        pass

    with pytest.raises(CodecError):
        encode_value(Strange(), _no_refs)


def test_classifier_local_reference():
    sentinel = object()

    def classify(value):
        return ("local", 42) if value is sentinel else None

    element = encode_value(sentinel, classify)
    assert element.tag == "ref" and element.get("oid") == "42"
    resolved = decode_value(element, lambda kind, ident: ("got", kind, ident))
    assert resolved == ("got", "local", 42)


def test_classifier_out_reference():
    sentinel = object()
    element = encode_value(
        sentinel, lambda v: ("out", 3) if v is sentinel else None
    )
    assert element.tag == "outref"
    assert decode_value(element, lambda k, i: (k, i)) == ("out", 3)


def test_classifier_ext_reference():
    sentinel = object()
    element = encode_value(
        sentinel, lambda v: ("ext", {"cid": 1, "soid": 2}) if v is sentinel else None
    )
    assert element.tag == "extref"
    kind_attrs = decode_value(element, lambda k, a: (k, a))
    assert kind_attrs == ("ext", {"cid": "1", "soid": "2"})


def test_references_inside_containers():
    sentinel = object()

    def classify(value):
        return ("local", 7) if value is sentinel else None

    element = encode_value([1, sentinel, {"k": sentinel}], classify)
    decoded = decode_value(element, lambda k, i: f"obj-{i}")
    assert decoded == [1, "obj-7", {"k": "obj-7"}]


def test_set_encoding_deterministic():
    import xml.etree.ElementTree as ET

    first = ET.tostring(encode_value({3, 1, 2}, _no_refs))
    second = ET.tostring(encode_value({2, 3, 1}, _no_refs))
    assert first == second


# -- property-based -----------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(),
    st.binary(max_size=64),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=20,
)


@settings(max_examples=150, deadline=None)
@given(values)
def test_roundtrip_property(value):
    assert roundtrip(value) == value
