"""Canonicalization and digests."""

import pytest

from repro.errors import CodecError
from repro.wire.canonical import canonical_text, payload_digest


def test_whitespace_insensitive():
    compact = "<a><b>text</b></a>"
    spaced = "<a>\n  <b>text</b>\n</a>"
    assert canonical_text(compact) == canonical_text(spaced)


def test_attribute_order_insensitive():
    assert canonical_text('<a x="1" y="2"/>') == canonical_text('<a y="2" x="1"/>')


def test_text_preserved():
    assert "text with  spaces" in canonical_text("<a>text with  spaces</a>")


def test_escaping():
    text = canonical_text("<a>&lt;tag&gt; &amp; more</a>")
    assert "&lt;tag&gt;" in text and "&amp;" in text


def test_attribute_quote_escaping():
    original = '<a name="say &quot;hi&quot;"/>'
    assert "&quot;hi&quot;" in canonical_text(original)


def test_digest_stable_across_formatting():
    assert payload_digest("<a><b/></a>") == payload_digest("<a>\n <b/>\n</a>")


def test_digest_differs_for_different_content():
    assert payload_digest("<a>1</a>") != payload_digest("<a>2</a>")


def test_malformed_raises():
    with pytest.raises(CodecError):
        canonical_text("<oops")


def test_self_closing_empty_elements():
    assert canonical_text("<a></a>") == "<a/>"
