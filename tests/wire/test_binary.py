"""The binary wire codec: byte-exact parity with the canonical XML path."""

import pytest

from repro.errors import CodecError
from repro.runtime.registry import global_registry
from repro.wire.binary import (
    MAGIC,
    VERSION,
    binary_to_canonical,
    decode_cluster_binary,
    decode_delta_binary,
    decode_varint,
    encode_cluster_binary,
    encode_delta_binary,
    encode_varint,
)
from repro.wire.canonical import digest_of_canonical
from repro.wire.xmlcodec import decode_cluster, encode_cluster_canonical
from tests.helpers import Holder, Node, Pair


def _oid_of(obj):
    return obj._test_oid


def _setup(objects):
    for index, obj in enumerate(objects, start=1):
        object.__setattr__(obj, "_test_oid", index)
    return {obj._test_oid: obj for obj in objects}


def _encode_both(members, **kwargs):
    outbound = []

    def outbound_index_of(proxy):
        if proxy not in outbound:
            outbound.append(proxy)
        return outbound.index(proxy)

    common = dict(
        sid=5,
        space="test",
        epoch=1,
        objects=members,
        oid_of=_oid_of,
        outbound_index_of=outbound_index_of,
    )
    common.update(kwargs)
    text, digest = encode_cluster_canonical(**common)
    btext, bdigest, payload = encode_cluster_binary(**common)
    return text, digest, btext, bdigest, payload


def _decode(payload):
    return decode_cluster_binary(
        payload,
        registry=global_registry(),
        resolve_out=lambda index: f"out-{index}",
    )


# -- varints -------------------------------------------------------------------


@pytest.mark.parametrize(
    "value", [0, 1, 127, 128, 300, 2**21, 2**35, 2**64, 2**200]
)
def test_varint_roundtrip(value):
    buf = bytearray()
    encode_varint(buf, value)
    decoded, pos = decode_varint(bytes(buf), 0)
    assert decoded == value and pos == len(buf)


def test_varint_rejects_negative():
    with pytest.raises(CodecError):
        encode_varint(bytearray(), -1)


def test_varint_rejects_truncation():
    buf = bytearray()
    encode_varint(buf, 2**21)
    with pytest.raises(CodecError):
        decode_varint(bytes(buf[:-1]), 0)


# -- canonical parity ----------------------------------------------------------


def test_scalar_corpus_matches_canonical_text_and_digest():
    holder, node = Holder(), Node(-7)
    holder.items.extend(
        [
            node,
            0,
            -1,
            10**30,
            -(10**30),
            2.5,
            -0.0,
            float("inf"),
            float("-inf"),
            float("nan"),
            "plain",
            "",
            "esc&<>\"'",
            "unié\x01ctl",
            b"",
            b"\x00\xff\x10",
            None,
            True,
            False,
        ]
    )
    holder.index = {
        "a": node,
        "b": [1, {2: (3,)}],
        "": frozenset({1, 2, 3}),
        "s": {9, 8},
        "t": (),
        "u": [],
        "v": {},
    }
    holder.fixed = (node, 10)
    members = _setup([holder, node])
    text, digest, btext, bdigest, payload = _encode_both(members)
    assert btext == text
    assert bdigest == digest
    assert digest_of_canonical(text) == digest


def test_decode_rederives_identical_canonical_text():
    first, second = Node(1), Node(2)
    first.next = second
    members = _setup([first, second])
    text, digest, _btext, _bdigest, payload = _encode_both(members)
    document, decoded_text, decoded_digest = _decode(payload)
    assert decoded_text == text
    assert decoded_digest == digest
    assert document.sid == 5 and document.epoch == 1
    assert document.objects[1].next is document.objects[2]


def test_decode_parity_with_xml_decode():
    holder, node = Holder(), Node(9)
    holder.items.append(node)
    holder.index["n"] = node
    holder.fixed = (node, 5)
    members = _setup([holder, node])
    text, _digest, _bt, _bd, payload = _encode_both(members)
    via_binary, _t, _d = _decode(payload)
    via_xml = decode_cluster(
        text,
        registry=global_registry(),
        resolve_out=lambda index: f"out-{index}",
    )
    rebuilt_b, rebuilt_x = via_binary.objects[1], via_xml.objects[1]
    assert rebuilt_b.items[1:] == rebuilt_x.items[1:]
    assert rebuilt_b.fixed[1] == rebuilt_x.fixed[1]
    assert rebuilt_b.items[0] is via_binary.objects[2]


def test_cycles_resolve_across_member_frames():
    first, second = Pair(), Pair()
    first.left = second
    second.left = first
    members = _setup([first, second])
    _t, _d, _bt, _bd, payload = _encode_both(members)
    document, _text, _digest = _decode(payload)
    assert document.objects[1].left is document.objects[2]
    assert document.objects[2].left is document.objects[1]


def test_empty_cluster_roundtrip():
    text, digest, btext, bdigest, payload = _encode_both({})
    assert btext == text and bdigest == digest
    document, decoded_text, _dd = _decode(payload)
    assert document.objects == {} and decoded_text == text


def test_transcode_needs_no_registry():
    node = Node(3)
    members = _setup([node])
    text, digest, _bt, _bd, payload = _encode_both(members)
    transcoded, tdigest = binary_to_canonical(payload)
    assert transcoded == text and tdigest == digest


# -- integrity -----------------------------------------------------------------


def test_every_flipped_byte_is_caught():
    node, holder = Node(4), Holder()
    holder.items.extend([node, "payload", 3.25, {1: "x"}])
    members = _setup([holder, node])
    _t, _d, _bt, _bd, payload = _encode_both(members)
    for offset in range(len(MAGIC) + 1, len(payload), 7):
        mangled = bytearray(payload)
        mangled[offset] ^= 0xFF
        with pytest.raises(CodecError):
            _decode(bytes(mangled))


def test_bad_magic_and_version_are_rejected():
    members = _setup([Node(1)])
    _t, _d, _bt, _bd, payload = _encode_both(members)
    with pytest.raises(CodecError):
        binary_to_canonical(b"XXX" + payload[3:])
    versioned = bytearray(payload)
    versioned[len(MAGIC)] = VERSION + 1
    with pytest.raises(CodecError):
        binary_to_canonical(bytes(versioned))
    with pytest.raises(CodecError):
        binary_to_canonical(payload[: len(payload) // 2])


def test_header_count_mismatch_is_rejected():
    members = _setup([Node(1), Node(2)])
    _t, _d, _bt, _bd, payload = _encode_both(members)
    # re-encode one member's cluster but splice the two-member header in
    single = _setup([Node(1)])
    _t2, _d2, _bt2, _bd2, payload2 = _encode_both(single)
    # drop one MEMBER frame by truncating at its frame boundary is
    # fiddly; instead decode a payload whose DIGEST frame was removed
    with pytest.raises(CodecError):
        binary_to_canonical(payload[: payload.rindex(b"\x03", 4)])


# -- delta wrapper -------------------------------------------------------------


def test_delta_wrapper_roundtrip_and_digest():
    delta_text = '<swap-delta epoch="3" sid="7"><field/></swap-delta>'
    wrapped = encode_delta_binary(delta_text)
    assert wrapped.startswith(MAGIC)
    assert decode_delta_binary(wrapped) == delta_text
    mangled = bytearray(wrapped)
    mangled[-3] ^= 0xFF
    with pytest.raises(CodecError):
        decode_delta_binary(bytes(mangled))
