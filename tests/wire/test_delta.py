"""Object-granular delta documents: encode, apply, divergence guards."""

import pytest

from repro.errors import CodecError
from repro.wire.canonical import digest_of_canonical, verify_payload
from repro.wire.delta import (
    apply_cluster_delta,
    encode_cluster_delta,
    encode_cluster_delta_stream,
)
from repro.wire.xmlcodec import encode_cluster_canonical
from tests.helpers import Node


def _oid_of(obj):
    return obj._test_oid


def _chain(n):
    members = {}
    previous = None
    for oid in range(1, n + 1):
        node = Node(oid * 10)
        object.__setattr__(node, "_test_oid", oid)
        if previous is not None:
            previous.next = node
        members[oid] = node
        previous = node
    return members


def _full_args(members, epoch):
    outbound = []

    def outbound_index_of(proxy):
        if proxy not in outbound:
            outbound.append(proxy)
        return outbound.index(proxy)

    return dict(
        sid=3,
        space="pda",
        epoch=epoch,
        objects=members,
        oid_of=_oid_of,
        outbound_index_of=outbound_index_of,
    )


def _delta_args(members, dirty, dead=(), base_epoch=1, epoch=2, **overrides):
    outbound = []

    def outbound_index_of(proxy):
        if proxy not in outbound:
            outbound.append(proxy)
        return outbound.index(proxy)

    args = dict(
        sid=3,
        space="pda",
        base_epoch=base_epoch,
        epoch=epoch,
        objects={oid: members[oid] for oid in dirty},
        dead_oids=set(dead),
        member_oids=set(members) - set(dead),
        oid_of=_oid_of,
        outbound_index_of=outbound_index_of,
    )
    args.update(overrides)
    return args


def test_apply_matches_a_full_reencode_byte_for_byte():
    members = _chain(5)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=1))

    members[2].value = 999  # mutate one member
    delta_text, delta_digest = encode_cluster_delta(
        **_delta_args(members, dirty=[2])
    )
    applied = apply_cluster_delta(base_text, delta_text)

    full_text, full_digest = encode_cluster_canonical(
        **_full_args(members, epoch=2)
    )
    assert applied == full_text
    assert digest_of_canonical(applied) == full_digest
    assert delta_digest == digest_of_canonical(delta_text)


def test_applied_document_passes_verify_payload():
    members = _chain(4)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=1))
    members[1].value = -1
    delta_text, _ = encode_cluster_delta(**_delta_args(members, dirty=[1]))
    applied = apply_cluster_delta(base_text, delta_text)
    verify_payload(applied, digest_of_canonical(applied))


def test_tombstones_remove_members():
    members = _chain(4)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=1))
    members[3].next = None  # cut the collected tail out of the graph
    removed = members.pop(4)
    assert removed is not None
    delta_text, _ = encode_cluster_delta(
        **_delta_args({**members, 4: removed}, dirty=[3], dead=[4])
    )
    applied = apply_cluster_delta(base_text, delta_text)
    assert 'oid="4"' not in applied
    assert applied == encode_cluster_canonical(**_full_args(members, epoch=2))[0]


def test_tombstone_for_a_member_the_base_never_had_is_legal():
    members = _chain(2)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=1))
    delta_text, _ = encode_cluster_delta(
        **_delta_args(members, dirty=[], dead=[99])
    )
    applied = apply_cluster_delta(base_text, delta_text)
    assert 'count="2"' in applied


def test_empty_delta_is_self_closing_and_applies():
    members = _chain(2)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=1))
    delta_text, _ = encode_cluster_delta(**_delta_args(members, dirty=[]))
    assert delta_text.endswith("/>")
    applied = apply_cluster_delta(base_text, delta_text)
    assert applied == encode_cluster_canonical(**_full_args(members, epoch=2))[0]


def test_stream_chunks_concatenate_to_the_one_shot_encode():
    members = _chain(3)
    members[2].value = 7
    args = _delta_args(members, dirty=[2], dead=[])
    streamed = "".join(encode_cluster_delta_stream(**args))
    text, _ = encode_cluster_delta(**_delta_args(members, dirty=[2], dead=[]))
    assert streamed == text


def test_wrong_sid_or_space_is_rejected():
    members = _chain(2)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=1))
    wrong_sid, _ = encode_cluster_delta(**_delta_args(members, dirty=[1], sid=4))
    with pytest.raises(CodecError, match="does not belong"):
        apply_cluster_delta(base_text, wrong_sid)
    wrong_space, _ = encode_cluster_delta(
        **_delta_args(members, dirty=[1], space="other")
    )
    with pytest.raises(CodecError, match="does not belong"):
        apply_cluster_delta(base_text, wrong_space)


def test_base_epoch_mismatch_signals_divergence():
    members = _chain(2)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=5))
    stale, _ = encode_cluster_delta(
        **_delta_args(members, dirty=[1], base_epoch=4, epoch=6)
    )
    with pytest.raises(CodecError, match="full payload required"):
        apply_cluster_delta(base_text, stale)


def test_malformed_documents_are_rejected():
    members = _chain(2)
    base_text, _ = encode_cluster_canonical(**_full_args(members, epoch=1))
    delta_text, _ = encode_cluster_delta(**_delta_args(members, dirty=[1]))
    with pytest.raises(CodecError):
        apply_cluster_delta(base_text, "<oops")
    with pytest.raises(CodecError):
        apply_cluster_delta("<not-a-cluster/>", delta_text)
    with pytest.raises(CodecError):  # count attribute must match content
        apply_cluster_delta(
            base_text, delta_text.replace('count="1"', 'count="3"')
        )


def test_intra_cluster_refs_from_dirty_objects_stay_refs():
    members = _chain(3)
    members[1].value = 0  # dirty the head; its next points at clean oid 2
    delta_text, _ = encode_cluster_delta(**_delta_args(members, dirty=[1]))
    assert '<ref oid="2"/>' in delta_text
