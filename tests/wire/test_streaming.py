"""One-pass streaming codec: chunks, incremental digests, verification."""

import hashlib
import xml.etree.ElementTree as ET

from repro.runtime.registry import global_registry
from repro.wire.canonical import (
    canonical_open_tag,
    canonical_text,
    digest_of_canonical,
    element_digest,
    payload_digest,
    serialize_element,
    verify_payload,
)
from repro.wire.xmlcodec import (
    decode_cluster,
    encode_cluster,
    encode_cluster_canonical,
    encode_cluster_stream,
)
from tests.helpers import Holder, Node, Pair


def _oid_of(obj):
    return obj._test_oid


def _setup(objects):
    for index, obj in enumerate(objects, start=1):
        object.__setattr__(obj, "_test_oid", index)
    return {obj._test_oid: obj for obj in objects}


def _codec_args(members):
    outbound = []

    def outbound_index_of(proxy):
        if proxy not in outbound:
            outbound.append(proxy)
        return outbound.index(proxy)

    return dict(
        sid=5,
        space="test",
        epoch=1,
        objects=members,
        oid_of=_oid_of,
        outbound_index_of=outbound_index_of,
    )


def _rich_members():
    holder, node, pair = Holder(), Node(9), Pair()
    holder.items.append(node)
    holder.index["n"] = node
    holder.fixed = (node, 5)
    pair.left = holder
    pair.right = "text & <markup>"
    return _setup([holder, node, pair])


# -- streaming ------------------------------------------------------------


def test_stream_chunks_concatenate_to_encode_cluster():
    members = _rich_members()
    streamed = "".join(encode_cluster_stream(**_codec_args(members)))
    assert streamed == encode_cluster(**_codec_args(members))


def test_stream_yields_one_chunk_per_object_plus_frame():
    members = _rich_members()
    chunks = list(encode_cluster_stream(**_codec_args(members)))
    assert len(chunks) == len(members) + 2  # open tag, members, close tag
    assert chunks[0].startswith("<swap-cluster ")
    assert chunks[-1] == "</swap-cluster>"


def test_streamed_text_decodes_back():
    members = _rich_members()
    text = "".join(encode_cluster_stream(**_codec_args(members)))
    document = decode_cluster(
        text, registry=global_registry(), resolve_out=lambda index: f"out-{index}"
    )
    rebuilt = document.objects[1]
    assert rebuilt.items == [document.objects[2]]
    assert document.objects[3].right == "text & <markup>"


def test_empty_cluster_streams_self_closing():
    text = "".join(encode_cluster_stream(**_codec_args({})))
    assert text.endswith("/>")
    assert ET.fromstring(text).tag == "swap-cluster"
    assert text == encode_cluster(**_codec_args({}))


# -- digests --------------------------------------------------------------


def test_incremental_digest_matches_posthoc_digest():
    members = _rich_members()
    text, digest = encode_cluster_canonical(**_codec_args(members))
    assert digest == payload_digest(text)
    assert digest == digest_of_canonical(text)
    assert digest == hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_encoder_output_is_already_canonical():
    members = _rich_members()
    text = encode_cluster(**_codec_args(members))
    assert canonical_text(text) == text


def test_element_digest_matches_text_digest():
    element = ET.fromstring('<doc b="2" a="1"><child>x</child></doc>')
    assert element_digest(element) == payload_digest(
        ET.tostring(element, encoding="unicode")
    )


# -- verification ---------------------------------------------------------


def test_verify_payload_accepts_canonical_text():
    members = _rich_members()
    text, digest = encode_cluster_canonical(**_codec_args(members))
    assert verify_payload(text, digest)


def test_verify_payload_accepts_reformatted_text():
    # a foreign producer may pretty-print; the digest is canonical-form
    members = _setup([Node(1)])
    text, digest = encode_cluster_canonical(**_codec_args(members))
    pretty = text.replace("><", ">\n  <")
    assert pretty != text
    assert verify_payload(pretty, digest)


def test_verify_payload_rejects_tampering():
    members = _setup([Node(1)])
    text, digest = encode_cluster_canonical(**_codec_args(members))
    assert not verify_payload(text.replace("1", "2"), digest)


def test_verify_payload_rejects_garbage():
    assert not verify_payload("<<< not xml >>>", "0" * 64)


# -- canonical helpers ----------------------------------------------------


def test_canonical_open_tag_sorts_and_escapes():
    tag = canonical_open_tag("t", {"b": "2", "a": 'va"l&'})
    assert tag == '<t a="va&quot;l&amp;" b="2">'


def test_serialize_element_matches_canonical_text():
    element = ET.fromstring('<doc b="2" a="1"><c/></doc>')
    assert serialize_element(element) == canonical_text(
        '<doc b="2" a="1"><c/></doc>'
    )
