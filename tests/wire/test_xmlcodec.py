"""The swap-cluster codec."""

import pytest

from repro.errors import CodecError, IntegrityError
from repro.runtime.registry import global_registry
from repro.wire.xmlcodec import decode_cluster, encode_cluster
from tests.helpers import Holder, Node, Pair


def _oid_of(obj):
    return obj._test_oid


def _setup(objects):
    for index, obj in enumerate(objects, start=1):
        object.__setattr__(obj, "_test_oid", index)
    return {obj._test_oid: obj for obj in objects}


def _encode(members, outbound=None, **kwargs):
    outbound = outbound if outbound is not None else []

    def outbound_index_of(proxy):
        if proxy not in outbound:
            outbound.append(proxy)
        return outbound.index(proxy)

    return encode_cluster(
        sid=5,
        space="test",
        epoch=1,
        objects=members,
        oid_of=_oid_of,
        outbound_index_of=outbound_index_of,
        **kwargs,
    )


def _decode(xml, resolve_out=None):
    return decode_cluster(
        xml,
        registry=global_registry(),
        resolve_out=resolve_out or (lambda index: f"out-{index}"),
    )


def test_roundtrip_simple_chain():
    first, second = Node(1), Node(2)
    first.next = second
    members = _setup([first, second])
    document = _decode(_encode(members))
    assert document.sid == 5 and document.space == "test" and document.epoch == 1
    rebuilt_first = document.objects[1]
    assert rebuilt_first.value == 1
    assert rebuilt_first.next is document.objects[2]


def test_roundtrip_cycle():
    first, second = Pair(), Pair()
    first.left = second
    second.left = first
    members = _setup([first, second])
    document = _decode(_encode(members))
    assert document.objects[1].left is document.objects[2]
    assert document.objects[2].left is document.objects[1]


def test_roundtrip_containers_with_refs():
    holder, node = Holder(), Node(9)
    holder.items.append(node)
    holder.index["n"] = node
    holder.fixed = (node, 5)
    members = _setup([holder, node])
    document = _decode(_encode(members))
    rebuilt = document.objects[1]
    rebuilt_node = document.objects[2]
    assert rebuilt.items == [rebuilt_node]
    assert rebuilt.index["n"] is rebuilt_node
    assert rebuilt.fixed[0] is rebuilt_node


def test_raw_foreign_reference_raises_integrity():
    inside, outside = Node(1), Node(2)
    inside.next = outside
    object.__setattr__(inside, "_test_oid", 1)
    object.__setattr__(outside, "_test_oid", 99)
    with pytest.raises(IntegrityError):
        _encode({1: inside})


def test_foreign_index_of_allows_server_frontier():
    inside, outside = Node(1), Node(2)
    inside.next = outside
    object.__setattr__(inside, "_test_oid", 1)
    object.__setattr__(outside, "_test_oid", 99)
    frontier = []

    xml = encode_cluster(
        sid=1,
        space="server",
        epoch=0,
        objects={1: inside},
        oid_of=_oid_of,
        outbound_index_of=lambda proxy: 0,
        foreign_index_of=lambda obj: frontier.append(obj._test_oid) or 0,
    )
    assert frontier == [99]
    assert "<outref" in xml


def test_unmanaged_member_raises():
    class Plain:
        pass

    with pytest.raises(CodecError):
        encode_cluster(
            sid=1, space="s", epoch=0, objects={1: Plain()},
            oid_of=lambda o: 1, outbound_index_of=lambda p: 0,
        )


def test_decode_malformed_xml():
    with pytest.raises(CodecError):
        _decode("<swap-cluster sid='1'")


def test_decode_wrong_root_tag():
    with pytest.raises(CodecError):
        _decode("<not-a-cluster/>")


def test_decode_count_mismatch():
    first = Node(1)
    members = _setup([first])
    xml = _encode(members).replace('count="1"', 'count="7"')
    with pytest.raises(CodecError):
        _decode(xml)


def test_decode_dangling_local_ref():
    first, second = Node(1), Node(2)
    first.next = second
    members = _setup([first, second])
    xml = _encode(members)
    # remove the second object from the document
    import re

    broken = re.sub(r'<object oid="2".*?</object>', "", xml, flags=re.S)
    broken = broken.replace('count="2"', 'count="1"')
    with pytest.raises(CodecError):
        _decode(broken)


def test_decode_unknown_class():
    first = Node(1)
    members = _setup([first])
    xml = _encode(members).replace('class="Node"', 'class="Vanished"')
    from repro.errors import NotManagedError

    with pytest.raises(NotManagedError):
        _decode(xml)


def test_extref_without_resolver_raises():
    xml = (
        '<swap-cluster sid="1" space="s" epoch="0" count="1">'
        '<object oid="1" class="Node">'
        '<field name="value"><int>1</int></field>'
        '<field name="next"><extref cid="4" soid="9"/></field>'
        "</object></swap-cluster>"
    )
    with pytest.raises(CodecError):
        _decode(xml)


def test_extref_resolver_invoked():
    xml = (
        '<swap-cluster sid="1" space="s" epoch="0" count="1">'
        '<object oid="1" class="Node">'
        '<field name="value"><int>1</int></field>'
        '<field name="next"><extref cid="4" soid="9"/></field>'
        "</object></swap-cluster>"
    )
    document = decode_cluster(
        xml,
        registry=global_registry(),
        resolve_out=lambda index: None,
        resolve_extern=lambda attrs: ("ext", attrs["cid"], attrs["soid"]),
    )
    assert document.objects[1].next == ("ext", "4", "9")


def test_outbound_proxies_by_index():
    space_mod = __import__("tests.helpers", fromlist=["make_space"])
    space = space_mod.make_space()
    handle = space.ingest(
        space_mod.build_chain(10), cluster_size=5, root_name="h"
    )
    cluster = space.clusters()[1]
    members = {oid: space._objects[oid] for oid in cluster.oids}
    outbound = []

    def outbound_index_of(proxy):
        if proxy not in [existing for existing in outbound]:
            outbound.append(proxy)
        return len(outbound) - 1

    xml = encode_cluster(
        sid=1, space="t", epoch=1, objects=members,
        oid_of=lambda o: o._obi_oid, outbound_index_of=outbound_index_of,
    )
    assert len(outbound) == 1  # one boundary edge to cluster 2
    document = decode_cluster(
        xml, registry=global_registry(), resolve_out=lambda i: outbound[i]
    )
    assert len(document.objects) == 5
