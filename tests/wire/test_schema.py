"""The swap-cluster document validator."""

import pytest

from repro.errors import CodecError
from repro.wire.schema import ensure_valid_cluster, validate_cluster_text
from tests.helpers import build_chain, make_space


def _valid_document():
    space = make_space()
    space.ingest(build_chain(10), cluster_size=5, root_name="h")
    location = space.swap_out(2)
    store = space.manager.available_stores()[0]
    return store.fetch(location.key)


def test_real_swap_document_valid():
    assert validate_cluster_text(_valid_document()) == []
    ensure_valid_cluster(_valid_document())  # no raise


@pytest.mark.parametrize(
    "mutate,expected",
    [
        (lambda t: t.replace("swap-cluster", "something"), "root element"),
        (lambda t: t.replace('sid="2"', "", 1), "missing sid"),
        (lambda t: t.replace('sid="2"', 'sid="two"', 1), "not an integer"),
        (lambda t: t.replace('space="test"', "", 1), "missing space"),
        (lambda t: t.replace("<object", "<thing", 1).replace("</object>", "</thing>", 1), "unexpected <thing>"),
        (lambda t: t.replace('class="Node"', "", 1), "missing class"),
        (lambda t: t.replace('name="value"', "", 1), "without name"),
        (lambda t: t.replace("<int>", "<number>", 1).replace("</int>", "</number>", 1), "unknown value tag"),
        (lambda t: t.replace("<int>5</int>", "<int>five</int>", 1), "non-numeric"),
        (lambda t: t.replace('count="5"', 'count="9"', 1), "count attribute"),
        (lambda t: t.replace('<ref oid="7"', "<ref ", 1) if '<ref oid="7"' in t else t.replace("<ref oid=", "<ref x=", 1), "missing oid"),
    ],
)
def test_corruptions_detected(mutate, expected):
    document = _valid_document()
    corrupted = mutate(document)
    assert corrupted != document, "mutation did not apply"
    problems = validate_cluster_text(corrupted)
    assert any(expected in problem for problem in problems), problems


def test_duplicate_oid_detected():
    document = _valid_document()
    # duplicate the first object element wholesale
    start = document.index("<object")
    end = document.index("</object>") + len("</object>")
    duplicated = document[:end] + document[start:end] + document[end:]
    problems = validate_cluster_text(duplicated)
    assert any("duplicate object" in problem for problem in problems)


def test_not_xml():
    assert validate_cluster_text("garbage <<<")[0].startswith("not well-formed")


def test_ensure_valid_raises_with_all_problems():
    bad = "<swap-cluster><object/></swap-cluster>"
    with pytest.raises(CodecError) as excinfo:
        ensure_valid_cluster(bad)
    message = str(excinfo.value)
    assert "missing sid" in message and "missing oid" in message


def test_extref_attrs_checked():
    document = (
        '<swap-cluster sid="1" epoch="0" count="1" space="s">'
        '<object oid="1" class="Node">'
        '<field name="next"><extref cid="4"/></field>'
        "</object></swap-cluster>"
    )
    problems = validate_cluster_text(document)
    assert any("missing soid" in problem for problem in problems)


def test_dict_structure_checked():
    document = (
        '<swap-cluster sid="1" epoch="0" count="1" space="s">'
        '<object oid="1" class="Node">'
        '<field name="index"><dict><entry><k><int>1</int></k></entry></dict></field>'
        "</object></swap-cluster>"
    )
    problems = validate_cluster_text(document)
    assert any("malformed <dict>" in problem for problem in problems)


def test_manager_optional_validation_pass():
    from tests.helpers import build_chain, chain_values, make_space

    space = make_space()
    space.manager.validate_documents = True
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    space.swap_out(2)
    assert chain_values(handle) == list(range(10))


def test_manager_validation_reports_structural_corruption():
    from tests.helpers import build_chain, chain_values, make_space
    from repro.wire.canonical import payload_digest

    space = make_space()
    space.manager.validate_documents = True
    handle = space.ingest(build_chain(10), cluster_size=5, root_name="h")
    location = space.swap_out(2)
    store = space.manager.available_stores()[0]
    # a structural corruption that keeps the digest... impossible; instead
    # fake the digest too, simulating a store that rewrites documents
    corrupted = store.fetch(location.key).replace('class="Node"', "", 1)
    store.store(location.key, corrupted)
    object.__setattr__(  # align the recorded digest with the new text
        space.clusters()[2].location, "digest", payload_digest(corrupted)
    )
    with pytest.raises(CodecError, match="missing class"):
        chain_values(handle)
