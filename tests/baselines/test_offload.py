"""The GC-assisted offloading baseline."""

import pytest

from repro.baselines.offload import REQUIREMENTS_MATRIX, OffloadRuntime
from repro.clock import SimulatedClock
from repro.comm.transport import SimulatedLink
from repro.errors import SwapError
from tests.helpers import build_chain


def _runtime(n=10, link=None):
    runtime = OffloadRuntime(link=link)
    head = runtime.ingest(build_chain(n))
    return runtime, head


def test_ingest_builds_object_table():
    runtime, head = _runtime(10)
    assert runtime.memory_report()["resident"] == 10


def test_offload_leaves_surrogate():
    runtime, head = _runtime(5)
    target_oid = head.next._ol_oid if hasattr(head.next, "_ol_oid") else None
    victim = head.next
    runtime.offload(victim._ol_oid)
    assert type(head.next).__name__ == "Surrogate"
    assert runtime.memory_report()["remote"] == 1


def test_access_fetches_back():
    runtime, head = _runtime(5)
    victim_oid = head.next._ol_oid
    runtime.offload(victim_oid)
    assert head.next.get_value() == 1  # surrogate faults the object home
    assert runtime.fetch_backs == 1
    assert runtime.memory_report()["remote"] == 0
    # and the surrogate got replaced with the real object again
    assert type(head.next).__name__ == "Node"


def test_double_offload_rejected():
    runtime, head = _runtime(3)
    runtime.offload(head._ol_oid)
    with pytest.raises(SwapError):
        runtime.offload(head._ol_oid)


def test_instrumented_gc_picks_cold_objects():
    runtime, head = _runtime(5)
    runtime.record_access(head)
    runtime.record_access(head)
    cursor = head.next
    runtime.record_access(cursor)
    chosen = runtime.offload_coldest(2)
    assert head._ol_oid not in chosen  # the hottest stayed


def test_dgc_refcount_tracked():
    runtime, head = _runtime(3)
    victim_oid = head.next._ol_oid
    runtime.offload(victim_oid)
    entry = runtime._table[victim_oid]
    assert entry.remote_ref_count == 1  # head.next references it


def test_dgc_release_reclaims_unreferenced():
    runtime, head = _runtime(3)
    victim_oid = head.next._ol_oid
    runtime.offload(victim_oid)
    # sever the only reference, then run DGC
    head.next = None
    runtime._table[victim_oid].remote_ref_count = 0
    runtime.dgc_release(victim_oid)
    assert victim_oid not in runtime._table
    assert victim_oid not in runtime.server.held


def test_link_charged_for_migration():
    clock = SimulatedClock()
    link = SimulatedLink(8_000, latency_s=0.0, clock=clock)
    runtime, head = _runtime(3, link=link)
    runtime.offload(head.next._ol_oid)
    assert clock.now() > 0
    before = clock.now()
    head.next.get_value()
    assert clock.now() > before  # fetch-back charged too


def test_surrogate_memory_cost_accounted():
    runtime, head = _runtime(10)
    before = runtime.heap.used
    runtime.offload(head.next._ol_oid)
    report = runtime.memory_report()
    assert report["total_bytes"] < before  # net savings...
    assert runtime.heap.used > 0  # ...but surrogates cost something


def test_requirements_matrix_separates_approaches():
    swap = REQUIREMENTS_MATRIX["object-swapping (this paper)"]
    offload = REQUIREMENTS_MATRIX["offloading (Messer'02/Chen'03)"]
    compression = REQUIREMENTS_MATRIX["heap compression (Chen'03 OOPSLA)"]
    assert not swap["vm_modification"]
    assert not swap["receiver_needs_vm"]
    assert offload["vm_modification"] and offload["dgc_required"]
    assert offload["receiver_needs_vm"]
    assert compression["cpu_intensive"]
    # the paper's portability claim: object-swapping demands strictly
    # less than every alternative
    for name, requirements in REQUIREMENTS_MATRIX.items():
        if name.startswith("object-swapping"):
            continue
        assert sum(requirements.values()) > sum(swap.values())
