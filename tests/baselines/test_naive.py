"""The naive one-proxy-per-object baseline."""

import pytest

from repro.baselines.naive_proxy import NaiveRuntime
from repro.devices import InMemoryStore
from repro.errors import SwapError
from tests.helpers import build_chain, make_space


def _runtime(n=20):
    runtime = NaiveRuntime(heap_capacity=1 << 20)
    runtime.attach_store(InMemoryStore("server"))
    handle = runtime.ingest(build_chain(n))
    return runtime, handle


def test_every_object_gets_a_proxy():
    runtime, handle = _runtime(20)
    assert runtime.object_count() == 20
    assert runtime.resident_count() == 20


def test_every_edge_mediated():
    runtime, handle = _runtime(5)
    cursor = handle
    for _ in range(4):
        cursor = cursor.next
        assert type(cursor).__name__ == "NaiveProxy"


def test_navigation_through_proxies():
    runtime, handle = _runtime(10)
    values = []
    cursor = handle
    while cursor is not None:
        values.append(cursor.get_value())
        cursor = cursor.get_next()
    assert values == list(range(10))


def test_memory_includes_proxy_overhead():
    runtime, handle = _runtime(20)
    report = runtime.memory_report()
    assert report["proxy_bytes"] == 20 * runtime.size_model.proxy_size()
    assert report["total_bytes"] == report["object_bytes"] + report["proxy_bytes"]


def test_paper_claim_memory_roughly_doubles_for_small_objects():
    """Paper §5: 'Common application objects are small.  So, this could
    potentially double memory occupation when fully-loaded.'"""
    runtime, handle = _runtime(100)
    report = runtime.memory_report()
    overhead = report["proxy_bytes"] / report["object_bytes"]
    assert overhead > 0.8  # proxies ~ the objects themselves


def test_swap_out_and_transparent_reload():
    runtime, handle = _runtime(10)
    oid = handle._nv_oid
    runtime.swap_out(oid)
    assert runtime.is_swapped(oid)
    assert handle.get_value() == 0  # access reloads
    assert not runtime.is_swapped(oid)
    assert runtime.swap_ins == 1


def test_double_swap_rejected():
    runtime, handle = _runtime(5)
    runtime.swap_out(handle._nv_oid)
    with pytest.raises(SwapError):
        runtime.swap_out(handle._nv_oid)


def test_swap_without_store():
    runtime = NaiveRuntime()
    handle = runtime.ingest(build_chain(3))
    with pytest.raises(SwapError):
        runtime.swap_out(handle._nv_oid)


def test_paper_claim_proxies_remain_after_full_swap():
    """Paper §5: 'even when all objects were swapped, the proxies would
    still remain, which would incur in higher memory overhead.'"""
    runtime, handle = _runtime(50)
    runtime.swap_out_all()
    assert runtime.resident_count() == 0
    report = runtime.memory_report()
    assert report["total_bytes"] == 50 * runtime.size_model.proxy_size()
    # compare: the swap-cluster design leaves only one replacement-object
    space = make_space()
    space.ingest(build_chain(50), cluster_size=50, root_name="h")
    space.swap_out(1)
    assert space.heap.used < report["total_bytes"]


def test_full_round_trip_after_swap_out_all():
    runtime, handle = _runtime(30)
    runtime.swap_out_all()
    values = []
    cursor = handle
    while cursor is not None:
        values.append(cursor.get_value())
        cursor = cursor.get_next()
    assert values == list(range(30))


def test_identity_between_proxies():
    runtime, handle = _runtime(3)
    assert handle == runtime.proxy_of(handle._nv_oid)
    assert handle != handle.get_next()
    assert hash(handle) == hash(runtime.proxy_of(handle._nv_oid))
