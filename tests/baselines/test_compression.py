"""The heap-compression baseline."""

import pytest

from repro.baselines.compression import CompressedPoolStore
from repro.errors import StoreFullError, UnknownKeyError
from tests.helpers import build_chain, chain_values, make_space


def _space_with_pool(heap_capacity=64 * 1024, pool_fraction=0.5):
    space = make_space(with_store=False, heap_capacity=heap_capacity)
    pool = CompressedPoolStore(space, pool_fraction=pool_fraction)
    space.manager.add_store(pool)
    return space, pool


def test_compress_cycle_preserves_data():
    space, pool = _space_with_pool()
    handle = space.ingest(build_chain(40), cluster_size=10, root_name="h")
    space.swap_out(2, store=pool)
    assert chain_values(handle) == list(range(40))
    space.verify_integrity()


def test_pool_lives_in_the_same_heap():
    space, pool = _space_with_pool()
    space.ingest(build_chain(40), cluster_size=20, root_name="h")
    used_before = space.heap.used
    space.swap_out(2, store=pool)
    # the cluster's bytes left, but the compressed copy came back in
    assert pool.pool_used > 0
    assert space.heap.used == used_before - _cluster_bytes() + pool.pool_used + _replacement_bytes(space)


def _cluster_bytes():
    # 20 Node objects at (16 header + 16 int field + 8 ref field)
    return 20 * 40


def _replacement_bytes(space):
    cluster = space.clusters()[2]
    return space.size_model.replacement_size(cluster.replacement.outbound_count())


def test_compression_actually_shrinks():
    space, pool = _space_with_pool()
    space.ingest(build_chain(100), cluster_size=100, root_name="h")
    space.swap_out(1, store=pool)
    assert pool.stats.compression_ratio < 0.5  # XML compresses well
    assert pool.stats.compressions == 1


def test_cpu_cost_metered():
    space, pool = _space_with_pool()
    handle = space.ingest(build_chain(200), cluster_size=200, root_name="h")
    space.swap_out(1, store=pool)
    chain_values(handle)
    assert pool.stats.cpu_seconds > 0
    assert pool.stats.decompressions == 1


def test_pool_reservation_cap():
    space, pool = _space_with_pool(heap_capacity=1 << 20, pool_fraction=0.0001)
    space.ingest(build_chain(500), cluster_size=500, root_name="h")
    with pytest.raises(StoreFullError):
        space.swap_out(1, store=pool)


def test_drop_releases_pool_bytes():
    space, pool = _space_with_pool()
    handle = space.ingest(build_chain(40), cluster_size=10, root_name="h")
    space.swap_out(2, store=pool)
    assert pool.pool_used > 0
    chain_values(handle)  # reload drops the compressed copy
    assert pool.pool_used == 0


def test_unknown_key():
    space, pool = _space_with_pool()
    with pytest.raises(UnknownKeyError):
        pool.fetch("ghost")


def test_invalid_pool_fraction():
    space = make_space(with_store=False)
    with pytest.raises(ValueError):
        CompressedPoolStore(space, pool_fraction=0)


def test_gc_drop_releases_pool():
    space, pool = _space_with_pool()
    space.ingest(build_chain(40), cluster_size=10, root_name="h")
    space.swap_out(2, store=pool)
    space.del_root("h")
    space.gc()
    assert pool.pool_used == 0
