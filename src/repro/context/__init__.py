"""Context management.

OBIWAN's context-management module "abstracts resources and manages the
corresponding properties whose values vary during applications execution.
In particular, it is responsible for monitoring available memory and
network connectivity" (Section 2).
"""

from repro.context.monitor import MemoryMonitor, ConnectivityMonitor
from repro.context.properties import ContextProperty, ContextTable

__all__ = [
    "MemoryMonitor",
    "ConnectivityMonitor",
    "ContextProperty",
    "ContextTable",
]
