"""Observable context properties.

A :class:`ContextProperty` is a named value whose changes notify
observers; a :class:`ContextTable` groups the properties one device
exposes (memory ratio, devices in range, link state, ...).  The policy
engine's condition namespaces and applications both read them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, List, TypeVar

T = TypeVar("T")

Observer = Callable[[str, Any, Any], None]  # (name, old, new)


class ContextProperty(Generic[T]):
    """One observable named value."""

    def __init__(self, name: str, initial: T) -> None:
        self.name = name
        self._value = initial
        self._observers: List[Observer] = []

    @property
    def value(self) -> T:
        return self._value

    def set(self, new_value: T) -> None:
        old_value = self._value
        if old_value == new_value:
            return
        self._value = new_value
        for observer in list(self._observers):
            observer(self.name, old_value, new_value)

    def observe(self, observer: Observer) -> Callable[[], None]:
        self._observers.append(observer)
        return lambda: self._observers.remove(observer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ContextProperty {self.name}={self._value!r}>"


class ContextTable:
    """The property namespace of one device."""

    def __init__(self) -> None:
        self._properties: Dict[str, ContextProperty[Any]] = {}

    def define(self, name: str, initial: Any) -> ContextProperty[Any]:
        if name in self._properties:
            raise KeyError(f"context property {name!r} already defined")
        prop = ContextProperty(name, initial)
        self._properties[name] = prop
        return prop

    def get(self, name: str) -> Any:
        return self._properties[name].value

    def set(self, name: str, value: Any) -> None:
        self._properties[name].set(value)

    def property(self, name: str) -> ContextProperty[Any]:
        return self._properties[name]

    def names(self) -> List[str]:
        return sorted(self._properties)

    def snapshot(self) -> Dict[str, Any]:
        return {name: prop.value for name, prop in self._properties.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._properties
