"""Memory and connectivity monitors.

The monitors bridge raw substrate callbacks (heap watermarks, radio
join/leave) onto the event bus and the context property table, which is
where the policy engine sees them.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.context.properties import ContextTable
from repro.events import (
    AllocationFailedEvent,
    DeviceJoinedEvent,
    DeviceLeftEvent,
    EventBus,
    MemoryHighEvent,
    MemoryLowEvent,
)


class MemoryMonitor:
    """Publishes heap watermark crossings and exhaustion as bus events.

    "From time to time, the memory occupied by the object graphs of
    applications reaches a threshold value, possibly near the limit of
    the memory capacity of the device.  At those moments, the OBIWAN
    middleware, evaluating the policies loaded, decides to swap-out a set
    of objects to nearby devices" (Section 3) — this monitor produces
    those moments.
    """

    def __init__(
        self,
        space: Any,
        context: Optional[ContextTable] = None,
    ) -> None:
        self._space = space
        self._bus: EventBus = space.bus
        self._context = context
        if context is not None and "memory.ratio" not in context:
            context.define("memory.ratio", space.heap.ratio)
        space.heap.on_high(self._on_high)
        space.heap.on_low(self._on_low)
        space.heap.on_exhausted(self._on_exhausted)
        self.high_events = 0
        self.low_events = 0
        self.exhaustion_events = 0

    def _refresh_property(self) -> None:
        if self._context is not None:
            self._context.set("memory.ratio", self._space.heap.ratio)

    def _on_high(self, heap: Any, _need: int) -> None:
        self.high_events += 1
        self._refresh_property()
        self._bus.emit(
            MemoryHighEvent(
                space=self._space.name,
                used=heap.used,
                capacity=heap.capacity,
                ratio=heap.ratio,
                need_bytes=heap.bytes_over_low_watermark(),
            )
        )

    def _on_low(self, heap: Any, _need: int) -> None:
        self.low_events += 1
        self._refresh_property()
        self._bus.emit(
            MemoryLowEvent(
                space=self._space.name,
                used=heap.used,
                capacity=heap.capacity,
                ratio=heap.ratio,
            )
        )

    def _on_exhausted(self, heap: Any, need: int) -> None:
        self.exhaustion_events += 1
        self._refresh_property()
        self._bus.emit(
            AllocationFailedEvent(
                space=self._space.name,
                need_bytes=need,
                used=heap.used,
                capacity=heap.capacity,
            )
        )

    def check(self) -> float:
        """Refresh the context property; returns the current ratio."""
        self._refresh_property()
        return self._space.heap.ratio


class ConnectivityMonitor:
    """Tracks devices in range via the neighborhood's bus events."""

    def __init__(
        self,
        neighborhood: Any,
        bus: EventBus,
        context: Optional[ContextTable] = None,
    ) -> None:
        self._neighborhood = neighborhood
        self._context = context
        if context is not None and "devices.in_range" not in context:
            context.define("devices.in_range", len(neighborhood.discover()))
        self.joins = 0
        self.leaves = 0
        bus.subscribe(DeviceJoinedEvent, self._on_joined)
        bus.subscribe(DeviceLeftEvent, self._on_left)

    @property
    def connected_count(self) -> int:
        return len(self._neighborhood.discover())

    def _refresh(self) -> None:
        if self._context is not None:
            self._context.set("devices.in_range", self.connected_count)

    def _on_joined(self, _event: Any) -> None:
        self.joins += 1
        self._refresh()

    def _on_left(self, _event: Any) -> None:
        self.leaves += 1
        self._refresh()
