"""Paper-vs-measured reporting for Figure 5.

Absolute numbers cannot match (CPython on modern hardware vs .NET CF on
a 2002 iPAQ); what must hold is the *shape*:

1. NO-SWAP is the lower bound for every test;
2. overhead decreases as swap-cluster size grows (fewer boundaries);
3. A2 costs far more than A1 (inner recursions create garbage proxies);
4. B1 is the pathological case and B2 recovers most of it — the paper
   reports "more than five-fold" speed-up from ``assign`` at every
   cluster size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Relative tolerance for wall-clock fields when diffing two bench
#: reports.  Simulated cost is deterministic and diffs exactly; real
#: wall time jitters with the host (CI noise routinely hits tens of
#: percent on sub-second figures), so a wall column only *flags* when it
#: moved beyond half again the baseline...
WALL_JITTER_REL = 0.5

#: ...or when the absolute difference is inside plain scheduler noise.
WALL_JITTER_ABS_S = 0.05


def is_wall_path(path: str) -> bool:
    """True when a dotted report path names a real-time wall reading."""
    leaf = path.rsplit(".", 1)[-1]
    return "wall" in leaf


def within_wall_jitter(old: float, new: float) -> bool:
    """Whether a wall-clock change is indistinguishable from host noise."""
    if abs(new - old) <= WALL_JITTER_ABS_S:
        return True
    if old == 0.0:
        return False
    return abs(new - old) / abs(old) <= WALL_JITTER_REL


def format_sim_wall(sim_s: float, wall_s: float) -> str:
    """Render a simulated cost next to the real time it took to compute
    (``1.234s sim / 0.056s wall``) for bench tables."""
    return f"{sim_s:.3f}s sim / {wall_s:.3f}s wall"


#: The values read off Figure 5 of the paper (milliseconds).
PAPER_FIGURE5: Dict[str, Dict[Optional[int], float]] = {
    "A1": {20: 43.0, 50: 38.0, 100: 36.0, None: 35.0},
    "A2": {20: 467.0, 50: 398.0, 100: 377.0, None: 305.0},
    "B1": {20: 339.0, 50: 331.0, 100: 296.0, None: 36.0},
    "B2": {20: 64.0, 50: 51.0, 100: 49.0, None: 36.0},
}


def _label(cluster_size: Optional[int]) -> str:
    return "NO-SWAP" if cluster_size is None else str(cluster_size)


def format_figure5_table(result) -> str:
    """Render measured next to paper values, Figure 5 style."""
    sizes = list(result.config.cluster_sizes)
    header = f"{'test':<6}" + "".join(f"{_label(size):>12}" for size in sizes)
    lines = [
        "Performance impact of swapping on graph traversal (ms)",
        "measured (this reproduction) / paper (Figure 5, iPAQ 3360)",
        "",
        header,
        "-" * len(header),
    ]
    for test in result.config.tests:
        measured_row = f"{test:<6}" + "".join(
            f"{result.millis[test][size]:>12.1f}" for size in sizes
        )
        paper_row = f"{'':<6}" + "".join(
            f"{PAPER_FIGURE5[test].get(size, float('nan')):>12.1f}" for size in sizes
        )
        lines.append(measured_row)
        lines.append(paper_row + "   (paper)")
    lines.append("")
    overhead_header = f"{'test':<6}" + "".join(
        f"{_label(size):>12}" for size in sizes if size is not None
    )
    lines.append("overhead vs NO-SWAP (%)")
    lines.append(overhead_header)
    for test in result.config.tests:
        lines.append(
            f"{test:<6}"
            + "".join(
                f"{result.overhead_pct(test, size):>11.0f}%"
                for size in sizes
                if size is not None
            )
        )
    return "\n".join(lines)


def check_shape(result) -> Tuple[bool, List[Tuple[bool, str]]]:
    """Verify the qualitative claims of the evaluation section."""
    notes: List[Tuple[bool, str]] = []
    millis = result.millis
    sized = [size for size in result.config.cluster_sizes if size is not None]

    # 1. NO-SWAP is the lower bound (within a small tolerance for noise)
    for test in result.config.tests:
        base = millis[test][None]
        ok = all(millis[test][size] >= base * 0.9 for size in sized)
        notes.append((ok, f"{test}: NO-SWAP is the lower bound"))

    # 2. overhead decreases with swap-cluster size (monotone within noise)
    for test in ("A1", "A2", "B2"):
        ordered = [millis[test][size] for size in sorted(sized)]
        ok = all(
            later <= earlier * 1.25 for earlier, later in zip(ordered, ordered[1:])
        )
        notes.append(
            (ok, f"{test}: overhead non-increasing in swap-cluster size")
        )

    # 3. A2 is substantially more expensive than A1 at every size
    ok = all(millis["A2"][size] > millis["A1"][size] * 2 for size in sized)
    notes.append((ok, "A2 >> A1 (inner recursions create garbage proxies)"))

    # 4. B1 is pathological; assign() recovers about five-fold.  The paper
    # reports 5.3x-6.5x on .NET CF; on CPython the interpreter floor on a
    # mediated call compresses the gap slightly at the smallest cluster
    # size, so the reproduction asserts >= 4.5x at every size and >= 5x
    # on average (see EXPERIMENTS.md for the measured values and note).
    speedups = [result.speedup_b2_over_b1(size) for size in sized]
    mean_speedup = 1.0
    for speedup in speedups:
        mean_speedup *= speedup
    mean_speedup **= 1.0 / len(speedups)
    ok = all(speedup >= 4.5 for speedup in speedups) and mean_speedup >= 5.0
    notes.append(
        (
            ok,
            "B2 about five-fold faster than B1 (>=4.5x each size, >=5x mean; "
            f"measured: {', '.join(f'{value:.1f}x' for value in speedups)}, "
            f"mean {mean_speedup:.1f}x)",
        )
    )

    # 5. the B-tests' NO-SWAP bound is far below B1 (iteration penalty real)
    ok = all(millis["B1"][size] > millis["B1"][None] * 3 for size in sized)
    notes.append((ok, "B1 overhead vs NO-SWAP is large (>3x)"))

    return all(flag for flag, _ in notes), notes
