"""Scenario benchmark: the degrade ladder vs. a ladder-less baseline.

Runs every :data:`repro.faults.scenarios.SCENARIOS` entry twice per seed
— once with :meth:`~repro.core.manager.SwappingManager.
enable_degrade_ladder` and once without — over an otherwise identical
world (same seed, same task graphs, same scripted touch order, same
churn schedule), and scores both runs against the scenario's
responsiveness SLO:

* **p95 fault-stall seconds** — simulated seconds a scripted access
  spent blocked (swap-in, victim shipping, everything the clock charged
  while the touch ran), measured by the harness identically for both
  runs;
* **foreground OOM count** — foreground clusters OOM-killed, foreground
  allocations denied, and touches that hit a killed foreground task.

The run is deterministic end to end: the touch script is precomputed
from (scenario, seed) before either run starts, so the ladder and the
baseline face byte-identical workloads.

``python -m repro.bench.scenarios`` writes ``BENCH_scenarios.json``.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.degrade import DegradeLadderConfig
from repro.core.fastpath import FastPathConfig
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.errors import IntegrityError, ObiError
from repro.faults import ChurnInjector, FaultInjector, FaultPlan, FlakyStore
from repro.faults.scenarios import SCENARIOS, ScenarioSpec, device_name
from repro.resilience import ResilienceConfig
from repro.runtime import readonly
from repro.runtime.obicomp import managed

#: Foreground / background / idle priorities (``repro.policy.priority``
#: values as plain ints, matching ``SwapCluster.priority``).
FOREGROUND, BACKGROUND, IDLE = 2, 1, 0

#: Every Nth scripted touch mutates the task instead of reading it, so
#: runs carry a realistic dirty working set.
MUTATE_EVERY = 3


@managed(size=320)
class ScenarioRecord:
    """One workload object: a payload-carrying chain element."""

    def __init__(self, key: int, payload: str) -> None:
        self.key = key
        self.payload = payload
        self.next: Optional["ScenarioRecord"] = None

    @readonly
    def get_key(self) -> int:
        return self.key

    def bump(self) -> int:
        # a genuine mutation: dirties the cluster through the barrier
        self.payload = self.payload[1:] + self.payload[:1]
        return self.key


def _build_chain(count: int, payload_bytes: int, rng: random.Random) -> Any:
    head = ScenarioRecord(
        0, "".join(rng.choice("abcdefgh") for _ in range(payload_bytes))
    )
    node = head
    for index in range(1, count):
        node.next = ScenarioRecord(
            index,
            "".join(rng.choice("abcdefgh") for _ in range(payload_bytes)),
        )
        node = node.next
    return head


# ---------------------------------------------------------------------------
# Touch script: precomputed so both runs face the identical workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScriptStep:
    """One workload step, fully resolved before any run starts."""

    phase: str
    advance_s: float
    #: ``(task_index, mutate)`` pairs, in order.
    touches: Tuple[Tuple[int, bool], ...] = ()
    spike_objects: int = 0
    release_spike: bool = False
    #: Task indexes ingested this step (flash-crowd arrivals).
    arrivals: Tuple[int, ...] = ()


def script_seed(spec: ScenarioSpec, seed: int) -> int:
    """The per-(scenario, seed) PRNG seed; ``hash()`` is salted per
    process, so derive from a stable digest instead."""
    return seed * 7919 + zlib.crc32(spec.name.encode("utf-8"))


def build_script(spec: ScenarioSpec, seed: int) -> List[ScriptStep]:
    rng = random.Random(script_seed(spec, seed))
    steps: List[ScriptStep] = []
    task_count = spec.tasks
    touch_counter = 0
    rotation = 0
    step_index = 0
    for phase in spec.phases:
        for local in range(phase.steps):
            arrivals: List[int] = []
            for _ in range(phase.arrivals_per_step):
                arrivals.append(task_count)
                task_count += 1
            touches: List[Tuple[int, bool]] = []
            for j in range(phase.touches_per_step):
                if phase.pattern == "uniform":
                    task = rotation % task_count
                    rotation += 1
                elif phase.pattern == "foreground":
                    if j % 4 == 3 and task_count > 1:
                        task = 1 + rotation % (task_count - 1)
                        rotation += 1
                    else:
                        task = 0
                else:  # sweep: the focus hops every step (LRU worst case)
                    task = step_index % task_count
                touch_counter += 1
                mutate = touch_counter % MUTATE_EVERY == 0
                # seeded jitter: occasionally touch a random straggler
                if rng.random() < 0.1:
                    task = rng.randrange(task_count)
                touches.append((task, mutate))
            steps.append(
                ScriptStep(
                    phase=phase.name,
                    advance_s=phase.step_s,
                    touches=tuple(touches),
                    spike_objects=phase.spike_objects if local == 0 else 0,
                    release_spike=(
                        phase.spike_objects > 0
                        and phase.release_spike
                        and local == phase.steps - 1
                    ),
                    arrivals=tuple(arrivals),
                )
            )
            step_index += 1
    return steps


# ---------------------------------------------------------------------------
# One run
# ---------------------------------------------------------------------------


def _p95(values: List[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = max(0, -(-len(ordered) * 95 // 100) - 1)  # ceil(0.95n) - 1
    return ordered[index]


def run_once(
    spec: ScenarioSpec,
    seed: int,
    script: List[ScriptStep],
    *,
    ladder: bool,
    observe: bool = False,
    obs_path: Optional[str] = None,
    obs_append: bool = True,
) -> Dict[str, Any]:
    """Execute one scenario run; returns the scored result dict."""
    clock = SimulatedClock()
    mode = "ladder" if ladder else "baseline"
    space = Space(
        f"{spec.name}-{mode}-{seed}",
        heap_capacity=spec.heap_capacity,
        clock=clock,
    )
    manager = space.manager
    injector = FaultInjector(FaultPlan.empty(seed=seed), clock)
    stores: Dict[str, FlakyStore] = {}
    for index in range(spec.store_count):
        store = FlakyStore(
            XmlStoreDevice(
                device_name(index),
                capacity=spec.store_capacity,
                link=bluetooth_link(clock, name=f"bt-{index}"),
            ),
            injector,
        )
        stores[store.device_id] = store
        manager.add_store(store)
    churn = ChurnInjector(spec.churn, clock)
    manager.enable_resilience(
        ResilienceConfig(
            seed=seed,
            degrade_to_local=True,
            scrub_interval_s=10.0**9,  # scrub off: score the ladder alone
            cooldown_s=5.0,
        )
    )
    manager.enable_fastpath(
        FastPathConfig(
            cache_budget_bytes=spec.cache_budget_bytes,
            delta=True,
        )
    )
    ladder_obj = None
    if ladder:
        ladder_obj = manager.enable_degrade_ladder(
            DegradeLadderConfig(slo_p95_stall_s=spec.slo_p95_stall_s)
        )
    obs = manager.enable_observability() if observe else None

    def ingest_task(index: int, objects: int, priority: int) -> Any:
        content = random.Random(seed * 1_000_003 + index)
        handle = space.ingest(
            _build_chain(objects, spec.payload_bytes, content),
            cluster_size=objects,
            root_name=f"task-{index}",
        )
        space.set_priority(handle, priority)
        return handle

    def task_priority(index: int) -> int:
        if index == 0:
            return FOREGROUND
        if index < spec.tasks and index >= spec.tasks - spec.tasks // 4:
            return IDLE
        return BACKGROUND

    handles: List[Any] = []
    for index in range(spec.tasks):
        handles.append(
            ingest_task(index, spec.objects_per_task, task_priority(index))
        )

    stalls: List[Tuple[float, int]] = []
    killed_touches = 0
    foreground_killed_touches = 0
    touch_failures = 0
    foreground_touch_failures = 0
    spike_failures = 0
    arrival_failures = 0
    spike_handle: Optional[Any] = None
    spike_name: Optional[str] = None
    spike_count = 0

    for step in script:
        clock.advance(step.advance_s)
        churn.apply(stores)
        if step.spike_objects:
            spike_count += 1
            spike_name = f"spike-{spike_count}"
            started = clock.now()
            try:
                chain = _build_chain(
                    step.spike_objects,
                    spec.payload_bytes,
                    random.Random(seed * 2_000_003 + spike_count),
                )
                spike_handle = space.ingest(
                    chain,
                    cluster_size=step.spike_objects,
                    root_name=spike_name,
                )
                space.set_priority(spike_handle, FOREGROUND)
            except ObiError:
                # the interactive allocation was denied outright — the
                # harshest possible responsiveness failure
                spike_failures += 1
                spike_handle = None
                spike_name = None
            stalls.append((clock.now() - started, FOREGROUND))
        if step.arrivals:
            arrival_objects = spec.phase_named(step.phase).arrival_objects
            for index in step.arrivals:
                try:
                    handles.append(
                        ingest_task(index, arrival_objects, BACKGROUND)
                    )
                except ObiError:
                    handles.append(None)
                    arrival_failures += 1
        for task, mutate in step.touches:
            if task >= len(handles) or handles[task] is None:
                continue  # an arrival that never landed
            priority = task_priority(task) if task < spec.tasks else BACKGROUND
            started = clock.now()
            try:
                if mutate:
                    handles[task].bump()
                else:
                    handles[task].get_key()
            except IntegrityError:
                # the task was OOM-killed: an app relaunch, not a stall
                killed_touches += 1
                if priority == FOREGROUND:
                    foreground_killed_touches += 1
                continue
            except ObiError:
                # the access was denied outright (heap exhausted with no
                # reclaimable victim, every store unreachable, ...): the
                # worst responsiveness failure a touch can suffer
                touch_failures += 1
                if priority == FOREGROUND:
                    foreground_touch_failures += 1
                continue
            stalls.append((clock.now() - started, priority))
        if step.release_spike and spike_handle is not None:
            space.del_root(spike_name)
            spike_handle = None
            spike_name = None
            space.gc()

    stats = manager.stats
    all_stalls = [seconds for seconds, _ in stalls]
    fg_stalls = [s for s, priority in stalls if priority == FOREGROUND]
    foreground_oom = (
        stats.oom_kills_foreground
        + spike_failures
        + foreground_killed_touches
        + foreground_touch_failures
    )
    result: Dict[str, Any] = {
        "mode": mode,
        "seed": seed,
        "sim_duration_s": round(clock.now(), 3),
        "stall_samples": len(all_stalls),
        "p95_stall_s": round(_p95(all_stalls), 4),
        "foreground_p95_stall_s": round(_p95(fg_stalls), 4),
        "max_stall_s": round(max(all_stalls), 4) if all_stalls else 0.0,
        "mean_stall_s": round(
            sum(all_stalls) / len(all_stalls), 4
        ) if all_stalls else 0.0,
        "oom_kills": stats.oom_kills,
        "oom_kills_foreground": stats.oom_kills_foreground,
        "spike_failures": spike_failures,
        "arrival_failures": arrival_failures,
        "killed_touches": killed_touches,
        "foreground_killed_touches": foreground_killed_touches,
        "touch_failures": touch_failures,
        "foreground_touch_failures": foreground_touch_failures,
        "foreground_oom": foreground_oom,
        "slo_met": (
            _p95(all_stalls) <= spec.slo_p95_stall_s
            and foreground_oom == 0
            and touch_failures == 0
        ),
        "counters": {
            "swap.out.count": stats.swap_outs,
            "swap.in.count": stats.swap_ins,
            "policy.ladder.escalations": stats.ladder_escalations,
            "policy.ladder.deescalations": stats.ladder_deescalations,
            "policy.ladder.compress_local": stats.ladder_compress_local,
            "policy.ladder.drop_clean": stats.ladder_drop_clean,
            "policy.oom.kills": stats.oom_kills,
        },
    }
    if ladder_obj is not None:
        result["rung_transitions"] = [
            [round(at, 3), from_rung, to_rung]
            for at, from_rung, to_rung in ladder_obj.transitions
        ]
        result["final_rung"] = int(ladder_obj.rung)
        result["manager_fault_stall_p95_s"] = round(
            ladder_obj.fault_stalls.p95(), 4
        )
    if obs is not None:
        obs.refresh()
        if obs_path is not None:
            obs.export_jsonl(
                obs_path,
                label=f"scenario:{spec.name}:{mode}:seed={seed}",
                append=obs_append,
            )
    return result


# ---------------------------------------------------------------------------
# The full matrix
# ---------------------------------------------------------------------------


@dataclass
class ScenarioBenchConfig:
    seeds: Tuple[int, ...] = (1, 2, 3)
    scenarios: Tuple[str, ...] = tuple(SCENARIOS)
    quick: bool = False

    @classmethod
    def quick_config(cls, seed: Optional[int] = None) -> "ScenarioBenchConfig":
        """CI sizing: one seed, every scenario."""
        return cls(seeds=(seed if seed is not None else 1,), quick=True)


def _worst(results: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Worst-of-seeds summary (the SLO must hold for every seed)."""
    return {
        "p95_stall_s": max(r["p95_stall_s"] for r in results),
        "foreground_p95_stall_s": max(
            r["foreground_p95_stall_s"] for r in results
        ),
        "max_stall_s": max(r["max_stall_s"] for r in results),
        "foreground_oom": sum(r["foreground_oom"] for r in results),
        "oom_kills": sum(r["oom_kills"] for r in results),
        "slo_met": all(r["slo_met"] for r in results),
    }


def run_scenarios(
    config: Optional[ScenarioBenchConfig] = None,
    *,
    observe: bool = False,
    obs_path: Optional[str] = None,
) -> Dict[str, Any]:
    config = config if config is not None else ScenarioBenchConfig()
    scenarios: Dict[str, Any] = {}
    first_export = True
    for name in config.scenarios:
        spec: ScenarioSpec = SCENARIOS[name]()
        per_seed: Dict[str, Any] = {}
        ladder_results: List[Dict[str, Any]] = []
        baseline_results: List[Dict[str, Any]] = []
        for seed in config.seeds:
            script = build_script(spec, seed)
            ladder_run = run_once(
                spec, seed, script, ladder=True,
                observe=observe, obs_path=obs_path,
                obs_append=not first_export,
            )
            first_export = False
            baseline_run = run_once(
                spec, seed, script, ladder=False,
                observe=observe, obs_path=obs_path, obs_append=True,
            )
            per_seed[str(seed)] = {
                "ladder": ladder_run,
                "baseline": baseline_run,
            }
            ladder_results.append(ladder_run)
            baseline_results.append(baseline_run)
        scenarios[name] = {
            "description": spec.description,
            "slo_p95_stall_s": spec.slo_p95_stall_s,
            "seeds": per_seed,
            "ladder": _worst(ladder_results),
            "baseline": _worst(baseline_results),
            "slo": {
                "ladder_met": all(r["slo_met"] for r in ladder_results),
                "baseline_violates": all(
                    not r["slo_met"] for r in baseline_results
                ),
            },
        }
    return {
        "benchmark": "scenarios",
        "observed": observe,
        "config": {
            "seeds": list(config.seeds),
            "scenarios": list(config.scenarios),
            "quick": config.quick,
        },
        "scenarios": scenarios,
    }


def format_table(report: Dict[str, Any]) -> str:
    header = (
        f"{'scenario':<24} {'slo s':>6} {'ladder p95':>11} {'base p95':>9} "
        f"{'fg oom L/B':>11} {'ladder':>7} {'base':>9}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in report["scenarios"].items():
        ladder = entry["ladder"]
        base = entry["baseline"]
        lines.append(
            f"{name:<24} {entry['slo_p95_stall_s']:>6.1f} "
            f"{ladder['p95_stall_s']:>11.3f} {base['p95_stall_s']:>9.3f} "
            f"{ladder['foreground_oom']:>5}/{base['foreground_oom']:<5} "
            f"{'met' if entry['slo']['ladder_met'] else 'MISS':>7} "
            f"{'violates' if entry['slo']['baseline_violates'] else 'met':>9}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI sizing: a single seed"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="with --quick: which single seed to run",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="explicit seed list (default 1 2 3)",
    )
    parser.add_argument(
        "--scenario", action="append", default=None,
        help="run only this scenario (repeatable)",
    )
    parser.add_argument(
        "--output", default="BENCH_scenarios.json", help="JSON output path"
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="attach observability and dump labeled traces/metrics",
    )
    parser.add_argument(
        "--obs-output", default="BENCH_scenarios_obs.jsonl",
        help="JSONL dump path (with --obs)",
    )
    arguments = parser.parse_args(argv)
    if arguments.quick:
        config = ScenarioBenchConfig.quick_config(arguments.seed)
    else:
        config = ScenarioBenchConfig()
    if arguments.seeds:
        config.seeds = tuple(arguments.seeds)
    if arguments.scenario:
        unknown = [s for s in arguments.scenario if s not in SCENARIOS]
        if unknown:
            parser.error(f"unknown scenario(s): {', '.join(unknown)}")
        config.scenarios = tuple(arguments.scenario)
    report = run_scenarios(
        config,
        observe=arguments.obs,
        obs_path=arguments.obs_output if arguments.obs else None,
    )
    print(format_table(report))
    if arguments.obs:
        print(f"wrote {arguments.obs_output}")
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
