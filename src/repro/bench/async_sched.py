"""Async swap-scheduler benchmark: fetch-bound pointer chase.

Measures what event-driven scheduling (:mod:`repro.core.sched`) buys on
the post-PR-5 bottleneck — fault *latency*, not payload bytes — with a
workload built to be fetch-bound: a ring of blob-carrying nodes walked
through swap-cluster proxies, with seeded forward jumps, over a heap
sized so only a handful of clusters fit at once.  Every few steps the
walk crosses into a swapped cluster: a demand fetch plus (rf = 3) victim
re-ships per fault, against five Bluetooth-class stores.

Three scenarios on byte-identical workloads:

* ``sync``   — the legacy blocking fault path: every fault stalls for
  the victim ships *and* the demand fetch, serially;
* ``async``  — the scheduler with one channel per store and prefetching
  on: victim write-back overlaps in-flight fetches, and the prefetcher
  keeps the next clusters warm, so the residual stall is the slice of
  demand-transfer time nothing else could hide;
* ``serial`` — the scheduler clamped to ``channels=1, prefetch=off``,
  which must be **bit-identical** to ``sync`` (same stats, same clock,
  same epochs, same heap) — the report carries a ``sync_equivalent``
  flag CI asserts.

Headline: p95 fault-stall reduction (simulated seconds an access was
blocked on a reload), asserted ≥ 2x by CI across seeds, with the
prefetch waste ratio and overlap ratio reported alongside.  Each
scenario also reports the real wall-clock time it took to compute next
to its simulated cost.  ``python -m repro.bench.async_sched`` writes
``BENCH_async.json``.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.runtime.obicomp import managed


def _blob(seed_a: int, seed_b: int, nbytes: int) -> str:
    """Deterministic high-entropy hex content (defeats the codec's zlib
    pass, as real application state would)."""
    chunks: List[str] = []
    length = 0
    counter = 0
    while length < nbytes:
        digest = hashlib.sha256(
            f"{seed_a}:{seed_b}:{counter}".encode("ascii")
        ).hexdigest()
        chunks.append(digest)
        length += len(digest)
        counter += 1
    return "".join(chunks)[:nbytes]


@managed(size=192)
class ChaseNode:
    """A ring element carrying content plus two outbound edges: ``next``
    (the ring) and ``alt`` (a seeded forward jump a few clusters ahead).
    The jumps keep the reference graph honest — prediction cannot just
    memorize one successor per cluster."""

    def __init__(self, index: int, blob: str) -> None:
        self.index = index
        self.blob = blob
        self.next: Optional["ChaseNode"] = None
        self.alt: Optional["ChaseNode"] = None


def build_ring(n: int, blob_bytes: int, seed: int) -> ChaseNode:
    """A closed ring of ``n`` nodes with seeded forward ``alt`` jumps.

    The ring means the chase never needs to re-enter through a raw head
    reference — every step moves proxy-to-proxy, so every cluster
    crossing goes through the fault path.
    """
    rng = random.Random(seed)
    nodes = [ChaseNode(index, _blob(index, seed, blob_bytes)) for index in range(n)]
    for left, right in zip(nodes, nodes[1:]):
        left.next = right
    nodes[-1].next = nodes[0]
    for index, node in enumerate(nodes):
        node.alt = nodes[(index + rng.randrange(5, 25)) % n]
    return nodes[0]


@dataclass
class AsyncBenchConfig:
    objects: int = 400
    cluster_size: int = 5
    #: proxy-crossing steps of the pointer chase
    steps: int = 600
    #: fraction of steps that take the ``alt`` jump instead of ``next``
    jump_fraction: float = 0.15
    #: incompressible payload per node
    blob_bytes: int = 96
    stores: int = 5
    replication_factor: int = 3
    #: async scenario: transfer channels (one per store by default)
    channels: int = 5
    prefetch_depth: int = 4
    #: clusters that fit in the clamped heap during the chase — small
    #: enough that the walk continuously faults *and* evicts
    resident_clusters: int = 4
    seed: int = 1
    store_capacity: int = 32 << 20

    @classmethod
    def quick(cls, seed: int = 1) -> "AsyncBenchConfig":
        """CI smoke-test sizing (a few seconds of wall clock)."""
        return cls(objects=240, cluster_size=4, steps=300, seed=seed)


@dataclass
class ScenarioResult:
    name: str
    steps: int
    faults: int
    swap_outs: int
    fault_stall_mean_s: float
    fault_stall_p50_s: float
    fault_stall_p95_s: float
    fault_stall_total_s: float
    sim_clock_s: float
    #: real time this scenario took to compute (host-dependent; compares
    #: with jitter tolerance only — see repro.bench.report)
    wall_s: float
    bytes_on_link: int
    link_seconds: float
    #: sha256 over (clock, counters, epochs, heap) — byte-identity check
    digest: str = ""
    # -- scheduler counters (zero for the sync scenario) --
    sched_demand_fetches: int = 0
    sched_prefetch_issued: int = 0
    sched_prefetch_hits: int = 0
    sched_prefetch_waste: int = 0
    sched_prefetch_cancelled: int = 0
    sched_prefetch_preempted: int = 0
    sched_writebacks: int = 0
    sched_stale_drops: int = 0
    sched_max_queue_depth: int = 0
    sched_stall_saved_s: float = 0.0
    sched_backpressure_stall_s: float = 0.0
    sched_overlap_ratio: float = 0.0
    prefetch_waste_ratio: float = 0.0
    #: per-phase simulated/wall cost from the profiler (``--obs`` only)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class AsyncBenchReport:
    config: AsyncBenchConfig
    scenarios: Dict[str, ScenarioResult] = field(default_factory=dict)
    observed: bool = False

    @property
    def p95_stall_reduction(self) -> float:
        """sync / async p95 fault-stall seconds — the headline."""
        sync = self.scenarios["sync"].fault_stall_p95_s
        fast = self.scenarios["async"].fault_stall_p95_s
        return sync / fast if fast > 0 else float("inf")

    @property
    def mean_stall_reduction(self) -> float:
        sync = self.scenarios["sync"].fault_stall_mean_s
        fast = self.scenarios["async"].fault_stall_mean_s
        return sync / fast if fast > 0 else float("inf")

    @property
    def total_stall_reduction(self) -> float:
        sync = self.scenarios["sync"].fault_stall_total_s
        fast = self.scenarios["async"].fault_stall_total_s
        return sync / fast if fast > 0 else float("inf")

    @property
    def sync_equivalent(self) -> bool:
        """serial (channels=1, prefetch=off) bit-identical to sync."""
        return (
            self.scenarios["serial"].digest == self.scenarios["sync"].digest
        )

    def to_json(self) -> str:
        payload = {
            "benchmark": "async_sched",
            "observed": self.observed,
            "config": asdict(self.config),
            "scenarios": {
                name: asdict(result) for name, result in self.scenarios.items()
            },
            "reductions": {
                "p95_fault_stall": self.p95_stall_reduction,
                "mean_fault_stall": self.mean_stall_reduction,
                "total_fault_stall": self.total_stall_reduction,
            },
            "sync_equivalent": self.sync_equivalent,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _build_space(config: AsyncBenchConfig) -> Tuple[Space, SimulatedClock, list]:
    """Space + stores + fully swapped-out ring, identical per scenario.

    The prep phase runs entirely on the legacy path (the scheduler, when
    a scenario uses one, is enabled only after), so every scenario
    starts the chase from the same simulated instant and store state.
    Resilience is on so placement spreads replicas across all five
    stores — without the spread every cluster would land on the same
    first-fit three and the fleet's parallelism would be fiction.
    """
    clock = SimulatedClock()
    space = Space("chase", heap_capacity=64 << 20, clock=clock)
    manager = space.manager
    manager.enable_resilience()
    manager.replication_factor = config.replication_factor
    links = []
    for index in range(config.stores):
        link = bluetooth_link(clock, name=f"bt-{index}")
        links.append(link)
        manager.add_store(
            XmlStoreDevice(
                f"peer-{index}", capacity=config.store_capacity, link=link
            )
        )
    space.ingest(
        build_ring(config.objects, config.blob_bytes, config.seed),
        cluster_size=config.cluster_size,
        root_name="head",
    )
    for sid, cluster in sorted(space._clusters.items()):
        if cluster.swappable() and cluster.oids:
            manager.swap_out(sid)
    # clamp the heap so only ~resident_clusters fit during the chase:
    # every few crossings must evict a victim (write-back) AND fetch
    space.heap.capacity = space.heap.used + int(
        config.resident_clusters * config.cluster_size * 192 * 1.5
    )
    return space, clock, links


def _chase_plan(config: AsyncBenchConfig) -> List[bool]:
    """The seeded step plan (True = take the ``alt`` jump), shared by
    every scenario so the access pattern is byte-identical."""
    rng = random.Random(config.seed + 1)
    return [rng.random() < config.jump_fraction for _ in range(config.steps)]


def _digest_of(space: Space, clock: SimulatedClock) -> str:
    from repro.stats import counter_snapshot

    payload = {
        "clock": clock.now(),
        "counters": counter_snapshot(space.manager.stats),
        "epochs": {
            str(sid): cluster.epoch
            for sid, cluster in sorted(space._clusters.items())
        },
        "heap": space.heap.used,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def run_scenario(
    name: str,
    config: AsyncBenchConfig,
    *,
    channels: Optional[int],
    prefetch: bool,
    observe: bool = False,
    obs_path: str | None = None,
    obs_append: bool = True,
) -> ScenarioResult:
    """One chase.  ``channels=None`` means no scheduler (legacy path)."""
    space, clock, links = _build_space(config)
    manager = space.manager
    obs = manager.enable_observability() if observe else None
    sched = None
    if channels is not None:
        sched = manager.enable_async_scheduler(
            channels=channels,
            prefetch=prefetch,
            prefetch_depth=config.prefetch_depth,
        )

    plan = _chase_plan(config)
    node: Any = space.roots()["head"]
    stalls: List[float] = []
    wall_started = time.perf_counter()
    for jump in plan:
        before = clock.now()
        faults_before = manager.stats.swap_ins
        _ = node.index  # the proxy fault, if the cluster is swapped
        if manager.stats.swap_ins > faults_before:
            stalls.append(clock.now() - before)
        node = node.alt if jump else node.next
    if sched is not None:
        sched.drain()
    wall_s = time.perf_counter() - wall_started

    phases: Dict[str, Dict[str, float]] = {}
    if obs is not None:
        obs.refresh()
        phases = obs.profiler.breakdown()
        if obs_path is not None:
            obs.export_jsonl(obs_path, label=f"async:{name}", append=obs_append)

    stats = manager.stats
    result = ScenarioResult(
        name=name,
        steps=config.steps,
        faults=len(stalls),
        swap_outs=stats.swap_outs,
        fault_stall_mean_s=(sum(stalls) / len(stalls)) if stalls else 0.0,
        fault_stall_p50_s=_percentile(stalls, 0.50),
        fault_stall_p95_s=_percentile(stalls, 0.95),
        fault_stall_total_s=sum(stalls),
        sim_clock_s=clock.now(),
        wall_s=wall_s,
        bytes_on_link=sum(link.stats.bytes_carried for link in links),
        link_seconds=sum(link.stats.seconds_charged for link in links),
        digest=_digest_of(space, clock),
    )
    if sched is not None:
        sstats = sched.stats
        result.sched_demand_fetches = sstats.demand_fetches
        result.sched_prefetch_issued = sstats.prefetch_issued
        result.sched_prefetch_hits = sstats.prefetch_hits
        result.sched_prefetch_waste = sstats.prefetch_waste
        result.sched_prefetch_cancelled = sstats.prefetch_cancelled
        result.sched_prefetch_preempted = sstats.prefetch_preempted
        result.sched_writebacks = sstats.writebacks
        result.sched_stale_drops = sstats.stale_drops
        result.sched_max_queue_depth = sstats.max_queue_depth
        result.sched_stall_saved_s = sstats.stall_saved_s
        result.sched_backpressure_stall_s = sstats.backpressure_stall_s
        result.sched_overlap_ratio = sched.overlap_ratio()
        result.prefetch_waste_ratio = sstats.waste_ratio
    result.phases = phases
    return result


def run_async_bench(
    config: AsyncBenchConfig | None = None,
    *,
    observe: bool = False,
    obs_path: str | None = None,
) -> AsyncBenchReport:
    """Run all three scenarios on byte-identical workloads."""
    config = config if config is not None else AsyncBenchConfig()
    report = AsyncBenchReport(config=config, observed=observe)
    plans = [
        ("sync", None, False),
        ("async", config.channels, True),
        ("serial", 1, False),
    ]
    for index, (name, channels, prefetch) in enumerate(plans):
        report.scenarios[name] = run_scenario(
            name,
            config,
            channels=channels,
            prefetch=prefetch,
            observe=observe,
            obs_path=obs_path,
            obs_append=index > 0,
        )
    return report


def format_table(report: AsyncBenchReport) -> str:
    from repro.bench.report import format_sim_wall

    header = (
        f"{'scenario':<9} {'faults':>6} {'stall p50 s':>12} "
        f"{'stall p95 s':>12} {'stall sum s':>12} {'hits':>5} "
        f"{'waste':>6} {'overlap':>8}"
    )
    lines = [header, "-" * len(header)]
    for result in report.scenarios.values():
        lines.append(
            f"{result.name:<9} {result.faults:>6} "
            f"{result.fault_stall_p50_s:>12.4f} "
            f"{result.fault_stall_p95_s:>12.4f} "
            f"{result.fault_stall_total_s:>12.2f} "
            f"{result.sched_prefetch_hits:>5} "
            f"{result.prefetch_waste_ratio:>6.2f} "
            f"{result.sched_overlap_ratio:>8.2f}"
        )
    for result in report.scenarios.values():
        lines.append(
            f"{result.name:<9} {format_sim_wall(result.sim_clock_s, result.wall_s)}"
        )
    lines.append(
        f"reductions vs sync: p95 stall {report.p95_stall_reduction:.1f}x, "
        f"mean stall {report.mean_stall_reduction:.1f}x, total stall "
        f"{report.total_stall_reduction:.1f}x; sync-equivalent serial: "
        f"{report.sync_equivalent}"
    )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke-test sizing"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default 1)"
    )
    parser.add_argument(
        "--output", default="BENCH_async.json", help="JSON output path"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run with observability attached: per-phase breakdowns in the "
        "JSON plus one labeled trace/metric dump per scenario",
    )
    parser.add_argument(
        "--obs-output",
        default="BENCH_async_obs.jsonl",
        help="JSONL dump path (with --obs)",
    )
    arguments = parser.parse_args(argv)
    config = (
        AsyncBenchConfig.quick(seed=arguments.seed)
        if arguments.quick
        else AsyncBenchConfig(seed=arguments.seed)
    )
    report = run_async_bench(
        config,
        observe=arguments.obs,
        obs_path=arguments.obs_output if arguments.obs else None,
    )
    print(format_table(report))
    if arguments.obs:
        print(f"wrote {arguments.obs_output}")
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
