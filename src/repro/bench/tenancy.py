"""Tenancy benchmark: fair-share isolation vs. a free-for-all fleet.

Three tenants — a foreground **victim**, a bursty **aggressor**, and a
quiet **background** tenant — share one swap-store fleet on one
simulated clock.  Each tenant drives its own :class:`~repro.core.
space.Space` with a scripted workload built from the same traffic
shapes as :mod:`repro.bench.scenarios` (:func:`~repro.bench.scenarios.
build_script`), so runs are deterministic per (seed, mode): the
aggressor replays a flash-crowd burst (arrivals plus an allocation
spike) sized to several times the fleet's capacity, while the victim
keeps serving pointer-chase touches against its foreground task.

Every seed runs twice over byte-identical workloads:

* **fleet mode** — all three spaces are registered with a
  :class:`~repro.fleet.tenancy.TenantRegistry` (the victim holds a
  guaranteed share) fronted by a :class:`~repro.fleet.controller.
  FleetController`;
* **off mode** — same spaces, same stores, no tenancy: first-come,
  first-served.

The score is the victim's experience while the aggressor bursts:
p95 touch stall, involuntary fair-share evictions, admission denials,
and — the decisive signal — swap-outs that found no fleet room and
degraded to the local pool.  Isolation **holds** when the victim stays
within its SLO, suffers zero denials, zero fair-share evictions, and
zero degraded swap-outs; the free-for-all **violates** when at least
one victim swap-out starves (or the victim is squeezed below
:data:`VICTIM_FLOOR_FRACTION` of its guaranteed bytes, or blows its
SLO) — both sides are asserted per seed by CI.

``python -m repro.bench.tenancy`` writes ``BENCH_tenancy.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.scenarios import (
    FOREGROUND,
    _build_chain,
    _p95,
    build_script,
)
from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.degrade import DegradeLadderConfig
from repro.core.fastpath import FastPathConfig
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.errors import IntegrityError, ObiError
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.faults.scenarios import ScenarioPhase, ScenarioSpec, device_name
from repro.fleet import (
    FleetConfig,
    FleetController,
    TenantRegistry,
    TenantSpec,
    manager_store_bytes,
)
from repro.resilience import ResilienceConfig

#: Shared fleet sizing: deliberately small against the aggressor's
#: appetite so its burst drives the fleet into global store pressure.
STORE_COUNT = 4
STORE_CAPACITY = 48 << 10

#: The victim's responsiveness SLO (p95 touch-stall seconds).
VICTIM_SLO_S = 1.5

#: Isolation floor (off-mode starvation evidence): ending the burst
#: below this fraction of the guaranteed store bytes counts as the
#: free-for-all squeezing the victim out of the fleet.
VICTIM_FLOOR_FRACTION = 0.5

#: Tenant roles, in scripted execution order per round.
TENANT_ORDER = ("victim", "aggressor", "background")

#: Fleet-mode tenant limits.  The victim's guarantee is what the bench
#: defends; the aggressor's quota is deliberately near the whole fleet
#: so only fair-share arbitration (never its own quota) restrains it.
TENANT_LIMITS: Dict[str, Dict[str, Any]] = {
    "victim": {
        "guaranteed_share": 0.30,
        "quota_fraction": 0.45,
        "priority_class": 2,
    },
    "aggressor": {
        "guaranteed_share": 0.10,
        "quota_fraction": 0.90,
        "priority_class": 1,
    },
    "background": {
        "guaranteed_share": 0.10,
        "quota_fraction": 0.25,
        "priority_class": 1,
    },
}


def tenant_specs(quick: bool) -> Dict[str, ScenarioSpec]:
    """The three tenants' workloads over one shared phase skeleton.

    All three use identical phase timings (same step counts, same
    ``step_s``) so the driver can interleave them round-by-round on
    the shared clock; they differ only in traffic shape.
    """
    warmup = 6 if quick else 8
    burst = 18 if quick else 36
    drain = 4 if quick else 8

    def phases(
        *,
        warm_touches: int,
        burst_touches: int,
        pattern: str,
        arrivals: int = 0,
        arrival_objects: int = 0,
        spike: int = 0,
        drain_touches: int = 4,
    ) -> Tuple[ScenarioPhase, ...]:
        return (
            ScenarioPhase(
                "warmup", steps=warmup, step_s=1.0,
                touches_per_step=warm_touches, pattern="uniform",
            ),
            ScenarioPhase(
                "burst", steps=burst, step_s=0.5,
                touches_per_step=burst_touches, pattern=pattern,
                arrivals_per_step=arrivals, arrival_objects=arrival_objects,
                spike_objects=spike, release_spike=False,
            ),
            ScenarioPhase(
                "drain", steps=drain, step_s=2.0,
                touches_per_step=drain_touches, pattern="uniform",
            ),
        )

    return {
        "victim": ScenarioSpec(
            name="tenancy_victim",
            description="foreground pointer-chase at a steady rate",
            phases=phases(
                warm_touches=6, burst_touches=6, pattern="foreground"
            ),
            tasks=6,
            objects_per_task=24,
            payload_bytes=256,
            heap_capacity=40 << 10,
        ),
        "aggressor": ScenarioSpec(
            name="tenancy_aggressor",
            description=(
                "flash-crowd burst: arrivals plus an allocation spike, "
                "several times the fleet's capacity"
            ),
            phases=phases(
                warm_touches=4, burst_touches=8, pattern="uniform",
                arrivals=2, arrival_objects=16, spike=48,
            ),
            tasks=8,
            objects_per_task=24,
            payload_bytes=256,
            heap_capacity=96 << 10,
        ),
        "background": ScenarioSpec(
            name="tenancy_background",
            description="a quiet tenant ticking over",
            phases=phases(
                warm_touches=2, burst_touches=2, pattern="uniform",
                drain_touches=2,
            ),
            tasks=4,
            objects_per_task=16,
            payload_bytes=256,
            heap_capacity=32 << 10,
        ),
    }


@dataclass
class _TenantRun:
    """Per-tenant live state inside one run."""

    name: str
    spec: ScenarioSpec
    space: Space
    script: List[Any]
    handles: List[Any]
    stalls: List[float]
    killed_touches: int = 0
    touch_failures: int = 0
    arrival_failures: int = 0
    spike_failures: int = 0
    spike_handle: Optional[Any] = None
    spike_name: Optional[str] = None
    spike_count: int = 0


def _task_priority(index: int, spec: ScenarioSpec) -> int:
    return FOREGROUND if index == 0 else 1


def run_once(
    seed: int,
    *,
    fleet: bool,
    quick: bool = False,
    observe: bool = False,
    obs_path: Optional[str] = None,
    obs_append: bool = True,
) -> Dict[str, Any]:
    """Drive all three tenants through one seeded run; score the victim."""
    clock = SimulatedClock()
    injector = FaultInjector(FaultPlan.empty(seed=seed), clock)
    stores: List[FlakyStore] = []
    for index in range(STORE_COUNT):
        stores.append(
            FlakyStore(
                XmlStoreDevice(
                    device_name(index),
                    capacity=STORE_CAPACITY,
                    link=bluetooth_link(clock, name=f"bt-{index}"),
                ),
                injector,
            )
        )
    capacity = STORE_COUNT * STORE_CAPACITY
    mode = "fleet" if fleet else "off"
    specs = tenant_specs(quick)

    runs: Dict[str, _TenantRun] = {}
    for name in TENANT_ORDER:
        spec = specs[name]
        space = Space(
            f"tenancy-{name}-{mode}-{seed}",
            heap_capacity=spec.heap_capacity,
            clock=clock,
        )
        manager = space.manager
        for store in stores:
            manager.add_store(store)
        manager.enable_resilience(
            ResilienceConfig(
                seed=seed,
                degrade_to_local=True,
                replication_factor=2,
                scrub_interval_s=10.0**9,
                cooldown_s=5.0,
            )
        )
        manager.enable_fastpath(
            FastPathConfig(
                cache_budget_bytes=spec.cache_budget_bytes, delta=True
            )
        )
        runs[name] = _TenantRun(
            name=name,
            spec=spec,
            space=space,
            script=build_script(spec, seed),
            handles=[],
            stalls=[],
        )

    registry: Optional[TenantRegistry] = None
    controller: Optional[FleetController] = None
    if fleet:
        registry = TenantRegistry(
            stores, config=FleetConfig(pressure_free_fraction=0.25)
        )
        for name in TENANT_ORDER:
            limits = TENANT_LIMITS[name]
            registry.register(
                TenantSpec(
                    tenant_id=name,
                    heap_budget_bytes=specs[name].heap_capacity,
                    store_quota_bytes=int(
                        limits["quota_fraction"] * capacity
                    ),
                    guaranteed_share=limits["guaranteed_share"],
                    priority_class=limits["priority_class"],
                ),
                runs[name].space.manager,
            )
        controller = FleetController(registry)
        # exercise the control plane inside the bench: one accepted
        # fleet-wide change, distributed exactly once to every manager
        decision = controller.submit({"manager.replication_factor": 2})
        assert decision.accepted, decision.reason
        controller.distribute()

    # the ladder is enabled in both modes (the bench isolates *tenancy*,
    # not the ladder); in fleet mode enabling it after registration
    # exercises the manager's tenant re-bind hook
    for name in TENANT_ORDER:
        runs[name].space.manager.enable_degrade_ladder(
            DegradeLadderConfig(slo_p95_stall_s=VICTIM_SLO_S)
        )
    obs_runtimes = {}
    if observe:
        for name in TENANT_ORDER:
            obs_runtimes[name] = runs[name].space.manager.enable_observability()

    import random

    def ingest_task(
        run: _TenantRun, index: int, objects: int, priority: int
    ) -> Any:
        content = random.Random(seed * 1_000_003 + index)
        handle = run.space.ingest(
            _build_chain(objects, run.spec.payload_bytes, content),
            cluster_size=objects,
            root_name=f"{run.name}-task-{index}",
        )
        run.space.set_priority(handle, priority)
        return handle

    for name in TENANT_ORDER:
        run = runs[name]
        for index in range(run.spec.tasks):
            run.handles.append(
                ingest_task(
                    run,
                    index,
                    run.spec.objects_per_task,
                    _task_priority(index, run.spec),
                )
            )

    rounds = max(len(run.script) for run in runs.values())
    for step_index in range(rounds):
        # one shared-clock advance per round (identical skeletons)
        clock.advance(runs["victim"].script[step_index].advance_s)
        for name in TENANT_ORDER:
            run = runs[name]
            step = run.script[step_index]
            if step.spike_objects:
                run.spike_count += 1
                run.spike_name = f"{name}-spike-{run.spike_count}"
                started = clock.now()
                try:
                    chain = _build_chain(
                        step.spike_objects,
                        run.spec.payload_bytes,
                        random.Random(seed * 2_000_003 + run.spike_count),
                    )
                    run.spike_handle = run.space.ingest(
                        chain,
                        cluster_size=step.spike_objects,
                        root_name=run.spike_name,
                    )
                    run.space.set_priority(run.spike_handle, FOREGROUND)
                except ObiError:
                    run.spike_failures += 1
                    run.spike_handle = None
                    run.spike_name = None
                run.stalls.append(clock.now() - started)
            if step.arrivals:
                arrival_objects = run.spec.phase_named(
                    step.phase
                ).arrival_objects
                for index in step.arrivals:
                    try:
                        run.handles.append(
                            ingest_task(run, index, arrival_objects, 1)
                        )
                    except ObiError:
                        run.handles.append(None)
                        run.arrival_failures += 1
            for task, mutate in step.touches:
                if task >= len(run.handles) or run.handles[task] is None:
                    continue
                started = clock.now()
                try:
                    if mutate:
                        run.handles[task].bump()
                    else:
                        run.handles[task].get_key()
                except IntegrityError:
                    run.killed_touches += 1
                    continue
                except ObiError:
                    run.touch_failures += 1
                    continue
                run.stalls.append(clock.now() - started)

    # -- scoring -----------------------------------------------------------

    tenants: Dict[str, Any] = {}
    for name in TENANT_ORDER:
        run = runs[name]
        manager = run.space.manager
        stats = manager.stats
        fleet_bytes = manager_store_bytes(manager, stores)
        tenant = manager.tenant
        tenants[name] = {
            "p95_stall_s": round(_p95(run.stalls), 4),
            "max_stall_s": round(max(run.stalls), 4) if run.stalls else 0.0,
            "stall_samples": len(run.stalls),
            "touch_failures": run.touch_failures,
            "killed_touches": run.killed_touches,
            "arrival_failures": run.arrival_failures,
            "spike_failures": run.spike_failures,
            "oom_kills": stats.oom_kills,
            "fleet_bytes": fleet_bytes,
            "swap_outs": stats.swap_outs,
            "swap_ins": stats.swap_ins,
            "degraded_swaps": stats.degraded_swaps,
            "counters": {
                "fleet.admission.denials": stats.fleet_admission_denials,
                "fleet.reclaim.evictions": stats.fleet_reclaim_evictions,
                "fleet.reclaim.bytes": stats.fleet_reclaim_bytes,
                "fleet.config.updates": stats.fleet_config_updates,
                "tenant.pressure.bumps": stats.tenant_pressure_bumps,
            },
            "evicted_copies": tenant.evicted_copies if tenant else 0,
            "evicted_bytes": tenant.evicted_bytes if tenant else 0,
        }

    victim = tenants["victim"]
    guaranteed = int(TENANT_LIMITS["victim"]["guaranteed_share"] * capacity)
    floor = int(VICTIM_FLOOR_FRACTION * guaranteed)
    isolation: Dict[str, Any] = {
        "victim_slo_s": VICTIM_SLO_S,
        "victim_p95_stall_s": victim["p95_stall_s"],
        "victim_guaranteed_bytes": guaranteed,
        "victim_floor_bytes": floor,
        "victim_fleet_bytes": victim["fleet_bytes"],
        "victim_denials": victim["counters"]["fleet.admission.denials"],
        "victim_evicted_copies": victim["evicted_copies"],
        "victim_degraded_swaps": victim["degraded_swaps"],
        "aggressor_denials": tenants["aggressor"]["counters"][
            "fleet.admission.denials"
        ],
        "aggressor_reclaimed_bytes": tenants["aggressor"]["evicted_bytes"],
    }
    if fleet:
        # Fair share held: the victim stayed responsive, every one of
        # its ships found fleet room (no degrade-to-local), and the
        # registry never denied or reclaimed against it.  End-of-run
        # byte counts are mutate-timing noisy, so they inform the
        # report but not the verdict here.
        isolation["held"] = (
            victim["p95_stall_s"] <= VICTIM_SLO_S
            and victim["touch_failures"] == 0
            and isolation["victim_denials"] == 0
            and isolation["victim_evicted_copies"] == 0
            and victim["degraded_swaps"] == 0
        )
    else:
        # Free-for-all starvation: at least one victim swap-out found
        # no fleet room and fell back to the local pool, or the victim
        # ended the run squeezed below its isolation floor (or blew
        # its responsiveness SLO outright).
        isolation["violated"] = (
            victim["degraded_swaps"] > 0
            or victim["p95_stall_s"] > VICTIM_SLO_S
            or victim["touch_failures"] > 0
            or victim["fleet_bytes"] < floor
        )

    result: Dict[str, Any] = {
        "mode": mode,
        "seed": seed,
        "sim_duration_s": round(clock.now(), 3),
        "fleet_capacity_bytes": capacity,
        "fleet_used_bytes": sum(store.used for store in stores),
        "tenants": tenants,
        "isolation": isolation,
    }
    if registry is not None:
        result["fleet"] = registry.snapshot()
        result["control_plane"] = {
            "leader": controller.leader_id,
            "epoch": controller.epoch,
            "accepted": controller.accepted,
            "rejected": controller.rejected,
            "undelivered": controller.undelivered(),
        }
    if observe:
        first = not obs_append
        for name in TENANT_ORDER:
            obs = obs_runtimes[name]
            obs.refresh()
            if obs_path is not None:
                obs.export_jsonl(
                    obs_path,
                    label=f"tenancy:{name}:{mode}:seed={seed}",
                    append=not first,
                )
                first = False
    return result


# ---------------------------------------------------------------------------
# The full matrix
# ---------------------------------------------------------------------------


def run_bench(
    seeds: Tuple[int, ...] = (1, 2, 3),
    *,
    quick: bool = False,
    observe: bool = False,
    obs_path: Optional[str] = None,
) -> Dict[str, Any]:
    per_seed: Dict[str, Any] = {}
    first_export = True
    for seed in seeds:
        fleet_run = run_once(
            seed, fleet=True, quick=quick,
            observe=observe, obs_path=obs_path,
            obs_append=not first_export,
        )
        first_export = False
        off_run = run_once(
            seed, fleet=False, quick=quick,
            observe=observe, obs_path=obs_path, obs_append=True,
        )
        per_seed[str(seed)] = {"fleet": fleet_run, "off": off_run}
    return {
        "benchmark": "tenancy",
        "observed": observe,
        "config": {
            "seeds": list(seeds),
            "quick": quick,
            "store_count": STORE_COUNT,
            "store_capacity": STORE_CAPACITY,
            "victim_slo_s": VICTIM_SLO_S,
            "victim_floor_fraction": VICTIM_FLOOR_FRACTION,
            "limits": TENANT_LIMITS,
        },
        "seeds": per_seed,
        "summary": {
            "isolation_held": all(
                entry["fleet"]["isolation"]["held"]
                for entry in per_seed.values()
            ),
            "tenancy_off_violates": all(
                entry["off"]["isolation"]["violated"]
                for entry in per_seed.values()
            ),
        },
    }


def format_table(report: Dict[str, Any]) -> str:
    header = (
        f"{'seed':<5} {'mode':<6} {'victim p95':>11} {'victim B':>9} "
        f"{'denials V/A':>12} {'reclaim A':>10} {'verdict':>9}"
    )
    lines = [header, "-" * len(header)]
    for seed, entry in report["seeds"].items():
        for mode in ("fleet", "off"):
            run = entry[mode]
            iso = run["isolation"]
            verdict = (
                ("held" if iso["held"] else "BROKEN")
                if mode == "fleet"
                else ("violates" if iso["violated"] else "fine")
            )
            lines.append(
                f"{seed:<5} {mode:<6} {iso['victim_p95_stall_s']:>11.3f} "
                f"{iso['victim_fleet_bytes']:>9} "
                f"{iso['victim_denials']:>5}/{iso['aggressor_denials']:<6} "
                f"{iso['aggressor_reclaimed_bytes']:>10} {verdict:>9}"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI sizing: a single seed"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="with --quick: which single seed to run",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="explicit seed list (default 1 2 3)",
    )
    parser.add_argument(
        "--output", default="BENCH_tenancy.json", help="report path"
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="attach observability and export a JSONL dump",
    )
    parser.add_argument(
        "--obs-output", default="BENCH_tenancy_obs.jsonl",
        help="path for the observability dump (with --obs)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        seeds: Tuple[int, ...] = (args.seed if args.seed is not None else 1,)
    elif args.seeds:
        seeds = tuple(args.seeds)
    else:
        seeds = (1, 2, 3)
    report = run_bench(
        seeds,
        quick=args.quick,
        observe=args.obs,
        obs_path=args.obs_output if args.obs else None,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_table(report))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
