"""Wire-codec benchmark: binary framing vs canonical XML on the hot path.

Both scenarios run the *mutating* hot-path workload (every cycle dirties
one member per cluster, so every swap-out re-encodes and every swap-in
re-decodes — no fast-path no-ops hide the codec), over the paper's
Bluetooth-class link:

* ``xml``    — ``FastPathConfig()`` defaults: canonical XML on the wire,
  exactly the pre-codec pipeline;
* ``binary`` — ``FastPathConfig(codec="binary")``: the length-prefixed
  framing of :mod:`repro.wire.binary`, negotiated per store.

Simulated link cost is deterministic and diffs exactly between runs;
the codec's headline number is *real* CPU time — the encode and decode
phase wall clocks from the :class:`~repro.obs.profile.PhaseProfiler`
(every ``*wall*`` leaf in the JSON is compared jitter-tolerantly by
``repro obs report --compare``).  The acceptance bar is a >= 2x
reduction in combined encode+decode wall time.

``--seed`` perturbs which member of each cluster mutates per cycle, so
CI can demand the floor across several workload shapes.
``python -m repro.bench.codec`` writes ``BENCH_codec.json``.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

from repro.bench.hotpath import HotPathConfig, _build_space, _percentile
from repro.core.fastpath import FastPathConfig


@dataclass
class CodecBenchConfig:
    objects: int = 1_000
    cluster_size: int = 50
    cycles: int = 20
    seed: int = 1
    heap_capacity: int = 32 << 20
    store_capacity: int = 32 << 20
    #: each scenario runs this many times and reports its *fastest* run —
    #: min-of-N is the standard defense against scheduler noise when the
    #: metric is wall clock on a shared runner
    repeats: int = 3

    @classmethod
    def quick(cls, seed: int = 1) -> "CodecBenchConfig":
        """CI sizing: a few seconds of wall clock, same 50-object clusters."""
        return cls(objects=400, cluster_size=50, cycles=8, seed=seed)

    def hotpath(self) -> HotPathConfig:
        return HotPathConfig(
            objects=self.objects,
            cluster_size=self.cluster_size,
            cycles=self.cycles,
            heap_capacity=self.heap_capacity,
            store_capacity=self.store_capacity,
        )


@dataclass
class CodecScenarioResult:
    name: str
    cycles: int
    swap_outs: int
    encode_calls: int
    bytes_on_link: int
    link_seconds: float
    swap_out_mean_s: float
    cycle_p50_s: float
    cycle_p95_s: float
    codec_binary_ships: int
    codec_binary_fetches: int
    codec_fallbacks: int
    #: real CPU seconds in the profiler's encode/decode phases — the
    #: ``wall`` leaf names opt these into jitter-tolerant comparison
    encode_wall_s: float
    decode_wall_s: float
    encode_decode_wall_s: float
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class CodecReport:
    config: CodecBenchConfig
    scenarios: Dict[str, CodecScenarioResult] = field(default_factory=dict)

    def _reduction(self, attr: str) -> float:
        binary = getattr(self.scenarios["binary"], attr)
        xml = getattr(self.scenarios["xml"], attr)
        return xml / binary if binary > 0 else float("inf")

    @property
    def encode_decode_wall_reduction(self) -> float:
        """xml / binary combined encode+decode wall time (the headline)."""
        return self._reduction("encode_decode_wall_s")

    @property
    def link_bytes_reduction(self) -> float:
        return self._reduction("bytes_on_link")

    @property
    def link_seconds_reduction(self) -> float:
        return self._reduction("link_seconds")

    def to_json(self) -> str:
        payload = {
            "benchmark": "codec",
            "seed": self.config.seed,
            "config": asdict(self.config),
            "scenarios": {
                name: asdict(result) for name, result in self.scenarios.items()
            },
            "reductions": {
                "encode_wall": self._reduction("encode_wall_s"),
                "decode_wall": self._reduction("decode_wall_s"),
                "encode_decode_wall": self.encode_decode_wall_reduction,
                "link_bytes": self.link_bytes_reduction,
                "link_seconds": self.link_seconds_reduction,
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def run_codec_scenario(
    name: str,
    config: CodecBenchConfig,
    *,
    codec: str | None,
    obs_path: str | None = None,
    obs_append: bool = True,
) -> CodecScenarioResult:
    """One mutating hot-path run under ``codec`` (always profiled —
    the wall columns are the benchmark)."""
    space, clock, link, sids = _build_space(config.hotpath())
    manager = space.manager
    manager.enable_fastpath(
        FastPathConfig(codec=codec, serve_swap_in_from_cache=False)
    )
    obs = manager.enable_observability()
    rng = random.Random(config.seed)

    swap_out_costs: List[float] = []
    cycle_costs: List[float] = []
    for _ in range(config.cycles):
        for sid in sids:
            cluster = space._clusters[sid]
            oid = rng.choice(sorted(cluster.oids))
            node = space._objects[oid]
            node.index = node.index + 1
            start = clock.now()
            manager.swap_out(sid)
            swap_out_costs.append(clock.now() - start)
            manager.swap_in(sid)
            cycle_costs.append(clock.now() - start)

    obs.refresh()
    phases: Dict[str, Dict[str, Any]] = obs.profiler.breakdown()
    if obs_path is not None:
        obs.export_jsonl(obs_path, label=f"codec:{name}", append=obs_append)

    encode_wall = phases.get("encode", {}).get("wall_s", 0.0)
    decode_wall = phases.get("decode", {}).get("wall_s", 0.0)
    stats = manager.stats
    return CodecScenarioResult(
        name=name,
        cycles=config.cycles,
        swap_outs=stats.swap_outs,
        encode_calls=stats.encode_calls,
        bytes_on_link=link.stats.bytes_carried,
        link_seconds=link.stats.seconds_charged,
        swap_out_mean_s=sum(swap_out_costs) / len(swap_out_costs),
        cycle_p50_s=_percentile(cycle_costs, 0.50),
        cycle_p95_s=_percentile(cycle_costs, 0.95),
        codec_binary_ships=stats.codec_binary_ships,
        codec_binary_fetches=stats.codec_binary_fetches,
        codec_fallbacks=stats.codec_fallbacks,
        encode_wall_s=encode_wall,
        decode_wall_s=decode_wall,
        encode_decode_wall_s=encode_wall + decode_wall,
        phases=phases,
    )


def run_codec_bench(
    config: CodecBenchConfig | None = None,
    *,
    obs_path: str | None = None,
) -> CodecReport:
    """Run the xml and binary scenarios on identical seeded workloads.

    Each scenario is repeated ``config.repeats`` times and the fastest
    run (by combined encode+decode wall time) is the one reported."""
    config = config if config is not None else CodecBenchConfig()
    report = CodecReport(config=config)
    # repeats are interleaved (xml, binary, xml, binary, ...) so slow
    # machine drift — thermal throttling, a noisy neighbor arriving —
    # lands on both scenarios instead of biasing whichever runs last
    for attempt in range(max(1, config.repeats)):
        for index, (name, codec) in enumerate(
            [("xml", None), ("binary", "binary")]
        ):
            result = run_codec_scenario(
                name,
                config,
                codec=codec,
                # the JSONL dump comes from the first attempt; the
                # simulated series are identical across repeats
                obs_path=obs_path if attempt == 0 else None,
                obs_append=index > 0,
            )
            best = report.scenarios.get(name)
            if (
                best is None
                or result.encode_decode_wall_s < best.encode_decode_wall_s
            ):
                report.scenarios[name] = result
    return report


def format_table(report: CodecReport) -> str:
    from repro.bench.report import format_sim_wall

    header = (
        f"{'scenario':<10} {'enc wall ms':>12} {'dec wall ms':>12} "
        f"{'link bytes':>11} {'link s':>9} {'cycle p50 (sim/wall)':>28} "
        f"{'bin ships':>9} {'fallbacks':>9}"
    )
    lines = [header, "-" * len(header)]
    for result in report.scenarios.values():
        lines.append(
            f"{result.name:<10} {result.encode_wall_s * 1000:>12.2f} "
            f"{result.decode_wall_s * 1000:>12.2f} "
            f"{result.bytes_on_link:>11} {result.link_seconds:>9.3f} "
            f"{format_sim_wall(result.cycle_p50_s, result.encode_decode_wall_s):>28} "
            f"{result.codec_binary_ships:>9} {result.codec_fallbacks:>9}"
        )
    lines.append(
        f"reductions (xml / binary): encode+decode wall "
        f"{report.encode_decode_wall_reduction:.2f}x, link bytes "
        f"{report.link_bytes_reduction:.2f}x, link seconds "
        f"{report.link_seconds_reduction:.2f}x"
    )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke-test sizing"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="perturbs which member mutates each cycle",
    )
    parser.add_argument(
        "--output", default="BENCH_codec.json", help="JSON output path"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="additionally dump one labeled trace/metric JSONL per scenario",
    )
    parser.add_argument(
        "--obs-output",
        default="BENCH_codec_obs.jsonl",
        help="JSONL dump path (with --obs)",
    )
    arguments = parser.parse_args(argv)
    config = (
        CodecBenchConfig.quick(seed=arguments.seed)
        if arguments.quick
        else CodecBenchConfig(seed=arguments.seed)
    )
    report = run_codec_bench(
        config, obs_path=arguments.obs_output if arguments.obs else None
    )
    print(format_table(report))
    if arguments.obs:
        print(f"wrote {arguments.obs_output}")
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
