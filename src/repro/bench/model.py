"""Analytical cost model for traversal under object-swapping.

The related work includes a purely analytical treatment of a memory
mechanism (Chihaia & Gross's model of software memory compression,
WMPI'04).  This module gives Object-Swapping the same treatment for the
Figure 5 workload: a traversal of ``n`` objects in swap-clusters of
size ``s`` costs

    T(n, s) = n * t_step  +  (n / s) * t_boundary  +  n * p_extra(s) * t_proxy

* ``t_step``     — one unmediated step (raw method call);
* ``t_boundary`` — one boundary crossing (proxy invocation, bookkeeping);
* ``t_proxy``    — creating one garbage proxy (A2's inner recursions;
  ``p_extra`` is the workload's probability that a step mints one —
  ``min(1, d/s)`` for inner recursions of depth ``d``, 0 for A1).

Fitting the two (or three) coefficients to measured cells with linear
least squares both *explains* the curve shapes of Figure 5 and
*predicts* cells that were not measured — the model is validated in the
benchmarks by holding out the sc=50 column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy


@dataclass(frozen=True)
class TraversalModel:
    """Fitted per-operation costs, in milliseconds."""

    objects: int
    t_step_ms: float
    t_boundary_ms: float
    t_proxy_ms: float
    inner_depth: int
    r_squared: float

    def predict_ms(self, cluster_size: Optional[int]) -> float:
        """Predicted traversal time for one configuration.

        ``None`` means NO-SWAP: no boundaries, no garbage proxies.
        """
        total = self.objects * self.t_step_ms
        if cluster_size is not None:
            total += (self.objects / cluster_size) * self.t_boundary_ms
            total += (
                self.objects
                * _extra_proxy_probability(cluster_size, self.inner_depth)
                * self.t_proxy_ms
            )
        return total

    def describe(self) -> str:
        return (
            f"T(s) = {self.objects}*{self.t_step_ms * 1000:.2f}us"
            f" + ({self.objects}/s)*{self.t_boundary_ms * 1000:.2f}us"
            + (
                f" + {self.objects}*min(1,{self.inner_depth}/s)"
                f"*{self.t_proxy_ms * 1000:.2f}us"
                if self.inner_depth
                else ""
            )
            + f"   (R^2 = {self.r_squared:.3f})"
        )


def _extra_proxy_probability(cluster_size: int, inner_depth: int) -> float:
    """Probability a step's inner recursion crosses a boundary.

    With inner recursions of depth ``d`` over clusters of size ``s``,
    the steps whose probe lands past the boundary are the last
    ``min(d, s)`` of each cluster: probability ``min(1, d/s)`` — the
    paper notes "roughly half of the object references" cross at
    d=10, s=20.
    """
    if inner_depth <= 0:
        return 0.0
    return min(1.0, inner_depth / cluster_size)


def fit_traversal_model(
    objects: int,
    cells: Dict[Optional[int], float],
    inner_depth: int = 0,
) -> TraversalModel:
    """Least-squares fit of the model to measured (cluster_size -> ms).

    ``cells`` must include the NO-SWAP cell (key ``None``) and at least
    one sized cell; with ``inner_depth > 0`` at least two sized cells
    are needed to separate the boundary and proxy terms.
    """
    if None not in cells:
        raise ValueError("fit requires the NO-SWAP cell (key None)")
    sized = [size for size in cells if size is not None]
    needed = 2 if inner_depth else 1
    if len(sized) < needed:
        raise ValueError(
            f"fit with inner_depth={inner_depth} needs >= {needed} sized cells"
        )

    rows: List[List[float]] = []
    targets: List[float] = []
    for size, measured_ms in cells.items():
        step_term = float(objects)
        boundary_term = objects / size if size is not None else 0.0
        proxy_term = (
            objects * _extra_proxy_probability(size, inner_depth)
            if size is not None
            else 0.0
        )
        row = [step_term, boundary_term]
        if inner_depth:
            row.append(proxy_term)
        rows.append(row)
        targets.append(measured_ms)

    matrix = numpy.asarray(rows, dtype=float)
    vector = numpy.asarray(targets, dtype=float)
    coefficients, _, _, _ = numpy.linalg.lstsq(matrix, vector, rcond=None)
    predicted = matrix @ coefficients
    residual = float(numpy.sum((vector - predicted) ** 2))
    total = float(numpy.sum((vector - float(numpy.mean(vector))) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0

    t_step = float(coefficients[0])
    t_boundary = float(coefficients[1])
    t_proxy = float(coefficients[2]) if inner_depth else 0.0
    return TraversalModel(
        objects=objects,
        t_step_ms=t_step,
        t_boundary_ms=t_boundary,
        t_proxy_ms=t_proxy,
        inner_depth=inner_depth,
        r_squared=r_squared,
    )


def holdout_error(
    objects: int,
    cells: Dict[Optional[int], float],
    holdout: int,
    inner_depth: int = 0,
) -> Tuple[float, float, TraversalModel]:
    """Fit without one sized cell, predict it; returns
    (predicted_ms, relative_error, model)."""
    if holdout not in cells:
        raise ValueError(f"holdout cell {holdout} not measured")
    training = {
        size: value for size, value in cells.items() if size != holdout
    }
    model = fit_traversal_model(objects, training, inner_depth=inner_depth)
    predicted = model.predict_ms(holdout)
    actual = cells[holdout]
    relative_error = abs(predicted - actual) / actual if actual else 0.0
    return predicted, relative_error, model
