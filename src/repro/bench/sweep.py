"""Parameter-sweep driver: grids, records, CSV.

The evaluation harness runs the same experiment at many points (cluster
sizes, group sizes, victim policies, heap budgets).  This driver makes
such sweeps declarative and their results durable:

    sweep = Sweep(
        name="swap-cycle",
        grid={"cluster_size": [20, 50, 100], "bandwidth": [700_000]},
        run=lambda cluster_size, bandwidth: {"radio_s": ...},
    )
    records = sweep.execute()
    sweep.write_csv("results/swap_cycle.csv")

Each record is the parameter point merged with the run's measurements.
Failures at a point are recorded (``error`` column) without aborting the
sweep, so long grids survive one bad corner.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence


RunFn = Callable[..., Mapping[str, Any]]


@dataclass
class Sweep:
    """A declarative parameter sweep."""

    name: str
    grid: Dict[str, Sequence[Any]]
    run: RunFn
    #: Repeat each point this many times (repeat index passed as ``rep``
    #: if the run function accepts it; recorded either way).
    repeats: int = 1
    records: List[Dict[str, Any]] = field(default_factory=list)

    def points(self) -> List[Dict[str, Any]]:
        """The cartesian product of the grid, in deterministic order."""
        names = sorted(self.grid)
        product = itertools.product(*(self.grid[name] for name in names))
        return [dict(zip(names, values)) for values in product]

    def execute(self, verbose: bool = False) -> List[Dict[str, Any]]:
        self.records = []
        accepts_rep = "rep" in getattr(
            self.run, "__code__", type("c", (), {"co_varnames": ()})
        ).co_varnames
        for point in self.points():
            for rep in range(self.repeats):
                record: Dict[str, Any] = dict(point)
                record["rep"] = rep
                try:
                    kwargs = dict(point)
                    if accepts_rep:
                        kwargs["rep"] = rep
                    measurements = self.run(**kwargs)
                    record.update(measurements)
                    record["error"] = ""
                except Exception as exc:  # noqa: BLE001 - sweeps must survive
                    record["error"] = f"{type(exc).__name__}: {exc}"
                self.records.append(record)
                if verbose:
                    print(f"  {self.name}: {record}")
        return self.records

    # -- output -----------------------------------------------------------------

    def columns(self) -> List[str]:
        ordered: List[str] = []
        for record in self.records:
            for key in record:
                if key not in ordered:
                    ordered.append(key)
        return ordered

    def write_csv(self, path: str | Path) -> Path:
        if not self.records:
            raise ValueError(f"sweep {self.name!r} has no records; run execute()")
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        with destination.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns())
            writer.writeheader()
            for record in self.records:
                writer.writerow(record)
        return destination

    def format_table(self, float_digits: int = 3) -> str:
        if not self.records:
            return f"(sweep {self.name!r}: no records)"
        columns = self.columns()

        def render(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            return str(value)

        rows = [[render(record.get(column, "")) for column in columns]
                for record in self.records]
        widths = [
            max(len(column), *(len(row[index]) for row in rows))
            for index, column in enumerate(columns)
        ]
        header = "  ".join(
            column.ljust(width) for column, width in zip(columns, widths)
        )
        lines = [header, "-" * len(header)]
        lines.extend(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in rows
        )
        return "\n".join(lines)

    def aggregate(
        self, value_column: str, by: Sequence[str]
    ) -> List[Dict[str, Any]]:
        """Mean of ``value_column`` grouped by the ``by`` columns
        (failed records excluded)."""
        groups: Dict[tuple, List[float]] = {}
        for record in self.records:
            if record.get("error"):
                continue
            key = tuple(record[column] for column in by)
            groups.setdefault(key, []).append(float(record[value_column]))
        return [
            {
                **dict(zip(by, key)),
                value_column: sum(values) / len(values),
                "n": len(values),
            }
            for key, values in sorted(groups.items(), key=lambda kv: repr(kv[0]))
        ]
