"""Delta swap-out benchmark: object-granular deltas + pipelined fan-out.

Measures what delta shipping (:mod:`repro.wire.delta`) and the
multi-channel transfer scheduler (:mod:`repro.comm.pipeline`) buy on a
skewed-write workload — the paper's common case where a working set
mutates a small fraction of each cluster between swap cycles:

* ``fastpath_full`` — the PR 2 fast path exactly as shipped: dirty
  clusters re-encode and ship the *full* payload to every replica,
  serially, each cycle;
* ``delta``         — delta shipping on (``delta=True``) plus three
  pipelined link channels: after the first full ship, each cycle moves
  only the dirtied objects (plus tombstones), and the replica fan-out
  overlaps on independent channels.

Both scenarios dirty the same ~10% of each cluster's members per cycle
and replicate to the same ``replication_factor`` stores, so the
comparison is apples-to-apples.  Reported per scenario: per-cycle
simulated swap-out phase cost (the phase ends at ``scheduler.drain()``,
so pipelined transfers are fully paid inside the measured window),
bytes carried across every link, and the delta/pipeline counters.
``python -m repro.bench.delta`` writes ``BENCH_delta.json``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.fastpath import FastPathConfig
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.runtime.obicomp import managed


def _blob(seed_a: int, seed_b: int, nbytes: int) -> str:
    """Deterministic high-entropy hex content (defeats the codec's zlib
    pass, as real application state would)."""
    chunks: List[str] = []
    length = 0
    counter = 0
    while length < nbytes:
        digest = hashlib.sha256(
            f"{seed_a}:{seed_b}:{counter}".encode("ascii")
        ).hexdigest()
        chunks.append(digest)
        length += len(digest)
        counter += 1
    return "".join(chunks)[:nbytes]


@managed(size=192)
class BlobNode:
    """A list element that actually carries state: a 64-byte header's
    worth of links plus an incompressible payload blob.  The quasi-empty
    :class:`~repro.bench.workloads.BenchNode` is right for overhead
    micro-benchmarks but wrong here — delta shipping's win is moving
    *content* selectively, so the workload must have content to move."""

    def __init__(self, index: int, blob: str) -> None:
        self.index = index
        self.blob = blob
        self.next: Optional["BlobNode"] = None


def build_blob_list(n: int, blob_bytes: int) -> BlobNode:
    head = BlobNode(0, _blob(0, -1, blob_bytes))
    node = head
    for index in range(1, n):
        node.next = BlobNode(index, _blob(index, -1, blob_bytes))
        node = node.next
    return head


@dataclass
class DeltaBenchConfig:
    objects: int = 1_000
    cluster_size: int = 50
    cycles: int = 20
    #: Fraction of each cluster's members written per cycle (rotating
    #: window, so successive cycles dirty different objects).
    dirty_fraction: float = 0.10
    #: Incompressible payload per object; a write replaces it.
    blob_bytes: int = 128
    stores: int = 5
    replication_factor: int = 3
    pipeline_channels: int = 3
    heap_capacity: int = 32 << 20
    store_capacity: int = 32 << 20

    @classmethod
    def quick(cls) -> "DeltaBenchConfig":
        """CI smoke-test sizing (sub-second wall clock).

        Eight cycles keep the whole run on one delta chain
        (``delta_max_chain`` defaults to 8): one full ship, seven
        deltas, no compaction — the steady-state picture.
        """
        return cls(objects=400, cluster_size=50, cycles=8)


@dataclass
class ScenarioResult:
    name: str
    cycles: int
    swap_outs: int
    encode_calls: int
    bytes_on_link: int
    link_seconds: float
    #: simulated cost of one full swap-out phase (all clusters out,
    #: scheduler drained) — per-cycle, not per-cluster
    swap_out_phase_mean_s: float
    swap_out_phase_p50_s: float
    swap_out_phase_p95_s: float
    bytes_shipped: int
    delta_ships: int
    delta_fallbacks: int
    delta_compactions: int
    delta_bytes_shipped: int
    delta_bytes_saved: int
    pipeline_transfers: int
    pipeline_saved_s: float
    #: per-phase simulated/wall cost from the profiler (``--obs`` only)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class DeltaBenchReport:
    config: DeltaBenchConfig
    scenarios: Dict[str, ScenarioResult] = field(default_factory=dict)
    observed: bool = False

    @property
    def link_bytes_reduction(self) -> float:
        """fastpath_full / delta bytes carried across all links."""
        delta = self.scenarios["delta"].bytes_on_link
        full = self.scenarios["fastpath_full"].bytes_on_link
        return full / delta if delta > 0 else float("inf")

    @property
    def swap_out_cost_reduction(self) -> float:
        """fastpath_full / delta mean simulated swap-out phase cost."""
        delta = self.scenarios["delta"].swap_out_phase_mean_s
        full = self.scenarios["fastpath_full"].swap_out_phase_mean_s
        return full / delta if delta > 0 else float("inf")

    @property
    def shipped_bytes_reduction(self) -> float:
        delta = self.scenarios["delta"].bytes_shipped
        full = self.scenarios["fastpath_full"].bytes_shipped
        return full / delta if delta > 0 else float("inf")

    def to_json(self) -> str:
        payload = {
            "benchmark": "delta_swap",
            "observed": self.observed,
            "config": asdict(self.config),
            "scenarios": {
                name: asdict(result) for name, result in self.scenarios.items()
            },
            "reductions": {
                "link_bytes": self.link_bytes_reduction,
                "swap_out_cost": self.swap_out_cost_reduction,
                "shipped_bytes": self.shipped_bytes_reduction,
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _build_space(config: DeltaBenchConfig) -> tuple:
    clock = SimulatedClock()
    space = Space("delta", heap_capacity=config.heap_capacity, clock=clock)
    links = []
    for index in range(config.stores):
        link = bluetooth_link(clock)
        links.append(link)
        space.manager.add_store(
            XmlStoreDevice(
                f"peer-{index}", capacity=config.store_capacity, link=link
            )
        )
    space.manager.replication_factor = config.replication_factor
    space.ingest(
        build_blob_list(config.objects, config.blob_bytes),
        cluster_size=config.cluster_size,
        root_name="head",
    )
    sids = [
        sid
        for sid, cluster in sorted(space._clusters.items())
        if cluster.swappable() and cluster.oids
    ]
    return space, clock, links, sids


def _mutate_fraction(
    space: Space, sid: int, cycle: int, config: DeltaBenchConfig
) -> None:
    """Rewrite a rotating ~``dirty_fraction`` window of the cluster's
    members (fresh blob content, bumped counter).

    Every write goes through the write barrier, so with delta enabled
    the cluster's dirty set names exactly these objects.
    """
    cluster = space._clusters[sid]
    oids = sorted(cluster.oids)
    count = max(1, int(round(len(oids) * config.dirty_fraction)))
    start = (cycle * count) % len(oids)
    for step in range(count):
        oid = oids[(start + step) % len(oids)]
        node = space._objects[oid]
        node.index = node.index + 1
        node.blob = _blob(oid, cycle, config.blob_bytes)


def run_scenario(
    name: str,
    config: DeltaBenchConfig,
    *,
    delta: bool,
    observe: bool = False,
    obs_path: str | None = None,
    obs_append: bool = True,
) -> ScenarioResult:
    space, clock, links, sids = _build_space(config)
    manager = space.manager
    manager.enable_fastpath(
        FastPathConfig(
            delta=delta,
            pipeline_channels=config.pipeline_channels if delta else 0,
        )
    )
    obs = manager.enable_observability() if observe else None

    phase_costs: List[float] = []
    for cycle in range(config.cycles):
        for sid in sids:
            _mutate_fraction(space, sid, cycle, config)
        start = clock.now()
        for sid in sids:
            manager.swap_out(sid)
        scheduler = manager.fastpath.scheduler
        if scheduler is not None:
            scheduler.drain()
        phase_costs.append(clock.now() - start)
        for sid in sids:
            manager.swap_in(sid)

    phases: Dict[str, Dict[str, float]] = {}
    if obs is not None:
        obs.refresh()
        phases = obs.profiler.breakdown()
        if obs_path is not None:
            obs.export_jsonl(obs_path, label=f"delta:{name}", append=obs_append)

    stats = manager.stats
    scheduler = manager.fastpath.scheduler
    return ScenarioResult(
        name=name,
        cycles=config.cycles,
        swap_outs=stats.swap_outs,
        encode_calls=stats.encode_calls,
        bytes_on_link=sum(link.stats.bytes_carried for link in links),
        link_seconds=sum(link.stats.seconds_charged for link in links),
        swap_out_phase_mean_s=sum(phase_costs) / len(phase_costs),
        swap_out_phase_p50_s=_percentile(phase_costs, 0.50),
        swap_out_phase_p95_s=_percentile(phase_costs, 0.95),
        bytes_shipped=stats.bytes_shipped,
        delta_ships=stats.fastpath_delta_ships,
        delta_fallbacks=stats.fastpath_delta_fallbacks,
        delta_compactions=stats.fastpath_delta_compactions,
        delta_bytes_shipped=stats.delta_bytes_shipped,
        delta_bytes_saved=stats.delta_bytes_saved,
        pipeline_transfers=(
            scheduler.stats.transfers if scheduler is not None else 0
        ),
        pipeline_saved_s=(
            scheduler.stats.saved_s if scheduler is not None else 0.0
        ),
        phases=phases,
    )


def run_delta_bench(
    config: DeltaBenchConfig | None = None,
    *,
    observe: bool = False,
    obs_path: str | None = None,
) -> DeltaBenchReport:
    """Run both scenarios on identical workloads.

    With ``observe`` each scenario runs under a fresh observability
    attachment and reports its per-phase cost breakdown; ``obs_path``
    additionally appends one labeled JSONL dump per scenario.
    """
    config = config if config is not None else DeltaBenchConfig()
    report = DeltaBenchReport(config=config, observed=observe)
    plans = [("fastpath_full", False), ("delta", True)]
    for index, (name, delta) in enumerate(plans):
        report.scenarios[name] = run_scenario(
            name,
            config,
            delta=delta,
            observe=observe,
            obs_path=obs_path,
            obs_append=index > 0,
        )
    return report


def format_table(report: DeltaBenchReport) -> str:
    header = (
        f"{'scenario':<15} {'phase p50 s':>12} {'phase p95 s':>12} "
        f"{'link bytes':>11} {'deltas':>7} {'fallbacks':>9} "
        f"{'compact':>7} {'saved B':>9}"
    )
    lines = [header, "-" * len(header)]
    for result in report.scenarios.values():
        lines.append(
            f"{result.name:<15} {result.swap_out_phase_p50_s:>12.4f} "
            f"{result.swap_out_phase_p95_s:>12.4f} "
            f"{result.bytes_on_link:>11} {result.delta_ships:>7} "
            f"{result.delta_fallbacks:>9} {result.delta_compactions:>7} "
            f"{result.delta_bytes_saved:>9}"
        )
    lines.append(
        f"reductions vs fastpath_full: link bytes "
        f"{report.link_bytes_reduction:.1f}x, swap-out cost "
        f"{report.swap_out_cost_reduction:.1f}x, shipped bytes "
        f"{report.shipped_bytes_reduction:.1f}x"
    )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke-test sizing"
    )
    parser.add_argument(
        "--output", default="BENCH_delta.json", help="JSON output path"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run with observability attached: per-phase breakdowns in the "
        "JSON plus one labeled trace/metric dump per scenario",
    )
    parser.add_argument(
        "--obs-output",
        default="BENCH_delta_obs.jsonl",
        help="JSONL dump path (with --obs)",
    )
    arguments = parser.parse_args(argv)
    config = DeltaBenchConfig.quick() if arguments.quick else DeltaBenchConfig()
    report = run_delta_bench(
        config,
        observe=arguments.obs,
        obs_path=arguments.obs_output if arguments.obs else None,
    )
    print(format_table(report))
    if arguments.obs:
        print(f"wrote {arguments.obs_output}")
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
