"""Benchmark harnesses for the paper's evaluation.

* :mod:`repro.bench.workloads` — the evaluation workloads (the 10000
  64-byte-object list of Figure 5, plus graph shapes for ablations);
* :mod:`repro.bench.deepcall` — big-stack thread runner (the recursive
  tests go 10000+ frames deep);
* :mod:`repro.bench.figure5` — tests A1/A2/B1/B2 across swap-cluster
  sizes 20/50/100 and the NO-SWAP lower bound;
* :mod:`repro.bench.report` — paper-vs-measured tables and shape checks.

Run the full Figure 5 reproduction with::

    python -m repro.bench.figure5
"""

from repro.bench.workloads import BenchNode, build_list, build_managed_list
from repro.bench.deepcall import run_deep
from repro.bench.figure5 import (
    Figure5Config,
    Figure5Result,
    run_figure5,
    run_single,
    TESTS,
    CLUSTER_SIZES,
)
from repro.bench.report import PAPER_FIGURE5, format_figure5_table, check_shape
from repro.bench.model import (
    TraversalModel,
    fit_traversal_model,
    holdout_error,
)
from repro.bench.sweep import Sweep
from repro.bench.hotpath import (
    HotPathConfig,
    HotPathReport,
    run_hotpath,
    format_table as format_hotpath_table,
)
from repro.bench.delta import (
    DeltaBenchConfig,
    DeltaBenchReport,
    run_delta_bench,
    format_table as format_delta_table,
)

__all__ = [
    "BenchNode",
    "build_list",
    "build_managed_list",
    "run_deep",
    "Figure5Config",
    "Figure5Result",
    "run_figure5",
    "run_single",
    "TESTS",
    "CLUSTER_SIZES",
    "PAPER_FIGURE5",
    "format_figure5_table",
    "check_shape",
    "TraversalModel",
    "fit_traversal_model",
    "holdout_error",
    "Sweep",
    "HotPathConfig",
    "HotPathReport",
    "run_hotpath",
    "format_hotpath_table",
    "DeltaBenchConfig",
    "DeltaBenchReport",
    "run_delta_bench",
    "format_delta_table",
]
