"""Figure 5: performance impact of swapping on graph traversal.

Reproduces the paper's micro-benchmark (Section 5): four traversal tests
over a list of 10000 64-byte objects, each run with swap-clusters of
20, 50 and 100 objects and once without swapping (the lower bound):

* **A1** — recursive execution of a simple method along the list,
  passing an incrementing integer (one proxy invocation per boundary);
* **A2** — the same outer recursion where every step additionally runs
  an *inner recursion* to depth 10 that returns an object reference
  (extra swap-cluster-proxies are created for references crossing a
  boundary and immediately become garbage);
* **B1** — a full ``for``-style iteration through a swap-cluster-0
  variable (a fresh proxy per step: the pathological case);
* **B2** — the same iteration with the ``SwapClusterUtils.assign``
  optimisation (the proxy patches itself; no allocation per step).

Usage::

    python -m repro.bench.figure5 [--objects 10000] [--repeats 3]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.deepcall import run_deep
from repro.bench.workloads import BenchNode, build_list
from repro.core.space import Space
from repro.core.utils import SwapClusterUtils
from repro.devices.store import InMemoryStore

#: The paper's swap-cluster sizes; ``None`` is the NO-SWAP configuration.
CLUSTER_SIZES: Tuple[Optional[int], ...] = (20, 50, 100, None)

TESTS: Tuple[str, ...] = ("A1", "A2", "B1", "B2")

DEFAULT_OBJECTS = 10_000


@dataclass(frozen=True)
class Figure5Config:
    objects: int = DEFAULT_OBJECTS
    repeats: int = 3
    cluster_sizes: Tuple[Optional[int], ...] = CLUSTER_SIZES
    tests: Tuple[str, ...] = TESTS


@dataclass
class Figure5Result:
    """milliseconds[test][cluster_size] — best of ``repeats`` runs."""

    config: Figure5Config
    millis: Dict[str, Dict[Optional[int], float]] = field(default_factory=dict)

    def overhead_pct(self, test: str, cluster_size: int) -> float:
        base = self.millis[test][None]
        if base == 0:
            return 0.0
        return 100.0 * (self.millis[test][cluster_size] - base) / base

    def speedup_b2_over_b1(self, cluster_size: int) -> float:
        b2 = self.millis["B2"][cluster_size]
        return self.millis["B1"][cluster_size] / b2 if b2 else float("inf")


# ---------------------------------------------------------------------------
# Workload construction per configuration
# ---------------------------------------------------------------------------


def make_fixture(objects: int, cluster_size: Optional[int]) -> Tuple[Any, Optional[Space]]:
    """(root handle, space) for one configuration.

    ``cluster_size=None`` is the NO-SWAP lower bound: raw objects, no
    middleware anywhere near the call path.
    """
    head = build_list(objects)
    if cluster_size is None:
        return head, None
    space = Space(
        "figure5",
        heap_capacity=max(64 * objects * 4, 1 << 20),
    )
    space.manager.add_store(InMemoryStore("bench-store"))
    space.manager.auto_swap = False  # timing runs must not swap mid-test
    handle = space.ingest(head, cluster_size=cluster_size, root_name="head")
    return handle, space


# ---------------------------------------------------------------------------
# The four tests (bodies are identical for proxies and raw objects)
# ---------------------------------------------------------------------------


def test_a1(handle: Any, objects: int, space: Optional[Space]) -> None:
    depth = run_deep(lambda: handle.depth(1))
    assert depth == objects, f"A1 walked {depth} of {objects}"


def test_a2(handle: Any, objects: int, space: Optional[Space]) -> None:
    depth = run_deep(lambda: handle.probe(1))
    assert depth == objects, f"A2 walked {depth} of {objects}"


def test_b1(handle: Any, objects: int, space: Optional[Space]) -> None:
    count = 0
    cursor = handle
    while cursor is not None:
        cursor = cursor.get_next()
        count += 1
    assert count == objects, f"B1 walked {count} of {objects}"


def test_b2(handle: Any, objects: int, space: Optional[Space]) -> None:
    cursor = handle
    if space is not None:
        # a root-variable proxy in assign mode patches itself instead of
        # minting a proxy per step (paper §4); the cursor is this
        # variable's own proxy, distinct from the shared root handle
        cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    count = 0
    while cursor is not None:
        count += 1
        cursor = cursor.get_next()
    assert count == objects, f"B2 walked {count} of {objects}"


_TEST_FNS: Dict[str, Callable[[Any, int, Optional[Space]], None]] = {
    "A1": test_a1,
    "A2": test_a2,
    "B1": test_b1,
    "B2": test_b2,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_single(
    test: str,
    cluster_size: Optional[int],
    objects: int = DEFAULT_OBJECTS,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` wall time in milliseconds for one cell."""
    import gc

    fn = _TEST_FNS[test]
    handle, space = make_fixture(objects, cluster_size)
    best = float("inf")
    for _ in range(repeats):
        gc.collect()  # dead proxies from the previous round, not this one
        started = time.perf_counter()
        fn(handle, objects, space)
        elapsed = (time.perf_counter() - started) * 1000.0
        best = min(best, elapsed)
    return best


def run_figure5(config: Figure5Config = Figure5Config(), verbose: bool = False) -> Figure5Result:
    result = Figure5Result(config=config)
    for test in config.tests:
        result.millis[test] = {}
        for cluster_size in config.cluster_sizes:
            elapsed = run_single(
                test, cluster_size, objects=config.objects, repeats=config.repeats
            )
            result.millis[test][cluster_size] = elapsed
            if verbose:
                label = cluster_size if cluster_size is not None else "NO-SWAP"
                print(f"  {test} @ {label}: {elapsed:8.2f} ms", flush=True)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    from repro.bench.report import check_shape, format_figure5_table

    config = Figure5Config(objects=args.objects, repeats=args.repeats)
    print(f"Figure 5 reproduction: {config.objects} x 64-byte objects, "
          f"best of {config.repeats} runs\n")
    result = run_figure5(config, verbose=True)
    print()
    print(format_figure5_table(result))
    print()
    ok, notes = check_shape(result)
    for note in notes:
        print(("PASS " if note[0] else "FAIL ") + note[1])
    print("\nshape " + ("HOLDS" if ok else "DOES NOT HOLD"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
