"""Topology benchmark: sharded placement at fleet scale, under churn.

Two layers exercise the :mod:`repro.topology` service:

* **Scale layer** — hundreds of :class:`~repro.devices.store.
  XmlStoreDevice` stores across tens of cells, with ~a million cluster
  keys registered through the real observer hooks (synthetically: the
  keys are routed and refcounted exactly as real swap-outs would be,
  without paying for a million XML serialisations).  Measures that shard
  lookups stay O(1) as the key population grows, that no single full
  cell death can lose a cluster (every shard's holders span ≥ 2 cells),
  the wall cost of reparenting when whole cells die, and the cost of a
  rebalance/rebuild sweep.
* **Integration layer** — a small real fleet with real ingested chains:
  kill each cell in turn via the churn injector, let ``tick`` reparent
  and the scrubber re-replicate, and verify every cluster swaps back in.

``python -m repro.bench.topology`` writes ``BENCH_topology.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.workloads import build_list
from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.faults import ChurnEvent, ChurnInjector, ChurnPlan, FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig


@dataclass
class TopologyBenchConfig:
    # scale layer
    cells: int = 30
    stores_per_cell: int = 10
    shards: int = 128
    keys: int = 1_000_000
    replication_factor: int = 3
    lookup_samples: int = 200_000
    churn_cells: int = 5  # cells killed+healed in the churn sweep
    # integration layer
    it_cells: int = 3
    it_stores_per_cell: int = 3
    it_shards: int = 8
    it_objects: int = 240
    it_cluster_size: int = 20
    heap_capacity: int = 32 << 20
    store_capacity: int = 32 << 20
    #: Seed for the per-scenario fault injectors.
    seed: int = 0

    @classmethod
    def quick(cls) -> "TopologyBenchConfig":
        """CI smoke-test sizing (a few seconds wall clock)."""
        return cls(
            cells=12,
            stores_per_cell=5,
            shards=32,
            keys=50_000,
            lookup_samples=20_000,
            churn_cells=3,
            it_objects=120,
        )


@dataclass
class ScaleResult:
    """Fleet-scale routing and churn numbers (synthetic key population)."""

    stores: int
    cells: int
    shards: int
    keys: int
    register_s: float
    #: ns per shard lookup with 1% of keys registered vs all of them —
    #: the ratio is the O(1) claim (a per-key index would scale ~100x)
    lookup_ns_small: float
    lookup_ns_full: float
    lookup_ratio: float
    #: worst case over every cell: clusters with no holder outside it
    worst_cell_lost_clusters: int
    cells_killed: int
    reparents: int
    reparent_wall_ms_mean: float
    reparent_latency_s_total: float  # simulated, from TopologyStats
    rebalance_moves: int
    rebalance_wall_ms: float
    rebuild_wall_ms: float
    rebuild_inventory_replicas: int

    @property
    def lookup_o1(self) -> bool:
        return self.lookup_ratio < 3.0

    @property
    def zero_loss_any_cell(self) -> bool:
        return self.worst_cell_lost_clusters == 0


@dataclass
class CellKillResult:
    """One integration scenario: a full cell dies mid-swap."""

    cell: str
    clusters: int
    clusters_lost: int
    reparents: int
    recovery_s: float
    replicas_repaired: int
    fully_replicated: int  # clusters back at the target factor
    swap_in_ok: int


@dataclass
class TopologyReport:
    config: TopologyBenchConfig
    scale: Optional[ScaleResult] = None
    integration: List[CellKillResult] = field(default_factory=list)
    observed: bool = False

    @property
    def zero_loss(self) -> bool:
        scale_ok = self.scale is None or self.scale.zero_loss_any_cell
        return scale_ok and all(
            result.clusters_lost == 0 for result in self.integration
        )

    @property
    def lookup_o1(self) -> bool:
        return self.scale is None or self.scale.lookup_o1

    def to_json(self) -> str:
        payload = {
            "benchmark": "topology",
            "observed": self.observed,
            "config": asdict(self.config),
            "scale": (
                {
                    **asdict(self.scale),
                    "lookup_o1": self.scale.lookup_o1,
                    "zero_loss_any_cell": self.scale.zero_loss_any_cell,
                }
                if self.scale is not None
                else None
            ),
            "integration": [asdict(result) for result in self.integration],
            "zero_loss": self.zero_loss,
            "lookup_o1": self.lookup_o1,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


class _SyntheticRecord:
    """The two fields the observer hooks read from a placement record."""

    __slots__ = ("sid", "replicas")

    def __init__(self, sid: int, replicas: Tuple[str, ...]) -> None:
        self.sid = sid
        self.replicas = replicas


def _scale_fleet(config: TopologyBenchConfig):
    clock = SimulatedClock()
    space = Space("topo-bench", heap_capacity=config.heap_capacity, clock=clock)
    injector = FaultInjector(FaultPlan.empty(), clock)
    by_cell: Dict[str, List[FlakyStore]] = {}
    for cell in range(config.cells):
        cell_name = f"cell-{cell:03d}"
        members = []
        for i in range(config.stores_per_cell):
            store = FlakyStore(
                XmlStoreDevice(
                    f"c{cell:03d}s{i:02d}",
                    capacity=config.store_capacity,
                    placement_group=cell_name,
                ),
                injector,
            )
            members.append(store)
            space.manager.add_store(store)
        by_cell[cell_name] = members
    space.manager.enable_resilience(
        ResilienceConfig(
            replication_factor=config.replication_factor,
            degrade_to_local=False,
        )
    )
    topology = space.manager.enable_topology(shards=config.shards)
    return space, topology, by_cell


def _register_keys(topology, start: int, count: int) -> None:
    """Route ``count`` sids through the real observer hook."""
    holders_of = {
        record.shard_id: tuple(record.holders())
        for record in topology.shard_table.records()
    }
    for sid in range(start, start + count):
        shard_id = topology.shard_of(sid)
        topology.on_record_swap_out(
            _SyntheticRecord(sid, holders_of[shard_id])
        )


def _time_lookups(topology, keys: int, samples: int) -> float:
    """ns per full route: hash the sid, fetch the shard, list holders."""
    table = topology.shard_table
    step = max(1, keys // samples)
    sids = list(range(0, keys, step))[:samples]
    started = time.perf_counter()
    for sid in sids:
        table.record_for(sid).holders()
    elapsed = time.perf_counter() - started
    return elapsed / max(1, len(sids)) * 1e9


def _lost_by_cell(topology, shard_sid_counts: Dict[int, int]) -> int:
    """Worst case over cells: sids whose every holder lives in that cell."""
    worst = 0
    for cell_name in topology.cells():
        lost = 0
        for record in topology.shard_table.records():
            holders = record.holders()
            if holders and all(
                topology.cell_of(holder) == cell_name for holder in holders
            ):
                lost += shard_sid_counts.get(record.shard_id, 0)
        worst = max(worst, lost)
    return worst


def run_scale(config: TopologyBenchConfig) -> ScaleResult:
    space, topology, by_cell = _scale_fleet(config)

    # registration: 1% first (small-population lookup baseline), then
    # the rest, through the same hooks real swap-outs drive
    small = max(1, config.keys // 100)
    started = time.perf_counter()
    _register_keys(topology, 0, small)
    lookup_ns_small = _time_lookups(topology, small, config.lookup_samples)
    _register_keys(topology, small, config.keys - small)
    register_s = time.perf_counter() - started
    lookup_ns_full = _time_lookups(topology, config.keys, config.lookup_samples)
    ratio = lookup_ns_full / lookup_ns_small if lookup_ns_small else 1.0

    shard_sid_counts: Dict[int, int] = {}
    for sid in range(config.keys):
        shard_id = topology.shard_of(sid)
        shard_sid_counts[shard_id] = shard_sid_counts.get(shard_id, 0) + 1
    worst_lost = _lost_by_cell(topology, shard_sid_counts)

    # churn sweep: kill whole cells one at a time, time the detection +
    # reparent pass, heal, move on
    reparents = 0
    reparent_wall_s = 0.0
    killed = 0
    cell_names = sorted(by_cell)[: config.churn_cells]
    for cell_name in cell_names:
        for store in by_cell[cell_name]:
            store.kill()
        started = time.perf_counter()
        reparented = topology.tick()
        reparent_wall_s += time.perf_counter() - started
        reparents += len(reparented)
        killed += 1
        for store in by_cell[cell_name]:
            store.revive()
        topology.tick()  # cell recovers before the next kill

    # rebalance cost: permanently lose one cell, respread, count moves
    lost_cell = cell_names[0]
    for store in by_cell[lost_cell]:
        store.kill()
    topology.tick()
    before = {
        record.shard_id: set(record.holders())
        for record in topology.shard_table.records()
    }
    started = time.perf_counter()
    topology.rebalance()
    rebalance_wall_ms = (time.perf_counter() - started) * 1e3
    moves = sum(
        len(set(record.holders()) ^ before[record.shard_id])
        for record in topology.shard_table.records()
    )

    started = time.perf_counter()
    rebuild = topology.rebuild()
    rebuild_wall_ms = (time.perf_counter() - started) * 1e3

    return ScaleResult(
        stores=config.cells * config.stores_per_cell,
        cells=config.cells,
        shards=config.shards,
        keys=config.keys,
        register_s=register_s,
        lookup_ns_small=lookup_ns_small,
        lookup_ns_full=lookup_ns_full,
        lookup_ratio=ratio,
        worst_cell_lost_clusters=worst_lost,
        cells_killed=killed,
        reparents=reparents,
        reparent_wall_ms_mean=(
            reparent_wall_s / reparents * 1e3 if reparents else 0.0
        ),
        reparent_latency_s_total=topology.stats.total_reparent_latency_s,
        rebalance_moves=moves,
        rebalance_wall_ms=rebalance_wall_ms,
        rebuild_wall_ms=rebuild_wall_ms,
        rebuild_inventory_replicas=rebuild["inventory_replicas"],
    )


def run_cell_kill(
    config: TopologyBenchConfig,
    victim: int,
    *,
    observe: bool = False,
    obs_path: Optional[str] = None,
    obs_append: bool = True,
) -> CellKillResult:
    """One real-data scenario: swap out, kill cell ``victim``, recover."""
    clock = SimulatedClock()
    space = Space(
        f"topo-it-{victim}", heap_capacity=config.heap_capacity, clock=clock
    )
    stores: Dict[str, FlakyStore] = {}
    for cell in range(config.it_cells):
        for i in range(config.it_stores_per_cell):
            store = FlakyStore(
                XmlStoreDevice(
                    f"c{cell}s{i}",
                    capacity=config.store_capacity,
                    placement_group=f"cell-{cell}",
                    link=bluetooth_link(clock),
                ),
                FaultInjector(
                    FaultPlan.empty(seed=config.seed * 1000 + victim), clock
                ),
            )
            stores[store.device_id] = store
            space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(
            replication_factor=config.replication_factor,
            degrade_to_local=False,
            scrub_interval_s=1.0,
        )
    )
    topology = space.manager.enable_topology(shards=config.it_shards)
    obs = space.manager.enable_observability() if observe else None

    space.ingest(
        build_list(config.it_objects),
        cluster_size=config.it_cluster_size,
        root_name="head",
    )
    sids = [
        sid
        for sid, cluster in sorted(space.clusters().items())
        if sid != 0 and cluster.swappable() and cluster.oids
    ]
    for sid in sids:
        space.manager.swap_out(sid)

    cell_name = f"cell-{victim}"
    plan = ChurnPlan(
        events=(ChurnEvent(0.0, "", "kill_cell", cell=cell_name, lose_data=True),)
    )
    ChurnInjector(plan, clock).apply(stores)
    reparents_before = topology.stats.reparents
    repairs_before = topology.stats.repair_replicas
    started = clock.now()
    # the fleet notices the dead cell: detach strikes its replicas from
    # the ledger (kill alone leaves them ACTIVE-but-unreachable) and
    # lets tick + scrub do the real recovery work
    for store in list(stores.values()):
        if store.placement_group == cell_name:
            space.manager.detach_store(store, dead=True)
    topology.tick()
    space.manager.resilience.scrubber.run_until_stable()
    recovery_s = clock.now() - started

    placement = space.manager.resilience.placement
    lost = sum(
        1 for record in placement.records().values() if record.live_count == 0
    )
    full = sum(
        1
        for record in placement.records().values()
        if record.live_count >= config.replication_factor
    )
    ok = 0
    for sid in sids:
        try:
            space.manager.swap_in(sid)
            ok += 1
        except Exception:
            pass
    if obs is not None:
        obs.refresh()
        if obs_path is not None:
            obs.export_jsonl(
                obs_path, label=f"topology:cell={cell_name}", append=obs_append
            )
    return CellKillResult(
        cell=cell_name,
        clusters=len(sids),
        clusters_lost=lost,
        reparents=topology.stats.reparents - reparents_before,
        recovery_s=recovery_s,
        replicas_repaired=topology.stats.repair_replicas - repairs_before,
        fully_replicated=full,
        swap_in_ok=ok,
    )


def run_topology_bench(
    config: TopologyBenchConfig | None = None,
    *,
    observe: bool = False,
    obs_path: Optional[str] = None,
) -> TopologyReport:
    config = config if config is not None else TopologyBenchConfig()
    report = TopologyReport(config=config, observed=observe)
    report.scale = run_scale(config)
    for victim in range(config.it_cells):
        report.integration.append(
            run_cell_kill(
                config,
                victim,
                observe=observe,
                obs_path=obs_path,
                obs_append=victim > 0,
            )
        )
    return report


def format_table(report: TopologyReport) -> str:
    lines: List[str] = []
    scale = report.scale
    if scale is not None:
        lines.append(
            f"scale: {scale.stores} stores / {scale.cells} cells / "
            f"{scale.shards} shards / {scale.keys} keys "
            f"(registered in {scale.register_s:.2f}s)"
        )
        lines.append(
            f"  lookup: {scale.lookup_ns_small:.0f} ns @1% -> "
            f"{scale.lookup_ns_full:.0f} ns @100% "
            f"(x{scale.lookup_ratio:.2f}, O(1): "
            f"{'yes' if scale.lookup_o1 else 'NO'})"
        )
        lines.append(
            f"  any-cell loss: {scale.worst_cell_lost_clusters} clusters "
            f"(zero-loss: {'yes' if scale.zero_loss_any_cell else 'NO'})"
        )
        lines.append(
            f"  churn: {scale.cells_killed} cells killed, "
            f"{scale.reparents} reparents @ "
            f"{scale.reparent_wall_ms_mean:.2f} ms mean; rebalance "
            f"{scale.rebalance_moves} moves in "
            f"{scale.rebalance_wall_ms:.1f} ms; rebuild "
            f"{scale.rebuild_wall_ms:.1f} ms"
        )
    header = (
        f"{'cell':>8} {'clusters':>9} {'lost':>5} {'reparents':>10} "
        f"{'recovery s':>11} {'repairs':>8} {'full rf':>8} {'swap-in ok':>11}"
    )
    lines.extend([header, "-" * len(header)])
    for result in report.integration:
        lines.append(
            f"{result.cell:>8} {result.clusters:>9} {result.clusters_lost:>5} "
            f"{result.reparents:>10} {result.recovery_s:>11.3f} "
            f"{result.replicas_repaired:>8} {result.fully_replicated:>8} "
            f"{result.swap_in_ok:>11}"
        )
    lines.append(
        "zero loss on any full cell death: "
        + ("yes" if report.zero_loss else "NO")
    )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke-test sizing"
    )
    parser.add_argument(
        "--keys", type=int, default=None, help="override the key population"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-injector seed"
    )
    parser.add_argument(
        "--output", default="BENCH_topology.json", help="JSON output path"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run the integration scenarios with observability attached: "
        "one labeled trace/metric dump per killed cell",
    )
    parser.add_argument(
        "--obs-output",
        default="BENCH_topology_obs.jsonl",
        help="JSONL dump path (with --obs)",
    )
    arguments = parser.parse_args(argv)
    config = (
        TopologyBenchConfig.quick() if arguments.quick else TopologyBenchConfig()
    )
    if arguments.keys is not None:
        config.keys = arguments.keys
    config.seed = arguments.seed
    report = run_topology_bench(
        config,
        observe=arguments.obs,
        obs_path=arguments.obs_output if arguments.obs else None,
    )
    print(format_table(report))
    if arguments.obs:
        print(f"wrote {arguments.obs_output}")
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
