"""Evaluation workloads.

Figure 5's micro-benchmark operates on "a list of 10000 64-byte objects"
with "simple (quasi-empty) methods, in order not to mask the overhead
being measured" (Section 5).  :class:`BenchNode` is that object:
``@managed(size=64)`` pins the accounted footprint, and its methods are
exactly the paper's test primitives:

* ``depth``     — Test A1's recursive step (passes an int down the list);
* ``probe``     — Test A2's outer recursion (each step triggers an inner
  ``peek`` recursion of depth 10 that returns an object reference);
* ``get_next``  — Tests B1/B2's iteration step.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.runtime.obicomp import managed


@managed(size=64)
class BenchNode:
    """One 64-byte list element with quasi-empty methods."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.next: Optional["BenchNode"] = None

    # -- Test A1: recursion depth ------------------------------------------------

    def depth(self, i: int) -> int:
        nxt = self.next
        if nxt is None:
            return i
        return nxt.depth(i + 1)

    # -- Test A2: outer recursion with inner reference-returning recursion --------

    def peek(self, k: int) -> "BenchNode":
        if k == 0:
            return self
        nxt = self.next
        if nxt is None:
            return self
        return nxt.peek(k - 1)

    def probe(self, i: int) -> int:
        target = self.peek(10)  # the returned reference may cross a boundary
        nxt = self.next
        if nxt is None:
            return i
        return nxt.probe(i + 1)

    # -- Tests B1/B2: full iteration -----------------------------------------------

    def get_next(self) -> Optional["BenchNode"]:
        return self.next

    def get_index(self) -> int:
        return self.index


def build_list(n: int) -> BenchNode:
    """A fresh n-element list of BenchNodes (raw, unmanaged graph)."""
    head = BenchNode(0)
    node = head
    for index in range(1, n):
        node.next = BenchNode(index)
        node = node.next
    return head


def build_managed_list(space: Any, n: int, cluster_size: int) -> Any:
    """Build and ingest an n-element list; returns the root handle."""
    head = build_list(n)
    return space.ingest(head, cluster_size=cluster_size, root_name="bench-head")


# ---------------------------------------------------------------------------
# Richer workloads for the ablation benches
# ---------------------------------------------------------------------------


@managed
class Record:
    """A variable-size record for victim/selection ablations."""

    def __init__(self, key: int, payload: str) -> None:
        self.key = key
        self.payload = payload
        self.links: List[Any] = []

    def get_key(self) -> int:
        return self.key

    def get_payload(self) -> str:
        return self.payload

    def link_count(self) -> int:
        return len(self.links)


def build_record_clusters(
    space: Any,
    cluster_count: int,
    records_per_cluster: int,
    payload_bytes: int = 256,
    seed: int = 7,
) -> List[Any]:
    """``cluster_count`` independent record chains, one swap-cluster each.

    Returns the root handles; used by the victim-policy and compression
    ablations, where access skew across clusters matters.
    """
    rng = random.Random(seed)
    handles = []
    for cluster_index in range(cluster_count):
        head = Record(cluster_index * records_per_cluster, "x" * payload_bytes)
        node = head
        for record_index in range(1, records_per_cluster):
            record = Record(
                cluster_index * records_per_cluster + record_index,
                "".join(rng.choice("abcdefgh") for _ in range(payload_bytes)),
            )
            node.links.append(record)
            node = record
        handle = space.ingest(
            head,
            cluster_size=records_per_cluster,
            root_name=f"records-{cluster_index}",
        )
        handles.append(handle)
    return handles


def zipf_indexes(n_clusters: int, samples: int, s: float = 1.2, seed: int = 11) -> List[int]:
    """A Zipf-skewed access trace over cluster indexes."""
    rng = random.Random(seed)
    weights = [1.0 / ((rank + 1) ** s) for rank in range(n_clusters)]
    total = sum(weights)
    weights = [weight / total for weight in weights]
    return rng.choices(range(n_clusters), weights=weights, k=samples)
