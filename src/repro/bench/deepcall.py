"""Run deeply recursive callables on a big-stack thread.

The paper's Tests A1/A2 recurse along a 10000-element list.  CPython's
default recursion limit (1000) and default thread stack are far too small
— especially with the extra frames each swap-cluster-proxy boundary
crossing adds — so the harness runs the test body on a dedicated thread
with a large stack and a raised recursion limit.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, Optional, Tuple

DEFAULT_STACK_BYTES = 512 * 1024 * 1024
DEFAULT_RECURSION_LIMIT = 200_000


def run_deep(
    fn: Callable[[], Any],
    stack_bytes: int = DEFAULT_STACK_BYTES,
    recursion_limit: int = DEFAULT_RECURSION_LIMIT,
) -> Any:
    """Execute ``fn()`` on a thread with a big stack; return its result.

    Exceptions propagate to the caller.  The recursion limit is raised
    only inside the worker thread's run (the interpreter-wide limit is
    restored afterwards).
    """
    result: list = [None]
    failure: list = [None]

    def worker() -> None:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(recursion_limit)
        try:
            result[0] = fn()
        except BaseException as exc:  # noqa: BLE001 - transported to caller
            failure[0] = exc
        finally:
            sys.setrecursionlimit(old_limit)

    old_stack = threading.stack_size()
    try:
        threading.stack_size(stack_bytes)
        thread = threading.Thread(target=worker, name="repro-deepcall")
        thread.start()
    finally:
        threading.stack_size(old_stack)
    thread.join()
    if failure[0] is not None:
        raise failure[0]
    return result[0]
