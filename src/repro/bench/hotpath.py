"""Swap hot-path benchmark: clean-cluster fast path vs always-re-encode.

Measures what the fast path (:mod:`repro.core.fastpath`) buys on the
paper's Bluetooth-class link for the common case — clusters that swap
out *unmodified* after their last cycle:

* ``baseline``          — fast path off: every swap-out re-encodes the
  cluster and ships the full payload;
* ``fastpath_clean``    — fast path on, clusters never mutated: after
  the first cycle every swap-out is a metadata-only no-op (or at worst a
  cached re-ship) and every swap-in is served from the payload cache;
* ``fastpath_mutating`` — fast path on, one member mutated before every
  swap-out: dirty tracking must force the full pipeline each time (the
  honesty check — invalidation is not free riding on stale payloads).

Reported per scenario: p50/p95 simulated swap-out and full-cycle cost,
bytes carried on the link, encoder invocations, and the fast-path
counters.  ``python -m repro.bench.hotpath`` writes
``BENCH_swap_hotpath.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

from repro.bench.workloads import build_list
from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.fastpath import FastPathConfig
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice


@dataclass
class HotPathConfig:
    objects: int = 1_000
    cluster_size: int = 50
    cycles: int = 20
    heap_capacity: int = 32 << 20
    store_capacity: int = 32 << 20

    @classmethod
    def quick(cls) -> "HotPathConfig":
        """CI smoke-test sizing (sub-second wall clock).

        Keeps the paper-scale 50-object clusters: with very small
        clusters the per-message link latency dominates both paths and
        the metadata-only no-op's advantage shrinks below its real value.
        """
        return cls(objects=400, cluster_size=50, cycles=8)


@dataclass
class ScenarioResult:
    name: str
    cycles: int
    swap_outs: int
    encode_calls: int
    bytes_on_link: int
    link_seconds: float
    swap_out_p50_s: float
    swap_out_p95_s: float
    swap_out_mean_s: float
    cycle_p50_s: float
    cycle_p95_s: float
    fastpath_noops: int
    fastpath_reships: int
    swapin_cache_hits: int
    #: per-phase simulated/wall cost from the profiler (``--obs`` only)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class HotPathReport:
    config: HotPathConfig
    scenarios: Dict[str, ScenarioResult] = field(default_factory=dict)
    observed: bool = False

    @property
    def swap_out_cost_reduction(self) -> float:
        """baseline / fastpath_clean mean simulated swap-out cost."""
        clean = self.scenarios["fastpath_clean"].swap_out_mean_s
        base = self.scenarios["baseline"].swap_out_mean_s
        return base / clean if clean > 0 else float("inf")

    @property
    def encode_call_reduction(self) -> float:
        clean = self.scenarios["fastpath_clean"].encode_calls
        base = self.scenarios["baseline"].encode_calls
        return base / clean if clean > 0 else float("inf")

    @property
    def link_bytes_reduction(self) -> float:
        clean = self.scenarios["fastpath_clean"].bytes_on_link
        base = self.scenarios["baseline"].bytes_on_link
        return base / clean if clean > 0 else float("inf")

    def to_json(self) -> str:
        payload = {
            "benchmark": "swap_hotpath",
            "observed": self.observed,
            "config": asdict(self.config),
            "scenarios": {
                name: asdict(result) for name, result in self.scenarios.items()
            },
            "reductions": {
                "swap_out_cost": self.swap_out_cost_reduction,
                "encode_calls": self.encode_call_reduction,
                "link_bytes": self.link_bytes_reduction,
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _build_space(config: HotPathConfig) -> tuple:
    clock = SimulatedClock()
    space = Space("hotpath", heap_capacity=config.heap_capacity, clock=clock)
    link = bluetooth_link(clock)
    store = XmlStoreDevice(
        "nearby", capacity=config.store_capacity, link=link
    )
    space.manager.add_store(store)
    space.ingest(
        build_list(config.objects),
        cluster_size=config.cluster_size,
        root_name="head",
    )
    sids = [
        sid
        for sid, cluster in sorted(space._clusters.items())
        if cluster.swappable() and cluster.oids
    ]
    return space, clock, link, sids


def _mutate_one(space: Space, sid: int) -> None:
    """Touch one member field through the write barrier (dirties the sid)."""
    cluster = space._clusters[sid]
    oid = min(cluster.oids)
    node = space._objects[oid]
    node.index = node.index + 1


def run_scenario(
    name: str,
    config: HotPathConfig,
    *,
    fastpath: bool,
    mutate: bool,
    fastpath_config: FastPathConfig | None = None,
    observe: bool = False,
    obs_path: str | None = None,
    obs_append: bool = True,
) -> ScenarioResult:
    space, clock, link, sids = _build_space(config)
    manager = space.manager
    if fastpath:
        manager.enable_fastpath(
            fastpath_config if fastpath_config is not None else FastPathConfig()
        )
    obs = manager.enable_observability() if observe else None

    swap_out_costs: List[float] = []
    cycle_costs: List[float] = []
    for _ in range(config.cycles):
        for sid in sids:
            if mutate:
                _mutate_one(space, sid)
            start = clock.now()
            manager.swap_out(sid)
            swap_out_costs.append(clock.now() - start)
            manager.swap_in(sid)
            cycle_costs.append(clock.now() - start)

    phases: Dict[str, Dict[str, float]] = {}
    if obs is not None:
        obs.refresh()
        phases = obs.profiler.breakdown()
        if obs_path is not None:
            obs.export_jsonl(
                obs_path, label=f"hotpath:{name}", append=obs_append
            )

    stats = manager.stats
    return ScenarioResult(
        name=name,
        cycles=config.cycles,
        swap_outs=stats.swap_outs,
        encode_calls=stats.encode_calls,
        bytes_on_link=link.stats.bytes_carried,
        link_seconds=link.stats.seconds_charged,
        swap_out_p50_s=_percentile(swap_out_costs, 0.50),
        swap_out_p95_s=_percentile(swap_out_costs, 0.95),
        swap_out_mean_s=sum(swap_out_costs) / len(swap_out_costs),
        cycle_p50_s=_percentile(cycle_costs, 0.50),
        cycle_p95_s=_percentile(cycle_costs, 0.95),
        fastpath_noops=stats.fastpath_noops,
        fastpath_reships=stats.fastpath_reships,
        swapin_cache_hits=stats.swapin_cache_hits,
        phases=phases,
    )


def run_hotpath(
    config: HotPathConfig | None = None,
    *,
    observe: bool = False,
    obs_path: str | None = None,
) -> HotPathReport:
    """Run all three scenarios on identical workloads.

    With ``observe`` each scenario runs under a fresh observability
    attachment and reports its per-phase cost breakdown; ``obs_path``
    additionally appends one labeled JSONL dump per scenario.
    """
    config = config if config is not None else HotPathConfig()
    report = HotPathReport(config=config, observed=observe)
    plans = [
        ("baseline", False, False),
        ("fastpath_clean", True, False),
        ("fastpath_mutating", True, True),
    ]
    for index, (name, fastpath, mutate) in enumerate(plans):
        report.scenarios[name] = run_scenario(
            name,
            config,
            fastpath=fastpath,
            mutate=mutate,
            observe=observe,
            obs_path=obs_path,
            obs_append=index > 0,
        )
    return report


def format_table(report: HotPathReport) -> str:
    from repro.bench.report import format_sim_wall

    header = (
        f"{'scenario':<20} {'out p50 s':>10} {'out p95 s':>10} "
        f"{'cycle p50 s':>12} {'link bytes':>11} {'encodes':>8} "
        f"{'noops':>6} {'cache hits':>10}"
    )
    if report.observed:
        header += f" {'enc+dec (sim/wall)':>28}"
    lines = [header, "-" * len(header)]
    for result in report.scenarios.values():
        line = (
            f"{result.name:<20} {result.swap_out_p50_s:>10.4f} "
            f"{result.swap_out_p95_s:>10.4f} {result.cycle_p50_s:>12.4f} "
            f"{result.bytes_on_link:>11} {result.encode_calls:>8} "
            f"{result.fastpath_noops:>6} {result.swapin_cache_hits:>10}"
        )
        if report.observed:
            sim = sum(
                result.phases.get(phase, {}).get("sim_s", 0.0)
                for phase in ("encode", "decode")
            )
            wall = sum(
                result.phases.get(phase, {}).get("wall_s", 0.0)
                for phase in ("encode", "decode")
            )
            line += f" {format_sim_wall(sim, wall):>28}"
        lines.append(line)
    lines.append(
        f"reductions vs baseline: swap-out cost "
        f"{report.swap_out_cost_reduction:.1f}x, encodes "
        f"{report.encode_call_reduction:.1f}x, link bytes "
        f"{report.link_bytes_reduction:.1f}x"
    )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke-test sizing"
    )
    parser.add_argument(
        "--output", default="BENCH_swap_hotpath.json", help="JSON output path"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run with observability attached: per-phase breakdowns in the "
        "JSON plus one labeled trace/metric dump per scenario",
    )
    parser.add_argument(
        "--obs-output",
        default="BENCH_swap_hotpath_obs.jsonl",
        help="JSONL dump path (with --obs)",
    )
    arguments = parser.parse_args(argv)
    config = HotPathConfig.quick() if arguments.quick else HotPathConfig()
    report = run_hotpath(
        config,
        observe=arguments.obs,
        obs_path=arguments.obs_output if arguments.obs else None,
    )
    print(format_table(report))
    if arguments.obs:
        print(f"wrote {arguments.obs_output}")
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
