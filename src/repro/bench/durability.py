"""Durability benchmark: recovery cost after killing 1..k of n stores.

The replicated swap-out (:mod:`repro.resilience.placement`) claims that
``replication_factor`` copies across distinct stores make swapped
clusters survive store deaths.  This harness measures what that claim
costs: for each kill count it swaps a workload out at the configured
factor over ``stores`` nearby devices (each behind its own simulated
Bluetooth-class link), kills that many stores *with data loss*, and
drives the scrubber until the neighborhood is stable again — reporting

* **recovery time** — simulated seconds of scrub/repair traffic until
  replication is restored;
* **bytes re-replicated** — payload bytes the repair shipped;
* **clusters lost** — how many records had no surviving copy (must be
  zero while ``kills < replication_factor``).

``python -m repro.bench.durability`` writes ``BENCH_durability.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.bench.workloads import build_list
from repro.clock import SimulatedClock
from repro.comm.transport import bluetooth_link
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.faults import FaultInjector, FaultPlan, FlakyStore
from repro.resilience import ResilienceConfig


@dataclass
class DurabilityConfig:
    objects: int = 600
    cluster_size: int = 50
    stores: int = 5
    replication_factor: int = 3
    max_kills: int = 4
    heap_capacity: int = 32 << 20
    store_capacity: int = 32 << 20

    @classmethod
    def quick(cls) -> "DurabilityConfig":
        """CI smoke-test sizing (sub-second wall clock)."""
        return cls(objects=200, cluster_size=50, max_kills=3)


@dataclass
class KillResult:
    """What recovering from ``kills`` simultaneous store deaths cost."""

    kills: int
    clusters: int
    clusters_lost: int
    recovery_s: float
    bytes_re_replicated: int
    replicas_repaired: int
    scrub_passes: int
    fully_replicated: int  # clusters back at the target factor
    #: per-phase simulated/wall cost from the profiler (``--obs`` only)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class DurabilityReport:
    config: DurabilityConfig
    results: Dict[int, KillResult] = field(default_factory=dict)
    observed: bool = False

    @property
    def survives_minority_loss(self) -> bool:
        """Zero clusters lost for every kill count below the factor."""
        return all(
            result.clusters_lost == 0
            for kills, result in self.results.items()
            if kills < self.config.replication_factor
        )

    def to_json(self) -> str:
        payload = {
            "benchmark": "durability",
            "observed": self.observed,
            "config": asdict(self.config),
            "results": {
                str(kills): asdict(result)
                for kills, result in sorted(self.results.items())
            },
            "survives_minority_loss": self.survives_minority_loss,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def run_kill_scenario(
    config: DurabilityConfig,
    kills: int,
    *,
    observe: bool = False,
    obs_path: Optional[str] = None,
    obs_append: bool = True,
) -> KillResult:
    """One scenario: swap out, kill ``kills`` stores, scrub to stable."""
    clock = SimulatedClock()
    space = Space(
        f"durability-{kills}", heap_capacity=config.heap_capacity, clock=clock
    )
    injector = FaultInjector(FaultPlan.empty(seed=kills), clock)
    flaky: List[FlakyStore] = []
    for i in range(config.stores):
        inner = XmlStoreDevice(
            f"s{i}",
            capacity=config.store_capacity,
            link=bluetooth_link(clock),
        )
        store = FlakyStore(inner, injector)
        flaky.append(store)
        space.manager.add_store(store)
    space.manager.enable_resilience(
        ResilienceConfig(
            replication_factor=config.replication_factor,
            degrade_to_local=False,
            scrub_interval_s=1.0,
        )
    )

    obs = space.manager.enable_observability() if observe else None

    space.ingest(
        build_list(config.objects),
        cluster_size=config.cluster_size,
        root_name="head",
    )
    sids = [
        sid
        for sid, cluster in sorted(space._clusters.items())
        if cluster.swappable() and cluster.oids
    ]
    for sid in sids:
        space.manager.swap_out(sid)

    for store in flaky[:kills]:
        store.kill(lose_data=True)
        space.manager.detach_store(store, dead=True)

    scrubber = space.manager.resilience.scrubber
    stats_before_bytes = space.manager.stats.scrub_bytes_repaired
    stats_before_repairs = space.manager.stats.replicas_repaired
    passes_before = space.manager.stats.scrub_ticks
    started = clock.now()
    scrubber.run_until_stable()
    recovery_s = clock.now() - started

    placement = space.manager.resilience.placement
    lost = sum(
        1 for record in placement.records().values() if record.live_count == 0
    )
    full = sum(
        1
        for record in placement.records().values()
        if record.live_count >= config.replication_factor
    )
    phases: Dict[str, Dict[str, float]] = {}
    if obs is not None:
        obs.refresh()
        phases = obs.profiler.breakdown()
        if obs_path is not None:
            obs.export_jsonl(
                obs_path, label=f"durability:kills={kills}", append=obs_append
            )

    stats = space.manager.stats
    return KillResult(
        kills=kills,
        clusters=len(sids),
        clusters_lost=lost,
        recovery_s=recovery_s,
        bytes_re_replicated=stats.scrub_bytes_repaired - stats_before_bytes,
        replicas_repaired=stats.replicas_repaired - stats_before_repairs,
        scrub_passes=stats.scrub_ticks - passes_before,
        fully_replicated=full,
        phases=phases,
    )


def run_durability(
    config: DurabilityConfig | None = None,
    *,
    observe: bool = False,
    obs_path: Optional[str] = None,
) -> DurabilityReport:
    config = config if config is not None else DurabilityConfig()
    report = DurabilityReport(config=config, observed=observe)
    top = min(config.max_kills, config.stores - 1)
    for kills in range(1, top + 1):
        report.results[kills] = run_kill_scenario(
            config,
            kills,
            observe=observe,
            obs_path=obs_path,
            obs_append=kills > 1,
        )
    return report


def format_table(report: DurabilityReport) -> str:
    header = (
        f"{'kills':>5} {'clusters':>9} {'lost':>5} {'recovery s':>11} "
        f"{'bytes reshipped':>16} {'repairs':>8} {'full rf':>8}"
    )
    lines = [header, "-" * len(header)]
    for kills, result in sorted(report.results.items()):
        lines.append(
            f"{kills:>5} {result.clusters:>9} {result.clusters_lost:>5} "
            f"{result.recovery_s:>11.3f} {result.bytes_re_replicated:>16} "
            f"{result.replicas_repaired:>8} {result.fully_replicated:>8}"
        )
    lines.append(
        "survives minority loss: "
        + ("yes" if report.survives_minority_loss else "NO")
    )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke-test sizing"
    )
    parser.add_argument(
        "--output", default="BENCH_durability.json", help="JSON output path"
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run with observability attached: per-phase breakdowns in the "
        "JSON plus one labeled trace/metric dump per kill count",
    )
    parser.add_argument(
        "--obs-output",
        default="BENCH_durability_obs.jsonl",
        help="JSONL dump path (with --obs)",
    )
    arguments = parser.parse_args(argv)
    config = DurabilityConfig.quick() if arguments.quick else DurabilityConfig()
    report = run_durability(
        config,
        observe=arguments.obs,
        obs_path=arguments.obs_output if arguments.obs else None,
    )
    print(format_table(report))
    if arguments.obs:
        print(f"wrote {arguments.obs_output}")
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(report.to_json() + "\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
