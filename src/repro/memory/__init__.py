"""Memory-management module: heap accounting, size model, local GC.

Mirrors OBIWAN's *Memory Management* module (paper, Section 2): it owns the
byte-accounted heap model, the local collector that cooperates with
object-swapping, and the reachability walk that implements the paper's
conservative whole-swap-cluster rule.
"""

from repro.memory.heap import Heap, HeapStats
from repro.memory.sizemodel import SizeModel, DEFAULT_SIZE_MODEL
from repro.memory.lgc import LocalCollector, CollectionResult

__all__ = [
    "Heap",
    "HeapStats",
    "SizeModel",
    "DEFAULT_SIZE_MODEL",
    "LocalCollector",
    "CollectionResult",
]
