"""The local collector (LGC) and its cooperation with object-swapping.

Paper, Section 3, "Integration with GC Mechanisms":

* while a replacement-object is reachable, the LGC "must behave
  conservatively: it must regard as reachable all objects belonging to
  the swap-cluster, even if all but one of them are garbage" — the whole
  swap-cluster is preserved (on the device for resident clusters, on the
  swapping store for detached ones);
* when a replacement-object becomes unreachable, "the swapping device
  may be instructed to discard the XML text with the contents of the
  swap-cluster";
* there is **no DGC** across swapping devices: "all the decisions are
  made locally to the device running the application; the swapping
  device is instructed just to store, return, or drop XML-data."

The collector is precise over the space's declared roots (named roots,
pinned clusters, and caller-supplied extras).  Python stack variables are
invisible to it — pass handles held in locals via ``extra_roots`` or run
collections at quiescent points, exactly as OBIWAN runs swapping
decisions between invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Tuple

from repro.ids import ROOT_SID
from repro.memory.reachability import mark_from, space_roots


@dataclass(frozen=True)
class CollectionResult:
    objects_collected: int
    clusters_collected: int
    swapped_dropped: int
    bytes_freed: int

    def describe(self) -> str:
        return (
            f"collected {self.objects_collected} objects, "
            f"{self.clusters_collected} whole clusters "
            f"({self.swapped_dropped} swapped copies dropped), "
            f"{self.bytes_freed} bytes freed"
        )


class LocalCollector:
    """Mark-sweep collector over one managed space."""

    def __init__(self, space: Any) -> None:
        self._space = space

    def collect(self, extra_roots: Iterable[Any] = ()) -> CollectionResult:
        space = self._space

        # The conservative whole-cluster rule, applied during marking:
        # reaching any member of a (non-root) swap-cluster reaches them
        # all, and the kept members anchor their own outgoing references
        # (otherwise a conservatively-preserved object could hold a proxy
        # into a cluster the sweep just collected).
        expanded_clusters: set = set()

        def expand_object(oid: int):
            sid = space._sid_by_oid.get(oid)
            if sid is None or sid == ROOT_SID or sid in expanded_clusters:
                return ()
            cluster = space._clusters.get(sid)
            if cluster is None or not cluster.is_resident:
                return ()
            expanded_clusters.add(sid)
            return [
                space._objects[member_oid]
                for member_oid in cluster.oids
                if member_oid in space._objects
            ]

        reachable = mark_from(
            space_roots(space, extra_roots), expand_object=expand_object
        )

        objects_collected = 0
        clusters_collected = 0
        swapped_dropped = 0
        bytes_freed = 0

        for sid, cluster in list(space._clusters.items()):
            if cluster.is_swapped:
                if reachable.is_swapped_cluster_reachable(sid):
                    continue  # conservative: keep the whole stored cluster
                replacement_oid = (
                    cluster.replacement.oid if cluster.replacement else None
                )
                if replacement_oid is not None and space.heap.holds(replacement_oid):
                    bytes_freed += space.heap.size_of(replacement_oid)
                space._manager.drop_swapped(cluster)
                space._drop_cluster_record(sid)
                clusters_collected += 1
                swapped_dropped += 1
                objects_collected += len(cluster.oids)
                continue

            if sid == ROOT_SID:
                # swap-cluster-0 is the process itself: globals that were
                # dropped are collected individually.
                for oid in list(cluster.oids):
                    if not reachable.is_object_reachable(oid):
                        bytes_freed += space._evict_object(oid)
                        objects_collected += 1
                continue

            any_reachable = any(
                reachable.is_object_reachable(oid) for oid in cluster.oids
            )
            if any_reachable or not cluster.oids:
                # conservative whole-cluster rule: internal garbage is
                # preserved as long as any member is reachable
                continue
            for oid in list(cluster.oids):
                bytes_freed += space._evict_object(oid)
                objects_collected += 1
            space._drop_cluster_record(sid)
            clusters_collected += 1

        return CollectionResult(
            objects_collected=objects_collected,
            clusters_collected=clusters_collected,
            swapped_dropped=swapped_dropped,
            bytes_freed=bytes_freed,
        )
