"""Reachability analysis over a managed space.

Implements the marking walk shared by the local collector and tests.
The traversal rules encode the paper's GC integration (Section 3):

* raw managed objects are marked by oid and traversed field-by-field
  (descending into containers);
* a swap-cluster-proxy marks nothing itself but forwards the walk to its
  target: the live replica when resident, the **replacement-object** when
  swapped;
* a reachable replacement-object marks its swap-cluster as
  conservatively reachable *as a whole* and keeps the detached cluster's
  outbound proxies alive (so the walk continues through them — the
  swapped cluster still "references" those targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Set

from repro.runtime.classext import instance_fields


@dataclass
class ReachableSet:
    """Result of a marking walk."""

    oids: Set[int] = field(default_factory=set)
    #: sids whose replacement-object was reached (swapped clusters alive).
    replacement_sids: Set[int] = field(default_factory=set)

    def is_object_reachable(self, oid: int) -> bool:
        return oid in self.oids

    def is_swapped_cluster_reachable(self, sid: int) -> bool:
        return sid in self.replacement_sids


def mark_from(
    roots: Iterable[Any],
    expand_object: Any = None,
) -> ReachableSet:
    """Mark everything reachable from ``roots``.

    ``expand_object(oid)``, when given, returns co-members that become
    reachable alongside ``oid`` — the hook the collector uses for the
    paper's conservative rule: a swap-cluster is reachable *as a whole*,
    so members kept only by conservatism still anchor their own outgoing
    references (their targets must not be collected under them).
    """
    result = ReachableSet()
    seen_containers: Set[int] = set()
    stack = list(roots)
    while stack:
        item = stack.pop()
        cls = type(item)
        if getattr(cls, "_obi_managed", False):
            oid = getattr(item, "_obi_oid", None)
            if oid is None or oid in result.oids:
                continue
            result.oids.add(oid)
            stack.extend(instance_fields(item).values())
            if expand_object is not None:
                stack.extend(expand_object(oid))
        elif getattr(cls, "_obi_is_proxy", False):
            target = item._obi_target
            if getattr(type(target), "_obi_is_replacement", False):
                if target.sid not in result.replacement_sids:
                    result.replacement_sids.add(target.sid)
                    stack.extend(target.outbound)
            else:
                stack.append(target)
        elif getattr(cls, "_obi_is_replacement", False):
            if item.sid not in result.replacement_sids:
                result.replacement_sids.add(item.sid)
                stack.extend(item.outbound)
        elif cls in (list, tuple, set, frozenset):
            marker = id(item)
            if marker not in seen_containers:
                seen_containers.add(marker)
                stack.extend(item)
        elif cls is dict:
            marker = id(item)
            if marker not in seen_containers:
                seen_containers.add(marker)
                stack.extend(item.keys())
                stack.extend(item.values())
    return result


def space_roots(space: Any, extra_roots: Iterable[Any] = ()) -> list:
    """The root set of a space: named roots, pinned clusters, extras."""
    roots: list = list(space._roots.values())
    for cluster in space._clusters.values():
        if cluster.pins > 0 and cluster.is_resident:
            roots.extend(
                space._objects[oid] for oid in cluster.oids if oid in space._objects
            )
    roots.extend(extra_roots)
    return roots
