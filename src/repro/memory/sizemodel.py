"""Deterministic per-object size model.

CPython cannot report the live footprint of an object graph the way the
.NET CF heap does, so the reproduction accounts memory explicitly: every
managed object is charged a deterministic size when adopted into a space
and credited back when swapped out or collected.  The model is documented
here so EXPERIMENTS.md numbers are interpretable.

The paper's Figure 5 benchmark uses "10000 64-byte objects"; benchmark
classes declare ``@managed(size=64)`` to pin that footprint exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

#: Fixed per-instance header charge (type pointer + gc header analogue).
OBJECT_HEADER_BYTES = 16

#: Charge per reference-sized slot (field, list element, dict entry side).
SLOT_BYTES = 8

#: Container header charge.
CONTAINER_HEADER_BYTES = 16


class SizeModel:
    """Compute the accounted size of a managed object.

    Precedence:

    1. An explicit ``size`` hint given to ``@managed(size=N)`` wins.
    2. Otherwise the size is ``OBJECT_HEADER_BYTES`` plus the cost of each
       field in the instance ``__dict__`` (internals prefixed ``_obi_``
       excluded).

    Field costs: a reference to another managed object or proxy costs one
    slot (the pointee is accounted separately); primitives cost their
    payload; containers cost header + per-element costs.
    """

    def __init__(
        self,
        header_bytes: int = OBJECT_HEADER_BYTES,
        slot_bytes: int = SLOT_BYTES,
        container_header_bytes: int = CONTAINER_HEADER_BYTES,
    ) -> None:
        self.header_bytes = header_bytes
        self.slot_bytes = slot_bytes
        self.container_header_bytes = container_header_bytes

    # -- public ------------------------------------------------------------

    def size_of(self, obj: Any) -> int:
        hint = getattr(type(obj), "_obi_size_hint", None)
        if hint is not None:
            return int(hint)
        size = self.header_bytes
        for name, value in vars(obj).items():
            if name.startswith("_obi_"):
                continue
            size += self.slot_bytes  # the field slot itself
            size += self._value_size(value)
        return size

    def proxy_size(self) -> int:
        """Accounted size of one swap-cluster-proxy (4 internal slots)."""
        return self.header_bytes + 4 * self.slot_bytes

    def replacement_size(self, outbound_count: int) -> int:
        """Accounted size of a replacement-object: an array of references."""
        return self.container_header_bytes + outbound_count * self.slot_bytes

    # -- internals -----------------------------------------------------------

    def _value_size(self, value: Any) -> int:
        if value is None or isinstance(value, bool):
            return 0
        if isinstance(value, int):
            return 8
        if isinstance(value, float):
            return 8
        if isinstance(value, str):
            return len(value.encode("utf-8"))
        if isinstance(value, (bytes, bytearray)):
            return len(value)
        if isinstance(value, (list, tuple, set, frozenset)):
            size = self.container_header_bytes
            for item in value:
                size += self.slot_bytes + self._payload_or_slot(item)
            return size
        if isinstance(value, dict):
            size = self.container_header_bytes
            for key, item in value.items():
                size += 2 * self.slot_bytes
                size += self._payload_or_slot(key)
                size += self._payload_or_slot(item)
            return size
        # references to managed objects / proxies: the slot was already
        # charged; the pointee is accounted on its own.
        return 0

    def _payload_or_slot(self, value: Any) -> int:
        if _is_reference(value):
            return 0
        return self._value_size(value)


def _is_reference(value: Any) -> bool:
    return getattr(type(value), "_obi_managed", False) or getattr(
        type(value), "_obi_is_proxy", False
    )


#: Shared default instance; spaces take a model so tests can substitute.
DEFAULT_SIZE_MODEL = SizeModel()


def graph_footprint(objects: Dict[int, Any], model: SizeModel | None = None) -> Tuple[int, int]:
    """Return (object_count, total_accounted_bytes) for an oid->obj map."""
    model = model or DEFAULT_SIZE_MODEL
    total = sum(model.size_of(obj) for obj in objects.values())
    return len(objects), total
