"""Byte-accounted heap model with watermarks.

Models the constrained device heap: a fixed capacity, per-allocation
accounting keyed by oid, and high/low watermarks that drive the
context-management module's memory-pressure events ("the memory occupied
by the object graphs of applications reaches a threshold value, possibly
near the limit of the memory capacity of the device" — paper, Section 3).

The heap itself is policy-free: it *reports* pressure through callbacks;
deciding to swap is the policy engine's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import HeapExhaustedError

PressureCallback = Callable[["Heap", int], None]


@dataclass(frozen=True)
class HeapStats:
    capacity: int
    used: int
    allocations: int
    peak_used: int

    @property
    def ratio(self) -> float:
        return self.used / self.capacity if self.capacity else 0.0

    @property
    def free(self) -> int:
        return self.capacity - self.used


class Heap:
    """Fixed-capacity accounted heap.

    ``allocate`` raises :class:`HeapExhaustedError` when the allocation
    does not fit; before failing it gives each registered
    ``on_exhausted`` callback one chance to free memory (the swap path).
    Watermark crossings invoke ``on_high`` / ``on_low`` callbacks.
    """

    def __init__(
        self,
        capacity: int,
        high_watermark: float = 0.85,
        low_watermark: float = 0.60,
    ) -> None:
        if capacity <= 0:
            raise ValueError("heap capacity must be positive")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 < low <= high <= 1")
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._sizes: Dict[int, int] = {}
        self._used = 0
        self._peak = 0
        self._allocations = 0
        self._above_high = False
        self._on_high: List[PressureCallback] = []
        self._on_low: List[PressureCallback] = []
        self._on_exhausted: List[PressureCallback] = []

    # -- callbacks -----------------------------------------------------------

    def on_high(self, callback: PressureCallback) -> None:
        self._on_high.append(callback)

    def on_low(self, callback: PressureCallback) -> None:
        self._on_low.append(callback)

    def on_exhausted(self, callback: PressureCallback) -> None:
        self._on_exhausted.append(callback)

    # -- accounting ----------------------------------------------------------

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    @property
    def ratio(self) -> float:
        return self._used / self.capacity

    def holds(self, oid: int) -> bool:
        return oid in self._sizes

    def size_of(self, oid: int) -> int:
        return self._sizes[oid]

    def stats(self) -> HeapStats:
        return HeapStats(
            capacity=self.capacity,
            used=self._used,
            allocations=self._allocations,
            peak_used=self._peak,
        )

    def allocate(self, oid: int, size: int) -> None:
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if oid in self._sizes:
            raise KeyError(f"oid {oid} already allocated")
        if self._used + size > self.capacity:
            for callback in self._on_exhausted:
                callback(self, size)
            if self._used + size > self.capacity:
                raise HeapExhaustedError(
                    f"need {size} bytes, {self.free} free of {self.capacity}"
                )
        self._sizes[oid] = size
        self._used += size
        self._allocations += 1
        self._peak = max(self._peak, self._used)
        self._check_watermarks()

    def free_oid(self, oid: int) -> int:
        size = self._sizes.pop(oid)
        self._used -= size
        self._check_watermarks()
        return size

    def resize(self, oid: int, new_size: int) -> None:
        """Adjust an existing allocation (object grew or shrank)."""
        old = self._sizes[oid]
        delta = new_size - old
        if delta > 0 and self._used + delta > self.capacity:
            for callback in self._on_exhausted:
                callback(self, delta)
            if self._used + delta > self.capacity:
                raise HeapExhaustedError(
                    f"resize needs {delta} more bytes, {self.free} free"
                )
        self._sizes[oid] = new_size
        self._used += delta
        self._peak = max(self._peak, self._used)
        self._check_watermarks()

    def would_fit(self, size: int) -> bool:
        return self._used + size <= self.capacity

    def bytes_over_low_watermark(self) -> int:
        """How many bytes must be freed to get back under the low mark."""
        target = int(self.low_watermark * self.capacity)
        return max(0, self._used - target)

    # -- internals ------------------------------------------------------------

    def _check_watermarks(self) -> None:
        ratio = self.ratio
        if not self._above_high and ratio >= self.high_watermark:
            self._above_high = True
            for callback in self._on_high:
                callback(self, 0)
        elif self._above_high and ratio <= self.low_watermark:
            self._above_high = False
            for callback in self._on_low:
                callback(self, 0)
