"""Clocks: wall-clock timing for benchmarks, simulated time for transports.

The communication substrate charges transfer delays against a
:class:`SimulatedClock` so experiments about swap-cycle latency over a
700 Kbps Bluetooth-class link are deterministic and do not actually sleep.
Benchmarks that measure real CPU overhead (Figure 5) use
:class:`WallClock` / ``time.perf_counter`` directly.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Minimal clock interface used throughout the library."""

    def now(self) -> float:
        """Current time in seconds (monotonic within one clock)."""
        ...

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of elapsed time to the clock."""
        ...


class SimulatedClock:
    """A logical clock advanced explicitly by the simulation."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds


class WallClock:
    """Real monotonic time; ``advance`` sleeps (rarely wanted in tests)."""

    def now(self) -> float:
        return time.perf_counter()

    def advance(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class Stopwatch:
    """Tiny helper for measuring elapsed intervals on any clock."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock: Clock = clock if clock is not None else WallClock()
        self._start = self._clock.now()

    def restart(self) -> None:
        self._start = self._clock.now()

    def elapsed(self) -> float:
        return self._clock.now() - self._start

    def elapsed_ms(self) -> float:
        return self.elapsed() * 1000.0
