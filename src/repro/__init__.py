"""Object-Swapping for Resource-Constrained Devices — full reproduction.

Reproduces L. Veiga & P. Ferreira, *Object-Swapping for Resource-
Constrained Devices* (ICDCS 2007): the OBIWAN middleware's transparent
object-swapping mechanism, built entirely in user-level Python.

Quickstart::

    from repro import managed, Space, SwapClusterUtils
    from repro.devices import XmlStoreDevice

    @managed
    class Node:
        def __init__(self, value):
            self.value = value
            self.next = None
        def get_next(self):
            return self.next

    space = Space("pda", heap_capacity=256 * 1024)
    space.manager.add_store(XmlStoreDevice("nearby-pc", capacity=1 << 20))

    head = Node(0)
    node = head
    for i in range(1, 100):
        node.next = Node(i)
        node = node.next

    handle = space.ingest(head, cluster_size=20, root_name="head")
    space.swap_out(space.sid_of(handle))     # ship a cluster away as XML
    assert handle.get_next().value == 1      # transparently reloaded

Public surface: :func:`managed` (class decorator), :class:`Space`,
:class:`SwapClusterUtils` (``assign`` iteration optimisation),
:mod:`repro.devices` (nearby XML stores), :mod:`repro.policy`
(declarative swap policies), :mod:`repro.replication` (incremental
replication), :mod:`repro.bench` (the paper's Figure 5 harness).
"""

from repro.runtime.obicomp import managed
from repro.core.space import Space
from repro.core.utils import SwapClusterUtils
from repro.core.manager import SwappingManager
from repro.core.archive import SwapArchive
from repro.core.hibernate import hibernate, restore
from repro.core.swap_cluster import SwapCluster, SwapClusterState
from repro.core.replacement import ReplacementObject, SwapLocation
from repro.events import EventBus
from repro.errors import (
    AllStoresUnreachableError,
    CodecError,
    HeapExhaustedError,
    IntegrityError,
    NoSwapDeviceError,
    NotManagedError,
    ObiError,
    RetryExhaustedError,
    SwapError,
    SwapStoreUnavailableError,
)

__version__ = "1.0.0"

__all__ = [
    "managed",
    "Space",
    "SwapClusterUtils",
    "SwappingManager",
    "SwapArchive",
    "hibernate",
    "restore",
    "SwapCluster",
    "SwapClusterState",
    "ReplacementObject",
    "SwapLocation",
    "EventBus",
    "ObiError",
    "SwapError",
    "SwapStoreUnavailableError",
    "AllStoresUnreachableError",
    "RetryExhaustedError",
    "NoSwapDeviceError",
    "NotManagedError",
    "IntegrityError",
    "CodecError",
    "HeapExhaustedError",
    "__version__",
]
