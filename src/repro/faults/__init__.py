"""Deterministic fault injection for the swap pipeline.

The paper's deployment model is hostile by construction: swapped
clusters live on *nearby, dumb, unreliable* devices reached over a
Bluetooth-class radio — devices that leave the room mid-transfer, links
that drop, stores that return garbage.  This package makes that
hostility reproducible.  A :class:`FaultPlan` is a seeded description of
*how often* and *how badly* things fail; a :class:`FaultInjector` turns
the plan into a deterministic decision stream; :class:`FlakyStore` and
:class:`FlakyLink` wrap any conforming :class:`~repro.core.interfaces.
SwapStore` / :class:`~repro.comm.transport.Link` and consult the
injector on every operation.

Everything is replayable: the same plan (seed included) over the same
operation sequence injects the same faults, and all injected latency is
charged to the simulated clock — nothing here sleeps or reads wall
time.
"""

from repro.faults.plan import FaultPlan, FaultInjector, FaultStats, mangle_payload
from repro.faults.flaky import FlakyLink, FlakyStore
from repro.faults.churn import (
    CELL_ACTIONS,
    CHURN_ACTIONS,
    ChurnEvent,
    ChurnInjector,
    ChurnPlan,
)
from repro.faults.scenarios import SCENARIOS, ScenarioPhase, ScenarioSpec

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "FlakyLink",
    "FlakyStore",
    "CELL_ACTIONS",
    "CHURN_ACTIONS",
    "ChurnEvent",
    "ChurnInjector",
    "ChurnPlan",
    "SCENARIOS",
    "ScenarioPhase",
    "ScenarioSpec",
    "mangle_payload",
]
