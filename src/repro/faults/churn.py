"""Store churn schedules: scripted deaths, revivals and bitrot.

A :class:`FaultPlan` describes *random* per-operation misbehavior; a
:class:`ChurnPlan` scripts the *macro* events of a hostile neighborhood
— this store dies at t=40s, that one comes back at t=90s, a third rots
a payload at rest in between.  The :class:`ChurnInjector` replays the
schedule against a set of :class:`~repro.faults.flaky.FlakyStore`
wrappers as simulated time passes, which is what the churn chaos suite
and the durability benchmark drive their kill/heal phases with.

Like everything in this package the schedule is pure data and fully
deterministic: the same plan over the same clock fires the same events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.clock import Clock
from repro.faults.flaky import FlakyStore

#: Actions a churn event may take against its target store.
CHURN_ACTIONS = (
    "kill",
    "revive",
    "corrupt",
    "brownout",
    "recover",
    "partition",
    "heal",
)

#: Cell-level actions; the event's ``cell`` names a ``placement_group``
#: and the action fans out to every store in it (``device_id`` ignored;
#: pass ``""``).
CELL_ACTIONS = ("kill_cell", "partition_cell", "heal_cell")


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted thing that happens to one store at one instant."""

    at_s: float
    device_id: str
    action: str
    #: ``kill`` only — also wipe the inner store (device lost, not rebooted).
    lose_data: bool = False
    #: ``corrupt`` only — which key to rot (lowest key when ``None``).
    key: Optional[str] = None
    #: ``brownout`` only — how degraded the window is: latency is
    #: multiplied, bandwidth divided, and the admitted capacity scaled
    #: (see :meth:`~repro.faults.flaky.FlakyStore.set_brownout`).  The
    #: window ends at the matching ``recover`` event.
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    capacity_factor: float = 1.0
    #: Cell actions only — the ``placement_group`` the action fans out
    #: to (``kill_cell`` / ``partition_cell`` / ``heal_cell``).
    cell: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action in CELL_ACTIONS:
            if not self.cell:
                raise ValueError(
                    f"cell action {self.action!r} needs a target cell"
                )
        elif self.action not in CHURN_ACTIONS:
            raise ValueError(
                f"unknown churn action {self.action!r}; "
                f"expected one of {CHURN_ACTIONS + CELL_ACTIONS}"
            )
        if self.at_s < 0:
            raise ValueError(f"churn event at negative time {self.at_s!r}")
        if self.latency_factor <= 0 or self.bandwidth_factor <= 0:
            raise ValueError("brownout factors must be positive")
        if not 0 < self.capacity_factor <= 1:
            raise ValueError("capacity factor must be in (0, 1]")


@dataclass(frozen=True)
class ChurnPlan:
    """An ordered churn schedule (events need not be given sorted)."""

    events: Tuple[ChurnEvent, ...] = ()

    def ordered(self) -> List[ChurnEvent]:
        return sorted(self.events, key=lambda event: (event.at_s, event.device_id))

    @property
    def is_empty(self) -> bool:
        return not self.events


class ChurnInjector:
    """Replays a :class:`ChurnPlan` against live stores as time passes.

    Call :meth:`apply` after advancing the simulated clock (typically
    once per workload cycle); every not-yet-fired event whose time has
    come is executed, in schedule order.  Events naming an unknown
    device are skipped but still consumed.
    """

    def __init__(self, plan: ChurnPlan, clock: Clock) -> None:
        self.plan = plan
        self.clock = clock
        self._pending: List[ChurnEvent] = plan.ordered()
        self.fired: List[ChurnEvent] = []

    def apply(self, stores: Dict[str, FlakyStore]) -> List[ChurnEvent]:
        """Fire every due event; returns the events fired this call."""
        now = self.clock.now()
        fired_now: List[ChurnEvent] = []
        while self._pending and self._pending[0].at_s <= now:
            event = self._pending.pop(0)
            if event.action in CELL_ACTIONS:
                for store in self._cell_stores(event.cell, stores):
                    self._fire_cell(event, store)
            else:
                store = stores.get(event.device_id)
                if store is not None:
                    self._fire(event, store)
            fired_now.append(event)
            self.fired.append(event)
        return fired_now

    @staticmethod
    def _cell_stores(
        cell: Optional[str], stores: Dict[str, FlakyStore]
    ) -> List[FlakyStore]:
        """Every store whose placement group is ``cell``, stable order."""
        from repro.resilience.placement import placement_group_of

        return [
            store
            for _, store in sorted(stores.items())
            if placement_group_of(store) == cell
        ]

    @property
    def exhausted(self) -> bool:
        return not self._pending

    def _fire(self, event: ChurnEvent, store: FlakyStore) -> None:
        if event.action == "kill":
            store.kill(lose_data=event.lose_data)
        elif event.action == "revive":
            store.revive()
        elif event.action == "corrupt":
            store.corrupt_at_rest(event.key)
        elif event.action == "brownout":
            store.set_brownout(
                latency_factor=event.latency_factor,
                bandwidth_factor=event.bandwidth_factor,
                capacity_factor=event.capacity_factor,
            )
        elif event.action == "recover":
            store.clear_brownout()
        elif event.action == "partition":
            store.partition()
        elif event.action == "heal":
            store.heal()

    @staticmethod
    def _fire_cell(event: ChurnEvent, store: FlakyStore) -> None:
        if event.action == "kill_cell":
            store.kill(lose_data=event.lose_data)
        elif event.action == "partition_cell":
            store.partition()
        elif event.action == "heal_cell":
            # heal both failure modes: a cell comes back as a unit
            store.heal()
            if store.is_dead:
                store.revive()
