"""Pressure and brownout scenarios: scripted bad days for a swapping space.

A :class:`ScenarioSpec` is pure data — world sizing, a phase script for
the workload driver, a :class:`~repro.faults.churn.ChurnPlan` for the
neighborhood, and the responsiveness SLO the run is scored against
(p95 fault-stall seconds, zero foreground OOM kills).  The library
covers the situations the degrade ladder (:mod:`repro.core.degrade`)
exists for:

* **app-switch storm** — focus hops across tasks faster than the heap
  can hold them; every hop faults the next task's working set in;
* **memory spike** — a foreground allocation burst lands on an already
  tight heap with the store fleet nearly full;
* **flash crowd** — new tasks keep arriving while the existing ones are
  still being served;
* **long idle, then burst** — the space cools down completely, the
  neighborhood browns out meanwhile, then everything is touched at once;
* **store-fleet brownout** — every nearby store stays reachable but
  crawls (latency up, bandwidth down, capacity squeezed) for a long
  window in the middle of a busy period.

The specs are interpreted by :mod:`repro.bench.scenarios`, which runs
each one twice — degrade ladder enabled vs. disabled — and scores both
against the SLO.  Everything here is deterministic: phases are fixed
scripts, churn is a fixed schedule, and the only randomness (payload
content, touch jitter) comes from the harness's seeded generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.faults.churn import ChurnEvent, ChurnPlan

#: Store naming shared between spec builders and the harness.
def device_name(index: int) -> str:
    return f"store-{index}"


#: Touch patterns the workload driver understands.
TOUCH_PATTERNS = ("uniform", "foreground", "sweep")


@dataclass(frozen=True)
class ScenarioPhase:
    """One stretch of scripted workload behavior."""

    name: str
    #: Workload steps in this phase; each step advances the simulated
    #: clock by ``step_s`` and then performs ``touches_per_step``
    #: accesses following ``pattern``.
    steps: int
    step_s: float = 1.0
    touches_per_step: int = 0
    #: ``uniform`` round-robins all tasks; ``foreground`` concentrates
    #: on the foreground task with occasional background touches;
    #: ``sweep`` moves a focus window across tasks (app switching).
    pattern: str = "uniform"
    #: Objects in a transient foreground allocation made at phase start
    #: (0 = none).  The spike is dropped (and the space GC'd) at phase
    #: end when ``release_spike`` holds.
    spike_objects: int = 0
    release_spike: bool = True
    #: New background tasks ingested per step (flash crowd), each with
    #: ``arrival_objects`` objects.
    arrivals_per_step: int = 0
    arrival_objects: int = 0

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ValueError("steps must be non-negative")
        if self.step_s < 0:
            raise ValueError("step_s must be non-negative")
        if self.pattern not in TOUCH_PATTERNS:
            raise ValueError(
                f"unknown touch pattern {self.pattern!r}; "
                f"expected one of {TOUCH_PATTERNS}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete scenario: world sizing + phase script + churn + SLO."""

    name: str
    description: str
    phases: Tuple[ScenarioPhase, ...]
    churn: ChurnPlan = field(default_factory=ChurnPlan)
    #: Independent tasks (one swap-cluster each).  Task 0 is foreground;
    #: the last quarter are idle; the rest background.
    tasks: int = 8
    objects_per_task: int = 32
    #: Payload bytes per object (compressible text; the harness salts it
    #: with seeded noise so zlib sees realistic entropy).
    payload_bytes: int = 256
    heap_capacity: int = 96 << 10
    store_capacity: int = 256 << 10
    store_count: int = 4
    #: Fast-path payload-cache budget; kept below one cluster payload so
    #: the cache cannot mask link costs.
    cache_budget_bytes: int = 4 << 10
    #: The responsiveness SLO: p95 fault-stall seconds the run must stay
    #: within (plus zero foreground OOM kills).
    slo_p95_stall_s: float = 2.0

    def phase_named(self, name: str) -> ScenarioPhase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"scenario {self.name!r} has no phase {name!r}")


def app_switch_storm() -> ScenarioSpec:
    """Focus hops across more tasks than the heap can hold."""
    return ScenarioSpec(
        name="app_switch_storm",
        description=(
            "rapid app switching: the focus sweeps across 8 tasks while "
            "the heap holds only a few working sets at a time"
        ),
        phases=(
            ScenarioPhase("warmup", steps=8, touches_per_step=8,
                          pattern="uniform"),
            ScenarioPhase("storm", steps=48, step_s=0.5, touches_per_step=6,
                          pattern="sweep"),
            ScenarioPhase("settle", steps=8, step_s=2.0, touches_per_step=2,
                          pattern="foreground"),
        ),
        heap_capacity=64 << 10,
        slo_p95_stall_s=2.0,
    )


def memory_spike() -> ScenarioSpec:
    """A foreground allocation burst on a tight heap and a full fleet."""
    return ScenarioSpec(
        name="memory_spike",
        description=(
            "a foreground burst allocates roughly a third of the heap "
            "while the stores are too full to take the victims"
        ),
        phases=(
            ScenarioPhase("warmup", steps=8, touches_per_step=8,
                          pattern="uniform"),
            ScenarioPhase("spike", steps=12, step_s=0.5, touches_per_step=4,
                          pattern="foreground", spike_objects=72),
            ScenarioPhase("recover", steps=10, step_s=2.0, touches_per_step=4,
                          pattern="uniform"),
        ),
        tasks=8,
        objects_per_task=32,
        heap_capacity=64 << 10,
        # the fleet is deliberately tiny: the warmup working set nearly
        # fills it, so spike-time victims have nowhere to go
        store_capacity=24 << 10,
        slo_p95_stall_s=2.0,
    )


def flash_crowd() -> ScenarioSpec:
    """New tasks keep arriving while existing ones are being served."""
    return ScenarioSpec(
        name="flash_crowd",
        description=(
            "a flash crowd: two new background tasks arrive every step "
            "while the original eight stay active"
        ),
        phases=(
            ScenarioPhase("warmup", steps=6, touches_per_step=8,
                          pattern="uniform"),
            ScenarioPhase("crowd", steps=16, step_s=0.5, touches_per_step=6,
                          pattern="uniform", arrivals_per_step=1,
                          arrival_objects=16),
            ScenarioPhase("drain", steps=8, step_s=2.0, touches_per_step=4,
                          pattern="foreground"),
        ),
        heap_capacity=96 << 10,
        slo_p95_stall_s=2.5,
    )


def long_idle_then_burst() -> ScenarioSpec:
    """Everything cools down, the fleet browns out, then a burst hits."""
    events = []
    for index in range(4):
        events.append(
            ChurnEvent(
                at_s=30.0,
                device_id=device_name(index),
                action="brownout",
                latency_factor=20.0,
                bandwidth_factor=0.1,
            )
        )
        events.append(
            ChurnEvent(at_s=150.0, device_id=device_name(index),
                       action="recover")
        )
    return ScenarioSpec(
        name="long_idle_then_burst",
        description=(
            "a long idle stretch during which the fleet browns out, then "
            "every task is touched at once over the degraded links"
        ),
        phases=(
            ScenarioPhase("warmup", steps=8, touches_per_step=8,
                          pattern="uniform"),
            ScenarioPhase("idle", steps=20, step_s=4.0, touches_per_step=0),
            ScenarioPhase("burst", steps=24, step_s=0.5, touches_per_step=8,
                          pattern="uniform"),
        ),
        churn=ChurnPlan(events=tuple(events)),
        heap_capacity=64 << 10,
        slo_p95_stall_s=3.0,
    )


def store_fleet_brownout() -> ScenarioSpec:
    """Every store stays reachable but crawls from early on.

    The brownout never lifts inside the scripted window — stall time is
    charged to the simulated clock, so a time-based recovery would fire
    after a *different* number of workload steps in the slow (baseline)
    run than in the fast (ladder) run, making the two incomparable.
    Rung reversibility is exercised by the other scenarios and by the
    degrade-ladder unit tests.
    """
    events = []
    for index in range(4):
        events.append(
            ChurnEvent(
                at_s=20.0,
                device_id=device_name(index),
                action="brownout",
                latency_factor=30.0,
                bandwidth_factor=0.05,
                capacity_factor=0.8,
            )
        )
    return ScenarioSpec(
        name="store_fleet_brownout",
        description=(
            "the whole fleet browns out mid-run: links 30x slower, "
            "capacity squeezed, while the workload keeps switching tasks"
        ),
        phases=(
            ScenarioPhase("warmup", steps=12, touches_per_step=8,
                          pattern="uniform"),
            ScenarioPhase("brownout", steps=40, step_s=1.5,
                          touches_per_step=4, pattern="sweep"),
        ),
        churn=ChurnPlan(events=tuple(events)),
        heap_capacity=64 << 10,
        slo_p95_stall_s=2.0,
    )


def noisy_neighbor() -> ScenarioSpec:
    """A neighbor tenant's burst squeezes the shared store fleet.

    The single-space rendition of the multi-tenant aggressor
    (:mod:`repro.bench.tenancy` runs the real two-tenant version over
    one shared fleet): mid-run, an unseen neighbor's traffic takes
    half of every store's capacity and most of the shared link
    bandwidth, while the local workload keeps serving its foreground
    task and absorbing a trickle of arrivals.  The squeeze lifts near
    the end — the neighbor's burst drains — and the space must come
    back without manual help.
    """
    # scripted window: 8s warmup + 18s squeeze + 16s drain = 42s; the
    # burst lands early in the squeeze and lifts mid-drain, so recovery
    # happens on-script rather than being left to the epilogue
    events = []
    for index in range(4):
        events.append(
            ChurnEvent(
                at_s=10.0,
                device_id=device_name(index),
                action="brownout",
                latency_factor=8.0,
                bandwidth_factor=0.25,
                capacity_factor=0.5,
            )
        )
        events.append(
            ChurnEvent(at_s=34.0, device_id=device_name(index),
                       action="recover")
        )
    return ScenarioSpec(
        name="noisy_neighbor",
        description=(
            "a neighbor's burst takes half of every shared store and "
            "most of the link while the local foreground stays active"
        ),
        phases=(
            ScenarioPhase("warmup", steps=8, touches_per_step=8,
                          pattern="uniform"),
            ScenarioPhase("squeeze", steps=36, step_s=0.5,
                          touches_per_step=6, pattern="foreground",
                          arrivals_per_step=1, arrival_objects=8),
            ScenarioPhase("drain", steps=8, step_s=2.0, touches_per_step=4,
                          pattern="uniform"),
        ),
        churn=ChurnPlan(events=tuple(events)),
        heap_capacity=64 << 10,
        slo_p95_stall_s=2.5,
    )


#: Registry the harness and the CLI iterate over, in run order.
SCENARIOS: Dict[str, object] = {
    "app_switch_storm": app_switch_storm,
    "memory_spike": memory_spike,
    "flash_crowd": flash_crowd,
    "long_idle_then_burst": long_idle_then_burst,
    "store_fleet_brownout": store_fleet_brownout,
    "noisy_neighbor": noisy_neighbor,
}
