"""Protocol-conforming flaky wrappers around stores and links.

Both wrappers delegate to an inner implementation and consult a shared
:class:`~repro.faults.plan.FaultInjector` before (and sometimes after)
every operation.  They raise the same exception types the real devices
raise — :class:`~repro.errors.TransportError` for anything reachability-
shaped — so the swap pipeline cannot tell injected faults from real
ones.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import TransportError
from repro.faults.plan import FaultInjector


class FlakyLink:
    """A :class:`~repro.comm.transport.Link` that fails on schedule."""

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def transfer(self, nbytes: int) -> float:
        injector = self._injector
        if injector.in_down_window():
            injector.stats.window_denials += 1
            raise TransportError("injected: link in down window")
        spike = injector.charge_latency()
        if injector.roll(injector.plan.link_failure_rate):
            injector.stats.link_faults += 1
            raise TransportError("injected: transient link failure")
        return spike + self._inner.transfer(nbytes)

    def transfer_batch(self, sizes: Any) -> float:
        # defined explicitly (not via __getattr__) so batched transfers
        # face the same injected faults as single ones
        injector = self._injector
        if injector.in_down_window():
            injector.stats.window_denials += 1
            raise TransportError("injected: link in down window")
        spike = injector.charge_latency()
        if injector.roll(injector.plan.link_failure_rate):
            injector.stats.link_faults += 1
            raise TransportError("injected: transient link failure")
        return spike + self._inner.transfer_batch(sizes)

    @property
    def is_up(self) -> bool:
        if self._injector.in_down_window():
            return False
        return self._inner.is_up

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FlakyStore:
    """A :class:`~repro.core.interfaces.SwapStore` that fails on schedule.

    Fault kinds (all drawn from the shared injector's seeded stream):

    * down windows — every operation raises ``TransportError``;
    * transient operation failures (``store``/``fetch``/``drop``/
      ``has_room``), each with its own rate;
    * mid-payload interruption — a *truncated* document lands on the
      inner store, then the transfer errors (exercises the digest check
      and the write-ahead journal);
    * corrupted responses — ``fetch`` returns mangled text;
    * latency spikes — extra seconds charged to the simulated clock.
    """

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    # -- SwapStore protocol ------------------------------------------------

    @property
    def device_id(self) -> str:
        return self._inner.device_id

    def store(self, key: str, xml_text: str) -> None:
        injector = self._injector
        self._gate()
        injector.charge_latency()
        if injector.roll(injector.plan.interruption_rate):
            injector.stats.interruptions += 1
            # half the payload lands before the peer walks out of range
            self._inner.store(key, xml_text[: max(1, len(xml_text) // 2)])
            raise TransportError(
                f"injected: transfer to {self.device_id} interrupted mid-payload"
            )
        if injector.roll(injector.plan.store_failure_rate):
            injector.stats.store_faults += 1
            raise TransportError(f"injected: store to {self.device_id} failed")
        self._inner.store(key, xml_text)

    def fetch(self, key: str) -> str:
        injector = self._injector
        self._gate()
        injector.charge_latency()
        if injector.roll(injector.plan.fetch_failure_rate):
            injector.stats.fetch_faults += 1
            raise TransportError(f"injected: fetch from {self.device_id} failed")
        text = self._inner.fetch(key)
        if injector.roll(injector.plan.corruption_rate):
            return injector.corrupt(text)
        return text

    def drop(self, key: str) -> None:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.drop_failure_rate):
            injector.stats.drop_faults += 1
            raise TransportError(f"injected: drop on {self.device_id} failed")
        self._inner.drop(key)

    def has_room(self, nbytes: int) -> bool:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.probe_failure_rate):
            injector.stats.probe_faults += 1
            raise TransportError(f"injected: {self.device_id} probe failed")
        return self._inner.has_room(nbytes)

    def store_stream(self, key: str, frames: Any, compression: Any = None) -> None:
        # same fault surface as store(): down window, mid-payload
        # interruption (a truncated batch lands), transient failure
        injector = self._injector
        self._gate()
        injector.charge_latency()
        frame_list = [bytes(frame) for frame in frames]
        if injector.roll(injector.plan.interruption_rate):
            injector.stats.interruptions += 1
            truncated = frame_list[: max(1, len(frame_list) // 2)]
            try:
                self._inner.store_stream(key, truncated, compression)
            except Exception:
                pass  # the partial batch may itself be undecodable
            raise TransportError(
                f"injected: transfer to {self.device_id} interrupted mid-batch"
            )
        if injector.roll(injector.plan.store_failure_rate):
            injector.stats.store_faults += 1
            raise TransportError(f"injected: store to {self.device_id} failed")
        self._inner.store_stream(key, frame_list, compression)

    def contains(self, key: str) -> bool:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.probe_failure_rate):
            injector.stats.probe_faults += 1
            raise TransportError(f"injected: {self.device_id} probe failed")
        return self._inner.contains(key)

    # -- extras ------------------------------------------------------------

    def keys(self) -> List[str]:
        return self._inner.keys()

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def _gate(self) -> None:
        if self._injector.in_down_window():
            self._injector.stats.window_denials += 1
            raise TransportError(
                f"injected: {self.device_id} unreachable (down window)"
            )
