"""Protocol-conforming flaky wrappers around stores and links.

Both wrappers delegate to an inner implementation and consult a shared
:class:`~repro.faults.plan.FaultInjector` before (and sometimes after)
every operation.  They raise the same exception types the real devices
raise — :class:`~repro.errors.TransportError` for anything reachability-
shaped — so the swap pipeline cannot tell injected faults from real
ones.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import CodecNegotiationError, StoreFullError, TransportError
from repro.faults.plan import FaultInjector, mangle_payload


def mangle_frames(data: bytes) -> bytes:
    """The binary-codec bitrot: flip bytes mid-payload.

    Mirrors :func:`~repro.faults.plan.mangle_payload` for framed wire
    payloads — the result is still bytes, never the original canonical
    digest, so the decode-side digest check must catch it.
    """
    if not data:
        return b"\x00rot"
    middle = len(data) // 2
    return data[:middle] + bytes([data[middle] ^ 0xFF]) + data[middle + 1 :]


class FlakyLink:
    """A :class:`~repro.comm.transport.Link` that fails on schedule."""

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def transfer(self, nbytes: int) -> float:
        injector = self._injector
        if injector.in_down_window():
            injector.stats.window_denials += 1
            raise TransportError("injected: link in down window")
        spike = injector.charge_latency()
        if injector.roll(injector.plan.link_failure_rate):
            injector.stats.link_faults += 1
            raise TransportError("injected: transient link failure")
        return spike + self._inner.transfer(nbytes)

    def transfer_batch(self, sizes: Any) -> float:
        # defined explicitly (not via __getattr__) so batched transfers
        # face the same injected faults as single ones
        injector = self._injector
        if injector.in_down_window():
            injector.stats.window_denials += 1
            raise TransportError("injected: link in down window")
        spike = injector.charge_latency()
        if injector.roll(injector.plan.link_failure_rate):
            injector.stats.link_faults += 1
            raise TransportError("injected: transient link failure")
        return spike + self._inner.transfer_batch(sizes)

    @property
    def is_up(self) -> bool:
        if self._injector.in_down_window():
            return False
        return self._inner.is_up

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FlakyStore:
    """A :class:`~repro.core.interfaces.SwapStore` that fails on schedule.

    Fault kinds (all drawn from the shared injector's seeded stream):

    * down windows — every operation raises ``TransportError``;
    * transient operation failures (``store``/``fetch``/``drop``/
      ``has_room``), each with its own rate;
    * mid-payload interruption — a *truncated* document lands on the
      inner store, then the transfer errors (exercises the digest check
      and the write-ahead journal);
    * corrupted responses — ``fetch`` returns mangled text, ``contains``
      lies, digest probes answer with garbage;
    * at-rest corruption — ``store`` acknowledges success but the landed
      copy silently rots (only digest sampling or the next swap-in sees
      it);
    * latency spikes — extra seconds charged to the simulated clock;
    * death — :meth:`kill` makes every operation raise until
      :meth:`revive` (the churn schedule's crash model); killing with
      ``lose_data=True`` also wipes the inner store.
    """

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector
        self._dead = False
        self._partitioned = False
        #: ``(latency_factor, bandwidth_factor, capacity_factor)`` while
        #: browned out, ``None`` otherwise.
        self._brownout: Optional[tuple] = None
        #: Codec-downgrade fault: the store keeps *advertising* the
        #: binary codec (``supported_codecs`` delegates to the inner
        #: store) but rejects binary-framed ships with a
        #: :class:`~repro.errors.CodecNegotiationError` — the sender
        #: must demote it to canonical XML and re-ship transparently.
        self.codec_downgrade = False

    # -- SwapStore protocol ------------------------------------------------

    @property
    def device_id(self) -> str:
        return self._inner.device_id

    def store(self, key: str, xml_text: str) -> None:
        injector = self._injector
        self._gate()
        self._squeeze_gate(len(xml_text.encode("utf-8")))
        injector.charge_latency()
        if injector.roll(injector.plan.interruption_rate):
            injector.stats.interruptions += 1
            # half the payload lands before the peer walks out of range
            self._inner.store(key, xml_text[: max(1, len(xml_text) // 2)])
            raise TransportError(
                f"injected: transfer to {self.device_id} interrupted mid-payload"
            )
        if injector.roll(injector.plan.store_failure_rate):
            injector.stats.store_faults += 1
            raise TransportError(f"injected: store to {self.device_id} failed")
        if injector.roll(injector.plan.at_rest_corruption_rate):
            # the store acknowledges, but the landed copy is already bad
            injector.stats.at_rest_corruptions += 1
            self._inner.store(key, mangle_payload(xml_text))
            return
        self._inner.store(key, xml_text)

    def fetch(self, key: str) -> str:
        injector = self._injector
        self._gate()
        injector.charge_latency()
        if injector.roll(injector.plan.fetch_failure_rate):
            injector.stats.fetch_faults += 1
            raise TransportError(f"injected: fetch from {self.device_id} failed")
        text = self._inner.fetch(key)
        if injector.roll(injector.plan.corruption_rate):
            return injector.corrupt(text)
        return text

    def fetch_wire(self, key: str) -> Any:
        # same fault surface as fetch(): down window, death, transient
        # failure, corrupted response — except the corruption flips raw
        # frame bytes, proving the decode-side canonical-digest check
        # catches damage the XML digest check never sees
        injector = self._injector
        self._gate()
        injector.charge_latency()
        if injector.roll(injector.plan.fetch_failure_rate):
            injector.stats.fetch_faults += 1
            raise TransportError(f"injected: fetch from {self.device_id} failed")
        inner_wire = getattr(self._inner, "fetch_wire", None)
        if inner_wire is not None:
            data, codec = inner_wire(key)
        else:
            data, codec = self._inner.fetch(key).encode("utf-8"), None
        if injector.roll(injector.plan.corruption_rate):
            injector.stats.corruptions += 1
            return mangle_frames(data), codec
        return data, codec

    def drop(self, key: str) -> None:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.drop_failure_rate):
            injector.stats.drop_faults += 1
            raise TransportError(f"injected: drop on {self.device_id} failed")
        self._inner.drop(key)

    def has_room(self, nbytes: int) -> bool:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.probe_failure_rate):
            injector.stats.probe_faults += 1
            raise TransportError(f"injected: {self.device_id} probe failed")
        if self._brownout is not None and self._brownout[2] < 1.0:
            try:
                self._squeeze_gate(nbytes)
            except StoreFullError:
                return False
        return self._inner.has_room(nbytes)

    def _deliver_stream(
        self,
        key: str,
        frame_list: Any,
        compression: Any,
        codec: Any = None,
    ) -> None:
        # a streaming-capable inner store takes the batch as-is; a plain
        # store (InMemoryStore et al.) gets the reassembled document so
        # wrapping never widens the inner store's protocol
        stream = getattr(self._inner, "store_stream", None)
        if stream is not None:
            if codec is not None:
                stream(key, frame_list, compression, codec=codec)
            else:
                stream(key, frame_list, compression)
            return
        from repro.comm.transport import decode_body, decompress_payload
        from repro.errors import CodecError

        data = b"".join(frame_list)
        try:
            if codec == "binary":
                from repro.wire.binary import binary_to_canonical

                text = binary_to_canonical(decode_body(data, compression))[0]
            else:
                text = decompress_payload(data, compression)
        except (TransportError, CodecError):
            # rotted/truncated frames: land the damage as visibly-broken
            # text so digest sampling and swap-in verification catch it
            text = data.decode("utf-8", errors="replace")
        self._inner.store(key, text)

    def store_stream(
        self,
        key: str,
        frames: Any,
        compression: Any = None,
        codec: Any = None,
    ) -> None:
        # same fault surface as store(): down window, mid-payload
        # interruption (a truncated batch lands), transient failure
        injector = self._injector
        self._gate()
        if codec == "binary" and self.codec_downgrade:
            injector.stats.codec_downgrades += 1
            raise CodecNegotiationError(
                f"injected: {self.device_id} refuses wire codec 'binary' "
                f"despite advertising it (downgrade fault)"
            )
        injector.charge_latency()
        frame_list = [bytes(frame) for frame in frames]
        self._squeeze_gate(sum(len(frame) for frame in frame_list))
        if injector.roll(injector.plan.interruption_rate):
            injector.stats.interruptions += 1
            truncated = frame_list[: max(1, len(frame_list) // 2)]
            try:
                self._deliver_stream(key, truncated, compression, codec)
            except Exception:
                pass  # the partial batch may itself be undecodable
            raise TransportError(
                f"injected: transfer to {self.device_id} interrupted mid-batch"
            )
        if injector.roll(injector.plan.store_failure_rate):
            injector.stats.store_faults += 1
            raise TransportError(f"injected: store to {self.device_id} failed")
        if injector.roll(injector.plan.at_rest_corruption_rate) and frame_list:
            injector.stats.at_rest_corruptions += 1
            frame_list = list(frame_list)
            frame_list[-1] = frame_list[-1][: max(0, len(frame_list[-1]) - 4)] + b"\x00rot"
        self._deliver_stream(key, frame_list, compression, codec)

    def store_delta(
        self,
        key: str,
        base_epoch: int,
        frames: Any,
        *,
        base_key: str,
        compression: Any = None,
        codec: Any = None,
    ) -> None:
        # defined explicitly (not via __getattr__) so delta ships face
        # the same gates as full ones: down window, death, mid-batch
        # interruption, transient failure, at-rest rot
        if getattr(self._inner, "store_delta", None) is None:
            raise TransportError(
                f"{self.device_id}: store has no delta support"
            )
        injector = self._injector
        self._gate()
        if codec == "binary" and self.codec_downgrade:
            injector.stats.codec_downgrades += 1
            raise CodecNegotiationError(
                f"injected: {self.device_id} refuses wire codec 'binary' "
                f"despite advertising it (downgrade fault)"
            )
        injector.charge_latency()
        extra = {} if codec is None else {"codec": codec}
        frame_list = [bytes(frame) for frame in frames]
        self._squeeze_gate(sum(len(frame) for frame in frame_list))
        if injector.roll(injector.plan.interruption_rate):
            injector.stats.interruptions += 1
            truncated = frame_list[: max(1, len(frame_list) // 2)]
            try:
                self._inner.store_delta(
                    key,
                    base_epoch,
                    truncated,
                    base_key=base_key,
                    compression=compression,
                    **extra,
                )
            except Exception:
                pass  # the partial batch may itself be undecodable
            raise TransportError(
                f"injected: delta to {self.device_id} interrupted mid-batch"
            )
        if injector.roll(injector.plan.store_failure_rate):
            injector.stats.store_faults += 1
            raise TransportError(f"injected: store to {self.device_id} failed")
        if injector.roll(injector.plan.at_rest_corruption_rate) and frame_list:
            injector.stats.at_rest_corruptions += 1
            frame_list = list(frame_list)
            frame_list[-1] = frame_list[-1][: max(0, len(frame_list[-1]) - 4)] + b"\x00rot"
        self._inner.store_delta(
            key,
            base_epoch,
            frame_list,
            base_key=base_key,
            compression=compression,
            **extra,
        )

    def contains(self, key: str) -> bool:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.probe_failure_rate):
            injector.stats.probe_faults += 1
            raise TransportError(f"injected: {self.device_id} probe failed")
        present = self._inner.contains(key)
        if injector.roll(injector.plan.corruption_rate):
            # a corrupted control response: the probe answer is a lie
            injector.stats.corruptions += 1
            return not present
        return present

    def digest(self, key: str) -> str:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.probe_failure_rate):
            injector.stats.probe_faults += 1
            raise TransportError(f"injected: {self.device_id} probe failed")
        value = self._inner.digest(key)
        if injector.roll(injector.plan.corruption_rate):
            injector.stats.corruptions += 1
            return "corrupt:" + value[:8]
        return value

    # -- extras ------------------------------------------------------------

    def keys(self) -> List[str]:
        injector = self._injector
        self._gate()
        if injector.roll(injector.plan.probe_failure_rate):
            injector.stats.probe_faults += 1
            raise TransportError(
                f"injected: {self.device_id} inventory scan failed"
            )
        return self._inner.keys()

    # -- churn lifecycle ---------------------------------------------------

    @property
    def is_dead(self) -> bool:
        return self._dead

    def kill(self, lose_data: bool = False) -> None:
        """Crash the store: every operation raises until :meth:`revive`.

        ``lose_data=True`` models losing the device itself (flash wiped,
        owner gone for good) rather than a reboot: the inner store's
        inventory is cleared, so a later revive comes back *empty*.
        """
        self._dead = True
        if lose_data:
            dropper = getattr(self._inner, "drop", None)
            lister = getattr(self._inner, "keys", None)
            if dropper is not None and lister is not None:
                for key in list(lister()):
                    dropper(key)

    def revive(self) -> None:
        self._dead = False

    # -- partition ---------------------------------------------------------

    @property
    def is_partitioned(self) -> bool:
        return self._partitioned

    def partition(self) -> None:
        """Cut the store off the network: every operation raises until
        :meth:`heal`.

        Distinct from :meth:`kill` — the device is fine and its data
        intact; the *path* to it is gone (cell network split, gateway
        down).  Healing restores reachability with the inventory exactly
        as it was, so suspect replicas re-verify rather than re-ship.
        """
        self._partitioned = True

    def heal(self) -> None:
        self._partitioned = False

    # -- brownout ----------------------------------------------------------

    def set_brownout(
        self,
        latency_factor: float = 1.0,
        bandwidth_factor: float = 1.0,
        capacity_factor: float = 1.0,
    ) -> None:
        """Degrade the store without killing it.

        Distinct from :meth:`kill`/:meth:`revive` — a browned-out store
        still answers, it just crawls (``latency_factor`` /
        ``bandwidth_factor`` are pushed onto the inner simulated link)
        and may refuse new payloads early (``capacity_factor`` scales
        the capacity it admits writes against; 0.25 = only a quarter of
        the device is usable — flash nearly full, host throttling).
        Reads of existing keys are never refused by the squeeze.
        """
        if latency_factor <= 0 or bandwidth_factor <= 0:
            raise ValueError("brownout factors must be positive")
        if not 0 < capacity_factor <= 1:
            raise ValueError("capacity factor must be in (0, 1]")
        self._brownout = (latency_factor, bandwidth_factor, capacity_factor)
        link = self._simulated_link()
        if link is not None:
            link.brownout(latency_factor, bandwidth_factor)

    def clear_brownout(self) -> None:
        self._brownout = None
        link = self._simulated_link()
        if link is not None:
            link.clear_brownout()

    @property
    def in_brownout(self) -> bool:
        return self._brownout is not None

    def _simulated_link(self) -> Optional[Any]:
        """The innermost link with a ``brownout`` method, if any."""
        link = getattr(self._inner, "_link", None)
        while link is not None and not hasattr(link, "brownout"):
            link = getattr(link, "_inner", None)
        return link

    def _squeeze_gate(self, nbytes: int) -> None:
        """Refuse a write that would exceed the squeezed capacity."""
        if self._brownout is None:
            return
        capacity_factor = self._brownout[2]
        if capacity_factor >= 1.0:
            return
        capacity = getattr(self._inner, "capacity", None)
        used = getattr(self._inner, "used", None)
        if capacity is None or used is None:
            return
        if used + nbytes > capacity * capacity_factor:
            raise StoreFullError(
                f"{self.device_id}: brownout capacity squeeze "
                f"({nbytes} B over {int(capacity * capacity_factor)} B usable)"
            )

    def corrupt_at_rest(self, key: Optional[str] = None) -> Optional[str]:
        """Silently rot one landed payload on the inner store.

        Bypasses the fault gates on purpose — bitrot is not an I/O
        event.  Returns the mangled key (the lowest one when ``key`` is
        not given), or ``None`` if the store is empty.
        """
        candidates = sorted(self._inner.keys())
        if not candidates:
            return None
        target = key if key is not None else candidates[0]
        text = self._inner.fetch(target)
        self._inner.store(target, mangle_payload(text))
        self._injector.stats.at_rest_corruptions += 1
        return target

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def _gate(self) -> None:
        if self._dead:
            self._injector.stats.dead_denials += 1
            raise TransportError(f"injected: {self.device_id} is dead")
        if self._partitioned:
            self._injector.stats.dead_denials += 1
            raise TransportError(
                f"injected: {self.device_id} unreachable (partitioned)"
            )
        if self._injector.in_down_window():
            self._injector.stats.window_denials += 1
            raise TransportError(
                f"injected: {self.device_id} unreachable (down window)"
            )
