"""The fault schedule: a seeded plan and its deterministic decision engine.

A :class:`FaultPlan` is pure data — rates, magnitudes and link-down
windows.  A :class:`FaultInjector` owns the PRNG seeded from the plan
and answers "does this operation fail, and how?".  Decisions are drawn
in operation order, so a single-threaded run over the same workload
replays identically; injected latency is charged to the injector's
:class:`~repro.clock.Clock`, never to wall time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.clock import Clock, SimulatedClock


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of how the neighborhood misbehaves.

    Rates are per-operation probabilities in ``[0, 1]``; window tuples
    are ``(start_s, end_s)`` intervals of *simulated* time during which
    every wrapped link/store is unreachable (a device out of range).
    """

    seed: int = 0
    #: Transient failure probability of ``store()`` (payload never lands).
    store_failure_rate: float = 0.0
    #: Transient failure probability of ``fetch()``.
    fetch_failure_rate: float = 0.0
    #: Transient failure probability of ``drop()``.
    drop_failure_rate: float = 0.0
    #: Transient failure probability of ``has_room()`` admission probes.
    probe_failure_rate: float = 0.0
    #: Probability that a ``fetch()`` returns a corrupted payload
    #: (caught downstream by the digest check).
    corruption_rate: float = 0.0
    #: Probability that a ``store()`` lands a payload that then silently
    #: rots *at rest*: the store acknowledges success, the copy is bad.
    #: Only the scrubber's digest sampling (or the next swap-in) sees it.
    at_rest_corruption_rate: float = 0.0
    #: Probability that a ``store()`` is interrupted mid-payload: a
    #: truncated document lands on the device, then the link errors.
    interruption_rate: float = 0.0
    #: Probability that an operation suffers a latency spike of
    #: ``latency_spike_s`` (charged to the simulated clock).
    latency_spike_rate: float = 0.0
    latency_spike_s: float = 0.25
    #: Transient failure probability of raw ``Link.transfer`` calls.
    link_failure_rate: float = 0.0
    #: Simulated-time windows during which everything is unreachable.
    down_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "store_failure_rate",
            "fetch_failure_rate",
            "drop_failure_rate",
            "probe_failure_rate",
            "corruption_rate",
            "at_rest_corruption_rate",
            "interruption_rate",
            "latency_spike_rate",
            "link_failure_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        for window in self.down_windows:
            if len(window) != 2 or window[0] > window[1]:
                raise ValueError(f"malformed down window {window!r}")

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing (happy-path control runs)."""
        return cls(seed=seed)

    @property
    def is_empty(self) -> bool:
        return (
            self.store_failure_rate == 0.0
            and self.fetch_failure_rate == 0.0
            and self.drop_failure_rate == 0.0
            and self.probe_failure_rate == 0.0
            and self.corruption_rate == 0.0
            and self.at_rest_corruption_rate == 0.0
            and self.interruption_rate == 0.0
            and self.latency_spike_rate == 0.0
            and self.link_failure_rate == 0.0
            and not self.down_windows
        )


@dataclass
class FaultStats:
    """What the injector actually did (one plan may serve many wrappers)."""

    decisions: int = 0
    store_faults: int = 0
    fetch_faults: int = 0
    drop_faults: int = 0
    probe_faults: int = 0
    corruptions: int = 0
    at_rest_corruptions: int = 0
    interruptions: int = 0
    latency_spikes: int = 0
    link_faults: int = 0
    window_denials: int = 0
    dead_denials: int = 0
    codec_downgrades: int = 0
    spike_seconds: float = 0.0

    @property
    def total_faults(self) -> int:
        return (
            self.store_faults
            + self.fetch_faults
            + self.drop_faults
            + self.probe_faults
            + self.corruptions
            + self.at_rest_corruptions
            + self.interruptions
            + self.link_faults
            + self.window_denials
        )


class FaultInjector:
    """Deterministic decision stream for one :class:`FaultPlan`.

    Share one injector across every wrapper in a scenario so the whole
    run draws from a single seeded stream: replaying the scenario with
    the same plan reproduces the same faults at the same operations.
    """

    def __init__(self, plan: FaultPlan, clock: Optional[Clock] = None) -> None:
        self.plan = plan
        self.clock: Clock = clock if clock is not None else SimulatedClock()
        self._rng = random.Random(plan.seed)
        self.stats = FaultStats()

    # -- decisions ---------------------------------------------------------

    def roll(self, rate: float) -> bool:
        """One Bernoulli draw.  Zero-rate draws skip the PRNG so adding
        a fault kind never perturbs the decision stream of plans that do
        not use it."""
        if rate <= 0.0:
            return False
        self.stats.decisions += 1
        return self._rng.random() < rate

    def in_down_window(self) -> bool:
        now = self.clock.now()
        for start, end in self.plan.down_windows:
            if start <= now < end:
                return True
        return False

    def charge_latency(self) -> float:
        """Maybe inject a latency spike; returns the seconds charged."""
        if self.roll(self.plan.latency_spike_rate):
            self.stats.latency_spikes += 1
            self.stats.spike_seconds += self.plan.latency_spike_s
            self.clock.advance(self.plan.latency_spike_s)
            return self.plan.latency_spike_s
        return 0.0

    def corrupt(self, text: str) -> str:
        """Deterministically mangle a payload (digest check will catch it)."""
        self.stats.corruptions += 1
        return mangle_payload(text)


def mangle_payload(text: str) -> str:
    """The canonical bitrot: still text, never the original digest."""
    if len(text) > 8:
        return text[:-8] + "<!--rot-->"
    return text + "<!--rot-->"
