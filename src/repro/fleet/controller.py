"""The replicated fleet control plane.

One :class:`FleetController` fronts a
:class:`~repro.fleet.tenancy.TenantRegistry` with a small, replicated
(**not** distributed — in the AMI ``GraphManager`` sense) decision
log: every policy change request is validated against an explicit
schema, accepted changes are appended to a versioned log mirrored
synchronously onto all live replicas, and :meth:`distribute` delivers
each accepted entry to the registry and to every manager in scope
**exactly once** — a per-``(target, version)`` ledger, mirrored like
the log, survives leader failure, so a new leader resumes delivery
where the dead one stopped without re-applying anything.

Leadership is deterministic: the live replica with the lowest id
leads; every election increments the epoch; requests carrying a stale
epoch are rejected outright.  There is no network and no quorum
protocol here — replication over the simulated clock is synchronous
by construction — but the *observable* contract (epoch fencing,
failover, exactly-once redelivery) is the one a real control plane
would show, and the tests exercise it by killing the leader
mid-distribution.

The controller also owns event subscriptions: a tenant subscribes to
an event *family* (``"swap.*"``, ``"fleet.tenant.*"``) and the
controller fans matching events out with tenant filtering — a tenant
only sees events from its own spaces, plus fleet-wide ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.events import (
    Event,
    EventBus,
    FleetConfigAppliedEvent,
    FleetConfigRejectedEvent,
    FleetLeaderElectedEvent,
)
from repro.fleet.tenancy import FleetError, TenantRegistry

#: Pseudo space name stamped on control-plane events (they concern the
#: fleet, not any one space) and recognized by the tenant filter as
#: visible to every subscriber.
FLEET_SCOPE = "fleet"


def _positive_int(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, int):
        return "must be an integer"
    if value <= 0:
        return "must be positive"
    return None


def _non_negative_int(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, int):
        return "must be an integer"
    if value < 0:
        return "must be >= 0"
    return None


def _unit_fraction(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return "must be a number"
    if not 0.0 <= value <= 1.0:
        return "must be in [0, 1]"
    return None


def _pressure_fraction(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return "must be a number"
    if not 0.0 <= value < 1.0:
        return "must be in [0, 1)"
    return None


def _positive_number(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return "must be a number"
    if value <= 0:
        return "must be positive"
    return None


def _replica_count(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, int):
        return "must be an integer"
    if not 1 <= value <= 8:
        return "must be in [1, 8]"
    return None


#: ``tenant.*`` keys map onto :class:`TenantSpec` fields.
TENANT_KEYS: Dict[str, Tuple[str, Callable[[Any], Optional[str]]]] = {
    "tenant.heap_budget_bytes": ("heap_budget_bytes", _positive_int),
    "tenant.store_quota_bytes": ("store_quota_bytes", _positive_int),
    "tenant.guaranteed_share": ("guaranteed_share", _unit_fraction),
    "tenant.priority_class": ("priority_class", _non_negative_int),
}

#: ``fleet.*`` keys map onto :class:`FleetConfig` fields.
FLEET_KEYS: Dict[str, Tuple[str, Callable[[Any], Optional[str]]]] = {
    "fleet.pressure_free_fraction": (
        "pressure_free_fraction",
        _pressure_fraction,
    ),
}

#: Manager-scoped keys: ``(required feature flag or None, validator)``.
#: Feature-gated keys are rejected when any manager in scope has the
#: feature off (checked via ``SwappingManager.feature_flags()``).
MANAGER_KEYS: Dict[
    str, Tuple[Optional[str], Callable[[Any], Optional[str]]]
] = {
    "degrade.hold_s": ("degrade", _positive_number),
    "degrade.slo_p95_stall_s": ("degrade", _positive_number),
    "manager.replication_factor": (None, _replica_count),
}


@dataclass(frozen=True)
class LogEntry:
    """One accepted, versioned config change."""

    version: int
    #: Epoch of the leader that accepted it.
    epoch: int
    #: Empty string = fleet-wide scope.
    tenant_id: str
    #: Sorted ``(key, value)`` pairs — hashable, order-stable.
    changes: Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class ChangeDecision:
    """What :meth:`FleetController.submit` decided."""

    accepted: bool
    version: Optional[int] = None
    reason: str = ""


@dataclass
class Replica:
    """One control-plane replica: full log plus delivery ledger."""

    replica_id: int
    alive: bool = True
    log: List[LogEntry] = field(default_factory=list)
    #: ``(target name, entry version) -> epoch it was delivered in``.
    delivered: Dict[Tuple[str, int], int] = field(default_factory=dict)


class FleetController:
    """Replicated policy gatekeeper for one tenant registry."""

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        replica_count: int = 3,
        bus: Optional[EventBus] = None,
    ) -> None:
        if replica_count < 1:
            raise FleetError("the control plane needs at least one replica")
        self.registry = registry
        self.replicas = [Replica(i) for i in range(replica_count)]
        self.epoch = 0
        self.leader_id: Optional[int] = None
        #: Control-plane events (elections, accept/reject) land here.
        self.bus = bus if bus is not None else EventBus()
        self._subs: List[Tuple[str, str, Callable[[Event], None]]] = []
        self.accepted = 0
        self.rejected = 0
        self.watch(self.bus)
        self._elect("startup")

    # -- leadership --------------------------------------------------------

    def _alive(self) -> List[Replica]:
        return [replica for replica in self.replicas if replica.alive]

    def leader(self) -> Replica:
        if self.leader_id is None:
            raise FleetError("fleet has no live leader")
        return self.replicas[self.leader_id]

    def _elect(self, reason: str) -> None:
        alive = self._alive()
        if not alive:
            self.leader_id = None
            return
        self.epoch += 1
        self.leader_id = min(replica.replica_id for replica in alive)
        self.bus.emit(
            FleetLeaderElectedEvent(
                space=FLEET_SCOPE,
                replica_id=self.leader_id,
                epoch=self.epoch,
                reason=reason,
            )
        )

    def kill_replica(self, replica_id: int) -> None:
        """Take a replica down; a dead leader triggers a new election."""
        replica = self.replicas[replica_id]
        if not replica.alive:
            return
        replica.alive = False
        if replica_id == self.leader_id:
            self.leader_id = None
            self._elect(f"leader replica {replica_id} died")

    def revive_replica(self, replica_id: int) -> None:
        """Bring a replica back, caught up from the current leader.

        A revived replica never usurps: leadership only changes at
        elections, and elections only happen when the leader dies.
        """
        replica = self.replicas[replica_id]
        if replica.alive:
            return
        replica.alive = True
        if self.leader_id is None:
            self._elect(f"replica {replica_id} revived a dead fleet")
            return
        leader = self.leader()
        replica.log = list(leader.log)
        replica.delivered = dict(leader.delivered)

    # -- validation --------------------------------------------------------

    def _validate(
        self, tenant_id: Optional[str], changes: Mapping[str, Any]
    ) -> Optional[str]:
        if not changes:
            return "empty change set"
        registry = self.registry
        tenant_fields: Dict[str, Any] = {}
        manager_changes = False
        for key in sorted(changes):
            value = changes[key]
            if key in TENANT_KEYS:
                if tenant_id is None:
                    return f"{key!r} is tenant-scoped but no tenant_id given"
                spec_field, check = TENANT_KEYS[key]
                error = check(value)
                if error:
                    return f"{key!r} {error}, got {value!r}"
                tenant_fields[spec_field] = value
            elif key in FLEET_KEYS:
                if tenant_id is not None:
                    return f"{key!r} is fleet-scoped, drop the tenant_id"
                _config_field, check = FLEET_KEYS[key]
                error = check(value)
                if error:
                    return f"{key!r} {error}, got {value!r}"
            elif key in MANAGER_KEYS:
                required_flag, check = MANAGER_KEYS[key]
                error = check(value)
                if error:
                    return f"{key!r} {error}, got {value!r}"
                if required_flag is not None:
                    for manager in self._scope_managers(tenant_id):
                        if not manager.feature_flags().get(required_flag):
                            return (
                                f"{key!r} requires the {required_flag!r} "
                                f"feature, which space "
                                f"{manager._space.name!r} has off"
                            )
                manager_changes = True
            else:
                return f"unknown config key {key!r}"
        if tenant_id is not None and tenant_id not in registry.tenants:
            return f"unknown tenant {tenant_id!r}"
        if manager_changes and not self._scope_managers(tenant_id):
            return "no managers registered in scope"
        if tenant_fields:
            tenant = registry.tenants[tenant_id]
            try:
                new_spec = replace(tenant.spec, **tenant_fields)
                registry._check_guarantees(replacing=new_spec)
            except FleetError as exc:
                return str(exc)
            if new_spec.heap_budget_bytes < tenant.heap_capacity_bytes():
                return (
                    "heap budget below the tenant's bound heap capacity "
                    f"({new_spec.heap_budget_bytes} < "
                    f"{tenant.heap_capacity_bytes()} bytes)"
                )
        return None

    def _scope_managers(self, tenant_id: Optional[str]) -> List[Any]:
        registry = self.registry
        if tenant_id is not None:
            tenant = registry.tenants.get(tenant_id)
            return list(tenant.managers) if tenant is not None else []
        return [
            manager
            for tid in sorted(registry.tenants)
            for manager in registry.tenants[tid].managers
        ]

    # -- the request path --------------------------------------------------

    def submit(
        self,
        changes: Mapping[str, Any],
        *,
        tenant_id: Optional[str] = None,
        epoch: Optional[int] = None,
    ) -> ChangeDecision:
        """Validate one change request; append it to the log if sound.

        ``epoch`` is the epoch the requester believes is current
        (fencing): a request stamped with a stale epoch is rejected
        before validation, exactly like a write from a deposed leader's
        client.  ``None`` means "whatever is current" — convenient for
        co-located callers that cannot race an election.
        """
        if epoch is not None and epoch != self.epoch:
            return self._reject(
                f"stale epoch {epoch} (current epoch is {self.epoch})"
            )
        if self.leader_id is None:
            return self._reject("fleet has no live leader")
        error = self._validate(tenant_id, changes)
        if error is not None:
            return self._reject(error)
        leader = self.leader()
        version = leader.log[-1].version + 1 if leader.log else 1
        entry = LogEntry(
            version=version,
            epoch=self.epoch,
            tenant_id=tenant_id or "",
            changes=tuple(sorted(changes.items())),
        )
        for replica in self._alive():
            replica.log.append(entry)
        self.accepted += 1
        self.bus.emit(
            FleetConfigAppliedEvent(
                space=FLEET_SCOPE,
                version=version,
                epoch=self.epoch,
                tenant_id=entry.tenant_id,
                keys=tuple(key for key, _value in entry.changes),
            )
        )
        return ChangeDecision(accepted=True, version=version)

    def _reject(self, reason: str) -> ChangeDecision:
        self.rejected += 1
        self.bus.emit(
            FleetConfigRejectedEvent(
                space=FLEET_SCOPE, epoch=self.epoch, reason=reason
            )
        )
        return ChangeDecision(accepted=False, reason=reason)

    # -- distribution ------------------------------------------------------

    def distribute(self, limit: Optional[int] = None) -> int:
        """Deliver accepted entries to every target exactly once.

        Targets are the registry itself plus every manager in the
        entry's scope.  ``limit`` caps deliveries *this call* — tests
        kill the leader between partial calls to prove the ledger
        carries exactly-once across failover.  Returns the number of
        deliveries made.
        """
        leader = self.leader()
        delivered = 0
        for entry in leader.log:
            for name, apply_change in self._targets(entry):
                key = (name, entry.version)
                if key in leader.delivered:
                    continue
                if limit is not None and delivered >= limit:
                    return delivered
                apply_change()
                for replica in self._alive():
                    replica.delivered[key] = self.epoch
                delivered += 1
        return delivered

    def undelivered(self) -> int:
        """Deliveries the current leader still owes (test/ops surface)."""
        leader = self.leader()
        return sum(
            1
            for entry in leader.log
            for name, _apply in self._targets(entry)
            if (name, entry.version) not in leader.delivered
        )

    def _targets(
        self, entry: LogEntry
    ) -> List[Tuple[str, Callable[[], None]]]:
        targets: List[Tuple[str, Callable[[], None]]] = [
            ("::registry", lambda e=entry: self._apply_registry(e))
        ]
        tenant_id = entry.tenant_id or None
        for manager in self._scope_managers(tenant_id):
            targets.append(
                (
                    manager._space.name,
                    lambda e=entry, m=manager: self._apply_manager(e, m),
                )
            )
        return targets

    def _apply_registry(self, entry: LogEntry) -> None:
        registry = self.registry
        tenant_fields = {
            TENANT_KEYS[key][0]: value
            for key, value in entry.changes
            if key in TENANT_KEYS
        }
        if tenant_fields and entry.tenant_id in registry.tenants:
            registry.update_spec(entry.tenant_id, **tenant_fields)
        fleet_fields = {
            FLEET_KEYS[key][0]: value
            for key, value in entry.changes
            if key in FLEET_KEYS
        }
        if fleet_fields:
            registry.config = replace(registry.config, **fleet_fields)

    def _apply_manager(self, entry: LogEntry, manager: Any) -> None:
        for key, value in entry.changes:
            if key == "manager.replication_factor":
                manager.replication_factor = value
            elif key.startswith("degrade.") and manager.ladder is not None:
                config_field = key.split(".", 1)[1]
                manager.ladder.config = replace(
                    manager.ladder.config, **{config_field: value}
                )
        manager.stats.fleet_config_updates += 1

    # -- subscriptions -----------------------------------------------------

    def subscribe(
        self,
        tenant_id: str,
        topic: str,
        handler: Callable[[Event], None],
    ) -> Callable[[], None]:
        """Subscribe a tenant to an event family.

        ``topic`` is an exact topic or a prefix family ending in ``*``
        (``"swap.*"``, ``"fleet.tenant.*"``).  Delivery is
        tenant-filtered: the handler only sees events stamped with one
        of the tenant's own spaces, or fleet-scoped events.  Returns an
        unsubscribe callable.
        """
        if tenant_id not in self.registry.tenants:
            raise FleetError(f"unknown tenant {tenant_id!r}")
        sub = (tenant_id, topic, handler)
        self._subs.append(sub)
        return lambda: self._subs.remove(sub)

    def watch(self, bus: EventBus) -> Callable[[], None]:
        """Fan this bus's events out to matching tenant subscriptions.

        Call once per space bus in the fleet; the controller's own bus
        is watched automatically.
        """
        return bus.subscribe_all(self._fan_out)

    def _fan_out(self, event: Event) -> None:
        topic = type(event).topic
        for tenant_id, pattern, handler in list(self._subs):
            if not _topic_matches(pattern, topic):
                continue
            tenant = self.registry.tenants.get(tenant_id)
            if tenant is None:
                continue
            space = getattr(event, "space", None)
            if space not in (None, "", FLEET_SCOPE):
                if space not in {
                    manager._space.name for manager in tenant.managers
                }:
                    continue
            handler(event)


def _topic_matches(pattern: str, topic: str) -> bool:
    if pattern.endswith("*"):
        return topic.startswith(pattern[:-1])
    return pattern == topic
