"""Tenancy: budgets, fair shares and per-tenant pressure.

A :class:`TenantSpec` binds a tenant id to three limits — a heap
budget, a store-byte quota, and a guaranteed share of the fleet's
store capacity — plus a priority class.  The
:class:`TenantRegistry` holds every tenant over one shared set of
swap stores and arbitrates between them:

* **Quota** is absolute: a ship that would push the tenant's store
  footprint past ``store_quota_bytes`` is denied outright, whatever
  the fleet looks like.
* **Fair share** only bites under *global* store pressure (fleet free
  space at or below :attr:`FleetConfig.pressure_free_fraction`).
  Each tenant's fair share is its guaranteed slice of capacity plus
  an equal split of the unguaranteed remainder.  Under pressure an
  over-share tenant's ships are denied (they fall down the existing
  degrade-to-local path), while an under-share tenant's ships are
  admitted and the registry claws back room by dropping *redundant*
  copies — retained clean copies and extra mirrors — from whoever is
  furthest over share (see
  :meth:`~repro.core.manager.SwappingManager.reclaim_store_copies`).
  Nobody is ever reclaimed below their fair share, so one tenant's
  burst cannot push another below its guarantee.
* **Pressure** is per tenant: each tenant feeds a
  :class:`~repro.policy.pressure.PressureSignal` overlay into its
  managers' degrade ladders, so rungs escalate for the tenant that is
  over share while its neighbors stay at ``NORMAL``.

Denials and reclaims are *advisory erosion*, not hard failure: a
denied ship raises :class:`~repro.errors.NoSwapDeviceError` only when
the manager has no degrade-to-local fallback, and a reclaimed copy is
always one the runtime can re-create (the last copy of swapped state
is never touched).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ObiError
from repro.events import TenantEvictedEvent, TenantRegisteredEvent
from repro.policy.pressure import PressureLevel, PressureSignal, classify


class FleetError(ObiError):
    """An invalid tenancy or control-plane operation."""


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-wide arbitration knobs."""

    #: The fleet is under *global* store pressure when its free space,
    #: as a fraction of total store capacity, is at or below this.
    #: Fair-share arbitration (denials, reclaims, per-tenant ladder
    #: bumps) only engages under pressure; above it every admitted
    #: tenant ships freely.
    pressure_free_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.pressure_free_fraction < 1.0:
            raise FleetError(
                "pressure_free_fraction must be in [0, 1), got "
                f"{self.pressure_free_fraction}"
            )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's limits.  Immutable; the control plane replaces the
    whole spec when a validated config change lands."""

    tenant_id: str
    #: Ceiling on the summed heap capacity of the tenant's spaces
    #: (checked at bind time — a space whose heap would blow the
    #: budget is refused).
    heap_budget_bytes: int
    #: Absolute ceiling on the tenant's store footprint (all copies of
    #: all its clusters on fleet stores).
    store_quota_bytes: int
    #: Slice of fleet store capacity this tenant can never be reclaimed
    #: or denied below.  Guarantees across tenants must sum to <= 1.
    guaranteed_share: float = 0.0
    #: Higher keeps its copies longer when two tenants are equally
    #: over share (mirrors ``repro.policy.priority`` semantics).
    priority_class: int = 1

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise FleetError("tenant_id must be non-empty")
        if self.heap_budget_bytes <= 0:
            raise FleetError(
                f"heap_budget_bytes must be positive, got "
                f"{self.heap_budget_bytes}"
            )
        if self.store_quota_bytes <= 0:
            raise FleetError(
                f"store_quota_bytes must be positive, got "
                f"{self.store_quota_bytes}"
            )
        if not 0.0 <= self.guaranteed_share <= 1.0:
            raise FleetError(
                f"guaranteed_share must be in [0, 1], got "
                f"{self.guaranteed_share}"
            )
        if self.priority_class < 0:
            raise FleetError(
                f"priority_class must be >= 0, got {self.priority_class}"
            )


def manager_store_bytes(manager: Any, stores: List[Any]) -> int:
    """One manager's *physical* footprint on the given stores.

    Swap keys are namespaced per space
    (:func:`~repro.core.manager.format_swap_key` produces
    ``"{space}/sc-{sid}/e{epoch}"``), so a prefix scan over the fleet
    devices charges exactly what is at rest for this space — every
    copy, retained caches, delta chains and negotiated compression
    included — and the figure adds up with the devices' own
    ``used`` / ``capacity`` that fair shares are cut from.
    """
    prefix = f"{manager._space.name}/"
    return sum(store.used_by_prefix(prefix) for store in stores)


class Tenant:
    """One tenant: a spec plus the managers bound under it.

    Created by :meth:`TenantRegistry.register`; the same tenant id may
    bind several spaces (each brings its own manager), and their heap
    capacities must fit the tenant's heap budget together.
    """

    def __init__(self, spec: TenantSpec, registry: "TenantRegistry") -> None:
        self.spec = spec
        self._registry = registry
        self.managers: List[Any] = []
        #: Copies / bytes the fair-share reclaimer took *from* this
        #: tenant (involuntary erosion — the isolation bench scores it).
        self.evicted_copies = 0
        self.evicted_bytes = 0
        #: Ladder escalations this tenant's overlay injected.
        self.pressure_bumps = 0

    @property
    def tenant_id(self) -> str:
        return self.spec.tenant_id

    # -- binding -----------------------------------------------------------

    def bind(self, manager: Any) -> None:
        """Bind a space's manager to this tenant (idempotent)."""
        if manager in self.managers:
            return
        if manager.tenant is not None and manager.tenant is not self:
            raise FleetError(
                f"space {manager._space.name!r} is already bound to tenant "
                f"{manager.tenant.tenant_id!r}"
            )
        heap_total = manager._space.heap.capacity + sum(
            m._space.heap.capacity for m in self.managers
        )
        if heap_total > self.spec.heap_budget_bytes:
            raise FleetError(
                f"tenant {self.tenant_id!r} heap budget exceeded: "
                f"{heap_total} > {self.spec.heap_budget_bytes} bytes"
            )
        self.managers.append(manager)
        manager.tenant = self
        if manager.ladder is not None:
            self.bind_ladder(manager.ladder)
        if manager.obs is not None:
            manager.obs.set_tenant_label(self.tenant_id)
        space = manager._space
        space.bus.emit(
            TenantRegisteredEvent(
                space=space.name,
                tenant_id=self.tenant_id,
                store_quota_bytes=self.spec.store_quota_bytes,
                guaranteed_share=self.spec.guaranteed_share,
                priority_class=self.spec.priority_class,
            )
        )

    def unbind(self, manager: Any) -> None:
        if manager in self.managers:
            self.managers.remove(manager)
        if manager.tenant is self:
            manager.tenant = None
        if manager.ladder is not None:
            manager.ladder.pressure_overlay = None

    def bind_ladder(self, ladder: Any) -> None:
        """Install this tenant's pressure overlay on a degrade ladder.

        Called both at bind time and from
        :meth:`~repro.core.manager.SwappingManager.enable_degrade_ladder`
        when the ladder is (re-)created after binding.
        """
        manager = ladder._manager

        def overlay(signal: PressureSignal) -> PressureSignal:
            return self._adjust_signal(signal, manager)

        ladder.pressure_overlay = overlay

    def _adjust_signal(
        self, signal: PressureSignal, manager: Any
    ) -> PressureSignal:
        """Fold fleet fair-share standing into one ladder reading.

        An over-share tenant under global store pressure is escalated
        one level; everyone else's signals pass through untouched, so
        rungs climb for the tenant causing the squeeze and only for it.
        """
        if not self._registry.under_pressure():
            return signal
        share = self.fair_share_bytes()
        if share <= 0 or self.store_bytes() <= share:
            return signal
        bumped = min(int(PressureLevel.CRITICAL), int(signal.level) + 1)
        if bumped == int(signal.level):
            return signal
        self.pressure_bumps += 1
        manager.stats.tenant_pressure_bumps += 1
        return replace(signal, level=PressureLevel(bumped))

    # -- accounting --------------------------------------------------------

    def store_bytes(self) -> int:
        """This tenant's total physical footprint on fleet stores."""
        stores = self._registry._stores
        return sum(manager_store_bytes(m, stores) for m in self.managers)

    def heap_capacity_bytes(self) -> int:
        return sum(m._space.heap.capacity for m in self.managers)

    def fair_share_bytes(self) -> int:
        return self._registry.fair_share_bytes(self)

    def guaranteed_bytes(self) -> int:
        return int(
            self.spec.guaranteed_share * self._registry.capacity_bytes()
        )

    def denials(self) -> int:
        return sum(m.stats.fleet_admission_denials for m in self.managers)

    # -- the manager-facing hooks ------------------------------------------

    def admit_ship(self, nbytes: int, replicas: int) -> Tuple[bool, str]:
        """May this tenant ship ``nbytes`` to ``replicas`` stores now?

        Called by ``_ship_and_detach`` before store selection.  Returns
        ``(admitted, denial_reason)``; a denial sends the swap-out down
        the degrade-to-local path instead of onto the fleet.
        """
        return self._registry.admit(self, nbytes * max(1, replicas))

    def prepare_room(self, need_bytes: int) -> None:
        """Heap-pressure hook (``ensure_room``): an under-share tenant
        about to evict may pull redundant fleet copies back from
        over-share tenants so its victim ships have somewhere to land."""
        registry = self._registry
        if not registry.under_pressure():
            return
        if self.store_bytes() >= self.fair_share_bytes():
            return
        registry.reclaim(need_bytes, requester=self)

    def pressure(self) -> PressureSignal:
        """This tenant's current fleet-relative pressure reading."""
        return self._registry.tenant_pressure(self)


class TenantRegistry:
    """Every tenant over one shared store fleet, plus the arbiter.

    The registry never touches stores directly — capacity and usage
    are read from the devices (``capacity`` / ``used``, passed through
    fault wrappers), and reclaiming goes through each victim manager's
    :meth:`~repro.core.manager.SwappingManager.reclaim_store_copies`
    so placement ledgers and retained-copy indexes stay consistent.
    """

    def __init__(
        self, stores: List[Any], *, config: Optional[FleetConfig] = None
    ) -> None:
        if not stores:
            raise FleetError("a tenant registry needs at least one store")
        self.config = config if config is not None else FleetConfig()
        self._stores = list(stores)
        self.tenants: Dict[str, Tenant] = {}

    def store_ids(self) -> Set[str]:
        return {store.device_id for store in self._stores}

    # -- membership --------------------------------------------------------

    def register(self, spec: TenantSpec, manager: Any) -> Tenant:
        """Register (or extend) a tenant and bind ``manager`` under it.

        Re-registering an existing tenant id with an *identical* spec
        binds another space to the same tenant; a differing spec is an
        error (specs change through the control plane, not re-register).
        """
        tenant = self.tenants.get(spec.tenant_id)
        if tenant is None:
            self._check_guarantees(adding=spec)
            tenant = Tenant(spec, self)
            self.tenants[spec.tenant_id] = tenant
        elif tenant.spec != spec:
            raise FleetError(
                f"tenant {spec.tenant_id!r} is already registered with a "
                "different spec; use update_spec"
            )
        tenant.bind(manager)
        return tenant

    def unregister(self, tenant_id: str) -> None:
        tenant = self.tenants.pop(tenant_id, None)
        if tenant is None:
            raise FleetError(f"unknown tenant {tenant_id!r}")
        for manager in list(tenant.managers):
            tenant.unbind(manager)

    def update_spec(self, tenant_id: str, /, **changes: Any) -> TenantSpec:
        """Replace fields of a tenant's spec (control-plane entry point).

        Field validation reruns via ``TenantSpec.__post_init__``; the
        cross-tenant guarantee-sum invariant is rechecked here.  The
        tenant id is positional-only so a stray ``tenant_id=...`` in
        ``changes`` hits the rename guard instead of shadowing it.
        """
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise FleetError(f"unknown tenant {tenant_id!r}")
        if "tenant_id" in changes:
            raise FleetError("a tenant cannot be renamed")
        spec = replace(tenant.spec, **changes)
        self._check_guarantees(replacing=spec)
        tenant.spec = spec
        return spec

    def _check_guarantees(
        self,
        adding: Optional[TenantSpec] = None,
        replacing: Optional[TenantSpec] = None,
    ) -> None:
        shares = {
            tid: tenant.spec.guaranteed_share
            for tid, tenant in self.tenants.items()
        }
        if replacing is not None:
            shares[replacing.tenant_id] = replacing.guaranteed_share
        if adding is not None:
            shares[adding.tenant_id] = adding.guaranteed_share
        total = sum(shares.values())
        if total > 1.0 + 1e-9:
            raise FleetError(
                f"guaranteed shares sum to {total:.2f} > 1.0 of fleet "
                "capacity"
            )

    # -- fleet accounting --------------------------------------------------

    def capacity_bytes(self) -> int:
        return sum(store.capacity for store in self._stores)

    def used_bytes(self) -> int:
        return sum(store.used for store in self._stores)

    def free_bytes(self) -> int:
        return self.capacity_bytes() - self.used_bytes()

    def free_fraction(self) -> float:
        capacity = self.capacity_bytes()
        return self.free_bytes() / capacity if capacity else 1.0

    def under_pressure(self) -> bool:
        """Is the fleet under global store pressure right now?"""
        return self._pressed_after(0)

    def _pressed_after(self, extra_bytes: int) -> bool:
        capacity = self.capacity_bytes()
        if capacity <= 0:
            return False
        free_after = self.free_bytes() - extra_bytes
        return free_after / capacity <= self.config.pressure_free_fraction

    def fair_share_bytes(self, tenant: Tenant) -> int:
        """Guaranteed slice plus an equal split of the unguaranteed
        remainder, capped by the tenant's own quota."""
        capacity = self.capacity_bytes()
        count = len(self.tenants)
        if capacity <= 0 or count == 0:
            return 0
        guaranteed_total = sum(
            t.spec.guaranteed_share for t in self.tenants.values()
        )
        leftover = max(0.0, 1.0 - guaranteed_total) / count
        share = tenant.spec.guaranteed_share + leftover
        return min(int(share * capacity), tenant.spec.store_quota_bytes)

    # -- arbitration -------------------------------------------------------

    def admit(self, tenant: Tenant, total_bytes: int) -> Tuple[bool, str]:
        """Decide one ship: quota first, fair share under pressure."""
        usage = tenant.store_bytes()
        quota = tenant.spec.store_quota_bytes
        if usage + total_bytes > quota:
            return False, (
                f"store quota exceeded ({usage} + {total_bytes} > "
                f"{quota} bytes)"
            )
        if self._pressed_after(total_bytes):
            share = self.fair_share_bytes(tenant)
            if usage + total_bytes > share:
                return False, (
                    f"over fair share under global store pressure "
                    f"({usage} + {total_bytes} > {share} bytes)"
                )
            # within its share: make room at the over-share tenants'
            # expense so the guaranteed ship can land
            self.reclaim(total_bytes, requester=tenant)
        return True, ""

    def reclaim(
        self, need_bytes: int, requester: Optional[Tenant] = None
    ) -> Tuple[int, int]:
        """Free up to ``need_bytes`` by eroding over-share tenants.

        Victims are ordered furthest-over-share first (priority class
        breaks ties, lower evicted first, then tenant id for
        determinism) and each is trimmed only down to its fair share —
        never into its guarantee.  Returns ``(copies, bytes_freed)``.
        """
        requested_by = requester.tenant_id if requester is not None else ""
        overages = []
        for tenant in self.tenants.values():
            if tenant is requester:
                continue
            overage = tenant.store_bytes() - self.fair_share_bytes(tenant)
            if overage > 0:
                overages.append((tenant, overage))
        overages.sort(
            key=lambda pair: (
                -pair[1],
                pair[0].spec.priority_class,
                pair[0].tenant_id,
            )
        )
        store_ids = self.store_ids()
        total_copies = 0
        total_freed = 0
        for victim, overage in overages:
            if total_freed >= need_bytes:
                break
            take = min(need_bytes - total_freed, overage)
            for manager in victim.managers:
                if take <= 0:
                    break
                copies, freed = manager.reclaim_store_copies(
                    take, store_ids=store_ids
                )
                if not copies:
                    continue
                victim.evicted_copies += copies
                victim.evicted_bytes += freed
                total_copies += copies
                total_freed += freed
                take -= freed
                space = manager._space
                space.bus.emit(
                    TenantEvictedEvent(
                        space=space.name,
                        tenant_id=victim.tenant_id,
                        copies_dropped=copies,
                        bytes_freed=freed,
                        requested_by=requested_by,
                    )
                )
        return total_copies, total_freed

    # -- readings ----------------------------------------------------------

    def tenant_pressure(self, tenant: Tenant) -> PressureSignal:
        """A per-tenant pressure reading in fleet terms.

        Headroom is the tenant's remaining fair share (not its heap);
        store health reads browned-out (0.5) while the fleet is under
        global pressure, so :func:`~repro.policy.pressure.classify`
        naturally bumps an over-share tenant one extra level.
        """
        share = self.fair_share_bytes(tenant)
        usage = tenant.store_bytes()
        headroom = max(0.0, 1.0 - usage / share) if share > 0 else 0.0
        health = 0.5 if self.under_pressure() else 1.0
        return classify(headroom, health, 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """One flat dict of fleet standing (bench / obs export)."""
        tenants = {}
        for tid in sorted(self.tenants):
            tenant = self.tenants[tid]
            tenants[tid] = {
                "store_bytes": tenant.store_bytes(),
                "fair_share_bytes": self.fair_share_bytes(tenant),
                "guaranteed_bytes": tenant.guaranteed_bytes(),
                "store_quota_bytes": tenant.spec.store_quota_bytes,
                "priority_class": tenant.spec.priority_class,
                "spaces": sorted(
                    m._space.name for m in tenant.managers
                ),
                "denials": tenant.denials(),
                "evicted_copies": tenant.evicted_copies,
                "evicted_bytes": tenant.evicted_bytes,
                "pressure_bumps": tenant.pressure_bumps,
                "pressure_level": int(self.tenant_pressure(tenant).level),
            }
        return {
            "capacity_bytes": self.capacity_bytes(),
            "used_bytes": self.used_bytes(),
            "free_fraction": self.free_fraction(),
            "under_pressure": self.under_pressure(),
            "tenants": tenants,
        }
