"""Multi-tenant spaces and the replicated fleet control plane.

``repro.fleet`` turns a pile of independently-swapping spaces into a
*fleet*: several tenants share one set of swap stores under explicit
budgets, a fair-share arbiter decides whose redundant copies give way
when the shared stores fill, and a small replicated control plane
(:class:`~repro.fleet.controller.FleetController`) validates, versions
and distributes policy changes to every registered manager exactly
once.

The package is opt-in end to end: a space that is never registered
with a :class:`~repro.fleet.tenancy.TenantRegistry` has
``manager.tenant is None`` and behaves bit-identically to a
fleet-less build.
"""

from repro.fleet.tenancy import (
    FleetConfig,
    FleetError,
    Tenant,
    TenantRegistry,
    TenantSpec,
    manager_store_bytes,
)
from repro.fleet.controller import (
    ChangeDecision,
    FleetController,
    LogEntry,
)

__all__ = [
    "ChangeDecision",
    "FleetConfig",
    "FleetController",
    "FleetError",
    "LogEntry",
    "Tenant",
    "TenantRegistry",
    "TenantSpec",
    "manager_store_bytes",
]
