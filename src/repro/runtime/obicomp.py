"""``obicomp``: decorate application classes and compile proxy classes.

The paper's OBIWAN compiler generates, per application class ``A``:

* a swap-cluster-proxy class implementing (i) ``ISwapClusterProxy``
  (``patch``, ``detach``, identity helpers) and (ii) the public interface
  ``IA`` of ``A``, where every generated method intercepts references
  crossing swap-cluster boundaries and delegates to the actual replica;
* class-extension code in ``A`` itself (registration, serialization
  support).

Here, :func:`managed` is the decoration entry point ("compiling" the
class), and :func:`compile_proxy_class` builds the proxy class from the
extracted :class:`~repro.runtime.classext.ClassSchema`.  Proxy classes are
cached per registry.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional, Type, TypeVar, overload

from repro.runtime.barrier import install_write_barrier, is_readonly_method
from repro.runtime.classext import extract_schema
from repro.runtime.registry import TypeRegistry, global_registry

T = TypeVar("T", bound=type)


@overload
def managed(cls: T) -> T: ...


@overload
def managed(
    *, size: int | None = None, registry: TypeRegistry | None = None
) -> Callable[[T], T]: ...


def managed(
    cls: Optional[T] = None,
    *,
    size: int | None = None,
    registry: TypeRegistry | None = None,
):
    """Mark an application class as OBIWAN-managed.

    Usage::

        @managed
        class Album: ...

        @managed(size=64)          # pin the accounted per-instance size
        class ListNode: ...

    The decorator extracts the class schema, registers the class (by
    qualified name) so the XML codec can resolve it, and makes instances
    eligible for adoption into a :class:`~repro.core.space.Space`.
    """

    def decorate(klass: T) -> T:
        if "__slots__" in klass.__dict__:
            raise TypeError(
                f"@managed class {klass.__name__} must not define __slots__: "
                f"the middleware stores per-instance bookkeeping "
                f"(_obi_oid, _obi_sid, _obi_space) in the instance dict"
            )
        schema = extract_schema(klass, size_hint=size)
        install_write_barrier(klass)
        klass._obi_managed = True  # type: ignore[attr-defined]
        klass._obi_size_hint = size  # type: ignore[attr-defined]
        klass._obi_schema = schema  # type: ignore[attr-defined]
        target_registry = registry if registry is not None else global_registry()
        target_registry.register(klass, schema)
        return klass

    if cls is not None:
        return decorate(cls)
    return decorate


def _make_forwarding_method(cls: Type[Any], name: str) -> Callable[..., Any]:
    """Generate the proxy-side forwarder for one public method.

    Like the paper's obicomp, the generated code matches the concrete
    method signature: a plain positional signature gets an exact-arity
    wrapper (no *args/**kwargs packing on the invocation fast path); a
    complex signature falls back to a generic wrapper.
    """
    import inspect

    target = getattr(cls, name, None)
    exact_params: Optional[list] = None
    if target is not None:
        try:
            signature = inspect.signature(target)
        except (TypeError, ValueError):
            signature = None
        if signature is not None:
            exact_params = []
            for parameter in list(signature.parameters.values())[1:]:  # skip self
                if (
                    parameter.kind
                    not in (
                        inspect.Parameter.POSITIONAL_ONLY,
                        inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    )
                    or parameter.default is not inspect.Parameter.empty
                ):
                    exact_params = None
                    break
                exact_params.append(parameter.name)

    safe_params = exact_params is not None and all(
        parameter.isidentifier() and not parameter.startswith("_obi")
        for parameter in exact_params
    )
    if safe_params and name.isidentifier() and not name.startswith("__"):
        method = _compile_inline_forwarder(
            name, exact_params, readonly=is_readonly_method(cls, name)
        )
    else:
        def method(self: Any, *args: Any, **kwargs: Any) -> Any:
            return self._obi_invoke(name, args, kwargs)

    method.__name__ = name
    method.__qualname__ = name
    method.__doc__ = f"Generated swap-cluster-proxy forwarder for {name!r}."
    return method


# The full interception body, generated per method exactly as the paper's
# obicomp emits "a similar code excerpt that verifies references being
# passed as parameters and return values" into every proxy method:
# resolve the target (transparently swapping the cluster back in), record
# the boundary crossing, translate non-atomic arguments into the target
# cluster, invoke the replica, and translate the result out — including
# the assign-mode self-patch fast path.
_INLINE_TEMPLATE = """\
def {name}(self{params}):
    _space = self._obi_space
    _target = self._obi_target
    if _target.__class__ is _Replacement:
        _space._manager.swap_in(self._obi_target_sid)
        _target = self._obi_target
    _tick = _space._tick + 1
    _space._tick = _tick
    _cluster = self._obi_cluster
    _cluster.crossings += 1
    _cluster.last_crossing_tick = _tick
{mark_dirty}\
{arg_translations}\
    _result = _target.{name}({args})
    _result_class = _result.__class__
    if _result_class in _ATOMIC:
        return _result
    if self._obi_assign_mode and getattr(_result_class, "_obi_managed", False):
        _value_sid = getattr(_result, "_obi_sid", None)
        if _value_sid is not None and _result._obi_space is _space:
            if _value_sid == self._obi_source_sid:
                return _result
            _setattr(self, "_obi_target_oid", _result._obi_oid)
            _setattr(self, "_obi_target", _result)
            if _value_sid != self._obi_target_sid:
                _space._move_patch_bucket(self, self._obi_target_sid, _value_sid)
            return self
    return _space._translate_return(_result, self)
"""

_ARG_TRANSLATION = (
    "    if {arg}.__class__ not in _ATOMIC:\n"
    "        if {arg}.__class__ in _MUTABLE:\n"
    "            _src = _space._clusters.get(self._obi_source_sid)\n"
    "            if _src is not None and not _src.dirty_all:\n"
    "                _src.mark_dirty()\n"
    "        {arg} = _space._translate({arg}, self._obi_target_sid)\n"
)

# Conservative dirty-tracking: a non-@readonly method may mutate its
# target cluster; the write barrier catches field writes, this catches
# in-place container mutation the barrier cannot see.
_MARK_DIRTY = (
    "    if not _cluster.dirty_all:\n"
    "        _cluster.mark_dirty()\n"
)


def _compile_inline_forwarder(
    name: str, params: list, readonly: bool = False
) -> Callable[..., Any]:
    from repro.core.replacement import ReplacementObject
    from repro.core.swap_proxy import _ATOMIC_RESULTS
    from repro.runtime.barrier import MUTABLE_CONTAINERS

    source = _INLINE_TEMPLATE.format(
        name=name,
        params="".join(f", {parameter}" for parameter in params),
        args=", ".join(params),
        mark_dirty="" if readonly else _MARK_DIRTY,
        arg_translations="".join(
            _ARG_TRANSLATION.format(arg=parameter) for parameter in params
        ),
    )
    namespace: dict[str, Any] = {
        "_Replacement": ReplacementObject,
        "_ATOMIC": _ATOMIC_RESULTS,
        "_MUTABLE": MUTABLE_CONTAINERS,
        "_setattr": object.__setattr__,
        "getattr": getattr,
    }
    exec(source, namespace)  # noqa: S102 - generated forwarder, fixed template
    return namespace[name]


def compile_proxy_class(cls: Type[Any]) -> Type[Any]:
    """Generate the swap-cluster-proxy class for application class ``cls``.

    The generated class subclasses
    :class:`repro.core.swap_proxy.SwapClusterProxyBase` and adds one
    forwarding method per public method of ``cls``.  Field reads/writes
    are intercepted by the base class via ``__getattr__``/``__setattr__``.
    """
    # Imported here: core depends on runtime for schemas, so the reverse
    # dependency must stay out of module import time.
    from repro.core.swap_proxy import SwapClusterProxyBase

    schema = getattr(cls, "_obi_schema", None)
    if schema is None:
        raise TypeError(f"{cls!r} is not a @managed class")

    namespace: dict[str, Any] = {
        # keep generated proxies dict-free: all state lives in the base
        # class slots, which keeps per-proxy footprint and creation cost low
        "__slots__": (),
        "_obi_target_class": cls,
        "__module__": cls.__module__,
        "__doc__": (
            f"Generated swap-cluster-proxy for {schema.name} "
            f"(implements: {', '.join(schema.public_methods) or 'fields only'})."
        ),
    }
    for method_name in schema.public_methods:
        namespace[method_name] = _make_forwarding_method(cls, method_name)

    proxy_name = f"{cls.__name__}SwapProxy"
    return type(proxy_name, (SwapClusterProxyBase,), namespace)


# Install the compiler on the global registry at import time; isolated
# registries created by tests get it explicitly.
global_registry().set_proxy_compiler(compile_proxy_class)


def ensure_compiler(registry: TypeRegistry) -> TypeRegistry:
    """Install the proxy compiler on ``registry`` and return it."""
    registry.set_proxy_compiler(compile_proxy_class)
    return registry
