"""Type registry: managed classes and their generated proxy classes.

Serialized objects carry their class name on the wire; the receiving end
resolves names back to classes through a registry.  One process normally
uses the module-level :func:`global_registry`, but tests can build
isolated registries.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Type

from repro.errors import NotManagedError
from repro.runtime.classext import ClassSchema


class TypeRegistry:
    """Maps class name -> (class, schema, lazily-compiled proxy class)."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[Type[Any], ClassSchema]] = {}
        self._proxy_classes: Dict[str, Type[Any]] = {}
        self._lock = threading.Lock()
        # injected by repro.runtime.obicomp to avoid an import cycle with core
        self._proxy_compiler: Optional[Callable[[Type[Any]], Type[Any]]] = None

    def register(self, cls: Type[Any], schema: ClassSchema) -> None:
        with self._lock:
            self._entries[schema.name] = (cls, schema)
            # a re-registered class (test re-imports) invalidates its proxy
            self._proxy_classes.pop(schema.name, None)

    def resolve(self, name: str) -> Type[Any]:
        try:
            return self._entries[name][0]
        except KeyError:
            raise NotManagedError(f"no managed class registered as {name!r}") from None

    def schema(self, name: str) -> ClassSchema:
        try:
            return self._entries[name][1]
        except KeyError:
            raise NotManagedError(f"no managed class registered as {name!r}") from None

    def schema_for(self, cls: Type[Any]) -> ClassSchema:
        schema = getattr(cls, "_obi_schema", None)
        if schema is None:
            raise NotManagedError(f"{cls!r} is not a @managed class")
        return schema

    def proxy_class_for(self, cls: Type[Any]) -> Type[Any]:
        """The generated swap-cluster-proxy class for application class ``cls``.

        Compiled on first request (obicomp generates "a specific class of
        swap-cluster-proxy for each type class defined by the application").
        """
        schema = self.schema_for(cls)
        with self._lock:
            proxy_cls = self._proxy_classes.get(schema.name)
            if proxy_cls is None:
                if self._proxy_compiler is None:
                    raise NotManagedError(
                        "proxy compiler not installed; import repro.runtime.obicomp"
                    )
                proxy_cls = self._proxy_compiler(cls)
                self._proxy_classes[schema.name] = proxy_cls
        return proxy_cls

    def set_proxy_compiler(self, compiler: Callable[[Type[Any]], Type[Any]]) -> None:
        self._proxy_compiler = compiler

    def names(self) -> Iterator[str]:
        return iter(list(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


_GLOBAL = TypeRegistry()


def global_registry() -> TypeRegistry:
    """The process-wide default registry used by ``@managed``."""
    return _GLOBAL
