"""Mutation write barrier for managed classes (dirty tracking).

The swap fast path (see :mod:`repro.core.fastpath`) depends on knowing
whether a swap-cluster's serialized payload is still valid — i.e. that
no member object mutated since the payload was produced.  The cheapest
reliable hook Python offers is the attribute protocol itself: every
field write on a managed instance goes through ``__setattr__`` unless
deliberately bypassed with ``object.__setattr__`` (which is exactly what
the middleware uses for its own non-semantic bookkeeping writes, so
swap-in rebuilds and boundary rewrites never dirty a cluster).

:func:`install_write_barrier` is applied by :func:`repro.runtime.obicomp.
managed` at decoration time.  The installed ``__setattr__`` performs the
write first, then — only for adopted instances — records the writing
object's oid in the owning swap-cluster's *dirty object set* (the delta
swap path re-ships only those members; see ``SwapCluster.dirty_oids``).
The barrier costs one dict lookup per write on unadopted instances and
one set-membership check once an object is already recorded, so it is
safe to keep always-on.

Field writes are not the only mutations.  Containers (lists, dicts,
sets, bytearrays) mutate in place without any attribute write, so the
proxy layer marks clusters dirty *conservatively* whenever a mutable
container crosses a swap-cluster boundary, and whenever a non-read-only
method is invoked through a proxy.  :func:`readonly` lets application
classes exempt genuinely non-mutating methods from that conservative
rule; field writes inside a ``@readonly`` method are still caught by
the barrier, so a wrong annotation only leaks *container* mutations.
"""

from __future__ import annotations

from typing import Any, Callable, Type, TypeVar

_object_setattr = object.__setattr__

F = TypeVar("F", bound=Callable[..., Any])

#: Builtin containers that mutate in place, invisibly to the barrier.
MUTABLE_CONTAINERS = frozenset({list, dict, set, bytearray})


def readonly(method: F) -> F:
    """Declare a method as non-mutating for dirty-tracking purposes.

    Invoking a ``@readonly`` method through a swap-cluster-proxy does
    not mark the target cluster dirty.  Field writes performed by the
    method are still caught by the write barrier; only in-place
    container mutation inside a wrongly-annotated method would escape.
    """
    method._obi_readonly = True  # type: ignore[attr-defined]
    return method


def is_readonly_method(cls: Type[Any], name: str) -> bool:
    """True when ``cls.name`` was declared with :func:`readonly`."""
    return getattr(getattr(cls, name, None), "_obi_readonly", False)


def mark_instance_dirty(obj: Any) -> None:
    """Flip the dirty bit of ``obj``'s swap-cluster (no-op if unadopted)."""
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is None:
        return
    space = instance_dict.get("_obi_space")
    if space is None:
        return
    cluster = space._clusters.get(instance_dict.get("_obi_sid"))
    if cluster is not None and not cluster.dirty_all:
        oid = instance_dict.get("_obi_oid")
        if oid not in cluster.dirty_oids:
            cluster.mark_dirty(oid)


def install_write_barrier(cls: Type[Any]) -> Type[Any]:
    """Install the dirty-tracking ``__setattr__`` on a managed class.

    Idempotent; wraps a user-defined ``__setattr__`` if the class (or a
    base other than ``object``) declares one, so custom attribute logic
    keeps working and still feeds the dirty bit.
    """
    inherited = None
    for klass in cls.__mro__:
        if klass is object:
            break
        existing = klass.__dict__.get("__setattr__")
        if existing is not None:
            if getattr(existing, "_obi_write_barrier", False):
                return cls  # barrier already active via this class or a base
            inherited = existing
            break

    if inherited is None:

        def __setattr__(self: Any, name: str, value: Any) -> None:
            _object_setattr(self, name, value)
            if name.startswith("_obi_"):
                return
            instance_dict = self.__dict__
            space = instance_dict.get("_obi_space")
            if space is not None:
                cluster = space._clusters.get(instance_dict.get("_obi_sid"))
                if cluster is not None and not cluster.dirty_all:
                    oid = instance_dict.get("_obi_oid")
                    if oid not in cluster.dirty_oids:
                        cluster.mark_dirty(oid)

    else:
        wrapped = inherited

        def __setattr__(self: Any, name: str, value: Any) -> None:
            wrapped(self, name, value)
            if name.startswith("_obi_"):
                return
            instance_dict = getattr(self, "__dict__", None)
            if instance_dict is None:
                return
            space = instance_dict.get("_obi_space")
            if space is not None:
                cluster = space._clusters.get(instance_dict.get("_obi_sid"))
                if cluster is not None and not cluster.dirty_all:
                    oid = instance_dict.get("_obi_oid")
                    if oid not in cluster.dirty_oids:
                        cluster.mark_dirty(oid)

    __setattr__._obi_write_barrier = True  # type: ignore[attr-defined]
    cls.__setattr__ = __setattr__  # type: ignore[assignment]
    return cls
