"""Code-extension runtime: the ``obicomp`` compiler analogue.

In the paper, the OBIWAN compiler (``obicomp``) generates, for each
application class, a swap-cluster-proxy class implementing the class's
public interface plus the ``ISwapClusterProxy`` operations, and augments
application classes with middleware hooks.  Here the same artifacts are
produced by reflection at class-decoration time: the :func:`managed`
decorator extracts a :class:`ClassSchema`, registers the class, and the
proxy class is compiled lazily on first use.
"""

from repro.runtime.barrier import install_write_barrier, readonly
from repro.runtime.classext import ClassSchema, extract_schema, is_managed, is_proxy
from repro.runtime.registry import TypeRegistry, global_registry
from repro.runtime.obicomp import managed, compile_proxy_class

__all__ = [
    "ClassSchema",
    "extract_schema",
    "is_managed",
    "is_proxy",
    "TypeRegistry",
    "global_registry",
    "managed",
    "compile_proxy_class",
    "readonly",
    "install_write_barrier",
]
