"""Class schema extraction (the "class extension code" of OBIWAN).

A :class:`ClassSchema` records what the generated swap-cluster-proxy class
needs to know about an application class: its public methods (the
interface the proxy must implement, e.g. ``IA`` for class ``A`` in the
paper) and its declared fields (used by the XML codec and size model).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Type

from repro.errors import NotManagedError


@dataclass(frozen=True)
class ClassSchema:
    """Reflection summary of one managed application class."""

    cls: Type[Any]
    name: str
    public_methods: Tuple[str, ...]
    declared_fields: Tuple[str, ...]
    size_hint: int | None = None

    def describe(self) -> str:
        return (
            f"{self.name}: methods={list(self.public_methods)}, "
            f"fields={list(self.declared_fields)}, size_hint={self.size_hint}"
        )


# Methods that must never be proxied by generated code: proxy identity and
# lifecycle are handled by the proxy base class itself.
_EXCLUDED_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__eq__",
        "__ne__",
        "__hash__",
        "__repr__",
        "__str__",
        "__getattr__",
        "__setattr__",
        "__delattr__",
        "__reduce__",
        "__reduce_ex__",
        "__getstate__",
        "__setstate__",
        "__init_subclass__",
        "__subclasshook__",
        "__class_getitem__",
    }
)

# Dunder protocol methods that the proxy *should* forward so container-like
# managed classes remain usable through a proxy.
_FORWARDED_DUNDERS = (
    "__len__",
    "__getitem__",
    "__setitem__",
    "__delitem__",
    "__contains__",
    "__iter__",
    "__next__",
    "__call__",
    "__bool__",
)


def public_method_names(cls: Type[Any]) -> List[str]:
    """Names of methods the generated proxy must implement.

    Follows the paper's rule: the proxy implements "the interface
    containing the public methods of the type class".  Public means: not
    underscore-prefixed, defined as a plain function/property-free method
    anywhere in the MRO (excluding ``object``), plus a small set of
    forwarded container dunders if the class defines them.
    """
    names: List[str] = []
    seen = set()
    for klass in cls.__mro__:
        if klass is object:
            continue
        for name, member in vars(klass).items():
            if name in seen:
                continue
            seen.add(name)
            if name in _EXCLUDED_METHODS:
                continue
            if name.startswith("_") and name not in _FORWARDED_DUNDERS:
                continue
            if isinstance(member, (staticmethod, classmethod)):
                continue
            if inspect.isfunction(member):
                names.append(name)
    return sorted(names)


def declared_field_names(cls: Type[Any]) -> List[str]:
    """Field names declared via class annotations (best effort).

    The codec falls back to the live instance ``__dict__`` so undeclared
    fields still serialize; declarations mainly drive documentation and
    the property set generated on proxies.
    """
    names: List[str] = []
    for klass in reversed(cls.__mro__):
        for name in getattr(klass, "__annotations__", {}):
            if not name.startswith("_") and name not in names:
                names.append(name)
    return names


def extract_schema(cls: Type[Any], size_hint: int | None = None) -> ClassSchema:
    return ClassSchema(
        cls=cls,
        name=cls.__qualname__,
        public_methods=tuple(public_method_names(cls)),
        declared_fields=tuple(declared_field_names(cls)),
        size_hint=size_hint,
    )


def is_managed(obj: Any) -> bool:
    """True for instances of ``@managed`` application classes."""
    return getattr(type(obj), "_obi_managed", False)


def is_managed_class(cls: Type[Any]) -> bool:
    return getattr(cls, "_obi_managed", False)


def is_proxy(obj: Any) -> bool:
    """True for swap-cluster-proxy instances."""
    return getattr(type(obj), "_obi_is_proxy", False)


def schema_of(obj_or_cls: Any) -> ClassSchema:
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    schema = getattr(cls, "_obi_schema", None)
    if schema is None:
        raise NotManagedError(f"{cls!r} is not a @managed class")
    return schema


def instance_fields(obj: Any) -> Dict[str, Any]:
    """The serializable field map of a managed instance.

    Internals (``_obi_*``) are excluded; other underscore-prefixed fields
    are kept — they are application state and must survive a swap cycle.
    """
    return {
        name: value
        for name, value in vars(obj).items()
        if name[:1] != "_" or not name.startswith("_obi_")
    }
