"""XML request/response envelopes for the web-service bridge.

Wire shape::

    <envelope op="store">
      <param name="key"><str>pda/sc-3/e1</str></param>
      <param name="text"><str>…</str></param>
    </envelope>

    <response status="ok"><result><none/></result></response>
    <response status="error" kind="UnknownKeyError">message</response>
"""

from __future__ import annotations

from typing import Any, Dict, Tuple
from xml.etree import ElementTree as ET

from repro.errors import CodecError
from repro.wire.wrappers import decode_value, encode_value


def _no_refs(_value: Any) -> None:
    return None


def _fail_refs(kind: str, _ident: int) -> Any:
    raise CodecError("envelope payloads cannot carry object references")


def build_request(op: str, params: Dict[str, Any]) -> str:
    root = ET.Element("envelope", {"op": op})
    for name, value in params.items():
        param = ET.SubElement(root, "param", {"name": name})
        param.append(encode_value(value, _no_refs))
    return ET.tostring(root, encoding="unicode")


def parse_request(text: str) -> Tuple[str, Dict[str, Any]]:
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CodecError(f"malformed request envelope: {exc}") from exc
    if root.tag != "envelope":
        raise CodecError(f"expected <envelope>, got <{root.tag}>")
    op = root.get("op", "")
    if not op:
        raise CodecError("envelope without op")
    params: Dict[str, Any] = {}
    for param in root:
        if param.tag != "param" or len(param) != 1:
            raise CodecError("malformed <param>")
        name = param.get("name", "")
        params[name] = decode_value(param[0], _fail_refs)
    return op, params


def build_response(result: Any = None, error: BaseException | None = None) -> str:
    if error is not None:
        root = ET.Element(
            "response", {"status": "error", "kind": type(error).__name__}
        )
        root.text = str(error)
        return ET.tostring(root, encoding="unicode")
    root = ET.Element("response", {"status": "ok"})
    holder = ET.SubElement(root, "result")
    holder.append(encode_value(result, _no_refs))
    return ET.tostring(root, encoding="unicode")


def parse_response(text: str) -> Any:
    """Return the result value, or raise the transported error."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CodecError(f"malformed response envelope: {exc}") from exc
    if root.tag != "response":
        raise CodecError(f"expected <response>, got <{root.tag}>")
    if root.get("status") == "error":
        from repro import errors as errors_module

        kind = root.get("kind", "ObiError")
        message = root.text or ""
        error_cls = getattr(errors_module, kind, errors_module.ObiError)
        if not isinstance(error_cls, type) or not issubclass(error_cls, BaseException):
            error_cls = errors_module.ObiError
        raise error_cls(message)
    holder = root.find("result")
    if holder is None or len(holder) != 1:
        raise CodecError("response without result")
    return decode_value(holder[0], _fail_refs)
