"""Communication services.

OBIWAN's communication services "abstract applications ... from the
limitations of existing virtual machines for mobile constrained devices
(e.g., absence of remote method invocation and proper object
serialization)", using "a communication bridge based on web-services, and
automatic conversion of objects into wrappers, using XML" (Section 2).

This package provides the simulated substrate: links with a
bandwidth/latency cost model (including the paper's 700 Kbps
Bluetooth-class link), nearby-device discovery, and a minimal
XML-envelope web-service bridge.
"""

from repro.comm.transport import (
    LoopbackLink,
    SimulatedLink,
    bluetooth_link,
    wifi_link,
    chunk_text,
    compress_payload,
    decompress_payload,
    negotiate_compression,
    BLUETOOTH_BPS,
    FRAME_OVERHEAD_BYTES,
    SUPPORTED_COMPRESSIONS,
)
from repro.comm.pipeline import PipelineStats, TransferScheduler
from repro.comm.discovery import Neighborhood, NeighborEntry
from repro.comm.webservice import WebServiceEndpoint, WebServiceClient
from repro.comm.messages import build_request, build_response, parse_request, parse_response

__all__ = [
    "LoopbackLink",
    "SimulatedLink",
    "bluetooth_link",
    "wifi_link",
    "chunk_text",
    "compress_payload",
    "decompress_payload",
    "negotiate_compression",
    "BLUETOOTH_BPS",
    "FRAME_OVERHEAD_BYTES",
    "SUPPORTED_COMPRESSIONS",
    "PipelineStats",
    "TransferScheduler",
    "Neighborhood",
    "NeighborEntry",
    "WebServiceEndpoint",
    "WebServiceClient",
    "build_request",
    "build_response",
    "parse_request",
    "parse_response",
]
