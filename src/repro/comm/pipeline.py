"""Pipelined multi-channel transfer scheduling on the simulated clock.

Serial swap-out charges every link operation to the one global
:class:`~repro.clock.SimulatedClock`, so shipping one payload to k
replica stores costs the *sum* of k link charges, and encoding cluster
i+1 cannot begin (in simulated time) until cluster i's transfer
finished.  Real radios do not work that way: independent links carry
frames concurrently, and the CPU encodes while the radio transmits.

:class:`TransferScheduler` models N independent channels without
touching any link logic.  Running a link operation "on a channel" swaps
the underlying :class:`~repro.comm.transport.SimulatedLink`'s clock for
a private shadow clock seeded at the moment that channel (and that
physical link) becomes free; the operation executes unchanged — stats,
``on_transfer`` hooks and fault injection all still fire — but its time
lands on the shadow.  The global clock does not move, so the caller can
keep encoding/shipping at the same simulated instant.  :meth:`drain`
advances the global clock past every in-flight transfer — the
synchronization point before anything *reads* from the stores.

Two operations on the *same* physical link never overlap: per-link busy
times serialize them even across different channels, so the model never
pretends one radio can transmit two payloads at once.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.clock import SimulatedClock
from repro.comm.transport import SimulatedLink


@dataclass
class PipelineStats:
    """What pipelining did, in simulated seconds."""

    #: link operations run on a channel
    transfers: int = 0
    #: :meth:`TransferScheduler.drain` calls that had in-flight work
    barriers: int = 0
    #: total channel occupancy — what a serial schedule would have
    #: charged to the global clock
    serial_s: float = 0.0
    #: what the drains actually advanced the global clock by
    pipelined_s: float = 0.0

    @property
    def saved_s(self) -> float:
        """Simulated seconds the overlap removed from the critical path."""
        return max(0.0, self.serial_s - self.pipelined_s)


class TransferScheduler:
    """Schedule link operations onto N concurrent channels.

    ``clock`` is the global simulated clock; ``channels`` bounds how
    many transfers may be in flight at once (a replica fan-out wider
    than the channel count queues on the earliest-free channel).
    """

    def __init__(self, clock: SimulatedClock, channels: int = 2) -> None:
        if channels < 1:
            raise ValueError("scheduler needs at least one channel")
        self.clock = clock
        self.channels = channels
        self.stats = PipelineStats()
        self._channel_free: List[float] = [clock.now()] * channels
        self._link_free: Dict[int, float] = {}

    @staticmethod
    def _underlying(link: Any) -> Optional[SimulatedLink]:
        """Unwrap fault-injection wrappers down to the clock-owning link."""
        seen = 0
        while link is not None and not isinstance(link, SimulatedLink):
            link = getattr(link, "_inner", None)
            seen += 1
            if seen > 8:  # defensive: cyclic wrapper chain
                return None
        return link if isinstance(link, SimulatedLink) else None

    @contextmanager
    def channel(self, link: Any) -> Iterator[None]:
        """Run the enclosed link operations concurrently on a free channel.

        The operations execute immediately (results and failures are
        synchronous as ever); only their *time* is scheduled onto the
        channel instead of the global clock.  Links the scheduler cannot
        model (loopback, no link at all) simply run inline.
        """
        target = self._underlying(link)
        if target is None or target.clock is not self.clock:
            # unknown link, or one already running on a shadow clock
            # (nested channel) — run inline rather than double-schedule
            yield
            return
        index = min(
            range(self.channels), key=lambda i: self._channel_free[i]
        )
        start = max(
            self.clock.now(),
            self._channel_free[index],
            self._link_free.get(id(target), 0.0),
        )
        shadow = SimulatedClock(start)
        target.clock = shadow
        try:
            yield
        finally:
            target.clock = self.clock
            end = shadow.now()
            self.stats.transfers += 1
            self.stats.serial_s += end - start
            self._channel_free[index] = end
            self._link_free[id(target)] = end

    def in_flight(self) -> bool:
        """True when some scheduled transfer ends after the global now."""
        now = self.clock.now()
        return any(free > now for free in self._channel_free)

    def drain(self) -> float:
        """Advance the global clock past every in-flight transfer.

        Returns the seconds waited.  Call before reading from any store
        (swap-in, scrub) or measuring elapsed swap cost — simulated
        reality must catch up with the scheduled writes first.
        """
        now = self.clock.now()
        horizon = max(self._channel_free + [now])
        waited = horizon - now
        if waited > 0:
            self.clock.advance(waited)
            self.stats.barriers += 1
            self.stats.pipelined_s += waited
        self._link_free.clear()
        return waited
