"""Pipelined multi-channel transfer scheduling on the simulated clock.

Serial swap-out charges every link operation to the one global
:class:`~repro.clock.SimulatedClock`, so shipping one payload to k
replica stores costs the *sum* of k link charges, and encoding cluster
i+1 cannot begin (in simulated time) until cluster i's transfer
finished.  Real radios do not work that way: independent links carry
frames concurrently, and the CPU encodes while the radio transmits.

:class:`TransferScheduler` models N independent channels without
touching any link logic.  Running a link operation "on a channel" swaps
the underlying :class:`~repro.comm.transport.SimulatedLink`'s clock for
a private shadow clock seeded at the moment that channel (and that
physical link) becomes free; the operation executes unchanged — stats,
``on_transfer`` hooks and fault injection all still fire — but its time
lands on the shadow.  The global clock does not move, so the caller can
keep encoding/shipping at the same simulated instant.  :meth:`drain`
advances the global clock past every in-flight transfer — the
synchronization point before anything *reads* from the stores.

Two operations on the *same* physical link never overlap: per-link busy
times serialize them even across different channels, so the model never
pretends one radio can transmit two payloads at once.

Every ``channel`` context yields a :class:`ChannelSlot` describing the
window the operation occupied ([start_s, end_s] on the simulated
timeline, plus a failure flag).  Callers that do not care simply ignore
the yield; the async swap scheduler (:mod:`repro.core.sched`) reads it
to place op completions on its clock-ordered queue.

A transfer that *fails* mid-flight (the body raises out of the channel
context) still blocks its channel and physical link until the moment of
failure — the radio really was busy — but the window is accounted as
``failed_s``/``failed_transfers`` rather than useful ``serial_s``, and
the seconds it charged to the link are mirrored into
``LinkStats.seconds_failed`` so the pressure classifier's
link-saturation input can exclude them (see
:func:`repro.policy.pressure.links_busy_seconds`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.clock import SimulatedClock
from repro.comm.transport import SimulatedLink


@dataclass
class PipelineStats:
    """What pipelining did, in simulated seconds."""

    #: link operations run on a channel (successful or failed)
    transfers: int = 0
    #: :meth:`TransferScheduler.drain` calls that had in-flight work
    barriers: int = 0
    #: total channel occupancy of *successful* operations — what a
    #: serial schedule would have charged to the global clock
    serial_s: float = 0.0
    #: what the drains actually advanced the global clock by
    pipelined_s: float = 0.0
    #: channel operations whose body raised (interrupted ships)
    failed_transfers: int = 0
    #: channel occupancy of those failed operations — busy radio time
    #: that bought nothing durable
    failed_s: float = 0.0
    #: bookings whose unelapsed tail was reclaimed mid-flight (a demand
    #: transfer preempted a speculative one on the same radio)
    cancelled_transfers: int = 0
    #: simulated seconds those cancellations gave back to their links
    cancelled_s: float = 0.0

    @property
    def saved_s(self) -> float:
        """Simulated seconds the overlap removed from the critical path."""
        return max(0.0, self.serial_s - self.pipelined_s)


@dataclass
class ChannelSlot:
    """The simulated-time window one channel operation occupied."""

    start_s: float = 0.0
    end_s: float = 0.0
    #: True when the operation raised out of the channel context.
    failed: bool = False
    #: which channel carried the window (None when the operation ran
    #: inline, outside the scheduler) — needed to cancel its remainder
    channel_index: Optional[int] = None

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


class TransferScheduler:
    """Schedule link operations onto N concurrent channels.

    ``clock`` is the global simulated clock; ``channels`` bounds how
    many transfers may be in flight at once (a replica fan-out wider
    than the channel count queues on the earliest-free channel).
    """

    def __init__(self, clock: SimulatedClock, channels: int = 2) -> None:
        if channels < 1:
            raise ValueError("scheduler needs at least one channel")
        self.clock = clock
        self.channels = channels
        self.stats = PipelineStats()
        self._channel_free: List[float] = [clock.now()] * channels
        self._link_free: Dict[int, float] = {}

    @staticmethod
    def _underlying(link: Any) -> Optional[SimulatedLink]:
        """Unwrap fault-injection wrappers down to the clock-owning link."""
        seen = 0
        while link is not None and not isinstance(link, SimulatedLink):
            link = getattr(link, "_inner", None)
            seen += 1
            if seen > 8:  # defensive: cyclic wrapper chain
                return None
        return link if isinstance(link, SimulatedLink) else None

    def link_free_at(self, link: Any) -> float:
        """When ``link``'s physical radio is next idle (simulated seconds).

        Unknown/unschedulable links read as free immediately.
        """
        target = self._underlying(link)
        if target is None:
            return self.clock.now()
        return max(self.clock.now(), self._link_free.get(id(target), 0.0))

    def idle_channel_at(self, when: float) -> bool:
        """True when some channel is free at simulated time ``when``."""
        return any(free <= when for free in self._channel_free)

    def next_channel_free(self) -> float:
        """Earliest simulated time any channel is idle (= now when one
        already is) — the admission point for backpressure pacing."""
        return max(self.clock.now(), min(self._channel_free))

    @contextmanager
    def channel(
        self, link: Any, not_before: float = 0.0
    ) -> Iterator[ChannelSlot]:
        """Run the enclosed link operations concurrently on a free channel.

        The operations execute immediately (results and failures are
        synchronous as ever); only their *time* is scheduled onto the
        channel instead of the global clock.  Links the scheduler cannot
        model (loopback, no link at all) simply run inline.  The yielded
        :class:`ChannelSlot` carries the operation's scheduled window;
        ``not_before`` delays the window start (sequencing failover
        attempts of one logical op across different links).
        """
        slot = ChannelSlot()
        target = self._underlying(link)
        if target is None or target.clock is not self.clock:
            # unknown link, or one already running on a shadow clock
            # (nested channel) — run inline rather than double-schedule
            slot.start_s = self.clock.now()
            try:
                yield slot
            except BaseException:
                slot.end_s = self.clock.now()
                slot.failed = True
                raise
            slot.end_s = self.clock.now()
            return
        index = min(
            range(self.channels), key=lambda i: self._channel_free[i]
        )
        slot.channel_index = index
        start = max(
            self.clock.now(),
            not_before,
            self._channel_free[index],
            self._link_free.get(id(target), 0.0),
        )
        shadow = SimulatedClock(start)
        target.clock = shadow
        slot.start_s = start
        charged_before = target.stats.seconds_charged
        failed = False
        try:
            yield slot
        except BaseException:
            failed = True
            raise
        finally:
            target.clock = self.clock
            end = shadow.now()
            slot.end_s = end
            slot.failed = failed
            self.stats.transfers += 1
            self._channel_free[index] = end
            self._link_free[id(target)] = end
            if failed:
                # the radio was busy until the failure, but the window
                # is waste, not useful serial work: account it apart and
                # mirror the charged seconds so saturation readings can
                # exclude them
                self.stats.failed_transfers += 1
                self.stats.failed_s += end - start
                target.stats.seconds_failed += (
                    target.stats.seconds_charged - charged_before
                )
            else:
                self.stats.serial_s += end - start

    def cancel_remainder(self, link: Any, slot: ChannelSlot, at: float) -> float:
        """Abort the unelapsed tail of a booked window at time ``at``.

        A radio can stop transmitting: when a demand transfer needs a
        link still booked by a speculative one, the speculation's
        remaining window is given back.  The head of the window (radio
        time already spent before ``at``) stays burnt — bytes cannot be
        unsent — and is reclassified like an interrupted ship so
        saturation readings exclude it.  Returns the seconds refunded;
        0.0 when the transfer already finished or later traffic stacked
        behind it (the window can no longer be reclaimed).
        """
        target = self._underlying(link)
        if target is None or slot.channel_index is None:
            return 0.0
        cut = max(at, slot.start_s)
        refund = slot.end_s - cut
        if refund <= 0.0:
            return 0.0
        if self._link_free.get(id(target)) != slot.end_s:
            return 0.0  # a later booking stacked on the radio: too late
        if self._channel_free[slot.channel_index] != slot.end_s:
            return 0.0  # the channel was rebooked past this window
        self._link_free[id(target)] = cut
        self._channel_free[slot.channel_index] = cut
        window = slot.end_s - slot.start_s
        self.stats.cancelled_transfers += 1
        self.stats.cancelled_s += refund
        self.stats.serial_s -= window
        self.stats.failed_s += cut - slot.start_s
        target.stats.seconds_failed += window
        return refund

    def in_flight(self) -> bool:
        """True when some scheduled transfer ends after the global now."""
        now = self.clock.now()
        return any(free > now for free in self._channel_free)

    def drain(self) -> float:
        """Advance the global clock past every in-flight transfer.

        Returns the seconds waited.  Call before reading from any store
        (swap-in, scrub) or measuring elapsed swap cost — simulated
        reality must catch up with the scheduled writes first.
        """
        now = self.clock.now()
        horizon = max(self._channel_free + [now])
        waited = horizon - now
        if waited > 0:
            self.clock.advance(waited)
            self.stats.barriers += 1
            self.stats.pipelined_s += waited
        self._link_free.clear()
        return waited
