"""Simulated wireless links with an explicit time-cost model.

The paper's prototype ships swapped clusters over "Bluetooth connectivity
at 700Kbps" (Section 4).  A :class:`SimulatedLink` charges transfer time
(latency + payload/bandwidth) to a simulated clock, so swap-cycle
experiments are deterministic and fast regardless of payload size.
Links can be taken down to model a storage device leaving the room.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.clock import Clock, SimulatedClock
from repro.errors import TransportError

#: The paper's Bluetooth link speed (bits per second).
BLUETOOTH_BPS = 700_000

#: A 802.11b-class link for the desktop-PC receiver comparison.
WIFI_BPS = 11_000_000

#: Per-frame framing cost (length prefix + sequence number) when a
#: payload is shipped as a batch of chunks over one connection.
FRAME_OVERHEAD_BYTES = 8

#: Compression codecs this implementation can negotiate, best first.
SUPPORTED_COMPRESSIONS: Tuple[str, ...] = ("zlib",)

#: Wire codecs this implementation can negotiate, best first.  ``"xml"``
#: is the canonical text protocol every peer speaks; ``"binary"`` is the
#: length-prefixed framing in :mod:`repro.wire.binary`.
SUPPORTED_CODECS: Tuple[str, ...] = ("binary", "xml")


def chunk_text(text: str, frame_bytes: int) -> List[bytes]:
    """Split UTF-8 encoded ``text`` into frames of at most ``frame_bytes``."""
    if frame_bytes <= 0:
        raise ValueError("frame size must be positive")
    data = text.encode("utf-8")
    return [data[i : i + frame_bytes] for i in range(0, len(data), frame_bytes)]


def negotiate_compression(
    ours: Sequence[str], theirs: Sequence[str] | None
) -> Optional[str]:
    """Pick the first codec both ends support (``None`` = ship plain).

    ``theirs`` is what the store advertises (``supported_compressions``);
    stores predating the negotiation advertise nothing and get plain text,
    so the protocol stays backward compatible.
    """
    if not theirs:
        return None
    theirs_set = set(theirs)
    for name in ours:
        if name in theirs_set:
            return name
    return None


def negotiate_codec(
    ours: Sequence[str], theirs: Sequence[str] | None
) -> Optional[str]:
    """Pick the first wire codec both ends support.

    ``theirs`` is the store's ``supported_codecs`` advertisement; stores
    predating the codec negotiation advertise nothing and get the
    canonical XML protocol (``None``), so the wire stays backward
    compatible exactly like :func:`negotiate_compression`.
    """
    if not theirs:
        return None
    theirs_set = set(theirs)
    for name in ours:
        if name in theirs_set:
            return name
    return None


def compress_body(data: bytes, compression: Optional[str]) -> bytes:
    """Encode raw payload bytes for the wire under ``compression``."""
    if compression is None:
        return data
    if compression == "zlib":
        return zlib.compress(data, level=6)
    raise TransportError(
        f"unknown compression codec {compression!r} "
        f"(this transport supports {sorted(SUPPORTED_COMPRESSIONS)})"
    )


def decode_body(data: bytes, compression: Optional[str]) -> bytes:
    """Invert :func:`compress_body`, returning raw payload bytes."""
    if compression is None:
        return data
    if compression == "zlib":
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise TransportError(f"corrupt zlib payload: {exc}") from exc
    raise TransportError(
        f"unknown compression codec {compression!r} "
        f"(this transport supports {sorted(SUPPORTED_COMPRESSIONS)})"
    )


def compress_payload(text: str, compression: Optional[str]) -> bytes:
    """Encode ``text`` for the wire under the negotiated codec."""
    return compress_body(text.encode("utf-8"), compression)


def decompress_payload(data: bytes, compression: Optional[str]) -> str:
    """Invert :func:`compress_payload`."""
    return decode_body(data, compression).decode("utf-8")


class Link(Protocol):
    """Anything that can carry bytes and report/charge the cost."""

    def transfer(self, nbytes: int) -> float:
        """Carry ``nbytes``; charge and return the elapsed seconds."""
        ...

    @property
    def is_up(self) -> bool: ...


@dataclass
class LinkStats:
    transfers: int = 0
    frames: int = 0
    bytes_carried: int = 0
    seconds_charged: float = 0.0
    #: Seconds charged inside channel windows whose operation ultimately
    #: failed (a ship interrupted mid-payload).  The radio was busy, but
    #: the time bought nothing durable — pressure's link-saturation input
    #: (:func:`repro.policy.pressure.links_busy_seconds`) excludes it so
    #: retried ships do not double-count into permanent saturation.
    seconds_failed: float = 0.0


class LoopbackLink:
    """Free, always-up link (same-process tests).

    Keeps the same :class:`LinkStats` / ``on_transfer`` surface as
    :class:`SimulatedLink` so per-link observability works in loopback
    tests too.  The historical bare ``bytes_carried`` counter survives
    as a property alias of ``stats.bytes_carried``.
    """

    def __init__(self) -> None:
        self.stats = LinkStats()
        #: Observability hook: called as ``(link, nbytes, elapsed_s)``
        #: after every transfer (``repro.obs`` installs it).
        self.on_transfer: Optional[
            Callable[["LoopbackLink", int, float], None]
        ] = None

    @property
    def bytes_carried(self) -> int:
        """Deprecated alias of ``stats.bytes_carried``."""
        return self.stats.bytes_carried

    def transfer(self, nbytes: int) -> float:
        self.stats.transfers += 1
        self.stats.frames += 1
        self.stats.bytes_carried += nbytes
        if self.on_transfer is not None:
            self.on_transfer(self, nbytes, 0.0)
        return 0.0

    def transfer_batch(self, sizes: Iterable[int]) -> float:
        frame_sizes = list(sizes)
        if not frame_sizes:
            return 0.0
        carried = sum(frame_sizes)
        self.stats.transfers += 1
        self.stats.frames += len(frame_sizes)
        self.stats.bytes_carried += carried
        if self.on_transfer is not None:
            self.on_transfer(self, carried, 0.0)
        return 0.0

    @property
    def is_up(self) -> bool:
        return True


class SimulatedLink:
    """A point-to-point wireless link with bandwidth + latency cost."""

    def __init__(
        self,
        bandwidth_bps: float,
        latency_s: float = 0.05,
        clock: Optional[Clock] = None,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.clock: Clock = clock if clock is not None else SimulatedClock()
        self.name = name
        self._up = True
        self._down_until: Optional[float] = None
        # brownout: the link stays *up* but every transfer costs more —
        # distinct from fail/fail_for, which make it unreachable
        self._latency_factor = 1.0
        self._bandwidth_factor = 1.0
        self.stats = LinkStats()
        #: Observability hook: called as ``(link, nbytes, elapsed_s)``
        #: after every successful transfer (``repro.obs`` installs it).
        self.on_transfer: Optional[
            Callable[["SimulatedLink", int, float], None]
        ] = None

    def brownout(
        self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0
    ) -> None:
        """Degrade the link without taking it down.

        ``latency_factor`` multiplies the per-connection latency;
        ``bandwidth_factor`` scales the usable bandwidth (0.5 = half
        speed).  Models congestion, interference, or a saturated access
        point: requests still succeed, they just crawl.
        """
        if latency_factor <= 0 or bandwidth_factor <= 0:
            raise ValueError("brownout factors must be positive")
        self._latency_factor = float(latency_factor)
        self._bandwidth_factor = float(bandwidth_factor)

    def clear_brownout(self) -> None:
        self._latency_factor = 1.0
        self._bandwidth_factor = 1.0

    @property
    def in_brownout(self) -> bool:
        return self._latency_factor != 1.0 or self._bandwidth_factor != 1.0

    def transfer_time(self, nbytes: int) -> float:
        """Cost model only — no state change."""
        return self.latency_s * self._latency_factor + (nbytes * 8) / (
            self.bandwidth_bps * self._bandwidth_factor
        )

    def transfer(self, nbytes: int) -> float:
        if not self.is_up:
            raise TransportError(f"link {self.name!r} is down")
        elapsed = self.transfer_time(nbytes)
        self.clock.advance(elapsed)
        self.stats.transfers += 1
        self.stats.frames += 1
        self.stats.bytes_carried += nbytes
        self.stats.seconds_charged += elapsed
        if self.on_transfer is not None:
            self.on_transfer(self, nbytes, elapsed)
        return elapsed

    def batch_transfer_time(self, sizes: Sequence[int]) -> float:
        """Cost of shipping ``sizes`` as frames over one connection.

        Latency is paid **once** for the whole batch (the radio round
        trip that dominates per-message cost on Bluetooth-class links);
        each frame adds :data:`FRAME_OVERHEAD_BYTES` of framing on top
        of its payload.  An empty batch is free: no connection is opened,
        so no latency is paid.
        """
        if not sizes:
            return 0.0
        total = sum(sizes) + FRAME_OVERHEAD_BYTES * len(sizes)
        return self.latency_s * self._latency_factor + (total * 8) / (
            self.bandwidth_bps * self._bandwidth_factor
        )

    def transfer_batch(self, sizes: Iterable[int]) -> float:
        """Carry a batch of frames; charge and return the elapsed seconds.

        Compared to one :meth:`transfer` per frame this saves
        ``(n - 1) * latency`` — the point of batching a streamed payload
        instead of opening a connection per chunk.
        """
        if not self.is_up:
            raise TransportError(f"link {self.name!r} is down")
        frame_sizes = list(sizes)
        if not frame_sizes:
            # nothing to ship: no connection, no latency, no stats
            return 0.0
        elapsed = self.batch_transfer_time(frame_sizes)
        self.clock.advance(elapsed)
        carried = sum(frame_sizes) + FRAME_OVERHEAD_BYTES * len(frame_sizes)
        self.stats.transfers += 1
        self.stats.frames += len(frame_sizes)
        self.stats.bytes_carried += carried
        self.stats.seconds_charged += elapsed
        if self.on_transfer is not None:
            self.on_transfer(self, carried, elapsed)
        return elapsed

    @property
    def is_up(self) -> bool:
        if (
            not self._up
            and self._down_until is not None
            and self.clock.now() >= self._down_until
        ):
            # the scheduled outage elapsed: the peer is back in range
            self._up = True
            self._down_until = None
        return self._up

    def fail(self) -> None:
        """The peer left range / the radio dropped."""
        self._up = False
        self._down_until = None

    def fail_for(self, seconds: float) -> None:
        """Take the link down until the clock reaches now + ``seconds``.

        The outage heals itself as simulated time passes — the device
        "comes back into the room" without anyone calling
        :meth:`restore`.  Used by fault schedules and chaos tests.
        """
        if seconds < 0:
            raise ValueError("outage duration must be non-negative")
        self._up = False
        self._down_until = self.clock.now() + seconds

    def restore(self) -> None:
        self._up = True
        self._down_until = None


def bluetooth_link(
    clock: Optional[Clock] = None, latency_s: float = 0.05, name: str = "bluetooth"
) -> SimulatedLink:
    """The paper's 700 Kbps Bluetooth-class link."""
    return SimulatedLink(BLUETOOTH_BPS, latency_s=latency_s, clock=clock, name=name)


def wifi_link(
    clock: Optional[Clock] = None, latency_s: float = 0.01, name: str = "wifi"
) -> SimulatedLink:
    """An 11 Mbps 802.11b-class link (desktop receivers)."""
    return SimulatedLink(WIFI_BPS, latency_s=latency_s, clock=clock, name=name)
