"""The web-service bridge.

The .NET CF prototype transfers swapped objects by invoking web services
(paper, Section 4).  :class:`WebServiceEndpoint` is the served side (a
named operation table); :class:`WebServiceClient` invokes it across a
simulated link, charging the request and response payloads to the link's
cost model and transporting errors in-band.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.comm.messages import (
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.comm.transport import Link
from repro.errors import CodecError, ObiError

Operation = Callable[..., Any]


class WebServiceEndpoint:
    """A named operation table serving XML envelopes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._operations: Dict[str, Operation] = {}
        self.requests_served = 0

    def register(self, op: str, handler: Operation) -> None:
        self._operations[op] = handler

    def operations(self) -> list[str]:
        return sorted(self._operations)

    def handle(self, request_text: str) -> str:
        """Serve one request; all failures travel back in-band."""
        self.requests_served += 1
        try:
            op, params = parse_request(request_text)
            handler = self._operations.get(op)
            if handler is None:
                raise CodecError(f"endpoint {self.name!r} has no operation {op!r}")
            result = handler(**params)
            return build_response(result)
        except Exception as exc:  # noqa: BLE001 - errors are part of the protocol
            return build_response(error=exc)


class WebServiceClient:
    """Client side of the bridge, bound to one endpoint over one link."""

    def __init__(self, endpoint: WebServiceEndpoint, link: Link) -> None:
        self._endpoint = endpoint
        self._link = link

    def call(self, op: str, **params: Any) -> Any:
        request_text = build_request(op, params)
        self._link.transfer(len(request_text.encode("utf-8")))
        response_text = self._endpoint.handle(request_text)
        self._link.transfer(len(response_text.encode("utf-8")))
        return parse_response(response_text)
